"""Engine scaling: sharded multiprocess backend vs the serial stream.

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py \
        --workers 1 2 4 --out BENCH_scaling.json

For each worker count it streams the same half-load trial set through
``get_backend("process", workers=w)`` and reports trials/s plus the
speedup over the 1-worker baseline.  Because the shard grid depends
only on the trial count — never on the worker count — every row folds
the *same* per-shard summaries, and the script exits 1 if any row's
``(routed_total, worst_epsilon, violations)`` differs from the
baseline's.  ``--smoke`` shrinks the geometry/trials for CI.

The registry-driven equivalent (records appended to
BENCH_TRAJECTORY.jsonl, gated by ``repro bench compare``) is the
``scaling`` suite: ``repro bench run --suite scaling``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.engine import StreamSpec, get_backend
from repro.switches.columnsort_switch import ColumnsortSwitch


def _bench_workers(switch, spec: StreamSpec, workers: int, reps: int):
    backend = get_backend(
        "process", workers=workers, shard_trials=spec.shard_trials
    )
    backend.run_stream(  # spin the pool up outside the timed region
        switch, StreamSpec(trials=spec.shard_trials, shard_trials=spec.shard_trials)
    )
    best = float("inf")
    summary = None
    for _ in range(reps):
        t0 = time.perf_counter()
        summary = backend.run_stream(switch, spec)
        best = min(best, time.perf_counter() - t0)
    return {
        "workers": workers,
        "seconds": best,
        "trials_per_s": spec.trials / best,
        "routed_total": summary.routed_total,
        "worst_epsilon": summary.worst_epsilon,
        "violations": summary.violations,
        "shards": summary.shards,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to sweep (first is the speedup baseline)",
    )
    parser.add_argument("--trials", type=int, default=2048)
    parser.add_argument("--shard-trials", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        switch = ColumnsortSwitch.from_beta(256, 0.75, 192)
        trials, shard_trials = min(args.trials, 1024), min(args.shard_trials, 128)
    else:
        switch = ColumnsortSwitch.from_beta(4096, 0.75, 3072)
        trials, shard_trials = args.trials, args.shard_trials
    spec = StreamSpec(
        trials=trials, seed=args.seed, load="half", shard_trials=shard_trials
    )

    rows = [
        _bench_workers(switch, spec, workers, args.reps)
        for workers in args.workers
    ]
    base = rows[0]
    fold_keys = ("routed_total", "worst_epsilon", "violations")
    for row in rows:
        row["speedup"] = base["seconds"] / row["seconds"]
        row["match"] = all(row[k] == base[k] for k in fold_keys)
        status = "ok" if row["match"] else "MISMATCH"
        print(
            f"workers {row['workers']:2d}  {row['trials_per_s']:9.1f} trials/s  "
            f"speedup {row['speedup']:5.2f}x  "
            f"eps {row['worst_epsilon']}  [{status}]"
        )

    report = {
        "switch": {"n": switch.n, "m": switch.m},
        "trials": trials,
        "shard_trials": shard_trials,
        "seed": args.seed,
        "smoke": args.smoke,
        "rows": rows,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.out}")

    if not all(row["match"] for row in rows):
        print(
            "ERROR: stream summary varies with the worker count",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
