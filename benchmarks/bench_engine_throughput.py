"""Engine throughput: scalar setup loop vs batched compiled-plan path.

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --out BENCH_engine.json

For each configured switch it routes the same random trial set through
(a) a plain ``setup`` loop and (b) one ``setup_batch`` call on the
warmed plan cache, checks the two produce identical routings (exit 1 on
any mismatch), and writes a JSON report with per-row speedups plus the
plan-cache statistics.  ``--smoke`` shrinks sizes/trials for CI.

The headline row — Thm-4 Columnsort quality-bench geometry,
``ColumnsortSwitch.from_beta(4096, 0.75, 3072)`` — is expected to show
a ≥ 5× per-trial speedup (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.engine import plan_cache
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.multichip_hyper import FullRevsortHyperconcentrator
from repro.switches.revsort_switch import RevsortSwitch


def _configs(smoke: bool):
    if smoke:
        return [
            ("columnsort-n256", ColumnsortSwitch.from_beta(256, 0.75, 192)),
            ("revsort-n256", RevsortSwitch(256, 192)),
            ("hyper-n256", Hyperconcentrator(256)),
        ]
    return [
        ("columnsort-n4096", ColumnsortSwitch.from_beta(4096, 0.75, 3072)),
        ("revsort-n4096", RevsortSwitch(4096, 3072)),
        ("hyper-n4096", Hyperconcentrator(4096)),
        ("fullrevsort-n4096", FullRevsortHyperconcentrator(4096)),
    ]


def _bench_switch(name, switch, trials, rng, reps=3):
    valid = rng.random((trials, switch.n)) < 0.5

    # Interleave scalar/batch repetitions and take the best time of
    # each so both paths see the same machine conditions; on a shared
    # single-CPU box wall-clock noise otherwise dominates the ratio.
    switch.setup_batch(valid[:2])  # warm the plan cache
    scalar = None
    scalar_s = batch_s = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        scalar = np.stack(
            [switch.setup(valid[b]).input_to_output for b in range(trials)]
        )
        scalar_s = min(scalar_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        batch = switch.setup_batch(valid)
        batch_s = min(batch_s, time.perf_counter() - t0)

    match = bool(np.array_equal(scalar, batch.input_to_output))
    return {
        "switch": name,
        "n": switch.n,
        "m": switch.m,
        "trials": trials,
        "reps": reps,
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "scalar_trials_per_s": trials / scalar_s,
        "batch_trials_per_s": trials / batch_s,
        "speedup": scalar_s / batch_s,
        "match": match,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument("--trials", type=int, default=64)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    args = parser.parse_args(argv)

    plan_cache().clear()
    rng = np.random.default_rng(args.seed)
    rows = [
        _bench_switch(name, switch, args.trials, rng)
        for name, switch in _configs(args.smoke)
    ]
    report = {
        "trials": args.trials,
        "seed": args.seed,
        "smoke": args.smoke,
        "rows": rows,
        "plan_cache": plan_cache().stats(),
    }

    for row in rows:
        status = "ok" if row["match"] else "MISMATCH"
        print(
            f"{row['switch']:>20}  scalar {row['scalar_trials_per_s']:8.1f}/s  "
            f"batch {row['batch_trials_per_s']:9.1f}/s  "
            f"speedup {row['speedup']:6.1f}x  [{status}]"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.out}")

    if not all(row["match"] for row in rows):
        print("ERROR: batch routing disagrees with the scalar oracle", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
