"""Experiment APP — the introduction's use case: concentrators inside a
parallel computer's routing network.

* light-load equivalence: an (n/α, m/α, α) partial concentrator stands
  in for an n-by-m perfect concentrator (Section 1);
* loss vs offered load under the three congestion policies (drop,
  buffer, drop-and-resend);
* ablation: partial (cheap) vs perfect (expensive) switches as network
  fan-in under identical traffic.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.messages.congestion import BufferPolicy, DropPolicy, ResendPolicy
from repro.network.simulate import SwitchSimulation, compare_partial_vs_perfect
from repro.network.traffic import BernoulliTraffic, HotSpotTraffic
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.perfect import PerfectConcentrator
from repro.switches.revsort_switch import RevsortSwitch


def test_app_partial_for_perfect_substitution(benchmark, report):
    n, m = 128, 96
    perfect = PerfectConcentrator(n, m)
    partial = ColumnsortSwitch(64, 4, 105)  # (256, 105, 0.914), αm' = 96

    results = benchmark(
        compare_partial_vs_perfect,
        perfect,
        partial,
        [8, 32, 64, 96, 120],
        20,
        11,
    )
    rows = [
        {
            "k offered": k,
            "perfect routed": f"{v['perfect']:.1f}",
            "partial routed": f"{v['partial']:.1f}",
            "required min(k, m)": min(k, m),
        }
        for k, v in results.items()
    ]
    report(
        "APP — (n/α, m/α, α) partial replaces n-by-m perfect (Section 1)",
        render_table(rows),
    )
    for k, v in results.items():
        assert v["perfect"] == min(k, m)
        assert v["partial"] >= min(k, m)


def test_app_loss_vs_load_policies(benchmark, report):
    def run():
        rows = []
        for p in (0.3, 0.6, 0.75, 0.9):
            row: dict[str, object] = {"offered p": p}
            for name, policy_factory in (
                ("drop", DropPolicy),
                ("buffer", lambda: BufferPolicy(capacity=256)),
                ("resend", lambda: ResendPolicy(ack_timeout=1, max_retries=16)),
            ):
                switch = RevsortSwitch(256, 192)
                traffic = BernoulliTraffic(256, p=p, seed=13)
                summary = SwitchSimulation(
                    switch, traffic, policy_factory(), seed=14
                ).run(rounds=30)
                row[f"{name} loss"] = round(summary.loss_rate, 4)
            rows.append(row)
        return rows

    rows = benchmark(run)
    report(
        "APP — loss vs offered load (Revsort n=256, m=192)",
        render_table(rows)
        + "\nShape: zero loss below the guaranteed capacity; buffering "
        "and resending never lose more than dropping.",
    )
    # Monotone in load for the drop policy.
    drop_losses = [row["drop loss"] for row in rows]
    assert drop_losses == sorted(drop_losses)
    assert drop_losses[0] == 0.0
    for row in rows:
        assert row["buffer loss"] <= row["drop loss"] + 1e-9
        assert row["resend loss"] <= row["drop loss"] + 1e-9


def test_app_hotspot_traffic(benchmark, report):
    """Spatially clustered valid bits — the adversarial input family
    for mesh nearsorters — must still respect the Lemma 2 floor."""
    def run():
        switch = ColumnsortSwitch(64, 8, 384)
        cap = switch.spec.guaranteed_capacity
        traffic = HotSpotTraffic(512, hot_fraction=0.3, p_hot=0.95, p_cold=0.02, seed=15)
        violations = 0
        rounds = 60
        for _ in range(rounds):
            messages = traffic.next_round()
            valid = np.array([m is not None for m in messages], dtype=bool)
            routed = switch.setup(valid).routed_count
            k = int(valid.sum())
            if routed < min(k, cap):
                violations += 1
        return cap, violations, rounds

    cap, violations, rounds = benchmark(run)
    report(
        "APP — hot-spot traffic through Columnsort (r=64, s=8, m=384)",
        f"guaranteed capacity {cap}; Lemma 2 floor violations: "
        f"{violations}/{rounds} (must be 0)",
    )
    assert violations == 0


def test_app_ablation_partial_vs_perfect_cost(benchmark, report):
    """Ablation: same traffic through a cheap partial concentrator and
    the perfect concentrator it replaces — identical delivered counts
    below capacity, at very different hardware prices."""
    def run():
        n, m = 1024, 768
        partial = RevsortSwitch(n, m)
        perfect = PerfectConcentrator(n, m)
        traffic_p = BernoulliTraffic(n, p=0.3, seed=16)
        traffic_q = BernoulliTraffic(n, p=0.3, seed=16)  # identical stream
        sp = SwitchSimulation(partial, traffic_p, DropPolicy(), seed=17).run(30)
        sq = SwitchSimulation(perfect, traffic_q, DropPolicy(), seed=17).run(30)
        return {
            "partial delivered": sp.delivered,
            "perfect delivered": sq.delivered,
            "partial chips": partial.chip_count,
            "partial pins/chip": partial.max_pins_per_chip,
            "perfect pins (single chip)": 2 * n,
        }

    result = benchmark(run)
    report(
        "APP — ablation: multichip partial vs monolithic perfect (n=1024, m=768)",
        render_table([result])
        + "\nAt p=0.3 (k ≈ 307 < αm = 416) both deliver every message, "
        "but the partial switch needs only Θ(√n) pins per chip.",
    )
    assert result["partial delivered"] == result["perfect delivered"]
    assert result["partial pins/chip"] < result["perfect pins (single chip)"] // 8
