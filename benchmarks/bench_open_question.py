"""Experiment OQ — Section 6's open question: how good can a p-pin,
k-stage partial concentrator be?

"The Columnsort-based construction gives us f(p) = p^{2−ε} for any
0 < ε ≤ 1.  Can we achieve f(p) = Ω(p²)?  In general, how large a
function f(p) can we achieve with k stages?"

Two measurements:

* **f(p) at two stages** — for chips with p = 2r pins, the two-stage
  Columnsort switch realises n = r·s inputs with load-ratio slack
  (s−1)²; the bench tabulates the achieved n as a function of p at a
  fixed relative slack, confirming the paper's f(p) = p^{2−ε} family.
* **ε vs stage count** — the iterated (alternating-reshuffle)
  Columnsort switch: each extra chip stage shrinks the measured
  worst-case ε, quantifying what k stages buy (the paper's open
  follow-up).  Adversarial hill-climbing sharpens the random estimate.
"""

from __future__ import annotations

import math

from repro._util.rng import default_rng
from repro.analysis.adversarial import hill_climb
from repro.analysis.tables import render_table
from repro.switches.iterated_columnsort import IteratedColumnsortSwitch


def test_oq_two_stage_f_of_p(benchmark, report):
    """The achieved f(p): inputs realisable by a 2-stage switch with
    p-pin chips at relative slack ε/m ≤ 5% (m = n/2)."""
    def run():
        rows = []
        for a in (4, 5, 6, 7, 8, 9, 10, 11, 12):  # r = 2^a, p = 2r
            r = 1 << a
            p = 2 * r
            # Largest power-of-two s | r with (s−1)² ≤ 0.05 · (r·s/2).
            best_n = None
            s = 1
            while s <= r:
                n = r * s
                if (s - 1) ** 2 <= 0.05 * (n / 2):
                    best_n = n
                s *= 2
            exponent = math.log(best_n, p)
            rows.append(
                {
                    "pins p": p,
                    "achieved n = f(p)": best_n,
                    "log_p f(p)": f"{exponent:.3f}",
                    "paper target": "p^{2−ε}, Ω(p²) open",
                }
            )
        return rows

    rows = benchmark(run)
    report(
        "Open question — f(p) for the 2-stage Columnsort switch",
        render_table(rows)
        + "\nThe exponent climbs with p toward the p^{2−ε} family "
        "(ε shrinking as p grows) but stays below the open Ω(p²) target.",
    )
    exps = [float(r["log_p f(p)"]) for r in rows]
    # Super-linear for large p, climbing, and below the open Ω(p²).
    assert exps[-1] > 1.3
    assert exps[-1] > exps[0]
    assert all(e < 2.0 for e in exps)


def test_oq_epsilon_vs_stage_count(benchmark, report):
    """More chip stages → smaller worst-case ε (random + adversarial)."""
    r, s = 32, 8
    n = r * s

    def run():
        rows = []
        for passes in (1, 2, 3, 4):
            switch = IteratedColumnsortSwitch(r, s, n, passes=passes)
            random_eps = switch.measured_epsilon(150, default_rng(5))
            adv = hill_climb(
                n,
                _output_epsilon_objective(switch),
                iterations=120,
                restarts=2,
                seed=6,
            )
            rows.append(
                {
                    "chip stages": switch.chip_stages,
                    "passes": passes,
                    "random worst eps": random_eps,
                    "adversarial eps": adv.best_score,
                    "Theorem 4 bound": switch.epsilon_bound,
                }
            )
        return rows

    rows = benchmark(run)
    report(
        f"Open question — ε vs stage count (r={r}, s={s}, n={n})",
        render_table(rows)
        + "\nEach extra stage buys a sharply smaller ε; with the "
        "Theorem 4 bound fixed at (s−1)², k stages let a p-pin chip "
        "family serve a larger n at the same load-ratio slack.",
    )
    adv = [row["adversarial eps"] for row in rows]
    assert all(a <= rows[0]["Theorem 4 bound"] for a in adv)
    assert adv[-1] < adv[0]  # stages strictly help, even adversarially
    rand = [row["random worst eps"] for row in rows]
    assert rand == sorted(rand, reverse=True)


def _output_epsilon_objective(switch: IteratedColumnsortSwitch):
    from repro.core.nearsort import nearsortedness

    def score(valid) -> int:
        seq = switch.output_sequence(
            valid.astype("int8").reshape(switch.r, switch.s)
        )
        return nearsortedness(seq)

    return score
