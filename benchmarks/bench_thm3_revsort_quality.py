"""Experiment TH3 — Theorem 3: the Revsort-based construction is an
(n, m, 1 − O(n^{3/4}/m)) partial concentrator.

Measures, across n: the worst dirty-row count after Algorithm 1 vs the
2⌈n^{1/4}⌉−1 bound, the worst row-major ε vs the dirty-window bound,
the fitted growth exponent of the measured ε (paper: ≤ 3/4), and the
zero-drop behaviour at the guaranteed capacity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.asymptotics import fit_exponent
from repro.analysis.tables import render_table
from repro.core.nearsort import nearsortedness
from repro.mesh.analysis import count_dirty_rows, is_block_sorted
from repro.mesh.revsort import revsort_nearsort
from repro.switches.revsort_switch import RevsortSwitch

from conftest import random_bits

NS = [64, 256, 1024, 4096]
TRIALS = 60


def _run(rng: np.random.Generator):
    rows = []
    worst_eps_by_n = {}
    for n in NS:
        switch = RevsortSwitch(n, n)
        side = switch.side
        worst_dirty = 0
        worst_eps = 0
        for _ in range(TRIALS):
            valid = random_bits(rng, n)
            mat = revsort_nearsort(valid.astype(np.int8).reshape(side, side))
            assert is_block_sorted(mat)
            worst_dirty = max(worst_dirty, count_dirty_rows(mat))
            worst_eps = max(worst_eps, nearsortedness(mat.reshape(-1)))
        worst_eps_by_n[n] = worst_eps
        rows.append(
            {
                "n": n,
                "worst dirty rows": worst_dirty,
                "bound 2⌈n^¼⌉−1": switch.dirty_row_bound,
                "worst eps": worst_eps,
                "eps bound": switch.epsilon_bound,
            }
        )
    eps_exponent = fit_exponent(NS, [max(worst_eps_by_n[n], 1) for n in NS])
    return rows, eps_exponent


def test_thm3_nearsorting_quality(benchmark, report, rng):
    rows, eps_exponent = benchmark(_run, rng)
    report(
        "Theorem 3 — Revsort nearsorting quality",
        render_table(rows)
        + f"\nmeasured ε growth exponent: {eps_exponent:.3f} "
        "(paper: O(n^{3/4}) → ≤ 0.75 + margin)",
    )
    for row in rows:
        assert row["worst dirty rows"] <= row["bound 2⌈n^¼⌉−1"]
        assert row["worst eps"] <= row["eps bound"]
    assert eps_exponent < 0.85


def test_thm3_guaranteed_capacity_never_drops(benchmark, report, rng):
    """At k ≤ αm = m − ε the switch must route everything."""
    def run():
        results = []
        for n, m in ((1024, 768), (4096, 3072)):
            switch = RevsortSwitch(n, m)
            cap = switch.spec.guaranteed_capacity
            valid = np.stack([random_bits(rng, n, cap) for _ in range(30)])
            batch = switch.setup_batch(valid)
            drops = int((cap - batch.routed_counts).sum())
            results.append({"n": n, "m": m, "capacity αm": cap, "drops": drops})
        return results

    rows = benchmark(run)
    report(
        "Theorem 3 — zero drops at guaranteed capacity",
        render_table(rows),
    )
    for row in rows:
        assert row["capacity αm"] > 0
        assert row["drops"] == 0


def test_thm3_epsilon_distribution(benchmark, report, rng):
    """Typical-case analysis: the ε distribution, not just its max —
    the bound is a worst-case envelope; typical inputs nearsort far
    better, which is why Figure 3's instance routes fully."""
    def run():
        n = 1024
        side = 32
        samples = []
        for _ in range(200):
            valid = random_bits(rng, n)
            mat = revsort_nearsort(valid.astype(np.int8).reshape(side, side))
            samples.append(nearsortedness(mat.reshape(-1)))
        arr = np.array(samples)
        return {
            "n": n,
            "median eps": int(np.median(arr)),
            "p90 eps": int(np.quantile(arr, 0.9)),
            "max eps": int(arr.max()),
            "Theorem 3 bound": RevsortSwitch(n, n).epsilon_bound,
        }

    row = benchmark(run)
    report(
        "Theorem 3 — ε distribution (200 random inputs, n=1024)",
        render_table([row])
        + "\nTypical ε sits an order of magnitude under the bound; the "
        "guarantee is a worst-case envelope, not a typical cost.",
    )
    assert row["median eps"] * 4 <= row["Theorem 3 bound"]
    assert row["max eps"] <= row["Theorem 3 bound"]


def test_thm3_setup_throughput(benchmark):
    """Timing: one full 4096-input switch setup (pytest-benchmark)."""
    switch = RevsortSwitch(4096, 3072)
    rng = np.random.default_rng(7)
    valid = rng.random(4096) < 0.5
    benchmark(switch.setup, valid)


def test_thm3_setup_batch_throughput(benchmark):
    """Engine path: 256 trials per call through the compiled plan —
    compare per-trial time against test_thm3_setup_throughput."""
    switch = RevsortSwitch(4096, 3072)
    rng = np.random.default_rng(7)
    valid = rng.random((256, 4096)) < 0.5
    switch.setup_batch(valid)  # warm the plan cache outside the timer
    benchmark(switch.setup_batch, valid)
