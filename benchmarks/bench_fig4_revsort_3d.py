"""Experiment F4 — Figure 4: the 3-D packaging of the Revsort switch.

Three stacks of √n boards; stage-2 boards carry a hyperconcentrator
chip plus a rev(i)-hardwired barrel shifter; exactly two board types;
volume Θ(n^{3/2}); barrel pins 2√n + ⌈(lg n)/2⌉.
"""

from __future__ import annotations

from repro._util.bits import bit_reverse, ilg
from repro.analysis.asymptotics import fit_exponent
from repro.analysis.tables import render_table
from repro.hardware.package import revsort_packaging_3d
from repro.switches.revsort_switch import RevsortSwitch

NS = [1 << t for t in (8, 10, 12, 14, 16)]


def _run():
    packagings = {n: revsort_packaging_3d(RevsortSwitch(n, n // 2)) for n in NS}
    exponent = fit_exponent(NS, [p.volume for p in packagings.values()])
    return packagings, exponent


def test_fig4_revsort_packaging(benchmark, report):
    packagings, exponent = benchmark(_run)

    n = 1 << 12
    pkg = packagings[n]
    switch = RevsortSwitch(n, n // 2)
    side = switch.side

    rows = [
        {"quantity": "stacks", "paper": 3, "measured": len(pkg.stacks)},
        {"quantity": "boards per stack", "paper": "√n = 64", "measured": pkg.stacks[0].board_count},
        {"quantity": "board types", "paper": 2, "measured": len(pkg.board_types())},
        {
            "quantity": "chips (3√n hyper + √n barrel)",
            "paper": 4 * side,
            "measured": pkg.chip_count,
        },
        {
            "quantity": "max pins per chip",
            "paper": f"2√n + ⌈(lg n)/2⌉ = {2 * side + 6}",
            "measured": switch.max_pins_per_chip,
        },
        {
            "quantity": "volume exponent over n sweep",
            "paper": 1.5,
            "measured": f"{exponent:.3f}",
        },
    ]

    shifters = switch.barrel_shifters
    q = ilg(side)
    hardwired_ok = all(
        s.shift == bit_reverse(i, q) for i, s in enumerate(shifters)
    )
    rows.append(
        {
            "quantity": "barrel shift amounts hardwired to rev(i)",
            "paper": "yes",
            "measured": "yes" if hardwired_ok else "NO",
        }
    )

    report(
        f"Figure 4 — 3-D Revsort packaging (shown at n={n})",
        render_table(rows),
    )

    assert len(pkg.stacks) == 3
    assert pkg.board_types() == {"hyper-only", "hyper+barrel"}
    assert pkg.chip_count == 4 * side
    assert switch.max_pins_per_chip == 2 * side + 6
    assert abs(exponent - 1.5) < 0.1
    assert hardwired_ok


def test_fig4_stage2_boards_have_shifters(benchmark, report):
    pkg = benchmark(revsort_packaging_3d, RevsortSwitch(256, 128))
    stage2 = pkg.stacks[1]
    assert stage2.name == "stage2"
    assert all(b.board_type == "hyper+barrel" for b in stage2.boards)
    assert all(b.chip_count == 2 for b in stage2.boards)
    report(
        "Figure 4 — stage-2 board inventory (n=256)",
        f"{stage2.board_count} boards, each: hyperconcentrator + barrel "
        f"shifter; stack volume {stage2.volume}",
    )
