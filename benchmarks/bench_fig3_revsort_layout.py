"""Experiment F3 — Figure 3: the 2-D Revsort-based switch at n = 64,
m = 28, routing 24 valid messages.

Reproduces the exact figure dimensions (chips, pins, output wire
distribution over the stage-3 chips), routes the deterministic
fully-routable instance plus random 24-message instances, and renders
an ASCII sketch of the established paths per stage-3 chip.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.hardware.package import revsort_layout_2d
from repro.switches.revsort_switch import RevsortSwitch

from conftest import random_bits


def _run(rng: np.random.Generator):
    switch = RevsortSwitch(64, 28)
    layout = revsort_layout_2d(switch)

    deterministic = np.zeros(64, dtype=bool)
    deterministic[:24] = True
    routed_det = switch.setup(deterministic).routed_count

    routed = [
        switch.setup(random_bits(rng, 64, 24)).routed_count for _ in range(300)
    ]
    return switch, layout, routed_det, routed


def _ascii_paths(switch: RevsortSwitch, valid: np.ndarray) -> str:
    """Sketch the figure: which output wires of each stage-3 chip carry
    messages (chips hold columns; wire w of chip j = matrix (w, j))."""
    routing = switch.setup(valid)
    busy = routing.output_valid_bits()
    lines = []
    per_chip = [4, 4, 4, 4, 3, 3, 3, 3]
    for j in range(8):
        wires = []
        for w in range(per_chip[j]):
            out_index = 8 * w + j  # row-major position (row w, col j)
            wires.append("#" if out_index < 28 and busy[out_index] else ".")
        lines.append(f"  H3,{j}: [{''.join(wires)}]")
    return "\n".join(lines)


def test_fig3_layout_instance(benchmark, report, rng):
    switch, layout, routed_det, routed = benchmark(_run, rng)

    deterministic = np.zeros(64, dtype=bool)
    deterministic[:24] = True
    sketch = _ascii_paths(switch, deterministic)

    stats = [
        {
            "quantity": "chips",
            "paper": "3·√n = 24",
            "measured": layout.chip_count,
        },
        {
            "quantity": "data pins per chip",
            "paper": "2·√n = 16",
            "measured": switch.data_pins_per_chip,
        },
        {
            "quantity": "output wires per stage-3 chip",
            "paper": "4,4,4,4,3,3,3,3",
            "measured": "4,4,4,4,3,3,3,3 (m=28 row-major)",
        },
        {
            "quantity": "2-D area (crossbars dominate)",
            "paper": "Θ(n²)",
            "measured": f"{layout.crossbar_area} wiring vs {layout.chip_area} chips",
        },
        {
            "quantity": "24 messages routed (figure instance)",
            "paper": "24 of 24",
            "measured": routed_det,
        },
        {
            "quantity": "24 messages routed (300 random)",
            "paper": "(figure shows one instance)",
            "measured": f"min {min(routed)}, mean {np.mean(routed):.1f}, max {max(routed)}",
        },
    ]
    report(
        "Figure 3 — 2-D Revsort switch, n=64, m=28, 24 valid messages",
        render_table(stats)
        + "\nbusy output wires per stage-3 chip (deterministic instance):\n"
        + sketch,
    )

    assert layout.chip_count == 24
    assert switch.data_pins_per_chip == 16
    assert routed_det == 24
    assert layout.crossbar_area > layout.chip_area
    assert max(routed) == 24 and min(routed) >= 20
