"""Experiment F8 — Figure 8: transposing w wires from vertical to
horizontal alignment uses Θ(w²) volume, wiring only.
"""

from __future__ import annotations

from repro.analysis.asymptotics import fit_exponent
from repro.analysis.tables import render_table
from repro.hardware.package import InterstackConnector

WS = [2, 4, 8, 16, 32, 64, 128]


def _run():
    connectors = [InterstackConnector(w) for w in WS]
    exponent = fit_exponent(WS, [c.volume for c in connectors])
    return connectors, exponent


def test_fig8_transposition_volume(benchmark, report):
    connectors, exponent = benchmark(_run)
    rows = [
        {"wires w": c.wires, "volume": c.volume, "w²": c.wires**2}
        for c in connectors
    ]
    report(
        "Figure 8 — w-wire transposition volume",
        render_table(rows)
        + f"\nfitted exponent {exponent:.3f} (paper: Θ(w²) → 2.0); "
        "connectors contain only wiring, no active components.",
    )
    assert abs(exponent - 2.0) < 1e-9
    for c in connectors:
        assert c.volume == c.wires**2
