"""Experiment WC — weak-chip ablation.

The paper's chips fully sort their rows/columns.  What if the per-chip
sorter were cheaper — a truncated odd-even transposition network with
T < w rounds?  This bench sweeps T and measures the switch-level
nearsorting quality, quantifying how much of Theorems 3/4 rests on the
chips being *complete* sorters (answer: everything — quality decays
smoothly and the theorem bounds only hold at full strength).
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import default_rng
from repro.analysis.tables import render_table
from repro.core.nearsort import nearsortedness
from repro.mesh.oddeven import weak_columnsort_pass, weak_revsort_pass
from repro.mesh.revsort import revsort_epsilon_bound


def test_wc_revsort_quality_vs_chip_strength(benchmark, report):
    side = 16
    n = side * side

    def run():
        rng = default_rng(71)
        rows = []
        for rounds in (0, 2, 4, 8, 12, 16):
            worst = 0
            for _ in range(80):
                m = (rng.random((side, side)) < rng.random()).astype(np.int8)
                out = weak_revsort_pass(m, rounds)
                worst = max(worst, nearsortedness(out.reshape(-1)))
            rows.append(
                {
                    "odd-even rounds per chip": rounds,
                    "chip fully sorts?": "yes" if rounds >= side else "no",
                    "worst eps": worst,
                    "Theorem 3 bound": revsort_epsilon_bound(n),
                }
            )
        return rows

    rows = benchmark(run)
    report(
        f"Weak-chip ablation — Revsort switch quality vs chip strength (n={n})",
        render_table(rows)
        + "\nThe Theorem 3 guarantee needs complete per-chip sorting; "
        "truncated chips degrade ε smoothly toward the unsorted input.",
    )
    eps = [row["worst eps"] for row in rows]
    assert all(a >= b for a, b in zip(eps, eps[1:]))  # monotone improvement
    assert rows[-1]["worst eps"] <= rows[-1]["Theorem 3 bound"]
    assert rows[0]["worst eps"] > 4 * rows[-1]["worst eps"]


def test_wc_columnsort_quality_vs_chip_strength(benchmark, report):
    r, s = 32, 4
    n = r * s

    def run():
        rng = default_rng(72)
        rows = []
        for rounds in (0, 4, 8, 16, 32):
            worst = 0
            for _ in range(80):
                m = (rng.random((r, s)) < rng.random()).astype(np.int8)
                out = weak_columnsort_pass(m, rounds)
                worst = max(worst, nearsortedness(out.reshape(-1)))
            rows.append(
                {
                    "odd-even rounds per chip": rounds,
                    "chip fully sorts?": "yes" if rounds >= r else "no",
                    "worst eps": worst,
                    "(s−1)² bound": (s - 1) ** 2,
                }
            )
        return rows

    rows = benchmark(run)
    report(
        f"Weak-chip ablation — Columnsort switch quality (r={r}, s={s})",
        render_table(rows),
    )
    eps = [row["worst eps"] for row in rows]
    assert all(a >= b for a, b in zip(eps, eps[1:]))
    assert rows[-1]["worst eps"] <= (s - 1) ** 2
    assert rows[0]["worst eps"] > (s - 1) ** 2  # weak chips break the bound
