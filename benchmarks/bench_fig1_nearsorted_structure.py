"""Experiment F1 — Figure 1: the structure of an ε-nearsorted 0/1
sequence (clean ≥ k−ε 1s, dirty ≤ 2ε window, clean ≥ n−k−ε 0s).

Lemma 1 is validated in both directions over randomly generated
ε-nearsorted sequences across the full k range.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.core.nearsort import (
    decompose_dirty_window,
    lemma1_epsilon_from_window,
    lemma1_window_from_epsilon,
    nearsortedness,
    random_epsilon_nearsorted,
)

N = 1024
EPSILONS = (0, 4, 16, 64)
TRIALS_PER_K = 4


def _run(rng: np.random.Generator):
    rows = []
    for eps in EPSILONS:
        worst_violation = 0
        worst_dirty = 0
        samples = 0
        for k in range(0, N + 1, 32):
            for _ in range(TRIALS_PER_K):
                seq = random_epsilon_nearsorted(N, k, eps, rng)
                samples += 1
                d = decompose_dirty_window(seq)
                min_ones, max_dirty, min_zeros = lemma1_window_from_epsilon(
                    N, k, eps
                )
                # Forward direction (⇒): the guaranteed structure.
                assert d.clean_ones >= min_ones
                assert d.dirty_length <= max_dirty
                assert d.clean_zeros >= min_zeros
                # Backward direction (⇐): recover an ε from the window
                # that the measured ε never exceeds.
                assert nearsortedness(seq) <= max(
                    lemma1_epsilon_from_window(d), 0
                )
                worst_dirty = max(worst_dirty, d.dirty_length)
                worst_violation = max(
                    worst_violation, nearsortedness(seq) - eps
                )
        rows.append(
            {
                "epsilon": eps,
                "samples": samples,
                "max dirty window": worst_dirty,
                "2*eps bound": 2 * eps,
                "eps violations": worst_violation,
            }
        )
    return rows


def test_fig1_lemma1_structure(benchmark, report, rng):
    rows = benchmark(_run, rng)
    report(
        f"Figure 1 / Lemma 1 — ε-nearsorted structure (n={N})",
        render_table(rows)
        + "\nPaper: dirty window ≤ 2ε with clean 1s/0s outside — holds "
        "for every sample in both directions.",
    )
    for row in rows:
        assert row["max dirty window"] <= row["2*eps bound"]
        assert row["eps violations"] <= 0
