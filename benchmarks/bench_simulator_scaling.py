"""Experiment PERF — scaling of the simulators themselves.

Not a paper artifact: pytest-benchmark timings of the library's hot
paths across sizes, so performance regressions in the simulation
substrate are caught alongside the scientific results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.multichip_hyper import FullRevsortHyperconcentrator
from repro.switches.revsort_switch import RevsortSwitch


def _valid(n: int) -> np.ndarray:
    rng = np.random.default_rng(81)
    return rng.random(n) < 0.5


@pytest.mark.parametrize("n", [1024, 4096, 16384])
def test_perf_revsort_setup(benchmark, n):
    switch = RevsortSwitch(n, (3 * n) // 4)
    valid = _valid(n)
    benchmark(switch.setup, valid)


@pytest.mark.parametrize("n", [1024, 4096, 16384])
def test_perf_columnsort_setup(benchmark, n):
    switch = ColumnsortSwitch.from_beta(n, 0.75, (3 * n) // 4)
    valid = _valid(n)
    benchmark(switch.setup, valid)


@pytest.mark.parametrize("n", [4096, 65536])
def test_perf_single_chip_setup(benchmark, n):
    switch = Hyperconcentrator(n)
    valid = _valid(n)
    benchmark(switch.setup, valid)


def test_perf_full_revsort_hyper_setup(benchmark):
    switch = FullRevsortHyperconcentrator(4096)
    valid = _valid(4096)
    benchmark(switch.setup, valid)


def test_perf_gate_netlist_build(benchmark):
    from repro.gates.hyperconc_gates import build_hyperconcentrator

    benchmark(build_hyperconcentrator, 32)


def test_perf_gate_netlist_evaluate(benchmark):
    from repro.gates.evaluate import evaluate
    from repro.gates.hyperconc_gates import build_hyperconcentrator

    circuit = build_hyperconcentrator(32, with_datapath=False)
    rng = np.random.default_rng(82)
    batch = rng.random((64, 32)) < 0.5
    benchmark(evaluate, circuit, batch)


@pytest.mark.parametrize("n", [1024, 4096])
def test_perf_revsort_setup_batch(benchmark, n):
    """Engine path: 128 trials per call (vs test_perf_revsort_setup)."""
    switch = RevsortSwitch(n, (3 * n) // 4)
    rng = np.random.default_rng(81)
    valid = rng.random((128, n)) < 0.5
    switch.setup_batch(valid)  # warm the plan cache outside the timer
    benchmark(switch.setup_batch, valid)


@pytest.mark.parametrize("n", [1024, 4096])
def test_perf_columnsort_setup_batch(benchmark, n):
    switch = ColumnsortSwitch.from_beta(n, 0.75, (3 * n) // 4)
    rng = np.random.default_rng(81)
    valid = rng.random((128, n)) < 0.5
    switch.setup_batch(valid)
    benchmark(switch.setup_batch, valid)


def test_perf_gate_netlist_evaluate_packed(benchmark):
    """Bit-parallel path: 512 trials in 8 uint64 words per wire."""
    from repro.gates.evaluate import evaluate_packed
    from repro.gates.hyperconc_gates import build_hyperconcentrator

    circuit = build_hyperconcentrator(32, with_datapath=False)
    rng = np.random.default_rng(82)
    batch = rng.random((512, 32)) < 0.5
    benchmark(evaluate_packed, circuit, batch)
