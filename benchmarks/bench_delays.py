"""Experiment D1 — the gate-delay claims.

* single chip: ``2⌈lg n⌉ + O(1)`` (hardware model) and the measured
  critical paths of the gate-level rank-crossbar netlist;
* Revsort switch: ``3 lg n + O(1)``;
* Columnsort switch: ``4β lg n + O(1)``.
"""

from __future__ import annotations

import math

from repro.analysis.asymptotics import fit_log_slope
from repro.analysis.tables import render_table
from repro.gates.hyperconc_gates import GateHyperconcentrator
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.revsort_switch import RevsortSwitch


def test_d1_gate_level_chip_depths(benchmark, report):
    """Measured netlist critical paths vs the paper's idealised chip."""
    def run():
        rows = []
        for n in (4, 8, 16, 32, 64):
            gate = GateHyperconcentrator(n, with_datapath=True)
            rows.append(
                {
                    "n": n,
                    "components": gate.component_count,
                    "datapath delay": gate.datapath_delay(),
                    "paper 2 lg n": 2 * math.ceil(math.log2(n)),
                    "setup depth": gate.setup_delay(),
                }
            )
        return rows

    rows = benchmark(run)
    report(
        "D1 — gate-level hyperconcentrator chip (measured netlist)",
        render_table(rows)
        + "\nDatapath = 1 + ⌈lg n⌉ (AND + OR tree): same Θ(lg n) family "
        "as the paper's 2 lg n; components track Θ(n²).",
    )
    for row in rows:
        n = row["n"]
        assert row["datapath delay"] == 1 + math.ceil(math.log2(n))
        assert row["datapath delay"] <= row["paper 2 lg n"] + 1
    # Θ(n²) components: quadrupling between successive doublings.
    assert 3.0 < rows[-1]["components"] / rows[-2]["components"] < 6.0


def test_d1_revsort_delay_slope(benchmark, report):
    ns = [1 << t for t in (6, 8, 10, 12, 14, 16)]
    delays = benchmark(
        lambda: [RevsortSwitch(n, n // 2).gate_delays for n in ns]
    )
    slope, const = fit_log_slope(ns, delays)
    rows = [
        {"n": n, "gate delays": d, "3 lg n": 3 * int(math.log2(n))}
        for n, d in zip(ns, delays)
    ]
    report(
        "D1 — Revsort switch delay: paper 3 lg n + O(1)",
        render_table(rows) + f"\nfitted: {slope:.2f}·lg n + {const:.1f}",
    )
    assert abs(slope - 3.0) < 0.1


def test_d1_columnsort_delay_slopes(benchmark, report):
    cases = {
        0.5: (8, 10, 12, 14, 16),
        0.625: (8, 16, 24),
        0.75: (8, 12, 16, 20),
        1.0: (6, 8, 10, 12),
    }

    def run():
        out = {}
        for beta, ts in cases.items():
            ns = [1 << t for t in ts]
            delays = [
                ColumnsortSwitch.from_beta(n, beta, n // 2).gate_delays
                for n in ns
            ]
            out[beta] = fit_log_slope(ns, delays)
        return out

    fits = benchmark(run)
    rows = [
        {
            "beta": beta,
            "paper slope 4β": 4 * beta,
            "fitted slope": f"{fits[beta][0]:.2f}",
            "fitted const": f"{fits[beta][1]:.1f}",
        }
        for beta in cases
    ]
    report("D1 — Columnsort switch delay: paper 4β lg n + O(1)", render_table(rows))
    for beta in cases:
        assert abs(fits[beta][0] - 4 * beta) < 0.15, beta


def test_d1_crossover_revsort_vs_columnsort(benchmark, report):
    """Table 1's delay ordering: Columnsort β=1/2 < Revsort ≈
    Columnsort β=3/4 < Columnsort β=1 at the same n."""
    def run():
        n = 1 << 12
        return {
            "Columnsort b=0.5": ColumnsortSwitch.from_beta(n, 0.5, n // 2).gate_delays,
            "Revsort": RevsortSwitch(n, n // 2).gate_delays,
            "Columnsort b=0.75": ColumnsortSwitch.from_beta(n, 0.75, n // 2).gate_delays,
            "Columnsort b=1.0": ColumnsortSwitch.from_beta(n, 1.0, n // 2).gate_delays,
        }

    delays = benchmark(run)
    report(
        "D1 — delay ordering at n=4096",
        render_table([{"switch": k, "gate delays": v} for k, v in delays.items()]),
    )
    assert delays["Columnsort b=0.5"] < delays["Revsort"]
    assert abs(delays["Revsort"] - delays["Columnsort b=0.75"]) <= 8
    assert delays["Columnsort b=0.75"] < delays["Columnsort b=1.0"]
