"""Experiment ABL — Section 1's chip-technology ablation.

The paper describes two single-switch hyperconcentrator technologies:

* the **combinational** Cormen–Leiserson chip (Θ(n²) area, 2 lg n gate
  delays, 2n data pins, trivially partitioned only at Ω((n/p)²) chips);
* the **prefix + butterfly** switch (Θ(n^{3/2}) volume, O(n lg n)
  chips, as few as 4 data pins per chip, *not* combinational).

This bench verifies the two are functionally identical, tabulates the
cost tradeoff, and adds the library's own third point — the multichip
partial concentrators — showing why the paper prefers them: Θ(n/p)
chips with combinational control, at the price of a partial (rather
than hyper) concentration guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.prefix_butterfly import PrefixButterflyHyperconcentrator
from repro.switches.revsort_switch import RevsortSwitch

from conftest import random_bits


def test_abl_functional_equivalence(benchmark, report, rng):
    """Crossbar and prefix-butterfly implement the same function."""
    def run():
        mismatches = 0
        for n in (16, 64, 256):
            crossbar = Hyperconcentrator(n)
            butterfly = PrefixButterflyHyperconcentrator(n)
            for _ in range(40):
                valid = random_bits(rng, n)
                a = crossbar.setup(valid).input_to_output
                b = butterfly.setup(valid).input_to_output
                if not np.array_equal(a, b):
                    mismatches += 1
        return mismatches

    mismatches = benchmark(run)
    report(
        "Ablation — crossbar vs prefix+butterfly functional equivalence",
        f"mismatches across 120 random patterns at n ∈ {{16, 64, 256}}: "
        f"{mismatches} (must be 0)",
    )
    assert mismatches == 0


def test_abl_cost_tradeoff(benchmark, report):
    def run():
        rows = []
        for n in (256, 1024, 4096):
            crossbar = Hyperconcentrator(n)
            butterfly = PrefixButterflyHyperconcentrator(n)
            partial = RevsortSwitch(n, (3 * n) // 4)
            rows.append(
                {
                    "n": n,
                    "crossbar pins (1 chip)": crossbar.data_pins,
                    "butterfly pins/chip": butterfly.data_pins_per_chip,
                    "butterfly chips": butterfly.chip_count,
                    "butterfly ctrl bits": butterfly.control_bits,
                    "partial chips (3√n)": partial.chip_count,
                    "partial pins/chip": partial.max_pins_per_chip,
                }
            )
        return rows

    rows = benchmark(run)
    report(
        "Ablation — hyperconcentrator technologies vs the multichip partial switch",
        render_table(rows)
        + "\nPaper's Section 1 argument reproduced: the monolithic chip "
        "needs 2n pins; the butterfly packaging needs only 4 pins/chip "
        "but O(n lg n) chips and sequential control; the partial "
        "concentrator gets Θ(n/p) chips with combinational control by "
        "relaxing the guarantee to (n, m, α).",
    )
    for row in rows:
        n = row["n"]
        assert row["crossbar pins (1 chip)"] == 2 * n
        assert row["butterfly pins/chip"] == 4
        assert row["butterfly chips"] > row["partial chips (3√n)"]
        assert row["partial pins/chip"] < row["crossbar pins (1 chip)"]


def test_abl_setup_latency(benchmark, report):
    """The sequential-control cost in cycles: the combinational chip
    settles within the setup cycle; the prefix+butterfly controller
    needs 2⌈lg n⌉ + 2 cycles before streaming can begin."""
    from repro.switches.sequential_control import setup_latency_comparison

    rows = benchmark(setup_latency_comparison, [16, 64, 256, 1024])
    report(
        "Ablation — setup latency: combinational vs sequential control",
        render_table(rows)
        + "\nThe paper's point quantified: the butterfly's cheap pins "
        "cost a logarithmic setup pipeline and latched control state.",
    )
    for row in rows:
        assert row["prefix+butterfly setup cycles"] > row["combinational chip setup cycles"]


def test_abl_arbitration_fairness(benchmark, report, rng):
    """Design ablation inside the chip family: fixed low-index priority
    starves high inputs under sustained overload; a rotating-priority
    variant flattens the loss profile at identical total loss."""
    from repro.switches.arbitration import (
        RotatingPriorityConcentrator,
        starvation_profile,
    )
    from repro.switches.perfect import PerfectConcentrator

    def run():
        import numpy as np

        rng_a = np.random.default_rng(61)
        rng_b = np.random.default_rng(61)
        fixed = starvation_profile(
            PerfectConcentrator(16, 8), rounds=300, load=0.9, rng=rng_a
        )
        rotating = starvation_profile(
            RotatingPriorityConcentrator(16, 8), rounds=300, load=0.9, rng=rng_b
        )
        return fixed, rotating

    fixed, rotating = benchmark(run)
    report(
        "Ablation — arbitration fairness under 90% load (N=16, m=8)",
        render_table(
            [
                {
                    "policy": "fixed priority",
                    "min losses/input": int(fixed.min()),
                    "max losses/input": int(fixed.max()),
                    "total": int(fixed.sum()),
                },
                {
                    "policy": "rotating priority",
                    "min losses/input": int(rotating.min()),
                    "max losses/input": int(rotating.max()),
                    "total": int(rotating.sum()),
                },
            ]
        )
        + "\nSame total loss, radically different distribution: the "
        "rotation spreads congestion losses evenly.",
    )
    assert fixed.sum() == rotating.sum()
    assert fixed.max() - fixed.min() > 3 * (rotating.max() - rotating.min())


def test_abl_combinational_flag(benchmark, report):
    def run():
        return {
            "crossbar": True,  # pure gates, no latched state
            "butterfly": PrefixButterflyHyperconcentrator(64).is_combinational,
        }

    flags = benchmark(run)
    report(
        "Ablation — combinational control",
        f"crossbar combinational: {flags['crossbar']}; "
        f"prefix+butterfly combinational: {flags['butterfly']} "
        "(matches the paper: 'this switch is not combinational')",
    )
    assert flags["crossbar"] and not flags["butterfly"]
