"""Experiment F2 — Figure 2: the converse of Lemma 2 fails.

Construct, for a grid of (n, m, ε), the Figure 2 output pattern of a
legitimate (n, m, 1 − ε/m) partial concentrator whose valid bits are
*not* ε-nearsorted, and measure by how much the nearsortedness exceeds
ε (the "gap").
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.concentration import figure2_counterexample
from repro.core.nearsort import nearsortedness

CASES = [
    (64, 16, 2),
    (128, 32, 4),
    (256, 64, 8),
    (1024, 128, 16),
    (4096, 256, 32),
]


def _run():
    rows = []
    for n, m, eps in CASES:
        k, bits = figure2_counterexample(n, m, eps)
        measured = nearsortedness(bits)
        routed = int(bits[:m].sum())
        rows.append(
            {
                "n": n,
                "m": m,
                "eps": eps,
                "k": k,
                "routed (first m)": routed,
                "alpha*m floor": m - eps,
                "measured eps": measured,
                "gap over eps": measured - eps,
            }
        )
    return rows


def test_fig2_converse_fails(benchmark, report):
    rows = benchmark(_run)
    report(
        "Figure 2 — partial concentration does not imply ε-nearsorting",
        render_table(rows)
        + "\nPaper: whenever k + ε < (n+m)/2 the straggler messages sit "
        "far past the sorted boundary; every row has a positive gap "
        "while still meeting the (n, m, 1−ε/m) output contract.",
    )
    for row in rows:
        assert row["routed (first m)"] >= row["alpha*m floor"]
        assert row["gap over eps"] > 0
