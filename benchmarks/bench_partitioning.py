"""Experiment PART — Section 1's motivating claim:

"Partitioning this hyperconcentrator switch among multiple chips with
p pins each requires Ω((n/p)²) chips … Yet, given chips with p pins,
we can partition n-input partial concentrator switches using only
Θ(n/p) chips."
"""

from __future__ import annotations

from repro.analysis.asymptotics import fit_exponent
from repro.analysis.tables import render_table
from repro.hardware.partition import (
    columnsort_partition,
    monolithic_partition,
    partition_comparison,
)


def test_part_quadratic_vs_linear(benchmark, report):
    """Fit the chip-count exponent in 1/p at fixed n."""
    n = 1 << 14
    budgets = [256, 512, 1024, 2048]

    def run():
        mono = [monolithic_partition(n, p).chips for p in budgets]
        col = [columnsort_partition(n, p).chips for p in budgets]
        inv = [1.0 / p for p in budgets]
        # chips ~ (1/p)^x: x = 2 monolithic, x = 1 partial.
        mono_exp = fit_exponent([int(1e6 * v) for v in inv], mono)
        col_exp = fit_exponent([int(1e6 * v) for v in inv], col)
        return mono, col, mono_exp, col_exp

    mono, col, mono_exp, col_exp = benchmark(run)
    rows = [
        {
            "pin budget p": p,
            "monolithic chips": m,
            "Columnsort chips": c,
        }
        for p, m, c in zip(budgets, mono, col)
    ]
    report(
        f"Section 1 — partitioning cost at n={n}",
        render_table(rows)
        + f"\nfitted exponents in 1/p: monolithic {mono_exp:.2f} "
        f"(paper: 2), partial concentrator {col_exp:.2f} (paper: 1)",
    )
    assert abs(mono_exp - 2.0) < 0.1
    assert abs(col_exp - 1.0) < 0.1


def test_part_comparison_table(benchmark, report):
    rows = benchmark(partition_comparison, 1 << 12, [96, 144, 192, 256, 512])
    report(
        "Section 1 — partitioning comparison (n=4096)",
        render_table(rows)
        + "\nThe paper's designs enter once the budget covers their "
        "fixed chip pinout and then dominate the monolithic split.",
    )
    feasible = [r for r in rows if isinstance(r["Columnsort chips"], int)]
    assert feasible, "some budget must admit the Columnsort design"
    for row in feasible:
        assert row["monolithic chips"] > row["Columnsort chips"]
