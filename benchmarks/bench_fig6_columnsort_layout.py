"""Experiment F6 — Figure 6: the 2-D Columnsort-based switch at
n = 32, m = 18 (r = 8, s = 4), routing 14 valid messages.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.hardware.package import columnsort_layout_2d
from repro.switches.columnsort_switch import ColumnsortSwitch

from conftest import random_bits


def _run(rng: np.random.Generator):
    switch = ColumnsortSwitch(8, 4, 18)
    layout = columnsort_layout_2d(switch)
    routed = [
        switch.setup(random_bits(rng, 32, 14)).routed_count for _ in range(400)
    ]
    return switch, layout, routed


def test_fig6_layout_instance(benchmark, report, rng):
    switch, layout, routed = benchmark(_run, rng)

    # Output wire distribution: m=18 row-major over 4 column chips.
    per_chip = [0] * 4
    for w in range(18):
        per_chip[w % 4] += 1

    rows = [
        {"quantity": "underlying matrix", "paper": "8 × 4", "measured": f"{switch.r} × {switch.s}"},
        {"quantity": "chips (2 stages of s)", "paper": 8, "measured": layout.chip_count},
        {"quantity": "data pins per chip (2r)", "paper": 16, "measured": switch.data_pins_per_chip},
        {
            "quantity": "output wires per stage-2 chip",
            "paper": "5,5,4,4 (first five of H2,0/H2,1, four of H2,2/H2,3)",
            "measured": ",".join(map(str, per_chip)),
        },
        {"quantity": "2-D area", "paper": "O(n²) crossbar", "measured": layout.crossbar_area},
        {
            "quantity": "ε = (s−1)²",
            "paper": 9,
            "measured": switch.epsilon_bound,
        },
        {
            "quantity": "14 messages routed (400 random)",
            "paper": "figure shows a fully-routed instance",
            "measured": f"min {min(routed)}, mean {np.mean(routed):.1f}, max {max(routed)}",
        },
    ]
    report(
        "Figure 6 — 2-D Columnsort switch, n=32, m=18, 14 valid messages",
        render_table(rows),
    )

    assert layout.chip_count == 8
    assert switch.data_pins_per_chip == 16
    assert per_chip == [5, 5, 4, 4]
    assert switch.epsilon_bound == 9
    # Fully-routed 14-message instances exist (the figure draws one)
    # and no instance drops below the Lemma 2 floor m − ε = 9.
    assert max(routed) == 14
    assert min(routed) >= 9
