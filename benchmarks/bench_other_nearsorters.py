"""Experiment NS — Section 6's final open question: Lemma 2 applied to
non-mesh ε-nearsorters.

"There may be ε-nearsorters based on networks other than the
two-dimensional mesh to which we can apply Lemma 2 … What types of
partial concentrator switches can we build by applying Lemma 2 to
other ε-nearsorters?"

Concrete exploration with Batcher's bitonic network:

1. the full network is a hyperconcentrator, but its depth
   lg n (lg n + 1)/2 is quadratically worse (in lg n) than the
   dedicated chip — quantifying why the paper builds its own;
2. *truncated* bitonic prefixes are poor nearsorters: measured ε stays
   Θ(n) until the final lg n merge stages, so Lemma 2 buys almost
   nothing before nearly the full depth — a negative result that
   reinforces the paper's choice of mesh-based nearsorters, which
   reach small ε at constant chip-stage counts.
"""

from __future__ import annotations

import math

from repro._util.rng import default_rng
from repro.analysis.tables import render_table
from repro.switches.bitonic import (
    BitonicHyperconcentrator,
    TruncatedBitonicSwitch,
    bitonic_stages,
)
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator


def test_ns_bitonic_depth_vs_chip(benchmark, report):
    def run():
        rows = []
        for n in (16, 64, 256, 1024):
            q = int(math.log2(n))
            bitonic = BitonicHyperconcentrator(n)
            chip = Hyperconcentrator(n)
            rows.append(
                {
                    "n": n,
                    "bitonic stages": bitonic.comparator_stages,
                    "bitonic delays": bitonic.gate_delays,
                    "chip delays 2⌈lg n⌉+O(1)": chip.gate_delays,
                    "ratio": f"{bitonic.gate_delays / chip.gate_delays:.1f}x",
                }
            )
        return rows

    rows = benchmark(run)
    report(
        "Other nearsorters — bitonic network vs the dedicated chip",
        render_table(rows)
        + "\nThe sorting-network route costs Θ(lg² n) depth against the "
        "chip's Θ(lg n): the gap widens with n, matching the paper's "
        "rationale for a purpose-built hyperconcentrator.",
    )
    ratios = [float(r["ratio"].rstrip("x")) for r in rows]
    assert ratios == sorted(ratios)  # gap grows with n
    assert ratios[-1] > 2.0


def test_ns_truncated_bitonic_epsilon_profile(benchmark, report):
    n = 64
    full = len(bitonic_stages(n))

    def run():
        rows = []
        for stages in (0, full // 3, 2 * full // 3, full - 3, full - 1, full):
            eps = TruncatedBitonicSwitch.calibrate_epsilon(
                n, stages, 200, default_rng(4)
            )
            rows.append(
                {
                    "stages": stages,
                    "of": full,
                    "measured eps": eps,
                    "Lemma 2 alpha (m=48)": f"{max(0.0, 1 - eps / 48):.3f}",
                }
            )
        return rows

    rows = benchmark(run)
    report(
        f"Other nearsorters — truncated bitonic ε profile (n={n})",
        render_table(rows)
        + "\nε stays ~n through two-thirds of the network and collapses "
        "only in the final merge: truncation is not a useful nearsorter "
        "family, unlike the constant-stage mesh constructions.",
    )
    two_thirds = rows[2]["measured eps"]
    assert two_thirds > n // 2  # still unsorted at 2/3 depth
    assert rows[-1]["measured eps"] == 0


def test_ns_mesh_beats_bitonic_at_equal_epsilon(benchmark, report):
    """Stage/delay budget to reach a single-digit ε at n = 64:
    the mesh (Columnsort) needs 2 chip stages; bitonic needs nearly its
    full depth."""
    n = 64

    def run():
        columnsort = ColumnsortSwitch(16, 4, n)  # ε = 9 by Theorem 4
        full = len(bitonic_stages(n))
        rng = default_rng(9)
        bitonic_stages_needed = None
        for stages in range(full + 1):
            eps = TruncatedBitonicSwitch.calibrate_epsilon(n, stages, 120, rng)
            if eps <= 9:
                bitonic_stages_needed = stages
                break
        return columnsort, bitonic_stages_needed, full

    columnsort, needed, full = benchmark(run)
    report(
        "Other nearsorters — budget to reach ε ≤ 9 at n=64",
        render_table(
            [
                {
                    "design": "Columnsort (Theorem 4)",
                    "stages": 2,
                    "gate delays": columnsort.gate_delays,
                },
                {
                    "design": "truncated bitonic (calibrated)",
                    "stages": f"{needed} of {full}",
                    "gate delays": 2 * needed,
                },
            ]
        ),
    )
    assert needed is not None
    assert needed >= full - 3  # essentially the whole network
    assert columnsort.gate_delays < 2 * needed
