"""Experiment KO — concentrators inside a packet switch (the intro's
application, in its canonical contemporaneous form).

Reproduces the knockout-switch shape results: per-output N-to-L
concentrators lose packets at a rate that falls off steeply in L and
is nearly independent of N; the paper's partial concentrators can
serve in the role with no measurable extra loss.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.network.knockout import knockout_loss_curve
from repro.switches.columnsort_switch import ColumnsortSwitch


def test_ko_loss_vs_l(benchmark, report):
    def run():
        curve = knockout_loss_curve(
            16, loads=[0.9], l_values=[1, 2, 4, 8, 12], slots=250, seed=21
        )
        return [
            {"L": L, "knockout loss @ 90% load": f"{curve[(0.9, L)]:.4f}"}
            for L in (1, 2, 4, 8, 12)
        ]

    rows = benchmark(run)
    report(
        "Knockout application — loss vs concentrator width L (N=16)",
        render_table(rows)
        + "\nShape: steep fall-off in L (the knockout property); the "
        "concentrator width needed for negligible loss is far below N.",
    )
    losses = [float(r["knockout loss @ 90% load"]) for r in rows]
    assert losses == sorted(losses, reverse=True)
    assert losses[0] > 0.1 and losses[-2] < 0.01


def test_ko_loss_nearly_independent_of_n(benchmark, report):
    def run():
        rows = []
        for ports in (8, 16, 32):
            curve = knockout_loss_curve(
                ports, loads=[0.85], l_values=[6], slots=250, seed=22
            )
            rows.append(
                {"N": ports, "loss @ L=6, 85% load": f"{curve[(0.85, 6)]:.4f}"}
            )
        return rows

    rows = benchmark(run)
    report(
        "Knockout application — loss nearly independent of N at fixed L",
        render_table(rows),
    )
    losses = [float(r["loss @ L=6, 85% load"]) for r in rows]
    assert max(losses) - min(losses) < 0.02


def test_ko_partial_concentrator_in_the_role(benchmark, report):
    """The multichip partial concentrator substitutes for the perfect
    concentrator inside the packet switch."""
    def partial_factory(n, m):
        assert (n, m) == (16, 8)
        return ColumnsortSwitch(8, 2, 8)  # (16, 8, 1 − 1/8)

    def run():
        perfect = knockout_loss_curve(
            16, loads=[0.7, 0.9], l_values=[8], slots=200, seed=23
        )
        partial = knockout_loss_curve(
            16,
            loads=[0.7, 0.9],
            l_values=[8],
            slots=200,
            seed=23,
            concentrator_factory=partial_factory,
        )
        return [
            {
                "load": p,
                "perfect-concentrator loss": f"{perfect[(p, 8)]:.4f}",
                "Columnsort-partial loss": f"{partial[(p, 8)]:.4f}",
            }
            for p in (0.7, 0.9)
        ]

    rows = benchmark(run)
    report(
        "Knockout application — partial concentrator as the knockout element",
        render_table(rows)
        + "\nThe (16, 8, 7/8) Columnsort switch adds no measurable loss "
        "over the perfect concentrator — the Section 1 substitution at "
        "work inside a real router.",
    )
    for row in rows:
        assert (
            float(row["Columnsort-partial loss"])
            <= float(row["perfect-concentrator loss"]) + 0.02
        )
