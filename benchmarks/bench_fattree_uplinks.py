"""Experiment FT — concentrators as fat-tree up-links (the research
context the paper was written in: fat-tree routing with constant-size
switches).

Measures delivery vs capacity profile (thin / half-bisection /
full-bisection) under permutation traffic, the per-level contention
structure, and the analytic-vs-simulated cross-check of the knockout
loss model.
"""

from __future__ import annotations

from repro._util.rng import default_rng
from repro.analysis.tables import render_table
from repro.network.analytic import knockout_loss_analytic
from repro.network.fattree import (
    FatTree,
    constant_capacity,
    full_bisection_capacity,
    random_permutation_round,
    universal_capacity,
)
from repro.network.knockout import knockout_loss_curve


def test_ft_capacity_profiles(benchmark, report):
    def run():
        height = 5  # 32 leaves
        rng = default_rng(51)
        rows = []
        for name, profile in (
            ("thin (cap 1)", constant_capacity(1)),
            ("thin (cap 2)", constant_capacity(2)),
            ("half bisection", universal_capacity(height)),
            ("full bisection", full_bisection_capacity()),
        ):
            tree = FatTree(height, profile)
            offered = delivered = 0
            for _ in range(25):
                stats = tree.route_round(
                    random_permutation_round(tree, 0.9, rng)
                )
                offered += stats.offered
                delivered += stats.delivered
            rows.append(
                {
                    "capacity profile": name,
                    "offered": offered,
                    "delivered": delivered,
                    "delivery rate": f"{delivered / offered:.3f}",
                }
            )
        return rows

    rows = benchmark(run)
    report(
        "Fat-tree up-links — delivery vs capacity profile (32 leaves, 90% permutation load)",
        render_table(rows)
        + "\nConcentrators at every ascent hop: richer capacity profiles "
        "deliver more; full bisection is lossless.",
    )
    rates = [float(r["delivery rate"]) for r in rows]
    assert rates == sorted(rates)
    assert rates[-1] == 1.0


def test_ft_drops_concentrate_low_in_thin_trees(benchmark, report):
    """In a thin tree the level-1 up-links are the bottleneck — the
    classic fat-tree observation, visible in our per-level counters."""
    def run():
        tree = FatTree(5, constant_capacity(1))
        rng = default_rng(52)
        per_level: dict[int, int] = {}
        for _ in range(25):
            stats = tree.route_round(random_permutation_round(tree, 0.9, rng))
            for level, count in stats.dropped_per_level.items():
                per_level[level] = per_level.get(level, 0) + count
        return per_level

    per_level = benchmark(run)
    report(
        "Fat-tree up-links — where thin trees drop (cap 1, 32 leaves)",
        render_table(
            [{"level": d, "drops": per_level.get(d, 0)} for d in range(1, 5)]
        ),
    )
    assert per_level.get(1, 0) >= per_level.get(4, 0)


def test_ft_analytic_vs_simulated_knockout(benchmark, report):
    """Two independent routes to the knockout loss number: the
    binomial closed form and the event simulation."""
    def run():
        rows = []
        sim = knockout_loss_curve(
            16, loads=[0.9], l_values=[1, 2, 4, 6], slots=500, seed=53
        )
        for L in (1, 2, 4, 6):
            analytic = knockout_loss_analytic(16, 0.9, L)
            rows.append(
                {
                    "L": L,
                    "analytic loss": f"{analytic:.4f}",
                    "simulated loss": f"{sim[(0.9, L)]:.4f}",
                    "abs diff": f"{abs(analytic - sim[(0.9, L)]):.4f}",
                }
            )
        return rows

    rows = benchmark(run)
    report(
        "Knockout loss — analytic binomial model vs event simulation (N=16, 90% load)",
        render_table(rows),
    )
    for row in rows:
        assert float(row["abs diff"]) < 0.02
