"""Experiment S6 — Section 6: full multichip hyperconcentrators.

* Full Revsort: ⌈lg lg √n⌉ repetitions leave ≤ 8 dirty rows; the
  Shearsort stacks finish the sort; signal passes ``2 lg lg n + O(1)``
  chips; Θ(√n lg lg n) chips total.
* Full Columnsort: 8 steps, 4 chips on the signal path,
  ``8β lg n + O(1)`` delays, same asymptotic chip count as the partial
  concentrator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.tables import render_table
from repro.core.concentration import validate_hyperconcentration
from repro.mesh.analysis import count_dirty_rows
from repro.mesh.revsort import revsort_reduce, revsort_repetitions
from repro.switches.multichip_hyper import (
    FullColumnsortHyperconcentrator,
    FullRevsortHyperconcentrator,
)

from conftest import random_bits


def test_s6_revsort_reduction_leaves_8_dirty_rows(benchmark, report, rng):
    def run():
        rows = []
        for side in (8, 16, 32, 64):
            reps = revsort_repetitions(side)
            worst = 0
            for _ in range(40):
                mat = (rng.random((side, side)) < rng.random()).astype(np.int8)
                worst = max(worst, count_dirty_rows(revsort_reduce(mat, reps)))
            rows.append(
                {
                    "√n": side,
                    "repetitions ⌈lg lg √n⌉": reps,
                    "worst dirty rows": worst,
                    "paper bound": 8,
                }
            )
        return rows

    rows = benchmark(run)
    report("Section 6 — Revsort reduction to ≤ 8 dirty rows", render_table(rows))
    for row in rows:
        assert row["worst dirty rows"] <= 8


def test_s6_full_revsort_hyperconcentrates(benchmark, report, rng):
    def run():
        rows = []
        for n in (64, 256, 1024):
            switch = FullRevsortHyperconcentrator(n)
            for _ in range(15):
                valid = random_bits(rng, n)
                routing = switch.setup(valid)
                validate_hyperconcentration(n, valid, routing.input_to_output)
            rows.append(
                {
                    "n": n,
                    "chips on path": switch.chips_on_signal_path,
                    "paper 2 lg lg n + O(1)": 2 * math.ceil(math.log2(math.log2(n)))
                    + 8,
                    "total chips": switch.chip_count,
                    "gate delays": switch.gate_delays,
                }
            )
        return rows

    rows = benchmark(run)
    report(
        "Section 6 — full-Revsort multichip hyperconcentrator",
        render_table(rows)
        + "\nEvery random pattern routed its k valid messages to "
        "exactly the first k outputs.",
    )
    for row in rows:
        assert row["chips on path"] <= row["paper 2 lg lg n + O(1)"] + 2


def test_s6_full_columnsort_hyperconcentrates(benchmark, report, rng):
    def run():
        rows = []
        for r, s in ((32, 4), (128, 8), (512, 8)):
            switch = FullColumnsortHyperconcentrator(r, s)
            n = r * s
            for _ in range(15):
                valid = random_bits(rng, n)
                routing = switch.setup(valid)
                validate_hyperconcentration(n, valid, routing.input_to_output)
            beta = math.log2(r) / math.log2(n)
            rows.append(
                {
                    "r": r,
                    "s": s,
                    "n": n,
                    "chips on path": switch.chips_on_signal_path,
                    "gate delays": switch.gate_delays,
                    "paper 8β lg n": f"{8 * beta * math.log2(n):.0f}",
                    "total chips": switch.chip_count,
                }
            )
        return rows

    rows = benchmark(run)
    report(
        "Section 6 — full-Columnsort multichip hyperconcentrator",
        render_table(rows),
    )
    for row in rows:
        assert row["chips on path"] == 4
        # 8β lg n = 8 lg r; our model adds 2 pad delays per chip.
        assert row["gate delays"] == 8 * math.ceil(math.log2(row["r"])) + 8


def test_s6_hyper_vs_partial_cost(benchmark, report):
    """Section 6's remark: the full hyperconcentrators cost more delay
    and chips than their partial counterparts at the same n."""
    from repro.switches.columnsort_switch import ColumnsortSwitch
    from repro.switches.revsort_switch import RevsortSwitch

    def run():
        n = 1024
        rev_partial = RevsortSwitch(n, n // 2)
        rev_full = FullRevsortHyperconcentrator(n)
        col_partial = ColumnsortSwitch(128, 8, n // 2)
        col_full = FullColumnsortHyperconcentrator(128, 8)
        return [
            {
                "switch": "Revsort partial",
                "gate delays": rev_partial.gate_delays,
                "chips": rev_partial.chip_count,
            },
            {
                "switch": "Revsort full hyper",
                "gate delays": rev_full.gate_delays,
                "chips": rev_full.chip_count,
            },
            {
                "switch": "Columnsort partial",
                "gate delays": col_partial.gate_delays,
                "chips": col_partial.chip_count,
            },
            {
                "switch": "Columnsort full hyper",
                "gate delays": col_full.gate_delays,
                "chips": col_full.chip_count,
            },
        ]

    rows = benchmark(run)
    report("Section 6 — partial vs full hyperconcentrator cost (n=1024)", render_table(rows))
    assert rows[1]["gate delays"] > rows[0]["gate delays"]
    assert rows[1]["chips"] > rows[0]["chips"]
    assert rows[3]["gate delays"] == 2 * rows[2]["gate delays"]
