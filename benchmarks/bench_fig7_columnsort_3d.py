"""Experiment F7 — Figure 7: the 3-D packaging of the Columnsort
switch (two stacks of s boards, s² interstack connectors, volume
Θ(n^{1+β})), shown at the figure's r = 8, s = 4 and swept over n.
"""

from __future__ import annotations

from repro.analysis.asymptotics import fit_exponent
from repro.analysis.tables import render_table
from repro.hardware.package import columnsort_packaging_3d
from repro.switches.columnsort_switch import ColumnsortSwitch


def _run():
    figure = ColumnsortSwitch(8, 4, 18)
    figure_pkg = columnsort_packaging_3d(figure)

    # Volume exponent sweeps at two β points (β·t integral).
    sweeps = {}
    for beta, ts in ((0.75, (8, 12, 16, 20)), (0.625, (8, 16, 24))):
        ns = [1 << t for t in ts]
        volumes = [
            columnsort_packaging_3d(
                ColumnsortSwitch.from_beta(n, beta, n // 2)
            ).volume
            for n in ns
        ]
        sweeps[beta] = fit_exponent(ns, volumes)
    return figure, figure_pkg, sweeps


def test_fig7_columnsort_packaging(benchmark, report):
    figure, pkg, sweeps = benchmark(_run)

    rows = [
        {"quantity": "stacks", "paper": 2, "measured": len(pkg.stacks)},
        {"quantity": "boards per stack (s)", "paper": 4, "measured": pkg.stacks[0].board_count},
        {"quantity": "interstack connectors (s²)", "paper": 16, "measured": pkg.connector_count},
        {
            "quantity": "wires per connector (r/s)",
            "paper": 2,
            "measured": pkg.connector.wires,
        },
        {
            "quantity": "volume exponent at β=3/4",
            "paper": 1.75,
            "measured": f"{sweeps[0.75]:.3f}",
        },
        {
            "quantity": "volume exponent at β=5/8",
            "paper": 1.625,
            "measured": f"{sweeps[0.625]:.3f}",
        },
    ]
    report("Figure 7 — 3-D Columnsort packaging (r=8, s=4)", render_table(rows))

    assert len(pkg.stacks) == 2
    assert pkg.stacks[0].board_count == 4
    assert pkg.connector_count == 16
    assert pkg.connector.wires == 2
    assert abs(sweeps[0.75] - 1.75) < 0.1
    assert abs(sweeps[0.625] - 1.625) < 0.1


def test_fig7_connector_volume_subdominant(benchmark, report):
    """Section 5: total interstack volume O(n^{2β}) never dominates the
    stack volume Θ(n^{1+β}) since β ≤ 1."""
    def measure():
        out = []
        for t in (10, 12, 14, 16):
            switch = ColumnsortSwitch.from_beta(1 << t, 0.75, 1 << (t - 1))
            pkg = columnsort_packaging_3d(switch)
            stack_volume = sum(s.volume for s in pkg.stacks)
            out.append((1 << t, pkg.connector_volume, stack_volume))
        return out

    rows = benchmark(measure)
    table = [
        {"n": n, "connector volume": cv, "stack volume": sv, "ratio": f"{cv / sv:.4f}"}
        for n, cv, sv in rows
    ]
    report("Figure 7/8 — interstack volume stays subdominant", render_table(table))
    for _, cv, sv in rows:
        assert cv < sv
