"""Experiment TH4 — Theorem 4: the Columnsort-based construction is an
(n, m, 1 − (s−1)²/m) partial concentrator.

Measures, across (r, s): the worst row-major ε after Algorithm 2 vs the
exact (s−1)² bound (and whether random inputs achieve it), plus the
zero-drop behaviour at the guaranteed capacity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.core.nearsort import nearsortedness
from repro.mesh.columnsort import columnsort_nearsort
from repro.switches.columnsort_switch import ColumnsortSwitch

from conftest import random_bits

SHAPES = [(8, 4), (16, 4), (64, 4), (32, 8), (128, 8), (256, 16)]
TRIALS = 120


def _run(rng: np.random.Generator):
    rows = []
    for r, s in SHAPES:
        n = r * s
        bound = (s - 1) ** 2
        worst = 0
        for _ in range(TRIALS):
            valid = random_bits(rng, n)
            out = columnsort_nearsort(valid.astype(np.int8).reshape(r, s))
            worst = max(worst, nearsortedness(out.reshape(-1)))
        rows.append(
            {
                "r": r,
                "s": s,
                "n": n,
                "worst eps": worst,
                "(s−1)² bound": bound,
                "tight?": "yes" if worst == bound else "no",
            }
        )
    return rows


def test_thm4_nearsorting_quality(benchmark, report, rng):
    rows = benchmark(_run, rng)
    report(
        "Theorem 4 — Columnsort nearsorting quality",
        render_table(rows)
        + "\nPaper: Algorithm 2 is an (s−1)²-nearsorter; the bound must "
        "never be exceeded, and small shapes achieve it exactly.",
    )
    for row in rows:
        assert row["worst eps"] <= row["(s−1)² bound"]
    # The bound is achieved at least on the small shapes (tightness).
    assert any(row["tight?"] == "yes" for row in rows[:3])


def test_thm4_guaranteed_capacity_never_drops(benchmark, report, rng):
    """Batched through the engine: the 30 trial vectors per shape run
    as one setup_batch call (same vectors the scalar loop would draw)."""
    def run():
        results = []
        for r, s, m in ((64, 4, 200), (128, 8, 960), (512, 8, 4000)):
            switch = ColumnsortSwitch(r, s, m)
            cap = switch.spec.guaranteed_capacity
            valid = np.stack(
                [random_bits(rng, switch.n, cap) for _ in range(30)]
            )
            batch = switch.setup_batch(valid)
            drops = int((cap - batch.routed_counts).sum())
            results.append(
                {
                    "r": r,
                    "s": s,
                    "m": m,
                    "capacity αm = m−(s−1)²": cap,
                    "drops": drops,
                }
            )
        return results

    rows = benchmark(run)
    report("Theorem 4 — zero drops at guaranteed capacity", render_table(rows))
    for row in rows:
        assert row["drops"] == 0


def test_thm4_overload_respects_floor(benchmark, report, rng):
    """Past αm: at least αm messages still routed (and drops do occur,
    confirming the bound is meaningfully sharp)."""
    def run():
        switch = ColumnsortSwitch(16, 4, 16)
        cap = switch.spec.guaranteed_capacity  # 16 − 9 = 7
        below_floor = 0
        dropped_instances = 0
        for _ in range(400):
            valid = random_bits(rng, switch.n, 16)
            routed = switch.setup(valid).routed_count
            if routed < cap:
                below_floor += 1
            if routed < 16:
                dropped_instances += 1
        return cap, below_floor, dropped_instances

    cap, below_floor, dropped_instances = benchmark(run)
    report(
        "Theorem 4 — overload floor (r=16, s=4, m=16, k=16)",
        f"guaranteed floor αm = {cap}; instances below floor: "
        f"{below_floor} (must be 0); instances with any drop: "
        f"{dropped_instances} (> 0 shows the guarantee is not slack)",
    )
    assert below_floor == 0
    assert dropped_instances > 0


def test_thm4_epsilon_distribution(benchmark, report, rng):
    """Typical vs worst case for the exact (s−1)² bound."""
    def run():
        r, s = 64, 8
        n = r * s
        samples = []
        for _ in range(200):
            valid = random_bits(rng, n)
            out = columnsort_nearsort(valid.astype(np.int8).reshape(r, s))
            samples.append(nearsortedness(out.reshape(-1)))
        arr = np.array(samples)
        return {
            "r": r,
            "s": s,
            "median eps": int(np.median(arr)),
            "p90 eps": int(np.quantile(arr, 0.9)),
            "max eps": int(arr.max()),
            "(s−1)² bound": (s - 1) ** 2,
        }

    row = benchmark(run)
    report(
        "Theorem 4 — ε distribution (200 random inputs, r=64, s=8)",
        render_table([row]),
    )
    assert row["max eps"] <= row["(s−1)² bound"]
    assert row["median eps"] <= row["(s−1)² bound"]


def test_thm4_setup_throughput(benchmark):
    switch = ColumnsortSwitch(512, 8, 3072)
    rng = np.random.default_rng(7)
    valid = rng.random(4096) < 0.5
    benchmark(switch.setup, valid)


def test_thm4_setup_batch_throughput(benchmark):
    """Engine path: 256 trials per call through the compiled plan —
    compare per-trial time against test_thm4_setup_throughput."""
    switch = ColumnsortSwitch(512, 8, 3072)
    rng = np.random.default_rng(7)
    valid = rng.random((256, 4096)) < 0.5
    switch.setup_batch(valid)  # warm the plan cache outside the timer
    benchmark(switch.setup_batch, valid)
