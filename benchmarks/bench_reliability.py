"""Experiment REL — part-count reliability across the design space.

Not a paper table, but the engineering consequence of Table 1's chip
counts: under the independent-failure (rare-event) model, the summed
part failure rates rank the designs.  Sweeps β and the die-rate area
exponent to show when consolidation (large chips) wins and when the
extra silicon area cancels it.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.hardware.reliability import (
    ReliabilityModel,
    columnsort_reliability,
    monolithic_reliability,
    revsort_reliability,
)


def test_rel_design_ranking(benchmark, report):
    n = 1 << 12

    def run():
        model = ReliabilityModel()  # sublinear die rate, per-pin term
        systems = [
            monolithic_reliability(n, model),
            revsort_reliability(n, model),
            columnsort_reliability(n, 0.5, model),
            columnsort_reliability(n, 0.625, model),
            columnsort_reliability(n, 0.75, model),
        ]
        return [
            {
                "design": s.label,
                "chips": s.chips,
                "pin joints": s.pin_joints,
                "relative failure rate": f"{s.system_rate:.1f}",
                "relative MTBF": f"{s.relative_mtbf:.5f}",
            }
            for s in systems
        ]

    rows = benchmark(run)
    report(
        f"Reliability — part-count roll-up at n={n} (sublinear die rate)",
        render_table(rows)
        + "\nMultichip designs pay a part-count reliability tax over the "
        "(unbuildable) monolith; within the buildable set, higher β "
        "consolidates parts and recovers MTBF.",
    )
    by_label = {r["design"]: float(r["relative failure rate"]) for r in rows}
    # Within the Columnsort family, consolidation helps under e = 1/2.
    assert by_label[f"Columnsort n={n} b=0.75"] < by_label[f"Columnsort n={n} b=0.5"]


def test_rel_area_exponent_sensitivity(benchmark, report):
    """The consolidation advantage depends on the die-rate exponent:
    at e = 1 the extra silicon of big chips cancels it."""
    n = 1 << 12

    def run():
        rows = []
        for e in (0.25, 0.5, 0.75, 1.0):
            model = ReliabilityModel(area_exponent=e, pin_rate=0.05)
            low = columnsort_reliability(n, 0.5, model)
            high = columnsort_reliability(n, 0.75, model)
            rows.append(
                {
                    "area exponent e": e,
                    "rate b=0.5": f"{low.system_rate:.1f}",
                    "rate b=0.75": f"{high.system_rate:.1f}",
                    "consolidation wins?": "yes"
                    if high.system_rate < low.system_rate
                    else "no",
                }
            )
        return rows

    rows = benchmark(run)
    report(
        "Reliability — sensitivity to the die-rate area exponent",
        render_table(rows)
        + "\nA crossover: sublinear defect scaling favours few large "
        "chips; linear scaling flips the ranking.",
    )
    verdicts = [r["consolidation wins?"] for r in rows]
    assert verdicts[0] == "yes" and verdicts[-1] == "no"
