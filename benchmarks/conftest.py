"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table/figure/theorem-level
claim), asserts the *shape* agreement recorded in EXPERIMENTS.md, and
prints a paper-vs-measured report to the terminal (visible in
``bench_output.txt``).  pytest-benchmark times the underlying
computation so the harness doubles as a performance regression suite.

Each bench also appends one self-describing run-metadata record (git
SHA, seed, wall time, repro.obs metric snapshot) to
``benchmarks/BENCH_META.jsonl`` so result trajectories carry their own
provenance.  Set ``REPRO_BENCH_META`` to another path to redirect the
records, or to ``0``/``off`` to disable them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro._util.rng import DEFAULT_SEED, default_rng

_META_ENV = "REPRO_BENCH_META"


def _meta_path() -> Path | None:
    raw = os.environ.get(_META_ENV, "")
    if raw.lower() in {"0", "off", "no", "false"}:
        return None
    if raw:
        return Path(raw)
    return Path(__file__).resolve().parent / "BENCH_META.jsonl"


@pytest.fixture(autouse=True)
def bench_run_meta(request):
    """Collect obs metrics for the duration of each bench and append a
    run-metadata record when it finishes."""
    path = _meta_path()
    if path is None:
        yield
        return
    started_at = time.time()
    start = time.perf_counter()
    with obs.collecting() as registry:
        yield
    record = obs.run_metadata(
        run_id=request.node.nodeid,
        seed=DEFAULT_SEED,
        wall_s=time.perf_counter() - start,
        registry=registry,
        started_at=started_at,
    )
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")


@pytest.fixture
def rng() -> np.random.Generator:
    return default_rng(0x1987)


@pytest.fixture
def report(capsys):
    """Print a report section to the real terminal (bypassing capture)
    so it lands in bench_output.txt."""

    def _report(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}")

    return _report


def random_bits(rng: np.random.Generator, n: int, k: int | None = None) -> np.ndarray:
    out = np.zeros(n, dtype=bool)
    if k is None:
        out[:] = rng.random(n) < rng.random()
    elif k > 0:
        out[rng.choice(n, size=k, replace=False)] = True
    return out
