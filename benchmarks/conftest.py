"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table/figure/theorem-level
claim), asserts the *shape* agreement recorded in EXPERIMENTS.md, and
prints a paper-vs-measured report to the terminal (visible in
``bench_output.txt``).  pytest-benchmark times the underlying
computation so the harness doubles as a performance regression suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.rng import default_rng


@pytest.fixture
def rng() -> np.random.Generator:
    return default_rng(0x1987)


@pytest.fixture
def report(capsys):
    """Print a report section to the real terminal (bypassing capture)
    so it lands in bench_output.txt."""

    def _report(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}")

    return _report


def random_bits(rng: np.random.Generator, n: int, k: int | None = None) -> np.ndarray:
    out = np.zeros(n, dtype=bool)
    if k is None:
        out[:] = rng.random(n) < rng.random()
    elif k > 0:
        out[rng.choice(n, size=k, replace=False)] = True
    return out
