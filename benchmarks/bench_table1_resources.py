"""Experiment T1 — Table 1: resource measures of the Revsort switch vs
the Columnsort switch at β ∈ {1/2, 5/8, 3/4}.

For each measure (pins/chip, chip count, ε driving the load ratio,
volume) we sweep n, fit the Θ(n^x) exponent, and compare against the
paper's claimed exponent; gate delays are fitted as c·lg n + O(1).
The concrete Table 1 instance at n = 4096 is printed alongside.
"""

from __future__ import annotations

import pytest

from repro.analysis.asymptotics import fit_exponent, fit_log_slope
from repro.analysis.tables import render_table
from repro.hardware.costs import (
    TABLE1_CLAIMED_DELAY_SLOPES,
    TABLE1_CLAIMED_EXPONENTS,
    columnsort_measures,
    revsort_measures,
    table1,
)

# n = 2^t grids chosen so β·t is integral (no shape-rounding noise).
SWEEPS = {
    "Revsort": ([1 << t for t in (8, 10, 12, 14, 16)], None),
    "Columnsort b=0.5": ([1 << t for t in (8, 10, 12, 14, 16)], 0.5),
    "Columnsort b=0.625": ([1 << t for t in (8, 16, 24, 32)], 0.625),
    "Columnsort b=0.75": ([1 << t for t in (8, 12, 16, 20, 24)], 0.75),
}


def _measures(label: str, n: int):
    beta = SWEEPS[label][1]
    if beta is None:
        return revsort_measures(n, n // 2)
    return columnsort_measures(n, n // 2, beta)


@pytest.mark.parametrize("label", list(SWEEPS))
def test_table1_exponents(benchmark, report, label):
    ns = SWEEPS[label][0]
    rows = benchmark(lambda: [_measures(label, n) for n in ns])

    claimed = TABLE1_CLAIMED_EXPONENTS[label]
    fits = {
        "pins": fit_exponent(ns, [r.pins_per_chip for r in rows]),
        "chips": fit_exponent(ns, [r.chip_count for r in rows]),
        "epsilon": fit_exponent(ns, [max(r.epsilon, 1) for r in rows]),
        "volume": fit_exponent(ns, [r.volume for r in rows]),
    }
    delay_slope, delay_const = fit_log_slope(ns, [r.gate_delays for r in rows])
    claimed_delay = TABLE1_CLAIMED_DELAY_SLOPES[label]

    table = [
        {
            "measure": key,
            "paper exponent": claimed[key],
            "measured exponent": f"{fits[key]:.3f}",
        }
        for key in fits
    ]
    table.append(
        {
            "measure": "gate delays (lg n slope)",
            "paper exponent": claimed_delay,
            "measured exponent": f"{delay_slope:.3f} (+{delay_const:.1f})",
        }
    )
    report(f"Table 1 exponents — {label}", render_table(table))

    for key, value in fits.items():
        assert abs(value - claimed[key]) < 0.1, (label, key, value)
    assert abs(delay_slope - claimed_delay) < 0.25


def test_table1_concrete_instance(benchmark, report):
    """The full Table 1 at a concrete size (n=4096, m=3n/4), checking
    the qualitative orderings the paper's table conveys."""
    n, m = 1 << 12, 3 << 10
    rows = benchmark(table1, n, m)
    report(
        f"Table 1 instance at n={n}, m={m}",
        render_table([r.as_row() for r in rows]),
    )

    rev, c12, c58, c34 = rows
    # Pins grow and chips shrink along the β continuum.
    assert c12.pins_per_chip <= c58.pins_per_chip <= c34.pins_per_chip
    assert c12.chip_count >= c58.chip_count >= c34.chip_count
    # Load ratio improves with β; β=3/4 beats Revsort, β=1/2 is worst.
    assert c12.load_ratio <= c58.load_ratio <= c34.load_ratio
    assert c34.load_ratio > rev.load_ratio
    # Delays: Columnsort at β=1/2 is the fastest; β grows delay.
    assert c12.gate_delays <= c58.gate_delays <= c34.gate_delays
    assert c12.gate_delays < rev.gate_delays
    # Volume grows with β.
    assert c12.volume <= c58.volume <= c34.volume
