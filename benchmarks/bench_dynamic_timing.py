"""Experiment D2 — dynamic timing of the gate-level chip.

The paper's delay figures are static (critical-path counts); this
bench drives the actual netlists with an event-driven simulator and
confirms that (a) the dynamic settle time never exceeds the static
bound the cost model uses, and (b) the switching activity (glitches)
stays bounded — evidence the combinational setup discipline of
Section 2 is implementable as claimed.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.gates.butterfly_gates import build_butterfly_datapath, datapath_delay
from repro.gates.depth import critical_path_length
from repro.gates.event_sim import EventSimulator
from repro.gates.hyperconc_gates import build_hyperconcentrator


def test_d2_setup_settle_times(benchmark, report, rng):
    def run():
        rows = []
        for n in (4, 8, 16):
            circuit = build_hyperconcentrator(n, with_datapath=False)
            sim = EventSimulator(circuit)
            static = critical_path_length(circuit)
            worst = sim.measure_settle_time(15, rng)
            rows.append(
                {
                    "n": n,
                    "static critical path": static,
                    "worst dynamic settle": worst,
                    "ok": "yes" if worst <= static else "NO",
                }
            )
        return rows

    rows = benchmark(run)
    report(
        "D2 — hyperconcentrator setup: dynamic settle vs static bound",
        render_table(rows),
    )
    for row in rows:
        assert row["worst dynamic settle"] <= row["static critical path"]
        assert row["worst dynamic settle"] > 0


def test_d2_switching_activity(benchmark, report, rng):
    """Glitch counts per setup stay a small multiple of the wire count
    (no pathological hazard amplification in the rank network)."""
    def run():
        n = 16
        circuit = build_hyperconcentrator(n, with_datapath=False)
        sim = EventSimulator(circuit)
        prev = rng.random(n) < 0.5
        total_glitches = []
        for _ in range(20):
            nxt = rng.random(n) < 0.5
            result = sim.transition(prev, nxt)
            total_glitches.append(result.glitches())
            prev = nxt
        return n, circuit.n_wires, max(total_glitches)

    n, wires, worst = benchmark(run)
    report(
        "D2 — switching activity (n=16 setup plane)",
        f"{wires} wires; worst glitch count per setup: {worst} "
        f"(bound asserted: <= wires)",
    )
    assert worst <= wires


def test_d2_butterfly_datapath_settle(benchmark, report, rng):
    """With the control *latched* (settings held fixed, as the
    Section 1 architecture prescribes), streamed data bits settle in at
    most the static 2 lg n datapath depth."""
    def run():
        import math

        rows = []
        for n in (4, 8, 16):
            q = int(math.log2(n))
            circuit = build_butterfly_datapath(n)
            static = datapath_delay(circuit, n)
            sim = EventSimulator(circuit)
            n_settings = (n // 2) * q
            worst = 0
            for _ in range(10):
                settings = rng.random(n_settings) < 0.5
                old = np.concatenate([rng.random(n) < 0.5, settings])
                new = np.concatenate([rng.random(n) < 0.5, settings])
                worst = max(worst, sim.transition(old, new).settle_time)
            rows.append(
                {
                    "n": n,
                    "static 2 lg n": static,
                    "worst dynamic settle (data only)": worst,
                }
            )
        return rows

    rows = benchmark(run)
    report("D2 — butterfly datapath: dynamic settle with latched control", render_table(rows))
    for row in rows:
        assert row["worst dynamic settle (data only)"] <= row["static 2 lg n"]
