"""Experiment MB — the mesh baseline the switches collapse.

Revsort/Columnsort were stated for meshes of PEs doing neighbour
compare-exchanges; the paper's switches replace each Θ(√n)-step full
sort with a single Θ(lg n)-delay chip pass.  This bench runs
Algorithm 1 both ways on identical inputs — neighbour-only mesh
machine vs the multichip switch — confirming bit-identical results and
quantifying the asymptotic gap the switches buy.
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import default_rng
from repro.analysis.asymptotics import fit_exponent
from repro.analysis.tables import render_table
from repro.mesh.machine import MeshMachine, mesh_vs_switch_comparison
from repro.mesh.revsort import revsort_nearsort


def test_mb_bit_identical_results(benchmark, report):
    def run():
        rng = default_rng(91)
        mismatches = 0
        for side in (4, 8, 16):
            machine = MeshMachine(side)
            for _ in range(25):
                m = (rng.random((side, side)) < rng.random()).astype(np.int8)
                if not np.array_equal(
                    machine.algorithm1(m).matrix, revsort_nearsort(m)
                ):
                    mismatches += 1
        return mismatches

    mismatches = benchmark(run)
    report(
        "Mesh baseline — neighbour-only execution is bit-identical",
        f"mismatches over 75 inputs at side ∈ {{4, 8, 16}}: {mismatches} "
        "(the switch computes exactly the mesh algorithm's function)",
    )
    assert mismatches == 0


def test_mb_steps_vs_delays(benchmark, report):
    def run():
        return [mesh_vs_switch_comparison(side) for side in (8, 16, 32, 64, 128)]

    rows = benchmark(run)
    printable = [
        {k: v for k, v in row.items() if not k.startswith("_")} for row in rows
    ]
    report(
        "Mesh baseline — Θ(√n) steps vs Θ(lg n) switch delays",
        render_table(printable)
        + "\nThe multichip switch collapses each mesh-sort into one "
        "chip pass; the speedup grows as √n / lg n.",
    )
    ns = [row["n"] for row in rows]
    steps = [row["mesh steps (compare-exchange)"] for row in rows]
    exponent = fit_exponent(ns, steps)
    assert abs(exponent - 0.5) < 0.02  # Θ(√n) confirmed
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 3 * speedups[0]  # gap widens as √n / lg n
