"""Experiment F5 — Figure 5: row-major vs column-major numbering of a
6×3 matrix, and the RM/CM machinery the Columnsort wiring uses.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.order import (
    cm_index,
    cm_to_rm_permutation,
    column_major_matrix,
    is_permutation,
    rm_index,
    rm_inverse,
    row_major_matrix,
)

FIG5_RM = np.array(
    [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11], [12, 13, 14], [15, 16, 17]]
)
FIG5_CM = np.array(
    [[0, 6, 12], [1, 7, 13], [2, 8, 14], [3, 9, 15], [4, 10, 16], [5, 11, 17]]
)


def _run():
    rm = row_major_matrix(6, 3)
    cm = column_major_matrix(6, 3)
    # Formula checks over the whole matrix.
    for i in range(6):
        for j in range(3):
            assert rm_index(i, j, 6, 3) == rm[i, j]
            assert cm_index(i, j, 6, 3) == cm[i, j]
            assert rm_inverse(rm[i, j], 6, 3) == (i, j)
    return rm, cm


def test_fig5_numbering(benchmark, report):
    rm, cm = benchmark(_run)
    assert np.array_equal(rm, FIG5_RM)
    assert np.array_equal(cm, FIG5_CM)
    report(
        "Figure 5 — 6×3 matrix numberings (exact reproduction)",
        "row-major:\n" + str(rm) + "\n\ncolumn-major:\n" + str(cm),
    )


def test_fig5_rm_cm_permutations_bijective(benchmark, report):
    shapes = [(6, 3), (8, 4), (16, 4), (64, 8), (256, 16)]
    perms = benchmark(lambda: [cm_to_rm_permutation(r, s) for r, s in shapes])
    for (r, s), perm in zip(shapes, perms):
        assert is_permutation(perm), (r, s)
    report(
        "Figure 5 — RM⁻¹∘CM wiring bijectivity",
        f"verified for shapes {shapes}: every output pin driven by "
        "exactly one input pin.",
    )
