"""Thin setup.py shim.

The execution environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` (PEP 660) cannot build an editable wheel.  This
shim lets ``python setup.py develop`` work, and ``pip install -e .``
falls back to it on pip versions that still support the legacy path.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
