#!/usr/bin/env python
"""Routing-network scenario: concentrators funneling parallel-computer
traffic (the use case from the paper's introduction).

Three experiments:

1. **Loss vs offered load** for a Revsort-based partial concentrator
   under the three congestion policies of Section 1 (drop, buffer,
   drop-and-resend).
2. **Partial-vs-perfect substitution** — the Section 1 claim that an
   (n/α, m/α, α) partial concentrator can stand in for an n-by-m
   perfect concentrator at a 1/α-factor wire cost.
3. **Two-level concentration tree** — four leaf switches feeding a
   root, a fan-in stage of a larger routing network.

Run:  python examples/network_routing.py
"""

from __future__ import annotations

from repro import ColumnsortSwitch, Message, PerfectConcentrator, RevsortSwitch
from repro._util.rng import default_rng
from repro.analysis import render_table
from repro.messages.congestion import BufferPolicy, DropPolicy, ResendPolicy
from repro.network import (
    BernoulliTraffic,
    ConcentrationTree,
    SwitchSimulation,
    compare_partial_vs_perfect,
)


def loss_vs_load() -> None:
    print("\n--- loss vs offered load (Revsort switch, n=256, m=192) ---")
    rows = []
    for p in (0.2, 0.5, 0.7, 0.8, 0.9, 1.0):
        row: dict[str, object] = {"offered p": p}
        for name, policy in (
            ("drop", DropPolicy()),
            ("buffer", BufferPolicy(capacity=256)),
            ("resend", ResendPolicy(ack_timeout=1, max_retries=16)),
        ):
            switch = RevsortSwitch(256, 192)
            traffic = BernoulliTraffic(256, p=p, seed=17)
            summary = SwitchSimulation(switch, traffic, policy, seed=18).run(rounds=40)
            row[f"{name} loss"] = f"{summary.loss_rate:.3f}"
        rows.append(row)
    print(render_table(rows))
    print(
        "Shape check: zero loss while offered load stays below the "
        "guaranteed capacity; buffering/resending soak up bursts until "
        "sustained overload."
    )


def substitution() -> None:
    print("\n--- partial-for-perfect substitution (Section 1) ---")
    n, m = 128, 96
    perfect = PerfectConcentrator(n, m)
    # A Columnsort switch with alpha*m' >= m stands in for it.
    partial = ColumnsortSwitch(64, 4, 105)  # n' = 256, m' = 105, eps = 9
    cap = partial.spec.guaranteed_capacity
    print(
        f"perfect: {n}-by-{m};  partial: ({partial.n}, {partial.m}, "
        f"{partial.spec.alpha:.3f}) with guaranteed capacity {cap} >= m = {m}"
    )
    results = compare_partial_vs_perfect(
        perfect, partial, k_values=[16, 48, 96, 120], trials=30, seed=19
    )
    rows = [
        {
            "k offered": k,
            "perfect routed": f"{row['perfect']:.1f}",
            "partial routed": f"{row['partial']:.1f}",
            "required": min(k, m),
        }
        for k, row in results.items()
    ]
    print(render_table(rows))


def concentration_tree() -> None:
    print("\n--- two-level concentration tree ---")
    rng = default_rng(20)
    leaves = [RevsortSwitch(64, 32) for _ in range(4)]
    root = ColumnsortSwitch(32, 4, 64)  # 128 leaf outputs -> 64 links
    tree = ConcentrationTree(leaves, root)
    print(f"tree: {tree.n} inputs -> {len(leaves)} leaves -> {tree.m} output links")
    rows = []
    for k in (16, 32, 64, 96, 128):
        lost_total, delivered_total = 0, 0
        for _ in range(20):
            messages: list[Message | None] = [None] * tree.n
            for i in rng.choice(tree.n, size=k, replace=False):
                messages[int(i)] = Message.from_int(int(i) % 256, 8)
            outputs, lost = tree.route(messages)
            lost_total += lost
            delivered_total += sum(1 for msg in outputs if msg is not None)
        rows.append(
            {
                "k offered": k,
                "mean delivered": delivered_total / 20,
                "mean lost": lost_total / 20,
            }
        )
    print(render_table(rows))


def main() -> None:
    loss_vs_load()
    substitution()
    concentration_tree()


if __name__ == "__main__":
    main()
