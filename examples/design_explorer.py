#!/usr/bin/env python
"""Design-space exploration: pick a multichip concentrator under real
packaging constraints.

Given a target (n, m) and a pin budget per chip, sweep the paper's
design space — the Revsort switch plus the Columnsort β continuum —
and report which designs fit, their Table 1 resource measures, and the
empirical load behaviour of the best candidates.  This is the workflow
a switch designer in the paper's setting would follow.

Run:  python examples/design_explorer.py [n] [m] [pin_budget]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import ColumnsortSwitch, RevsortSwitch
from repro._util.bits import ilg
from repro._util.rng import default_rng
from repro.analysis import render_table
from repro.hardware import columnsort_measures, revsort_measures


def candidate_designs(n: int, m: int) -> list:
    """All Table 1 design points for this n: Revsort + every
    realisable power-of-two Columnsort shape with r >= s."""
    designs = [("Revsort", revsort_measures(n, m), RevsortSwitch(n, m))]
    t = ilg(n)
    for a in range((t + 1) // 2, t + 1):
        beta = a / t
        switch = ColumnsortSwitch(1 << a, n >> a, m)
        designs.append(
            (f"Columnsort r=2^{a} (b={beta:.3f})",
             columnsort_measures(n, m, beta),
             switch)
        )
    return designs


def empirical_load_ratio(switch, trials: int, rng) -> float:
    """Measured fraction of m that always routes under full overload."""
    worst = switch.m
    for _ in range(trials):
        valid = np.ones(switch.n, dtype=bool)
        idx = rng.choice(switch.n, size=switch.n // 3, replace=False)
        valid[idx] = False
        worst = min(worst, switch.setup(valid).routed_count)
    return worst / switch.m


def main() -> None:
    # Positional overrides: n m pin_budget (ignore non-numeric argv so
    # the example can also be driven in-process by the test suite).
    args = [a for a in sys.argv[1:] if a.isdigit()]
    n = int(args[0]) if len(args) > 0 else 1024
    m = int(args[1]) if len(args) > 1 else 768
    pin_budget = int(args[2]) if len(args) > 2 else 150
    rng = default_rng(23)

    print(f"design space for an (n={n}, m={m}) concentrator, "
          f"pin budget {pin_budget} pins/chip\n")

    rows = []
    feasible = []
    for name, meas, switch in candidate_designs(n, m):
        fits = meas.pins_per_chip <= pin_budget
        rows.append(
            {
                "design": name,
                "pins/chip": meas.pins_per_chip,
                "chips": meas.chip_count,
                "alpha": f"{meas.load_ratio:.4f}",
                "delays": meas.gate_delays,
                "volume": meas.volume,
                "fits": "yes" if fits else "NO",
            }
        )
        if fits:
            feasible.append((name, meas, switch))
    print(render_table(rows, title="Table 1-style design sweep"))

    if not feasible:
        print("\nNo design fits the pin budget; raise it or shrink n.")
        return

    # Rank feasible designs: maximise guaranteed load ratio, break ties
    # on fewer gate delays then smaller volume.
    feasible.sort(key=lambda d: (-d[1].load_ratio, d[1].gate_delays, d[1].volume))
    best = feasible[0]
    print(f"\nbest feasible design: {best[0]}")

    print("\nempirical check (100 random 2/3-load patterns):")
    check_rows = []
    for name, meas, switch in feasible[:3]:
        measured = empirical_load_ratio(switch, trials=100, rng=rng)
        check_rows.append(
            {
                "design": name,
                "guaranteed alpha": f"{meas.load_ratio:.4f}",
                "measured worst alpha": f"{measured:.4f}",
            }
        )
    print(render_table(check_rows))
    print(
        "\nThe measured worst-case load ratio always dominates the "
        "guaranteed one — Theorems 3/4 are conservative, as the paper's "
        "asymptotic analysis suggests."
    )


if __name__ == "__main__":
    main()
