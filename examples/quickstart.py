#!/usr/bin/env python
"""Quickstart: build the paper's two multichip partial concentrator
switches, route a batch of bit-serial messages through each, and print
what the hardware looks like.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BitSerialSimulator,
    ColumnsortSwitch,
    Message,
    RevsortSwitch,
)
from repro._util.rng import default_rng
from repro.hardware import revsort_packaging_3d, columnsort_packaging_3d


def demo_switch(name: str, switch, rng) -> None:
    print(f"\n=== {name} ===")
    spec = switch.spec
    print(f"inputs n = {switch.n}, outputs m = {switch.m}")
    print(f"nearsorting bound eps = {switch.epsilon_bound}")
    print(
        f"load ratio alpha = {spec.alpha:.4f} "
        f"(guaranteed capacity {spec.guaranteed_capacity} messages)"
    )
    print(f"chips = {switch.chip_count}, pins/chip = {switch.data_pins_per_chip}, "
          f"gate delays = {switch.gate_delays}")

    # Offer a light load: k = guaranteed capacity messages.
    k = max(1, spec.guaranteed_capacity)
    messages: list[Message | None] = [None] * switch.n
    for i in rng.choice(switch.n, size=k, replace=False):
        messages[int(i)] = Message.from_int(int(i) % 256, 8)

    sim = BitSerialSimulator(switch)
    record = sim.transit(messages)
    print(
        f"offered {k} messages -> delivered {len(record.delivered)}, "
        f"dropped {len(record.dropped)} "
        f"(setup + {record.cycles - 1} payload cycles)"
    )
    assert len(record.dropped) == 0, "light load must route everything"

    # Overload it: every input carries a message.
    messages = [Message.from_int(i % 256, 8) for i in range(switch.n)]
    record = sim.transit(messages)
    print(
        f"offered {switch.n} messages (overload) -> delivered "
        f"{len(record.delivered)} >= alpha*m = {spec.guaranteed_capacity}"
    )


def main() -> None:
    rng = default_rng(42)

    # Section 4: the Revsort-based switch (n must be an even power of 2).
    revsort = RevsortSwitch(n=1024, m=768)
    demo_switch("Revsort-based partial concentrator (Section 4)", revsort, rng)
    pkg = revsort_packaging_3d(revsort)
    print(
        f"3-D packaging: {len(pkg.stacks)} stacks x {pkg.stacks[0].board_count} "
        f"boards, {pkg.chip_count} chips, volume {pkg.volume} "
        f"(board types: {sorted(pkg.board_types())})"
    )

    # Section 5: the Columnsort-based switch at beta = 3/4.
    columnsort = ColumnsortSwitch.from_beta(n=1024, beta=0.75, m=768)
    demo_switch(
        f"Columnsort-based partial concentrator (Section 5, r={columnsort.r}, "
        f"s={columnsort.s})",
        columnsort,
        rng,
    )
    pkg = columnsort_packaging_3d(columnsort)
    print(
        f"3-D packaging: {len(pkg.stacks)} stacks, {pkg.chip_count} chips, "
        f"{pkg.connector_count} interstack connectors, volume {pkg.volume}"
    )


if __name__ == "__main__":
    main()
