#!/usr/bin/env python
"""The intro's application in its canonical form: a knockout-style
packet router whose per-output N-to-L concentrators are the paper's
switches.

Sweeps the concentrator width L and the offered load, prints the loss
surface with Wilson confidence intervals, and swaps a Columnsort
partial concentrator into the knockout role to show the Section 1
substitution inside a real router.

Run:  python examples/knockout_router.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.analysis.stats import wilson_interval
from repro.network.knockout import KnockoutSwitch, uniform_packet_traffic
from repro.switches.columnsort_switch import ColumnsortSwitch


def run_case(ports: int, L: int, load: float, slots: int, factory=None):
    switch = KnockoutSwitch(
        ports, L, buffer_depth=64, concentrator_factory=factory
    )
    for packets in uniform_packet_traffic(ports, load, slots, seed=31):
        switch.step(packets)
    switch.drain()
    return switch.stats


def loss_surface() -> None:
    ports, slots = 16, 300
    print(f"\n--- knockout loss surface (N={ports}, {slots} slots) ---")
    rows = []
    for load in (0.5, 0.75, 0.95):
        row: dict[str, object] = {"load": load}
        for L in (1, 2, 4, 8):
            stats = run_case(ports, L, load, slots)
            iv = wilson_interval(stats.knocked_out, max(stats.offered, 1))
            row[f"L={L}"] = f"{iv.estimate:.4f} [{iv.low:.4f},{iv.high:.4f}]"
        rows.append(row)
    print(render_table(rows))
    print(
        "Shape: loss falls steeply in L at every load — a handful of "
        "concentrator outputs per port absorbs almost all contention."
    )


def substitution() -> None:
    ports, slots, L = 16, 300, 8
    print(f"\n--- partial concentrator in the knockout role (N={ports}, L={L}) ---")

    def partial_factory(n, m):
        assert (n, m) == (16, 8)
        return ColumnsortSwitch(8, 2, 8)  # (16, 8, 7/8) partial

    rows = []
    for load in (0.6, 0.9):
        perfect = run_case(ports, L, load, slots)
        partial = run_case(ports, L, load, slots, factory=partial_factory)
        rows.append(
            {
                "load": load,
                "perfect-concentrator loss": f"{perfect.loss_rate:.4f}",
                "Columnsort-partial loss": f"{partial.loss_rate:.4f}",
                "delivered (perfect/partial)": f"{perfect.delivered}/{partial.delivered}",
            }
        )
    print(render_table(rows))
    print(
        "The (16, 8, 7/8) Columnsort switch — Θ(√n)-pin chips instead of "
        "a 32-pin monolith — serves the role with no measurable penalty."
    )


def queue_behaviour() -> None:
    print("\n--- output queue occupancy under bursty load ---")
    switch = KnockoutSwitch(16, 8, buffer_depth=64)
    peaks = []
    for slot, packets in enumerate(
        uniform_packet_traffic(16, 0.9, 120, seed=32)
    ):
        switch.step(packets)
        peaks.append(max(switch.queue_lengths()))
    print(
        render_table(
            [
                {
                    "max queue ever": max(peaks),
                    "mean of per-slot max": f"{sum(peaks) / len(peaks):.2f}",
                    "buffer overflows": switch.stats.buffer_overflow,
                }
            ]
        )
    )


def main() -> None:
    loss_surface()
    substitution()
    queue_behaviour()


if __name__ == "__main__":
    main()
