#!/usr/bin/env python
"""Step-by-step walkthrough of the paper's two algorithms on a small
matrix of valid bits — the didactic companion to Sections 4 and 5.

Prints the matrix after every step of Algorithm 1 (Revsort pass) and
Algorithm 2 (Columnsort pass), with the chips responsible for each
step, then shows the final nearsorted readout and the Lemma 2 load
ratio it implies.

Run:  python examples/algorithm_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro._util.bits import bit_reverse, ilg
from repro._util.rng import default_rng
from repro.core.nearsort import decompose_dirty_window, nearsortedness
from repro.mesh.grid import sort_columns, sort_rows
from repro.mesh.revsort import rev_rotate_rows
from repro.mesh.analysis import count_dirty_rows


def show(matrix: np.ndarray, caption: str) -> None:
    print(f"\n{caption}:")
    for row in matrix:
        print("   " + " ".join("#" if b else "." for b in row))


def algorithm1() -> None:
    print("=" * 64)
    print("Algorithm 1 — the Revsort switch's three chip stages (n=64)")
    print("=" * 64)
    rng = default_rng(7)
    side = 8
    mat = (rng.random((side, side)) < 0.45).astype(np.int8)
    k = int(mat.sum())
    show(mat, f"input valid bits (k = {k} messages)")

    mat = sort_columns(mat)
    show(mat, "step 1 — stage-1 chips sort each COLUMN (1s rise)")

    mat = sort_rows(mat)
    show(mat, "step 2 — stage-2 chips sort each ROW (1s move left)")

    q = ilg(side)
    shifts = [bit_reverse(i, q) for i in range(side)]
    mat = rev_rotate_rows(mat)
    show(mat, f"step 3 — barrel shifters rotate row i by rev(i) = {shifts}")

    mat = sort_columns(mat)
    show(mat, "step 4 — stage-3 chips sort each COLUMN again")

    flat = mat.reshape(-1)
    eps = nearsortedness(flat)
    d = decompose_dirty_window(flat)
    print(
        f"\nrow-major readout: {count_dirty_rows(mat)} dirty rows "
        f"(Theorem 3 bound {2 * 3 - 1}), eps = {eps}, dirty window = "
        f"{d.dirty_length} bits"
    )
    print(
        "Lemma 2: restricted to its first m outputs this is an "
        "(n, m, 1 - eps/m) partial concentrator."
    )


def algorithm2() -> None:
    print("\n" + "=" * 64)
    print("Algorithm 2 — the Columnsort switch's two chip stages (r=8, s=4)")
    print("=" * 64)
    rng = default_rng(11)
    r, s = 8, 4
    mat = (rng.random((r, s)) < 0.5).astype(np.int8)
    k = int(mat.sum())
    show(mat, f"input valid bits (k = {k} messages)")

    mat = sort_columns(mat)
    show(mat, "step 1 — stage-1 chips sort each COLUMN")

    mat = mat.T.reshape(r, s)
    show(mat, "step 2 — fixed wiring: column-major -> row-major reshuffle")

    mat = sort_columns(mat)
    show(mat, "step 3 — stage-2 chips sort each COLUMN again")

    flat = mat.reshape(-1)
    eps = nearsortedness(flat)
    print(
        f"\nrow-major readout: eps = {eps} <= (s-1)^2 = {(s - 1) ** 2} "
        f"(Theorem 4, exactly tight in the worst case)"
    )


def main() -> None:
    algorithm1()
    algorithm2()


if __name__ == "__main__":
    main()
