#!/usr/bin/env python
"""Gate-level walkthrough of one hyperconcentrator chip.

Builds the actual combinational netlist of an n-by-n hyperconcentrator
(the single-chip building block of every switch in the paper), streams
a bit-serial message set through it cycle by cycle, and prints the
measured gate counts and critical paths next to the paper's idealised
figures (Θ(n²) components, 2 lg n gate delays).

Run:  python examples/bit_serial_gates.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import Message
from repro._util.rng import default_rng
from repro.analysis import render_table
from repro.gates import GateHyperconcentrator
from repro.gates.evaluate import evaluate


def stream_through_netlist(gate: GateHyperconcentrator, messages) -> None:
    """Simulate the chip cycle by cycle at the gate level."""
    n = gate.n
    valid = np.array([m is not None for m in messages], dtype=bool)
    length = max((m.length for m in messages if m is not None), default=0)

    print(f"\nstreaming {int(valid.sum())} messages through the n={n} netlist:")
    print(f"  cycle 0 (setup): valid bits {valid.astype(int)}")

    routing = gate.setup(valid)
    out_wires = [gate.circuit.wire(f"y{j}") for j in range(n)]
    received: list[list[int]] = [[] for _ in range(n)]
    for cycle in range(1, length + 1):
        data = np.array(
            [m.payload[cycle - 1] if m is not None else 0 for m in messages],
            dtype=bool,
        )
        values = evaluate(gate.circuit, np.concatenate([valid, data]))
        outs = [int(values[w]) for w in out_wires]
        for j, bit in enumerate(outs):
            received[j].append(bit)
        print(f"  cycle {cycle}: outputs {outs}")

    print("  reassembled at outputs:")
    for j in range(n):
        src = [i for i in range(n) if routing.input_to_output[i] == j]
        if src:
            value = sum(bit << t for t, bit in enumerate(received[j]))
            original = messages[src[0]].to_int()
            status = "ok" if value == original else "CORRUPTED"
            print(f"    y{j} <- input {src[0]}: value {value} ({status})")


def measured_vs_paper() -> None:
    print("\nmeasured netlist figures vs the paper's idealised chip:")
    rows = []
    for n in (4, 8, 16, 32, 64):
        gate = GateHyperconcentrator(n, with_datapath=True)
        lg = math.ceil(math.log2(n))
        rows.append(
            {
                "n": n,
                "components (measured)": gate.component_count,
                "n^2 (paper Θ)": n * n,
                "datapath delay": gate.datapath_delay(),
                "2 lg n (paper)": 2 * lg,
                "setup depth": gate.setup_delay(),
            }
        )
    print(render_table(rows))
    print(
        "\nThe rank-crossbar realisation tracks the paper's Θ(n²) area; "
        "its datapath is 1 + ⌈lg n⌉ deep (same Θ(lg n) family as the "
        "paper's 2 lg n figure — see DESIGN.md for the substitution note)."
    )


def main() -> None:
    rng = default_rng(31)
    gate = GateHyperconcentrator(8, with_datapath=True)
    messages = [None] * 8
    for i in (1, 3, 4, 6):
        messages[i] = Message.from_int(int(rng.integers(0, 16)), 4)
    stream_through_netlist(gate, messages)
    measured_vs_paper()


if __name__ == "__main__":
    main()
