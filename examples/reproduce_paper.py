#!/usr/bin/env python
"""One-shot reproduction report: every headline claim of the paper,
checked live and printed as paper-vs-measured tables.

This is the narrative version of the benchmark suite (which runs the
same experiments under pytest-benchmark); useful as a quick smoke test
of the whole reproduction:

    python examples/reproduce_paper.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ColumnsortSwitch,
    FullColumnsortHyperconcentrator,
    FullRevsortHyperconcentrator,
    PrefixButterflyHyperconcentrator,
    RevsortSwitch,
    nearsortedness,
    validate_hyperconcentration,
    validate_partial_concentration,
)
from repro._util.rng import default_rng
from repro.analysis import fit_exponent, fit_log_slope, render_table
from repro.core.concentration import figure2_counterexample
from repro.hardware import table1
from repro.mesh.analysis import count_dirty_rows
from repro.mesh.revsort import revsort_nearsort
from repro.switches.iterated_columnsort import IteratedColumnsortSwitch


def check(label: str, ok: bool) -> None:
    print(f"  [{'PASS' if ok else 'FAIL'}] {label}")
    if not ok:
        raise SystemExit(f"reproduction check failed: {label}")


def section_lemmas(rng) -> None:
    print("\n## Section 3 — Lemmas 1 & 2")
    from repro.core.nearsort import (
        decompose_dirty_window,
        random_epsilon_nearsorted,
    )

    ok = True
    for eps in (0, 3, 17):
        for k in range(0, 257, 32):
            seq = random_epsilon_nearsorted(256, k, eps, rng)
            d = decompose_dirty_window(seq)
            ok &= d.dirty_length <= 2 * eps
            ok &= d.clean_ones >= max(0, k - eps)
    check("Lemma 1 structure (clean/dirty ≤ 2ε/clean) on 270 samples", ok)

    k, bits = figure2_counterexample(256, 64, 8)
    check(
        "Figure 2 converse witness: contract met but not ε-nearsorted",
        int(bits[:64].sum()) >= 56 and nearsortedness(bits) > 8,
    )


def section_revsort(rng) -> None:
    print("\n## Section 4 — Revsort-based switch (Theorem 3)")
    rows = []
    ok_dirty = ok_eps = ok_contract = True
    for n in (64, 256, 1024):
        switch = RevsortSwitch(n, max(1, (3 * n) // 4))
        side = switch.side
        worst_dirty = worst_eps = 0
        for _ in range(40):
            valid = rng.random(n) < rng.random()
            mat = revsort_nearsort(valid.astype(np.int8).reshape(side, side))
            worst_dirty = max(worst_dirty, count_dirty_rows(mat))
            worst_eps = max(worst_eps, nearsortedness(mat.reshape(-1)))
            routing = switch.setup(valid)
            try:
                validate_partial_concentration(
                    switch.spec, valid, routing.input_to_output
                )
            except Exception:
                ok_contract = False
        ok_dirty &= worst_dirty <= switch.dirty_row_bound
        ok_eps &= worst_eps <= switch.epsilon_bound
        rows.append(
            {
                "n": n,
                "dirty rows (worst/bound)": f"{worst_dirty}/{switch.dirty_row_bound}",
                "eps (worst/bound)": f"{worst_eps}/{switch.epsilon_bound}",
                "alpha": f"{switch.spec.alpha:.3f}",
                "delays": switch.gate_delays,
            }
        )
    print(render_table(rows))
    check("dirty rows ≤ 2⌈n^1/4⌉−1 everywhere", ok_dirty)
    check("measured ε ≤ dirty-window bound everywhere", ok_eps)
    check("(n, m, 1−ε/m) contract never violated", ok_contract)

    delays = [RevsortSwitch(1 << t, 1 << (t - 1)).gate_delays for t in (6, 10, 14)]
    slope, _ = fit_log_slope([1 << t for t in (6, 10, 14)], delays)
    check(f"delay slope 3·lg n (fitted {slope:.2f})", abs(slope - 3.0) < 0.1)


def section_columnsort(rng) -> None:
    print("\n## Section 5 — Columnsort-based switch (Theorem 4)")
    rows = []
    ok = True
    for r, s in ((16, 4), (64, 8), (128, 8)):
        n = r * s
        switch = ColumnsortSwitch(r, s, max(1, (3 * n) // 4))
        worst = 0
        for _ in range(60):
            valid = rng.random(n) < rng.random()
            final = switch.final_positions(valid)
            out = np.zeros(n, dtype=np.int8)
            out[final] = valid
            worst = max(worst, nearsortedness(out))
        ok &= worst <= switch.epsilon_bound
        rows.append(
            {
                "r×s": f"{r}×{s}",
                "eps (worst/(s−1)²)": f"{worst}/{switch.epsilon_bound}",
                "alpha": f"{switch.spec.alpha:.3f}",
                "delays": switch.gate_delays,
            }
        )
    print(render_table(rows))
    check("measured ε ≤ (s−1)² everywhere", ok)


def section_table1() -> None:
    print("\n## Table 1 — resource measures (n=4096, m=3072)")
    rows = table1(1 << 12, 3 << 10)
    print(render_table([r.as_row() for r in rows]))
    ns = [1 << t for t in (8, 12, 16)]
    vol = fit_exponent(ns, [table1(n, n // 2)[0].volume for n in ns])
    check(f"Revsort volume exponent 3/2 (fitted {vol:.2f})", abs(vol - 1.5) < 0.1)


def section6(rng) -> None:
    print("\n## Section 6 — full hyperconcentrators and extensions")
    ok = True
    for n in (64, 256):
        switch = FullRevsortHyperconcentrator(n)
        for _ in range(15):
            valid = rng.random(n) < rng.random()
            try:
                validate_hyperconcentration(
                    n, valid, switch.setup(valid).input_to_output
                )
            except Exception:
                ok = False
    check("full-Revsort switch hyperconcentrates", ok)

    ok = True
    switch = FullColumnsortHyperconcentrator(32, 4)
    for _ in range(30):
        valid = rng.random(128) < rng.random()
        try:
            validate_hyperconcentration(
                128, valid, switch.setup(valid).input_to_output
            )
        except Exception:
            ok = False
    check("full-Columnsort switch hyperconcentrates (4 chips deep)", ok)

    butterfly = PrefixButterflyHyperconcentrator(256)
    from repro.switches import Hyperconcentrator

    crossbar = Hyperconcentrator(256)
    agree = all(
        np.array_equal(
            butterfly.setup(v).input_to_output, crossbar.setup(v).input_to_output
        )
        for v in (rng.random((20, 256)) < 0.5)
    )
    check("prefix+butterfly ≡ combinational chip (4 pins vs 512)", agree)

    eps = [
        IteratedColumnsortSwitch(32, 8, 256, passes=k).measured_epsilon(
            80, default_rng(5)
        )
        for k in (1, 2, 3)
    ]
    print(f"  iterated Columnsort eps by stages: {eps} (bound 49)")
    check("extra stages shrink ε (open-question explorer)", eps[2] < eps[0])


def section_applications(rng) -> None:
    print("\n## Applications — the introduction's routing-network setting")
    from repro.network.analytic import knockout_loss_analytic
    from repro.network.fattree import (
        FatTree,
        full_bisection_capacity,
        random_permutation_round,
    )
    from repro.network.knockout import knockout_loss_curve

    sim = knockout_loss_curve(16, loads=[0.9], l_values=[2, 4], slots=250, seed=1)
    ok = all(
        abs(sim[(0.9, L)] - knockout_loss_analytic(16, 0.9, L)) < 0.03
        for L in (2, 4)
    )
    check("knockout loss: analytic binomial model ≈ event simulation", ok)

    tree = FatTree(4, full_bisection_capacity())
    lossless = True
    for _ in range(10):
        stats = tree.route_round(random_permutation_round(tree, 1.0, rng))
        lossless &= stats.dropped == 0
    check("fat-tree with concentrator up-links: full bisection is lossless", lossless)

    from repro.mesh.machine import mesh_vs_switch_comparison

    row = mesh_vs_switch_comparison(32)
    check(
        f"mesh baseline collapsed: {row['mesh steps (compare-exchange)']} "
        f"mesh steps -> {row['switch gate delays']} switch gate delays",
        row["speedup"] > 1,
    )


def main() -> None:
    rng = default_rng(0x1987)
    print("Reproduction report — Cormen, 'Efficient Multichip Partial")
    print("Concentrator Switches' (MIT LCS TM-322, 1987)")
    section_lemmas(rng)
    section_revsort(rng)
    section_columnsort(rng)
    section_table1()
    section6(rng)
    section_applications(rng)
    print("\nAll reproduction checks passed.")


if __name__ == "__main__":
    main()
