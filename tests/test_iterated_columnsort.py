"""Tests for the multi-pass Columnsort switch (Section 6 open-question
explorer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.rng import default_rng
from repro.core.concentration import validate_partial_concentration
from repro.errors import ConfigurationError
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.iterated_columnsort import IteratedColumnsortSwitch
from tests.conftest import random_bits


class TestConstruction:
    def test_rejects_zero_passes(self):
        with pytest.raises(ConfigurationError):
            IteratedColumnsortSwitch(8, 4, 16, passes=0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            IteratedColumnsortSwitch(8, 3, 16)

    def test_readout_parity(self):
        assert IteratedColumnsortSwitch(8, 4, 16, passes=1).readout == "rm"
        assert IteratedColumnsortSwitch(8, 4, 16, passes=2).readout == "cm"
        assert IteratedColumnsortSwitch(8, 4, 16, passes=3).readout == "rm"


class TestSinglePassEquivalence:
    """k = 1 must be exactly the Section 5 switch."""

    @pytest.mark.parametrize("r,s", [(8, 4), (16, 4), (32, 8)])
    def test_final_positions_match(self, rng, r, s):
        n = r * s
        iterated = IteratedColumnsortSwitch(r, s, n, passes=1)
        base = ColumnsortSwitch(r, s, n)
        for _ in range(30):
            valid = random_bits(rng, n)
            assert np.array_equal(
                iterated.final_positions(valid), base.final_positions(valid)
            )


class TestChipMatrixAgreement:
    @pytest.mark.parametrize("passes", [1, 2, 3, 4])
    def test_chip_level_matches_pipeline(self, rng, passes):
        r, s = 32, 8
        n = r * s
        switch = IteratedColumnsortSwitch(r, s, n, passes=passes)
        for _ in range(20):
            valid = random_bits(rng, n)
            final = switch.final_positions(valid)
            out = np.zeros(n, dtype=np.int8)
            out[final] = valid.astype(np.int8)
            expect = switch.output_sequence(
                valid.astype(np.int8).reshape(r, s)
            )
            assert np.array_equal(out, expect)

    @pytest.mark.parametrize("passes", [1, 2, 3])
    def test_final_positions_is_permutation(self, rng, passes):
        switch = IteratedColumnsortSwitch(16, 4, 64, passes=passes)
        final = switch.final_positions(random_bits(rng, 64))
        assert sorted(final) == list(range(64))


class TestEpsilonDecay:
    def test_more_passes_never_hurt(self):
        """Measured worst-case ε is nonincreasing in the pass count
        (the open-question payoff)."""
        r, s = 32, 8
        eps = [
            IteratedColumnsortSwitch(r, s, r * s, passes=k).measured_epsilon(
                120, default_rng(5)
            )
            for k in (1, 2, 3, 4)
        ]
        assert eps == sorted(eps, reverse=True)
        assert eps[-1] < eps[0] / 3  # a real improvement, not noise

    def test_bound_still_respected(self, rng):
        switch = IteratedColumnsortSwitch(32, 8, 256, passes=3)
        assert switch.measured_epsilon(100, rng) <= switch.epsilon_bound


class TestContract:
    @pytest.mark.parametrize("passes", [1, 2, 3])
    def test_partial_concentration(self, rng, passes):
        switch = IteratedColumnsortSwitch(64, 4, 200, passes=passes)
        spec = switch.spec
        for _ in range(30):
            valid = random_bits(rng, switch.n)
            routing = switch.setup(valid)
            validate_partial_concentration(spec, valid, routing.input_to_output)

    def test_resources_scale_with_passes(self):
        one = IteratedColumnsortSwitch(16, 4, 64, passes=1)
        three = IteratedColumnsortSwitch(16, 4, 64, passes=3)
        assert three.chip_stages == one.chip_stages + 2
        assert three.chip_count == one.chip_count + 2 * 4
        assert three.gate_delays == 2 * one.gate_delays
