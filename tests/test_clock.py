"""Tests for the pipelined wave simulator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.messages.clock import WavePipeline
from repro.messages.congestion import BufferPolicy
from repro.network.traffic import BernoulliTraffic, FixedKTraffic
from repro.switches.perfect import PerfectConcentrator
from repro.switches.revsort_switch import RevsortSwitch


class TestWavePipeline:
    def test_cycles_per_wave(self):
        pipe = WavePipeline(PerfectConcentrator(8, 4), payload_bits=8)
        assert pipe.cycles_per_wave == 9

    def test_light_load_throughput(self):
        switch = RevsortSwitch(64, 48)
        pipe = WavePipeline(switch, payload_bits=4, seed=1)
        traffic = FixedKTraffic(64, k=10, payload_bits=4, seed=2)
        summary = pipe.run(traffic, waves=12)
        assert summary.delivered == 12 * 10
        assert summary.total_cycles == 12 * 5
        assert summary.throughput() == pytest.approx(10 / 5)
        assert summary.payload_bits_delivered == 12 * 10 * 4

    def test_wave_records(self):
        pipe = WavePipeline(PerfectConcentrator(16, 8), payload_bits=2, seed=3)
        traffic = FixedKTraffic(16, k=4, payload_bits=2, seed=4)
        summary = pipe.run(traffic, waves=3)
        assert [w.start_cycle for w in summary.waves] == [0, 3, 6]
        assert all(w.delivered == 4 for w in summary.waves)

    def test_overload_with_buffer_recovers(self):
        switch = PerfectConcentrator(32, 8)

        class Bursty(FixedKTraffic):
            def __init__(self):
                super().__init__(32, k=0, payload_bits=2, seed=5)
                self._wave = 0

            def active_inputs(self):
                self._wave += 1
                k = 16 if self._wave == 1 else 0
                return self.rng.choice(32, size=k, replace=False)

        pipe = WavePipeline(switch, payload_bits=2, policy=BufferPolicy(), seed=6)
        summary = pipe.run(Bursty(), waves=4)
        assert summary.delivered == 16  # burst drained over later waves
        assert pipe.policy.stats.dropped == 0

    def test_wall_time_uses_critical_path(self):
        switch = RevsortSwitch(64, 48)
        pipe = WavePipeline(switch, payload_bits=7)
        assert pipe.wall_time(waves=2) == 2 * 8 * switch.gate_delays
        assert pipe.wall_time(waves=2, delay_per_gate=0.5) == pytest.approx(
            8 * switch.gate_delays
        )

    def test_traffic_width_mismatch(self):
        pipe = WavePipeline(PerfectConcentrator(8, 4), payload_bits=4)
        with pytest.raises(SimulationError):
            pipe.run(BernoulliTraffic(16, p=0.5, payload_bits=4), waves=1)

    def test_payload_width_mismatch(self):
        pipe = WavePipeline(PerfectConcentrator(8, 4), payload_bits=4)
        with pytest.raises(SimulationError):
            pipe.run(BernoulliTraffic(8, p=0.5, payload_bits=2), waves=1)

    def test_rejects_negative_payload(self):
        with pytest.raises(ConfigurationError):
            WavePipeline(PerfectConcentrator(8, 4), payload_bits=-1)
