"""Property-based robustness guarantees (Hypothesis).

Three families of properties:

* a single stuck-at-0 input pin can only *remove* one message, so the
  measured nearsortedness of the degraded occupancy stays within the
  switch's theorem bound;
* killing one message at the final stage boundary (a boundary-class
  fault) shifts at most the survivors behind it down one slot, giving
  the closed-form bound ``ε' ≤ max(ε_healthy + 1, k − 1 − p)``;
* fault-injected executions keep exact batch/scalar (and, at netlist
  sizes, gate) parity for every sampled scenario — the cross-path
  guarantee the degradation certificates rely on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nearsort import nearsortedness
from repro.engine.batch import nearsortedness_batch
from repro.faults import (
    FaultScenario,
    FaultySwitch,
    SeveredWireFault,
    StuckAtFault,
    gate_occupancy,
)
from repro.faults.scenario import chip_layers, plan_of
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.revsort_switch import RevsortSwitch
from repro.verify import strategies as vst

SMALL = RevsortSwitch(16, 12)
MEDIUM = RevsortSwitch(64, 48)
COLUMN = ColumnsortSwitch(16, 4, 48)


def _occupancy(switch, fsw: FaultySwitch, valid: np.ndarray) -> np.ndarray:
    return fsw.occupancy_batch(valid[None, :])[0]


class TestStuckAtEpsilon:
    @settings(max_examples=30)
    @given(
        pin=st.integers(min_value=0, max_value=63),
        kv=vst.valid_bits_with_k(64),
    )
    def test_single_stuck_at_zero_within_theorem_bound(self, pin, kv):
        # Removing one message cannot push the nearsorted occupancy
        # past the healthy theorem bound: the surviving messages are a
        # subset the switch nearsorts on its own terms.
        k, valid = kv
        fsw = FaultySwitch(
            MEDIUM,
            FaultScenario(name="s0", faults=(StuckAtFault(pin, 0),)),
        )
        eps = int(nearsortedness(_occupancy(MEDIUM, fsw, valid)))
        assert eps <= MEDIUM.epsilon_bound

    @settings(max_examples=30)
    @given(
        pin=st.integers(min_value=0, max_value=63),
        kv=vst.valid_bits_with_k(64),
    )
    def test_single_stuck_at_zero_routes_at_most_one_less(self, pin, kv):
        k, valid = kv
        fsw = FaultySwitch(
            MEDIUM,
            FaultScenario(name="s0", faults=(StuckAtFault(pin, 0),)),
        )
        healthy = MEDIUM.setup(valid).routed_count
        degraded = fsw.setup(valid).routed_count
        assert healthy - 1 <= degraded <= healthy


class TestBoundaryKillEpsilon:
    @settings(max_examples=30)
    @given(
        position=st.integers(min_value=0, max_value=63),
        kv=vst.valid_bits_with_k(64),
    )
    def test_final_boundary_kill_bounded_epsilon(self, position, kv):
        # Severing one wire at the last stage boundary removes one
        # already-ranked message: survivors above it keep their rank,
        # survivors behind shift down one.  The occupancy therefore
        # gains at most one extra inversion below position p, and the
        # hole at p itself is covered by k-1-p when p sits early.
        k, valid = kv
        last = len(chip_layers(plan_of(MEDIUM))) - 1
        fsw = FaultySwitch(
            MEDIUM,
            FaultScenario(
                name="cut", faults=(SeveredWireFault(last, position),)
            ),
        )
        eps_healthy = int(
            nearsortedness_batch(_healthy_occupancy(MEDIUM, valid)[None, :])[0]
        )
        eps_faulty = int(nearsortedness(_occupancy(MEDIUM, fsw, valid)))
        bound = max(eps_healthy + 1, k - 1 - position)
        assert eps_faulty <= max(bound, 0)


def _healthy_occupancy(switch, valid: np.ndarray) -> np.ndarray:
    pos = switch.final_positions_batch(valid[None, :])[0]
    occ = np.zeros(switch.n, dtype=bool)
    occ[pos[valid]] = True
    return occ


class TestSampledScenarioParity:
    @settings(max_examples=25)
    @given(data=st.data())
    def test_batch_scalar_parity_revsort(self, data):
        scenario = data.draw(vst.fault_scenarios(MEDIUM, max_faults=3))
        fsw = FaultySwitch(MEDIUM, scenario)
        batch = data.draw(vst.bit_batches(64, min_batch=1, max_batch=4))
        routed = fsw.setup_batch(batch).input_to_output
        for row in range(batch.shape[0]):
            scalar = fsw.setup(batch[row])
            assert np.array_equal(scalar.input_to_output, routed[row])

    @settings(max_examples=25)
    @given(data=st.data())
    def test_batch_scalar_parity_columnsort(self, data):
        scenario = data.draw(vst.fault_scenarios(COLUMN, max_faults=3))
        fsw = FaultySwitch(COLUMN, scenario)
        batch = data.draw(vst.bit_batches(64, min_batch=1, max_batch=4))
        routed = fsw.setup_batch(batch).input_to_output
        for row in range(batch.shape[0]):
            scalar = fsw.setup(batch[row])
            assert np.array_equal(scalar.input_to_output, routed[row])

    @settings(max_examples=20)
    @given(data=st.data())
    def test_gate_parity_small_revsort(self, data):
        scenario = data.draw(vst.fault_scenarios(SMALL, max_faults=2))
        fsw = FaultySwitch(SMALL, scenario)
        batch = data.draw(vst.bit_batches(16, min_batch=1, max_batch=4))
        gates = gate_occupancy(fsw, batch)
        assert gates is not None
        assert np.array_equal(gates, fsw.occupancy_batch(batch))

    @settings(max_examples=20)
    @given(data=st.data())
    def test_all_classes_parity_includes_stuck_pins(self, data):
        scenario = data.draw(
            vst.fault_scenarios(SMALL, max_faults=3, classes="all")
        )
        fsw = FaultySwitch(SMALL, scenario)
        batch = data.draw(vst.bit_batches(16, min_batch=1, max_batch=3))
        routed = fsw.setup_batch(batch).input_to_output
        for row in range(batch.shape[0]):
            assert np.array_equal(
                fsw.setup(batch[row]).input_to_output, routed[row]
            )
