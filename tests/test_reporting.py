"""Tests for the Markdown report builder and the reproduce --output
CLI path."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import ReportBuilder
from repro.errors import ConfigurationError


class TestReportBuilder:
    def test_render_structure(self):
        builder = ReportBuilder(title="T")
        builder.add_text("Intro", "hello")
        builder.add_table("Data", [{"a": 1, "b": 2}], note="a note")
        builder.add_checks("Checks", [("first", True), ("second", False)])
        out = builder.render()
        assert out.startswith("# T")
        assert "## Intro" in out and "hello" in out
        assert "| a | b |" in out and "| 1 | 2 |" in out
        assert "a note" in out
        assert "✅ first" in out and "❌ second" in out
        assert builder.section_count == 3

    def test_empty_table(self):
        builder = ReportBuilder(title="T")
        builder.add_table("Nothing", [])
        assert "_(no rows)_" in builder.render()

    def test_missing_keys_blank(self):
        builder = ReportBuilder(title="T")
        builder.add_table("Data", [{"a": 1, "b": 2}, {"a": 3}])
        assert "| 3 |  |" in builder.render()

    def test_write_roundtrip(self, tmp_path):
        builder = ReportBuilder(title="T")
        builder.add_text("S", "body")
        target = builder.write(tmp_path / "report.md")
        assert target.read_text(encoding="utf-8") == builder.render()

    def test_write_rejects_directory(self, tmp_path):
        builder = ReportBuilder(title="T")
        with pytest.raises(ConfigurationError):
            builder.write(tmp_path)


class TestReproduceOutput:
    def test_cli_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "repro.md"
        assert main(["reproduce", "--output", str(out_file)]) == 0
        content = out_file.read_text(encoding="utf-8")
        assert content.startswith("# Reproduction report")
        assert "All reproduction checks passed." in content
        assert "All checks passed." in content
        stdout = capsys.readouterr().out
        assert f"report written to {out_file}" in stdout
