"""The certification subsystem: exhaustive tiers, differential oracles,
metamorphic relations, and the mutation-catching acceptance test."""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest

from repro._util.rng import default_rng
from repro.engine import BatchRouting
from repro.errors import ConfigurationError, ReproError
from repro.switches.bitonic import TruncatedBitonicSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.verify import (
    CertifyOptions,
    certify_design,
    certify_registry,
    certify_switch,
    differential_check,
    quick_options,
    read_certificate_dict,
    write_certificate,
)
from repro.verify.metamorphic import metamorphic_failures


class _MutantHyper(Hyperconcentrator):
    """Deliberately injected routing fault: every routed message lands
    one output too far (mod n) in the batched path only, so the honest
    scalar oracle and the gate netlist both disagree with it."""

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        batch = super()._setup_batch(valid)
        routing = batch.input_to_output.copy()
        routed = routing >= 0
        routing[routed] = (routing[routed] + 1) % self.n
        return BatchRouting(
            n_inputs=self.n,
            n_outputs=self.n,
            valid=batch.valid,
            input_to_output=routing,
        )


class TestExhaustiveTier:
    def test_hyper_certificate_structure(self):
        cert = certify_design("hyper", {"n": 8})
        assert cert.ok
        assert cert.tier == "exhaustive"
        assert cert.exhaustive
        assert cert.total_patterns == 256
        assert set(cert.paths) == {"batch", "scalar", "gates"}
        assert {s.k: s.count for s in cert.per_k} == {
            k: math.comb(8, k) for k in range(9)
        }
        assert cert.checks["contract"] == 256
        assert cert.checks["gate_parity"] == 256
        assert cert.checks["scalar_parity"] > 0
        assert cert.checks["metamorphic"] > 0

    def test_revsort_measures_epsilon_within_bound(self):
        cert = certify_design(
            "revsort", {"n": 16, "m": 12}, options=quick_options()
        )
        assert cert.ok
        assert cert.epsilon_bound is not None
        assert cert.worst_epsilon is not None
        assert cert.worst_epsilon <= cert.epsilon_bound
        assert cert.epsilon_margin == cert.epsilon_bound - cert.worst_epsilon


class TestStratifiedTier:
    def test_per_k_budgets_and_flags(self):
        options = quick_options()  # max_total 2^12 < 2^16 -> stratified
        cert = certify_design("bitonic", {"n": 16}, options=options)
        assert cert.ok
        assert cert.tier == "stratified"
        by_k = {s.k: s for s in cert.per_k}
        assert set(by_k) == set(range(17))
        for k, s in by_k.items():
            total = math.comb(16, k)
            if total <= options.max_per_k:
                assert s.exhaustive and s.count == total
            else:
                assert not s.exhaustive and s.count == options.max_per_k
        assert not cert.exhaustive


class TestViolationDetection:
    def test_injected_routing_mutation_is_caught(self):
        """Acceptance: the differential oracle must catch a deliberately
        mutated routing, with replayable violation records."""
        options = replace(
            quick_options(), scalar_rows=1 << 12, metamorphic_rows=0
        )
        cert = certify_switch(
            _MutantHyper(8), design="hyper-mutant", options=options
        )
        assert not cert.ok
        kinds = {v.check for v in cert.violations}
        assert "scalar-parity" in kinds or "gate-parity" in kinds
        for violation in cert.violations:
            assert violation.pattern  # replayable via pattern_from_hex
            assert 0 <= violation.k <= 8

    def test_lying_epsilon_bound_is_caught(self):
        """A switch claiming ε = 0 it cannot deliver must fail the
        nearsortedness pillar."""
        switch = TruncatedBitonicSwitch(8, 8, stages=1, epsilon=0)
        cert = certify_switch(switch, design="truncated-liar")
        assert not cert.ok
        assert any(v.check == "epsilon" for v in cert.violations)
        assert cert.worst_epsilon is not None and cert.worst_epsilon > 0

    def test_violation_cap_truncates(self):
        options = replace(
            quick_options(), scalar_rows=1 << 12, max_violations=3
        )
        cert = certify_switch(_MutantHyper(8), design="mutant", options=options)
        assert cert.violations_truncated
        assert len(cert.violations) == 3


class TestDifferentialCheck:
    def test_honest_switch_has_no_divergence(self):
        rng = default_rng(7)
        batch = rng.random((64, 8)) < 0.5
        assert differential_check(Hyperconcentrator(8), batch) == []

    def test_mutant_diverges(self):
        rng = default_rng(7)
        batch = rng.random((64, 8)) < 0.5
        messages = differential_check(_MutantHyper(8), batch)
        assert messages
        assert any("diverges" in msg for msg in messages)


class TestMetamorphic:
    def test_honest_switch_passes_all_relations(self):
        switch = Hyperconcentrator(8)
        rng = default_rng(11)
        for _ in range(10):
            valid = rng.random(8) < rng.random()
            assert metamorphic_failures(switch, valid, rng) == []


class TestRegistryAndCertificates:
    def test_certify_registry_subset(self):
        certs = certify_registry(
            designs=["hyper", "perfect"], options=quick_options()
        )
        assert [c.design for c in certs] == ["hyper", "perfect"]
        assert all(c.ok for c in certs)

    def test_unknown_design_rejected(self):
        with pytest.raises(ConfigurationError):
            certify_registry(designs=["nope"])

    def test_certificate_round_trip(self, tmp_path):
        cert = certify_design("hyper", {"n": 8}, options=quick_options())
        path = write_certificate(cert, tmp_path / "sub" / "hyper.json")
        doc = read_certificate_dict(path)
        assert doc["ok"] is True
        assert doc["design"] == "hyper"
        assert doc["total_patterns"] == cert.total_patterns

    def test_wrong_schema_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else"}')
        with pytest.raises(ReproError):
            read_certificate_dict(bad)

    def test_default_options_match_issue_budgets(self):
        options = CertifyOptions()
        assert options.max_total == 1 << 16  # n <= 16 fully enumerated
        assert options.max_per_k >= 256  # n = 64 stratified per load
