"""Tests for Algorithm 2 (Columnsort nearsort pass) and the full
8-step Columnsort — Theorem 4's (s−1)² bound in particular."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.nearsort import nearsortedness
from repro.errors import ConfigurationError
from repro.mesh.analysis import is_column_major_sorted
from repro.mesh.columnsort import (
    cm_to_rm_reshape,
    columnsort_epsilon_bound,
    columnsort_full,
    columnsort_full_flat,
    columnsort_nearsort,
    columnsort_shape_for_beta,
    rm_to_cm_reshape,
    validate_columnsort_shape,
)


def random_01(rng, r, s, density=None):
    p = rng.random() if density is None else density
    return (rng.random((r, s)) < p).astype(np.int8)


class TestShapeValidation:
    def test_accepts_divisible(self):
        validate_columnsort_shape(8, 4)
        validate_columnsort_shape(8, 1)

    def test_rejects_non_divisible(self):
        with pytest.raises(ConfigurationError):
            validate_columnsort_shape(8, 3)

    def test_full_condition(self):
        validate_columnsort_shape(18, 3, full=True)   # 18 >= 2*(3-1)^2 = 8
        with pytest.raises(ConfigurationError):
            validate_columnsort_shape(8, 4, full=True)  # 8 < 2*9

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            validate_columnsort_shape(0, 1)


class TestReshapes:
    def test_cm_to_rm_semantics(self):
        # Step 2: pick up column-major, lay down row-major.
        m = np.array([[0, 4], [1, 5], [2, 6], [3, 7]])  # CM numbering
        out = cm_to_rm_reshape(m)
        assert np.array_equal(out.reshape(-1), np.arange(8))

    def test_roundtrip(self, rng):
        m = random_01(rng, 8, 4)
        assert np.array_equal(rm_to_cm_reshape(cm_to_rm_reshape(m)), m)

    def test_counts_preserved(self, rng):
        m = random_01(rng, 16, 4)
        assert cm_to_rm_reshape(m).sum() == m.sum()


class TestAlgorithm2:
    """Theorem 4: the first three Columnsort steps (s−1)²-nearsort."""

    @pytest.mark.parametrize("r,s", [(4, 2), (8, 2), (8, 4), (16, 4), (32, 8), (64, 8)])
    def test_epsilon_bound_random(self, rng, r, s):
        bound = columnsort_epsilon_bound(s)
        for _ in range(40):
            out = columnsort_nearsort(random_01(rng, r, s))
            assert nearsortedness(out.reshape(-1)) <= bound

    def test_epsilon_bound_exhaustive_4x2(self):
        r, s = 4, 2
        bound = columnsort_epsilon_bound(s)
        for bits in itertools.product([0, 1], repeat=r * s):
            m = np.array(bits, dtype=np.int8).reshape(r, s)
            out = columnsort_nearsort(m)
            assert nearsortedness(out.reshape(-1)) <= bound

    def test_bound_is_tight_for_8x4(self, rng):
        """The (s−1)² bound is achieved (not just respected) at 8×4."""
        r, s = 8, 4
        bound = columnsort_epsilon_bound(s)
        worst = 0
        for _ in range(800):
            out = columnsort_nearsort(random_01(rng, r, s))
            worst = max(worst, nearsortedness(out.reshape(-1)))
        assert worst == bound

    def test_single_column_already_sorted(self, rng):
        # s = 1: ε bound is 0 — one chip fully sorts.
        out = columnsort_nearsort(random_01(rng, 8, 1))
        flat = out.reshape(-1)
        assert nearsortedness(flat) == 0

    def test_count_preserved(self, rng):
        m = random_01(rng, 16, 4)
        assert columnsort_nearsort(m).sum() == m.sum()

    def test_adversarial_stripes(self):
        r, s = 32, 4
        m = np.zeros((r, s), dtype=np.int8)
        m[:, ::2] = 1
        out = columnsort_nearsort(m)
        assert nearsortedness(out.reshape(-1)) <= columnsort_epsilon_bound(s)


class TestEpsilonBound:
    def test_formula(self):
        assert columnsort_epsilon_bound(1) == 0
        assert columnsort_epsilon_bound(2) == 1
        assert columnsort_epsilon_bound(4) == 9
        assert columnsort_epsilon_bound(8) == 49

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            columnsort_epsilon_bound(0)


class TestColumnsortFull:
    @pytest.mark.parametrize("r,s", [(4, 2), (8, 2), (18, 3), (32, 4), (50, 5)])
    def test_fully_sorts_random(self, rng, r, s):
        for _ in range(40):
            flat = columnsort_full_flat(random_01(rng, r, s))
            assert (flat[:-1] >= flat[1:]).all()

    def test_fully_sorts_exhaustive_4x2(self):
        # 0-1 principle: exhaustive 0/1 verification proves the
        # comparator schedule correct for this shape.
        r, s = 4, 2
        for bits in itertools.product([0, 1], repeat=r * s):
            m = np.array(bits, dtype=np.int8).reshape(r, s)
            flat = columnsort_full_flat(m)
            assert (flat[:-1] >= flat[1:]).all()

    def test_column_major_readout(self, rng):
        out = columnsort_full(random_01(rng, 18, 3))
        assert is_column_major_sorted(out)

    def test_count_preserved(self, rng):
        m = random_01(rng, 32, 4)
        assert columnsort_full(m).sum() == m.sum()

    def test_rejects_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            columnsort_full(np.zeros((8, 4), dtype=np.int8))  # r < 2(s-1)^2


class TestShapeForBeta:
    def test_beta_one_half(self):
        r, s = columnsort_shape_for_beta(256, 0.5)
        assert r == s == 16

    def test_beta_one(self):
        r, s = columnsort_shape_for_beta(256, 1.0)
        assert (r, s) == (256, 1)

    def test_beta_three_quarters(self):
        r, s = columnsort_shape_for_beta(4096, 0.75)
        assert r == 512 and s == 8  # 2^9 x 2^3

    def test_product_and_divisibility(self):
        for beta in (0.5, 0.625, 0.75, 0.9, 1.0):
            for t in (8, 10, 12):
                r, s = columnsort_shape_for_beta(1 << t, beta)
                assert r * s == 1 << t
                assert r % s == 0

    def test_rejects_beta_out_of_range(self):
        with pytest.raises(ConfigurationError):
            columnsort_shape_for_beta(256, 0.4)
        with pytest.raises(ConfigurationError):
            columnsort_shape_for_beta(256, 1.1)

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigurationError):
            columnsort_shape_for_beta(100, 0.5)
