"""Tests for the congestion-control policies (Section 1's buffer /
drop / resend options)."""

from __future__ import annotations

import pytest

from repro.messages.congestion import BufferPolicy, DropPolicy, ResendPolicy
from repro.messages.message import Message


def msgs(k: int) -> list[Message]:
    return [Message.from_int(i % 16, 4) for i in range(k)]


class TestDropPolicy:
    def test_drops_permanently(self):
        policy = DropPolicy()
        policy.on_offered(5)
        policy.on_unrouted(msgs(3), round_index=0)
        assert policy.backlog() == []
        assert policy.stats.dropped == 3
        assert policy.stats.loss_rate == pytest.approx(0.6)

    def test_no_traffic_no_loss(self):
        assert DropPolicy().stats.loss_rate == 0.0


class TestBufferPolicy:
    def test_requeues(self):
        policy = BufferPolicy()
        lost = msgs(3)
        policy.on_unrouted(lost, round_index=0)
        assert policy.backlog() == lost
        assert policy.backlog() == []  # drained
        assert policy.stats.retried == 3
        assert policy.stats.dropped == 0

    def test_capacity_overflow_drops(self):
        policy = BufferPolicy(capacity=2)
        policy.on_unrouted(msgs(5), round_index=0)
        assert len(policy.backlog()) == 2
        assert policy.stats.dropped == 3

    def test_fifo_order(self):
        policy = BufferPolicy()
        first, second = msgs(2)
        policy.on_unrouted([first], 0)
        policy.on_unrouted([second], 1)
        assert policy.backlog() == [first, second]

    def test_queue_depth_telemetry(self):
        policy = BufferPolicy()
        policy.on_unrouted(msgs(3), 0)
        policy.on_unrouted(msgs(2), 1)
        assert policy.depth_history == [3, 5]
        assert policy.mean_queue_depth == pytest.approx(4.0)
        assert policy.peak_queue_depth == 5
        policy.backlog()
        policy.on_unrouted([], 2)
        assert policy.depth_history[-1] == 0

    def test_depth_empty_history(self):
        policy = BufferPolicy()
        assert policy.mean_queue_depth == 0.0
        assert policy.peak_queue_depth == 0


class TestResendPolicy:
    def test_resends_after_timeout(self):
        policy = ResendPolicy(ack_timeout=2, max_retries=3)
        lost = msgs(2)
        policy.on_unrouted(lost, round_index=0)
        # Not due yet at round 1.
        assert policy.backlog_due(1) == []
        # Due at round 2.
        assert policy.backlog_due(2) == lost
        assert policy.backlog_due(3) == []

    def test_gives_up_after_max_retries(self):
        policy = ResendPolicy(ack_timeout=1, max_retries=2)
        msg = msgs(1)
        for round_index in range(3):
            policy.on_unrouted(msg, round_index)
        assert policy.stats.dropped == 1
        assert policy.stats.retried == 2

    def test_backlog_without_round_releases_everything(self):
        policy = ResendPolicy(ack_timeout=5)
        lost = msgs(2)
        policy.on_unrouted(lost, 0)
        assert policy.backlog() == lost
