"""Bounded decimating timeseries: the Series buffer itself, the
registry/journal/merge plumbing around it, and the flows-facing ends —
instrumented simulators emitting real curves and the ``repro obs
report`` flows section.

A second byte-for-byte golden journal
(``tests/golden/flows_journal_deterministic.jsonl``) pins the
``series`` frame encoding the same way ``journal_deterministic.jsonl``
pins the original frame set: regenerate it with
:func:`deterministic_flows_run` only for intentional format changes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.export import read_metrics_json, write_metrics_json
from repro.obs.live import (
    EventJournal,
    JournalSink,
    merge_portable,
    portable_snapshot,
    read_journal,
    replay_journal,
    roundtrip,
)
from repro.obs.timeseries import DEFAULT_BUDGET, NULL_SERIES, Series

GOLDEN_DIR = Path(__file__).parent / "golden"


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TestSeries:
    def test_keeps_everything_under_budget(self):
        series = Series("s", budget=8)
        for i in range(6):
            series.append(float(i * 10), t=float(i))
        assert series.stride == 1
        assert series.points == [(float(i), float(i * 10)) for i in range(6)]
        assert series.count == 6

    def test_decimation_halves_and_doubles_stride(self):
        series = Series("s", budget=8)
        for i in range(100):
            series.append(float(i))
        # budget/2 <= kept <= budget, stride is a power of two
        assert 4 <= len(series.points) <= 8
        assert series.stride & (series.stride - 1) == 0
        assert series.count == 100
        # the kept points are spread across the whole run, not a tail
        # window: the first sample survives every halving
        assert series.points[0] == (0.0, 0.0)
        assert series.points[-1][0] > 50.0
        times = [t for t, _ in series.points]
        assert times == sorted(times)

    def test_decimation_is_a_pure_function_of_the_append_sequence(self):
        a, b = Series("a", budget=16), Series("b", budget=16)
        for i in range(1000):
            value = float((i * 7919) % 257)
            a.append(value, t=float(i))
            b.append(value, t=float(i))
        assert a.as_dict() == b.as_dict()

    def test_default_time_axis_is_the_raw_index(self):
        series = Series("s", budget=4)
        for value in (5.0, 6.0, 7.0):
            series.append(value)
        assert [t for t, _ in series.points] == [0.0, 1.0, 2.0]

    def test_budget_below_two_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            Series("s", budget=1)

    def test_summary_accessors(self):
        series = Series("s", budget=8)
        assert series.last is None and series.max is None
        assert series.mean is None
        for value in (1.0, 9.0, 4.0):
            series.append(value)
        assert series.last == 4.0
        assert series.max == 9.0
        assert series.mean == pytest.approx(14.0 / 3.0)
        assert series.values() == [1.0, 9.0, 4.0]

    def test_as_dict_from_dict_roundtrip(self):
        series = Series("s", budget=8)
        for i in range(50):
            series.append(float(i % 5), t=float(i))
        clone = Series.from_dict("s", json.loads(json.dumps(series.as_dict())))
        assert clone.as_dict() == series.as_dict()
        assert clone.budget == 8
        # the clone keeps decimating from where the original left off
        series.append(99.0, t=99.0)
        clone.append(99.0, t=99.0)
        assert clone.as_dict() == series.as_dict()


class TestRegistrySeries:
    def test_accessor_creates_and_reuses_by_labelled_key(self):
        registry = obs.Registry()
        series = registry.series("flows.queue_depth", fabric="knockout")
        series.append(3.0, t=0.0)
        again = registry.series("flows.queue_depth", fabric="knockout")
        assert again is series
        other = registry.series("flows.queue_depth", fabric="fat-tree")
        assert other is not series
        snapshot = registry.snapshot()
        assert set(snapshot["series"]) == {
            "flows.queue_depth{fabric=fat-tree}",
            "flows.queue_depth{fabric=knockout}",
        }
        assert snapshot["series"]["flows.queue_depth{fabric=knockout}"][
            "points"
        ] == [[0.0, 3.0]]

    def test_default_budget_is_bounded(self):
        registry = obs.Registry()
        series = registry.series("s")
        for i in range(10 * DEFAULT_BUDGET):
            series.append(float(i))
        assert len(series.points) <= DEFAULT_BUDGET

    def test_null_registry_hands_out_null_series(self):
        assert obs.get_registry().series("s") is NULL_SERIES
        # appending to it must be a no-op, not an error
        obs.series("s", fabric="x").append(1.0, t=2.0)
        assert obs.get_registry().snapshot()["series"] == {}

    def test_merge_rekeys_worker_series_like_gauges(self):
        parent = obs.Registry()
        parent.series("flows.queue_depth", fabric="knockout").append(1.0, t=0.0)
        worker = obs.Registry()
        worker.series("flows.queue_depth", fabric="knockout").append(7.0, t=3.0)
        merge_portable(parent, roundtrip(portable_snapshot(worker)), worker="w1")
        snapshot = parent.snapshot()
        assert set(snapshot["series"]) == {
            "flows.queue_depth{fabric=knockout}",
            "flows.queue_depth{fabric=knockout,worker=w1}",
        }
        merged = snapshot["series"]["flows.queue_depth{fabric=knockout,worker=w1}"]
        assert merged["points"] == [[3.0, 7.0]]
        assert merged["count"] == 1


def deterministic_flows_run(path: Path | None):
    """A fully deterministic journaled run that exercises ``series``
    frames (fixed clock, fixed values).  Returns ``(registry,
    journal)``; the golden
    ``tests/golden/flows_journal_deterministic.jsonl`` is this run's
    byte-exact output."""
    clock = FakeClock(start=0.0)
    registry = obs.Registry(clock=clock)
    journal = EventJournal(path, clock=clock, command="flows-golden")
    sink = JournalSink(registry, journal)
    journal.emit("phase", name="flows", total=1)
    queue = registry.series("flows.queue_depth", fabric="knockout")
    for cycle in range(6):
        queue.append(float(cycle % 3), t=float(cycle))
    registry.counter("flows.events", fabric="knockout").inc(6)
    with registry.tracer.span("flows.run", fabric="knockout"):
        clock.tick(0.5)
    sink.flush()
    # a second flush after more appends re-emits the whole buffer
    queue.append(9.0, t=6.0)
    registry.series("flows.cwnd_mean", fabric="knockout").append(2.5, t=6.0)
    sink.flush()
    journal.emit("progress", phase="flows", done=1, total=1)
    sink.close()
    journal.close()
    return registry, journal


class TestJournalSeries:
    def test_golden_flows_journal_is_byte_stable(self, tmp_path):
        path = tmp_path / "flows.jsonl"
        deterministic_flows_run(path)
        golden = GOLDEN_DIR / "flows_journal_deterministic.jsonl"
        assert path.read_bytes() == golden.read_bytes(), (
            "journal series format drifted; if intentional, regenerate "
            "tests/golden/flows_journal_deterministic.jsonl with "
            "tests.test_timeseries.deterministic_flows_run"
        )

    def test_series_frames_replay_to_the_live_snapshot(self, tmp_path):
        path = tmp_path / "flows.jsonl"
        registry, _ = deterministic_flows_run(path)
        replayed = replay_journal(path)
        snapshot = registry.snapshot()
        assert replayed["series"] == snapshot["series"]
        assert replayed["counters"] == snapshot["counters"]

    def test_flush_skips_unchanged_series(self, tmp_path):
        path = tmp_path / "j.jsonl"
        clock = FakeClock()
        registry = obs.Registry(clock=clock)
        journal = EventJournal(path, clock=clock, command="t")
        sink = JournalSink(registry, journal)
        registry.series("s").append(1.0)
        assert sink.flush() == 1
        assert sink.flush() == 0  # no new samples, no new frame
        registry.series("s").append(2.0)
        assert sink.flush() == 1
        journal.close()
        frames = [e for e in read_journal(path) if e["type"] == "series"]
        assert len(frames) == 2
        assert frames[-1]["count"] == 2

    def test_metrics_json_roundtrips_series(self, tmp_path):
        registry, _ = deterministic_flows_run(None)
        path = tmp_path / "metrics.json"
        write_metrics_json(registry.snapshot(), path)
        loaded = read_metrics_json(path)
        assert loaded["series"] == registry.snapshot()["series"]


class TestFlowsInstrumentation:
    def test_run_fabric_emits_percycle_series(self):
        from repro.network.flows import run_fabric
        from repro.network.flows.workload import WorkloadSpec

        spec = WorkloadSpec(n=16, load=0.6, duration=30.0, seed=1)
        with obs.collecting() as registry:
            run_fabric("knockout", spec)
        snapshot = registry.snapshot()
        for name in (
            "flows.queue_depth",
            "flows.inflight_cells",
            "flows.cwnd_mean",
            "flows.delivery_rate",
            "flows.fifo_depth",
        ):
            key = f"{name}{{fabric=knockout}}"
            assert key in snapshot["series"], key
            assert snapshot["series"][key]["count"] > 0
        # the time axis is the fabric cycle counter: integral, monotone
        points = snapshot["series"]["flows.queue_depth{fabric=knockout}"][
            "points"
        ]
        times = [t for t, _ in points]
        assert times == sorted(times)

    def test_congestion_policies_emit_series(self):
        from types import SimpleNamespace

        from repro.messages.congestion import BufferPolicy, RetryPolicy

        msgs = [SimpleNamespace(tag=i) for i in range(3)]
        with obs.collecting() as registry:
            buffer_policy = BufferPolicy(capacity=4)
            buffer_policy.on_unrouted(msgs[:2], round_index=0)
            retry = RetryPolicy(seed=0)
            retry.on_unrouted(msgs[2:], round_index=1)
        snapshot = registry.snapshot()
        assert "congestion.queue_depth{policy=BufferPolicy}" in snapshot["series"]
        assert "congestion.inflight{policy=RetryPolicy}" in snapshot["series"]


class TestFlowsRunJournalCLI:
    """Satellite: a ``repro flows run --journal`` session replays to
    the exact ``--metrics-out`` snapshot, series frames included."""

    def test_journal_replays_to_metrics_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "flows.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            ["flows", "run", "--fabric", "knockout", "--n", "16",
             "--load", "0.6", "--duration", "30", "--seed", "1",
             "--journal", str(journal), "--metrics-out", str(metrics),
             "--format", "json"]
        )
        assert code == 0
        capsys.readouterr()
        frames = [
            e for e in read_journal(journal) if e["type"] == "series"
        ]
        assert frames, "expected series frames in the flows journal"
        assert any(
            f["key"].startswith("flows.queue_depth") for f in frames
        )
        replayed = replay_journal(journal)
        snapshot = read_metrics_json(metrics)
        assert replayed["series"] == snapshot["series"]
        assert replayed["counters"] == snapshot["counters"]


class TestReportFlowsSection:
    """Satellite: the trajectory report's flows table."""

    def _record(self, bench, throughput, median, meta, started="2026-01-01"):
        return {
            "bench": bench,
            "median_wall_s": median,
            "throughput": throughput,
            "unit": "events",
            "meta": meta,
            "env": {"git_sha": "abc", "python": "3", "numpy": "2",
                    "cpu_count": 4},
            "started_at": started,
        }

    def test_flows_rows_pull_fct_meta_and_trend(self):
        from repro.obs.perf.report import flows_rows

        records = [
            self._record("flows.knockout", 1000.0, 0.2,
                         {"fabric": "knockout", "fct_p50": 12.0,
                          "fct_p99": 80.0}),
            self._record("flows.knockout", 2000.0, 0.1,
                         {"fabric": "knockout", "fct_p50": 11.0,
                          "fct_p99": 70.0}),
            self._record("engine.batch", 5.0, 0.3, {}),
        ]
        rows = flows_rows(records)
        assert len(rows) == 1
        row = rows[0]
        assert row["bench"] == "flows.knockout"
        assert row["fct p50"] == "11"
        assert row["fct p99"] == "70"
        assert len(row["trend"]) == 2

    def test_trajectory_report_renders_flows_section(self):
        from repro.obs.perf.report import trajectory_report

        records = [
            self._record("flows.knockout", 1500.0, 0.2,
                         {"fabric": "knockout", "fct_p50": 12.0,
                          "fct_p99": 80.0}),
        ]
        for fmt in ("table", "md"):
            text = trajectory_report(records, fmt=fmt)
            assert "flows" in text.lower()
            assert "knockout" in text
            assert "cpus=4" in text

    def test_missing_fct_meta_renders_dashes(self):
        from repro.obs.perf.report import flows_rows

        rows = flows_rows(
            [self._record("flows.concentrator", None, 0.2, {})]
        )
        assert rows[0]["fct p50"] == "-"
        assert rows[0]["events/s"] == "-"
