"""Unit and property tests for repro._util.bits."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util.bits import bit_reverse, ceil_div, ceil_lg, ilg, is_pow2, lg_star
from repro.errors import ConfigurationError


class TestIsPow2:
    def test_powers(self):
        for q in range(20):
            assert is_pow2(1 << q)

    def test_non_powers(self):
        for x in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_pow2(x)


class TestIlg:
    def test_exact(self):
        for q in range(16):
            assert ilg(1 << q) == q

    @pytest.mark.parametrize("bad", [0, -4, 3, 6, 100])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ConfigurationError):
            ilg(bad)


class TestCeilLg:
    def test_small(self):
        assert ceil_lg(1) == 0
        assert ceil_lg(2) == 1
        assert ceil_lg(3) == 2
        assert ceil_lg(4) == 2
        assert ceil_lg(5) == 3

    @given(st.integers(min_value=1, max_value=10**9))
    def test_matches_math(self, x):
        assert ceil_lg(x) == math.ceil(math.log2(x))

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ceil_lg(0)


class TestCeilDiv:
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=10**4))
    def test_matches_math(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)

    def test_rejects_bad_divisor(self):
        with pytest.raises(ConfigurationError):
            ceil_div(3, 0)


class TestBitReverse:
    def test_paper_example(self):
        # Section 4: "when √n = 16, rev(3) is 12" (q = 4 bits).
        assert bit_reverse(3, 4) == 12

    def test_zero_width(self):
        assert bit_reverse(0, 0) == 0

    @given(st.integers(min_value=0, max_value=12))
    def test_involution(self, q):
        for i in range(min(1 << q, 256)):
            assert bit_reverse(bit_reverse(i, q), q) == i

    @given(st.integers(min_value=1, max_value=12))
    def test_is_permutation(self, q):
        size = 1 << q
        if size > 4096:
            return
        seen = {bit_reverse(i, q) for i in range(size)}
        assert seen == set(range(size))

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            bit_reverse(4, 2)
        with pytest.raises(ConfigurationError):
            bit_reverse(1, -1)


class TestLgStar:
    def test_values(self):
        assert lg_star(1) == 0
        assert lg_star(2) == 0
        assert lg_star(4) == 1
        assert lg_star(16) == 2
        assert lg_star(65536) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            lg_star(0)
