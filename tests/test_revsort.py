"""Tests for Algorithm 1 (Revsort nearsort pass) and the full Revsort
pipeline of Section 6 — Theorem 3's dirty-row bound in particular."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.nearsort import nearsortedness
from repro.errors import ConfigurationError
from repro.mesh.analysis import (
    count_dirty_rows,
    is_block_sorted,
    is_row_major_sorted,
)
from repro.mesh.grid import row_counts
from repro.mesh.revsort import (
    rev_rotate_rows,
    revsort_dirty_row_bound,
    revsort_epsilon_bound,
    revsort_full,
    revsort_nearsort,
    revsort_reduce,
    revsort_repetitions,
)


def random_01(rng, side, density=None):
    p = rng.random() if density is None else density
    return (rng.random((side, side)) < p).astype(np.int8)


class TestRevRotateRows:
    def test_row_zero_fixed(self, rng):
        m = random_01(rng, 8)
        out = rev_rotate_rows(m)
        assert np.array_equal(out[0], m[0])

    def test_rotation_amounts(self):
        side = 4  # q = 2: rev = [0, 2, 1, 3]
        m = np.zeros((side, side), dtype=np.int8)
        m[:, 0] = 1  # marker in column 0 of every row
        out = rev_rotate_rows(m)
        for i, shift in enumerate([0, 2, 1, 3]):
            assert out[i, shift] == 1

    def test_counts_preserved(self, rng):
        m = random_01(rng, 16)
        assert np.array_equal(row_counts(rev_rotate_rows(m)), row_counts(m))

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            rev_rotate_rows(np.zeros((4, 8), dtype=np.int8))

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigurationError):
            rev_rotate_rows(np.zeros((6, 6), dtype=np.int8))


class TestAlgorithm1:
    """Theorem 3: after Algorithm 1, clean 1-rows on top, clean 0-rows
    at the bottom, at most 2⌈n^{1/4}⌉−1 dirty rows in the middle."""

    @pytest.mark.parametrize("side", [2, 4, 8, 16, 32])
    def test_block_structure_random(self, rng, side):
        for _ in range(40):
            m = random_01(rng, side)
            out = revsort_nearsort(m)
            assert is_block_sorted(out)

    @pytest.mark.parametrize("side", [2, 4, 8, 16, 32])
    def test_dirty_row_bound_random(self, rng, side):
        n = side * side
        bound = revsort_dirty_row_bound(n)
        for _ in range(40):
            out = revsort_nearsort(random_01(rng, side))
            assert count_dirty_rows(out) <= bound

    def test_dirty_row_bound_exhaustive_2x2(self):
        bound = revsort_dirty_row_bound(4)
        for bits in itertools.product([0, 1], repeat=4):
            m = np.array(bits, dtype=np.int8).reshape(2, 2)
            out = revsort_nearsort(m)
            assert count_dirty_rows(out) <= bound
            assert is_block_sorted(out)

    @pytest.mark.parametrize("side", [4, 8, 16])
    def test_epsilon_bound(self, rng, side):
        n = side * side
        bound = revsort_epsilon_bound(n)
        for _ in range(40):
            out = revsort_nearsort(random_01(rng, side))
            assert nearsortedness(out.reshape(-1)) <= bound

    def test_count_preserved(self, rng):
        m = random_01(rng, 16)
        out = revsort_nearsort(m)
        assert out.sum() == m.sum()

    def test_all_ones_and_all_zeros(self):
        for fill in (0, 1):
            m = np.full((8, 8), fill, dtype=np.int8)
            out = revsort_nearsort(m)
            assert np.array_equal(out, m)
            assert count_dirty_rows(out) == 0

    def test_adversarial_stripes(self):
        # Alternating columns: the hardest pattern for column sorting.
        side = 16
        m = np.zeros((side, side), dtype=np.int8)
        m[:, ::2] = 1
        out = revsort_nearsort(m)
        assert is_block_sorted(out)
        assert count_dirty_rows(out) <= revsort_dirty_row_bound(side * side)

    def test_adversarial_checkerboard(self):
        side = 16
        m = np.indices((side, side)).sum(axis=0) % 2
        out = revsort_nearsort(m.astype(np.int8))
        assert is_block_sorted(out)
        assert count_dirty_rows(out) <= revsort_dirty_row_bound(side * side)


class TestDirtyRowBoundFormula:
    def test_values(self):
        # 2⌈n^{1/4}⌉ − 1.
        assert revsort_dirty_row_bound(16) == 3
        assert revsort_dirty_row_bound(256) == 7
        assert revsort_dirty_row_bound(4096) == 15  # ⌈4096^{1/4}⌉ = 8
        assert revsort_dirty_row_bound(65536) == 31

    def test_epsilon_values(self):
        assert revsort_epsilon_bound(256) == 7 * 16

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            revsort_dirty_row_bound(0)
        with pytest.raises(ConfigurationError):
            revsort_epsilon_bound(15)  # not a perfect square


class TestRevsortReduce:
    @pytest.mark.parametrize("side", [4, 8, 16, 32])
    def test_eight_dirty_rows_after_repetitions(self, rng, side):
        """Section 6: ⌈lg lg √n⌉ repetitions leave at most 8 dirty rows."""
        reps = revsort_repetitions(side)
        for _ in range(30):
            out = revsort_reduce(random_01(rng, side), reps)
            assert count_dirty_rows(out) <= 8

    def test_requires_a_repetition(self):
        with pytest.raises(ConfigurationError):
            revsort_reduce(np.zeros((4, 4), dtype=np.int8), 0)


class TestRevsortRepetitions:
    def test_values(self):
        assert revsort_repetitions(2) == 1    # q=1
        assert revsort_repetitions(4) == 1    # q=2, ⌈lg 2⌉=1
        assert revsort_repetitions(16) == 2   # q=4, ⌈lg 4⌉=2
        assert revsort_repetitions(256) == 3  # q=8, ⌈lg 8⌉=3


class TestRevsortFull:
    @pytest.mark.parametrize("side", [2, 4, 8, 16, 32])
    def test_fully_sorts_random(self, rng, side):
        for _ in range(30):
            out = revsort_full(random_01(rng, side))
            assert is_row_major_sorted(out)

    def test_fully_sorts_exhaustive_4x4_single_ones(self):
        # Every single-1 matrix must sort to 1 in the top-left corner.
        side = 4
        for pos in range(side * side):
            m = np.zeros(side * side, dtype=np.int8)
            m[pos] = 1
            out = revsort_full(m.reshape(side, side))
            assert out[0, 0] == 1 and out.sum() == 1
            assert is_row_major_sorted(out)

    def test_count_preserved(self, rng):
        m = random_01(rng, 16)
        assert revsort_full(m).sum() == m.sum()
