"""CLI exit codes and machine-readable stdout for the verification
commands: ``verify --batch``, ``compare``, and the new ``certify``.

The ``--format json`` outputs are pinned as golden snapshots under
``tests/golden/`` — any schema or behaviour drift trips these tests.
Regenerate with the exact commands recorded in each test.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.switches import registry
from repro.verify import read_certificate_dict

GOLDEN_DIR = Path(__file__).parent / "golden"


def _golden(name: str) -> dict | list:
    return json.loads((GOLDEN_DIR / name).read_text())


class TestVerifyBatchJson:
    ARGS = [
        "verify", "columnsort", "--r", "8", "--s", "2", "--m", "12",
        "--batch", "--trials", "40", "--seed", "3", "--format", "json",
    ]

    def test_matches_golden_snapshot(self, capsys):
        assert main(self.ARGS) == 0
        assert json.loads(capsys.readouterr().out) == _golden(
            "verify_batch_columnsort.json"
        )

    def test_batch_mode_reports_epsilon(self, capsys):
        """PR 3 fix: --batch used to print '-' for worst ε; it now
        measures through final_positions_batch."""
        assert main(self.ARGS) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["worst_epsilon"] is not None
        assert doc["worst_epsilon"] <= doc["epsilon_bound"]

    def test_bad_config_exits_2(self, capsys):
        assert main(["verify", "revsort", "--n", "100", "--m", "50"]) == 2
        assert "error" in capsys.readouterr().err


class TestCompareJson:
    ARGS = [
        "compare", "--switch", "columnsort", "--r", "8", "--s", "2",
        "--m", "12", "--trials", "8", "--seed", "1", "--format", "json",
    ]

    def test_matches_golden_snapshot(self, capsys):
        assert main(self.ARGS) == 0
        assert json.loads(capsys.readouterr().out) == _golden(
            "compare_columnsort.json"
        )


class TestCertifyCommand:
    ARGS = ["certify", "hyper", "--n", "8", "--format", "json"]

    def test_matches_golden_snapshot(self, capsys):
        assert main(self.ARGS) == 0
        assert json.loads(capsys.readouterr().out) == _golden(
            "certify_hyper8.json"
        )

    def test_stdout_schema(self, capsys):
        assert main(self.ARGS) == 0
        (doc,) = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.verify/certificate@1"
        assert doc["ok"] is True
        assert doc["tier"] == "exhaustive"
        assert doc["total_patterns"] == 256
        assert {s["k"] for s in doc["per_k"]} == set(range(9))

    def test_table_output_and_exit_zero(self, capsys):
        assert main(["certify", "hyper", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out

    def test_writes_certificate_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "certs"
        assert main(["certify", "hyper", "--n", "8", "--out", str(out_dir)]) == 0
        (path,) = sorted(out_dir.glob("*.json"))
        assert path.name == "hyper-n8-m8.json"
        assert read_certificate_dict(path)["ok"] is True

    def test_single_json_artifact_path(self, tmp_path, capsys):
        target = tmp_path / "one.json"
        assert main(["certify", "hyper", "--n", "8", "--out", str(target)]) == 0
        assert read_certificate_dict(target)["design"] == "hyper"

    def test_unknown_switch_exits_2(self, capsys):
        # Invalid choices abort argparse with SystemExit(2).
        with pytest.raises(SystemExit) as exc:
            main(["certify", "nope"])
        assert exc.value.code == 2

    def test_bad_size_exits_2(self, capsys):
        assert main(["certify", "revsort", "--n", "100", "--m", "50"]) == 2
        assert "error" in capsys.readouterr().err

    def test_override_without_switch_exits_2(self, capsys):
        assert main(["certify", "--n", "8"]) == 2
        assert "error" in capsys.readouterr().err

    def test_violations_exit_1(self, monkeypatch, capsys):
        """Registering a deliberately mutated design must turn the CLI
        exit code to 1 and name the failing checks on stderr."""
        from tests.test_verify_certify import _MutantHyper

        entry = registry.SwitchEntry(
            "mutant",
            "injected routing fault (test only)",
            lambda **params: _MutantHyper(int(params["n"])),
            certify=({"n": 8},),
        )
        monkeypatch.setitem(registry.REGISTRY, "mutant", entry)
        assert main(["certify", "mutant"]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "VIOLATION" in captured.err
