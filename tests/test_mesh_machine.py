"""Tests for the step-counted mesh machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mesh.analysis import is_block_sorted
from repro.mesh.machine import MeshMachine, mesh_vs_switch_comparison
from repro.mesh.revsort import revsort_nearsort


def random_01(rng, side):
    return (rng.random((side, side)) < rng.random()).astype(np.int8)


class TestPrimitives:
    def test_sort_rows_steps_and_result(self, rng):
        machine = MeshMachine(8)
        m = random_01(rng, 8)
        run = machine.sort_rows(m)
        assert run.steps == 8
        assert (run.matrix[:, :-1] >= run.matrix[:, 1:]).all()

    def test_sort_columns(self, rng):
        machine = MeshMachine(8)
        run = machine.sort_columns(random_01(rng, 8))
        assert run.steps == 8
        assert (run.matrix[:-1] >= run.matrix[1:]).all()

    def test_snake_rows(self, rng):
        machine = MeshMachine(4)
        run = machine.sort_rows_snake(random_01(rng, 4))
        out = run.matrix
        assert (out[0, :-1] >= out[0, 1:]).all()   # even row: nonincreasing
        assert (out[1, :-1] <= out[1, 1:]).all()   # odd row: nondecreasing

    def test_rev_rotate_matches_direct(self, rng):
        from repro.mesh.revsort import rev_rotate_rows

        machine = MeshMachine(16)
        m = random_01(rng, 16)
        run = machine.rev_rotate(m)
        assert np.array_equal(run.matrix, rev_rotate_rows(m))
        # Ring distance bound: at most side/2.
        assert run.steps == 8


class TestAlgorithm1OnMesh:
    def test_matches_numpy_pipeline(self, rng):
        """The neighbour-only execution reaches exactly the same matrix
        as the direct Algorithm 1."""
        machine = MeshMachine(8)
        for _ in range(30):
            m = random_01(rng, 8)
            run = machine.algorithm1(m)
            assert np.array_equal(run.matrix, revsort_nearsort(m))
            assert is_block_sorted(run.matrix)

    def test_step_count_theta_sqrt_n(self):
        """Steps = 3·side + side/2 (three sorts + rotation): Θ(√n)."""
        for side in (4, 8, 16, 32):
            machine = MeshMachine(side)
            probe = np.zeros((side, side), dtype=np.int8)
            probe[0, 0] = 1
            assert machine.algorithm1(probe).steps == 3 * side + side // 2

    def test_shape_checked(self):
        with pytest.raises(ConfigurationError):
            MeshMachine(8).algorithm1(np.zeros((4, 4), dtype=np.int8))


class TestShearsortIteration:
    def test_step_cost(self, rng):
        machine = MeshMachine(8)
        run = machine.shearsort_iteration(random_01(rng, 8))
        assert run.steps == 16

    def test_matches_direct(self, rng):
        from repro.mesh.shearsort import shearsort_iteration

        machine = MeshMachine(8)
        m = random_01(rng, 8)
        assert np.array_equal(
            machine.shearsort_iteration(m).matrix, shearsort_iteration(m)
        )


class TestComparison:
    def test_switch_wins_and_gap_grows(self):
        small = mesh_vs_switch_comparison(8)
        large = mesh_vs_switch_comparison(64)
        assert small["speedup"] > 1
        assert large["speedup"] > small["speedup"]

    def test_formula_check_field(self):
        row = mesh_vs_switch_comparison(16)
        assert row["mesh steps (compare-exchange)"] == row["_formula_check"]
