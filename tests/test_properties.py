"""Cross-cutting property-based tests: the library-wide invariants that
must hold for every switch on every input."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concentration import (
    validate_partial_concentration,
    validate_routing_disjoint,
)
from repro.core.nearsort import nearsortedness
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.multichip_hyper import FullRevsortHyperconcentrator
from repro.switches.perfect import PerfectConcentrator
from repro.switches.revsort_switch import RevsortSwitch

# Strategy: a valid-bit vector for a fixed n.
def bits(n: int):
    return st.lists(st.booleans(), min_size=n, max_size=n).map(
        lambda xs: np.array(xs, dtype=bool)
    )


def _truncated_bitonic() -> "object":
    from repro.switches.bitonic import TruncatedBitonicSwitch

    # Calibrated offline for n=16, 8 of 10 stages (worst random ε = 4;
    # use the safe full bound n as the declared ε so the spec is honest).
    return TruncatedBitonicSwitch(16, 12, stages=8, epsilon=8)


SWITCH_FACTORIES = [
    ("hyper16", lambda: Hyperconcentrator(16)),
    ("perfect16x8", lambda: PerfectConcentrator(16, 8)),
    ("revsort16", lambda: RevsortSwitch(16, 12)),
    ("columnsort8x2", lambda: ColumnsortSwitch(8, 2, 12)),
    ("fullrev16", lambda: FullRevsortHyperconcentrator(16)),
    (
        "bitonic16",
        lambda: __import__(
            "repro.switches.bitonic", fromlist=["BitonicHyperconcentrator"]
        ).BitonicHyperconcentrator(16),
    ),
    (
        "prefixbutterfly16",
        lambda: __import__(
            "repro.switches.prefix_butterfly",
            fromlist=["PrefixButterflyHyperconcentrator"],
        ).PrefixButterflyHyperconcentrator(16),
    ),
    (
        "iterated8x2",
        lambda: __import__(
            "repro.switches.iterated_columnsort",
            fromlist=["IteratedColumnsortSwitch"],
        ).IteratedColumnsortSwitch(8, 2, 12, passes=2),
    ),
    ("truncbitonic16", _truncated_bitonic),
]


@pytest.mark.parametrize("name,factory", SWITCH_FACTORIES)
class TestUniversalSwitchInvariants:
    """Invariants every switch must satisfy for every input pattern."""

    @given(data=st.data())
    @settings(max_examples=40)
    def test_paths_disjoint_and_in_range(self, name, factory, data):
        switch = factory()
        valid = data.draw(bits(switch.n))
        routing = switch.setup(valid)
        validate_routing_disjoint(routing.input_to_output, switch.m)

    @given(data=st.data())
    @settings(max_examples=40)
    def test_only_valid_inputs_routed(self, name, factory, data):
        switch = factory()
        valid = data.draw(bits(switch.n))
        routing = switch.setup(valid)
        assert (routing.input_to_output[~valid] == -1).all()

    @given(data=st.data())
    @settings(max_examples=40)
    def test_spec_contract(self, name, factory, data):
        switch = factory()
        valid = data.draw(bits(switch.n))
        routing = switch.setup(valid)
        validate_partial_concentration(
            switch.spec, valid, routing.input_to_output
        )

    @given(data=st.data())
    @settings(max_examples=40)
    def test_setup_deterministic(self, name, factory, data):
        switch = factory()
        valid = data.draw(bits(switch.n))
        r1 = switch.setup(valid)
        r2 = switch.setup(valid)
        assert np.array_equal(r1.input_to_output, r2.input_to_output)

    @given(data=st.data())
    @settings(max_examples=40)
    def test_setup_does_not_mutate_input(self, name, factory, data):
        switch = factory()
        valid = data.draw(bits(switch.n))
        copy = valid.copy()
        switch.setup(valid)
        assert np.array_equal(valid, copy)


class TestMonotoneLoadBehaviour:
    """Adding a message never decreases the routed count for the
    nearsort-based switches (checked empirically — a useful sanity
    property, though not claimed by the paper)."""

    @given(data=st.data())
    @settings(max_examples=30)
    def test_revsort_monotone_in_k(self, data):
        switch = RevsortSwitch(64, 48)
        valid = data.draw(bits(64))
        routed_before = switch.setup(valid).routed_count
        # Add one message at the first idle wire, if any.
        idle = np.flatnonzero(~valid)
        if idle.size == 0:
            return
        grown = valid.copy()
        grown[idle[0]] = True
        routed_after = switch.setup(grown).routed_count
        assert routed_after >= routed_before


class TestNearsortComposition:
    """Lemma 2 applied to measured outputs: for any input, the number
    of 1s among the first m output positions is ≥ min(k, m − ε_meas)."""

    @given(data=st.data())
    @settings(max_examples=30)
    def test_output_prefix_density(self, data):
        switch = ColumnsortSwitch(16, 4, 64)
        valid = data.draw(bits(64))
        final = switch.final_positions(valid)
        out = np.zeros(64, dtype=np.int8)
        out[final] = valid.astype(np.int8)
        eps = nearsortedness(out)
        k = int(valid.sum())
        for m in (16, 32, 48, 64):
            routed = int(out[:m].sum())
            assert routed >= min(k, m - eps)
