"""Tests for the hardware cost model: chips, boards, stacks, the 2-D
layouts, the 3-D packagings of Figures 4/7/8, and the Table 1
calculator."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.hardware.board import Board, Stack
from repro.hardware.chip import BarrelShifterChip, HyperconcentratorChip
from repro.hardware.costs import (
    TABLE1_BETAS,
    columnsort_measures,
    revsort_measures,
    table1,
)
from repro.hardware.package import (
    InterstackConnector,
    columnsort_layout_2d,
    columnsort_packaging_3d,
    revsort_layout_2d,
    revsort_packaging_3d,
)
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.revsort_switch import RevsortSwitch


class TestChips:
    def test_hyper_chip(self):
        chip = HyperconcentratorChip(16)
        assert chip.data_pins == 32
        assert chip.area == 256
        assert chip.gate_delays == 2 * 4 + 2

    def test_barrel_chip_pins(self):
        # 2√n + ⌈(lg n)/2⌉ data pins (paper's dominant pin count).
        chip = BarrelShifterChip(16)
        assert chip.data_pins == 32 + 4

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            HyperconcentratorChip(0)


class TestBoardsAndStacks:
    def test_board_area(self):
        board = Board("t", (100, 20), wiring_area=5)
        assert board.area == 125
        assert board.chip_count == 2

    def test_stack_volume(self):
        stack = Stack("s", [Board("t", (10,))] * 4)
        assert stack.volume == 40
        assert stack.board_count == 4
        assert stack.chip_count == 4
        assert stack.board_types() == {"t"}

    def test_rejects_negative_area(self):
        with pytest.raises(ConfigurationError):
            Board("t", (-1,))


class TestRevsortPackaging:
    def test_2d_layout(self):
        switch = RevsortSwitch(64, 28)
        layout = revsort_layout_2d(switch)
        assert layout.chip_count == 24
        assert layout.crossbar_count == 2
        # Crossbar wiring Θ(n²) dominates chip area Θ(n^{3/2}).
        assert layout.crossbar_area == 2 * 64 * 64
        assert layout.crossbar_area > layout.chip_area

    def test_3d_packaging_structure(self):
        switch = RevsortSwitch(64, 28)
        pkg = revsort_packaging_3d(switch)
        assert len(pkg.stacks) == 3
        assert pkg.board_count == 3 * 8
        # 3√n hyperconcentrators + √n barrel shifters.
        assert pkg.chip_count == 4 * 8
        # Exactly two board types, as the paper emphasises.
        assert pkg.board_types() == {"hyper-only", "hyper+barrel"}

    def test_3d_volume_theta_n_1_5(self):
        """Volume = Θ(n^{3/2}): quadrupling n scales volume by ~8."""
        v1 = revsort_packaging_3d(RevsortSwitch(256, 128)).volume
        v2 = revsort_packaging_3d(RevsortSwitch(1024, 512)).volume
        ratio = v2 / v1
        assert 6.0 < ratio < 10.0


class TestColumnsortPackaging:
    def test_2d_layout(self):
        switch = ColumnsortSwitch(8, 4, 18)
        layout = columnsort_layout_2d(switch)
        assert layout.chip_count == 8
        assert layout.crossbar_count == 1
        assert layout.crossbar_area == 32 * 32

    def test_3d_packaging_structure(self):
        switch = ColumnsortSwitch(8, 4, 18)
        pkg = columnsort_packaging_3d(switch)
        assert len(pkg.stacks) == 2
        assert pkg.board_count == 8
        assert pkg.chip_count == 8
        assert pkg.connector_count == 16  # s²
        # Each connector transposes r/s = 2 wires (Figure 8).
        assert pkg.connector.wires == 2

    def test_3d_volume_theta_n_1_plus_beta(self):
        """At β = 3/4 the volume scales as n^{7/4}."""
        def volume(n):
            switch = ColumnsortSwitch.from_beta(n, 0.75, n // 2)
            return columnsort_packaging_3d(switch).volume

        ratio = volume(1 << 16) / volume(1 << 12)
        expected = 2 ** (4 * 1.75)
        assert expected / 2 < ratio < expected * 2

    def test_connector_volume_quadratic(self):
        """Figure 8: w wires transpose in Θ(w²) volume."""
        assert InterstackConnector(4).volume == 16
        assert InterstackConnector(8).volume == 64

    def test_connector_rejects_zero_wires(self):
        with pytest.raises(ConfigurationError):
            InterstackConnector(0)

    def test_interstack_volume_does_not_dominate(self):
        """Section 5: total interstack volume O(n^{2β}) ≤ O(n^{1+β})
        since β ≤ 1."""
        switch = ColumnsortSwitch.from_beta(1 << 14, 0.625, 1 << 13)
        pkg = columnsort_packaging_3d(switch)
        stack_volume = sum(s.volume for s in pkg.stacks)
        assert pkg.connector_volume < stack_volume


class TestTable1:
    def test_all_columns_present(self):
        rows = table1(1 << 12, 3 << 10)
        labels = [r.label for r in rows]
        assert labels[0] == "Revsort"
        assert len(rows) == 1 + len(TABLE1_BETAS)

    def test_revsort_column_values(self):
        n = 1 << 12  # 4096, √n = 64
        meas = revsort_measures(n, n // 2)
        assert meas.pins_per_chip == 2 * 64 + 6  # barrel dominates
        assert meas.chip_count == 3 * 64
        assert meas.epsilon == (2 * math.ceil(n ** 0.25) - 1) * 64

    def test_columnsort_beta_half_equals_revsort_shape(self):
        """At β = 1/2 the Columnsort switch matches Revsort's pins and
        chip count asymptotically (Table 1, column 2)."""
        n = 1 << 12
        rev = revsort_measures(n, n // 2)
        col = columnsort_measures(n, n // 2, 0.5)
        assert col.pins_per_chip <= rev.pins_per_chip
        assert abs(col.chip_count - rev.chip_count) <= rev.chip_count

    def test_tradeoff_direction_across_betas(self):
        """Table 1's monotone tradeoffs across β = 1/2, 5/8, 3/4."""
        n, m = 1 << 12, 3 << 10
        cols = [columnsort_measures(n, m, b) for b in TABLE1_BETAS]
        pins = [c.pins_per_chip for c in cols]
        chips = [c.chip_count for c in cols]
        eps = [c.epsilon for c in cols]
        delays = [c.gate_delays for c in cols]
        volumes = [c.volume for c in cols]
        assert pins == sorted(pins)
        assert chips == sorted(chips, reverse=True)
        assert eps == sorted(eps, reverse=True)
        assert delays == sorted(delays)
        assert volumes == sorted(volumes)

    def test_revsort_delay_between_beta_half_and_beta_34(self):
        """Table 1: Revsort's 3 lg n sits between Columnsort's 2 lg n
        (β=1/2) and equals the 3 lg n of β=3/4."""
        n, m = 1 << 12, 3 << 10
        rev = revsort_measures(n, m)
        col_half = columnsort_measures(n, m, 0.5)
        col_34 = columnsort_measures(n, m, 0.75)
        assert col_half.gate_delays < rev.gate_delays
        assert abs(rev.gate_delays - col_34.gate_delays) <= 8

    def test_as_row_keys(self):
        row = revsort_measures(256, 128).as_row()
        assert set(row) >= {"switch", "pins/chip", "chips", "load ratio", "volume"}
