"""Property: the packed evaluator is bit-exact with the reference one.

``gates.evaluate_packed`` packs trials into uint64 lanes; these tests
drive it with *randomly generated* netlists (random gate types, fan-in,
and wiring depth from :func:`repro.verify.strategies.circuits`), not
just the circuits the switch builders happen to produce.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.gates.evaluate import evaluate, evaluate_packed
from repro.gates.netlist import Op
from repro.verify import strategies as vst


class TestPackedEvaluatorParity:
    @given(circuit=vst.circuits(), data=st.data())
    def test_packed_matches_scalar_on_random_netlists(self, circuit, data):
        n = len(circuit.input_wires())
        batch = data.draw(vst.bit_batches(n))
        packed = evaluate_packed(circuit, batch)
        reference = evaluate(circuit, batch)
        assert packed.shape == reference.shape
        assert np.array_equal(packed, reference)

    @given(circuit=vst.circuits(max_gates=15), data=st.data())
    def test_single_pattern_squeeze(self, circuit, data):
        n = len(circuit.input_wires())
        row = data.draw(vst.valid_bits(n))
        assert np.array_equal(
            evaluate_packed(circuit, row), evaluate(circuit, row)
        )

    @given(circuit=vst.circuits(max_inputs=4, max_gates=25))
    def test_exhaustive_inputs_on_random_netlists(self, circuit):
        """Every input combination at once: one batch crossing word
        boundaries is compared wire-for-wire."""
        n = len(circuit.input_wires())
        shifts = np.arange(n, dtype=np.uint32)
        idx = np.arange(1 << n, dtype=np.uint32)
        batch = ((idx[:, None] >> shifts) & 1).astype(bool)
        assert np.array_equal(
            evaluate_packed(circuit, batch), evaluate(circuit, batch)
        )


class TestCircuitStrategy:
    @given(circuit=vst.circuits())
    def test_generated_netlists_are_well_formed(self, circuit):
        assert len(circuit.input_wires()) >= 1
        assert circuit.n_wires == len(circuit.gates)
        for gate in circuit.gates:
            assert all(0 <= src < gate.output for src in gate.inputs)
            if gate.op in (Op.BUF, Op.NOT):
                assert len(gate.inputs) == 1
            elif gate.op not in (Op.INPUT, Op.CONST0, Op.CONST1):
                assert len(gate.inputs) >= 2
