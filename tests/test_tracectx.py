"""Causal trace propagation: deterministic span ids, cross-process
context shipping, the `repro obs analyze` tree, and the per-worker
Chrome-trace tracks with flow arrows.

The load-bearing invariant (the PR's acceptance criterion): analyzing
a ``--workers 4`` certify journal yields per-worker span totals that
sum exactly to the flat totals of ``replay_journal`` — the causal tree
is a re-grouping of the same spans, never a different set.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs.live import read_journal, replay_journal
from repro.obs.perf.analyze import (
    analysis_report,
    analyze_journal,
    causal_tree,
    critical_path,
    phase_breakdown,
    span_totals_by_worker,
    worker_rows,
)
from repro.obs.tracectx import TraceContext, child_context, new_trace_id
from repro.obs.tracing import SpanRecord, Tracer


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TestTraceContext:
    def test_ids_are_deterministic_and_prefixed(self):
        ctx = TraceContext(trace_id="t", prefix="main")
        assert [ctx.next_id() for _ in range(3)] == ["main:1", "main:2", "main:3"]

    def test_ship_and_rebuild(self):
        ctx = TraceContext(trace_id="t-1")
        payload = ctx.ship(parent_id="main:7", prefix="shard-2")
        assert payload == {
            "trace_id": "t-1", "parent_id": "main:7", "prefix": "shard-2",
        }
        json.dumps(payload)  # must cross a process boundary as JSON
        child = child_context(payload)
        assert child.trace_id == "t-1"
        assert child.parent_id == "main:7"
        assert child.next_id() == "shard-2:1"

    def test_child_context_defaults(self):
        child = child_context({"trace_id": "t"})
        assert child.parent_id is None
        assert child.prefix == "worker"

    def test_new_trace_id_carries_command_slug(self):
        trace_id = new_trace_id("flows compare")
        assert trace_id.startswith("flows-compare-")
        assert new_trace_id(None).startswith("run-")


class TestTracerWithContext:
    def test_spans_get_ids_and_parent_links(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, context=TraceContext(trace_id="t"))
        with tracer.span("outer"):
            clock.tick(1.0)
            with tracer.span("inner"):
                clock.tick(0.5)
        inner, outer = tracer.events
        assert outer.span_id == "main:1" and outer.parent_id is None
        assert inner.span_id == "main:2" and inner.parent_id == "main:1"

    def test_root_spans_inherit_context_parent(self):
        tracer = Tracer(context=TraceContext(trace_id="t", parent_id="main:9",
                                             prefix="shard-0"))
        with tracer.span("engine.shard"):
            pass
        (record,) = tracer.events
        assert record.span_id == "shard-0:1"
        assert record.parent_id == "main:9"

    def test_without_context_ids_stay_none_and_serialize_away(self):
        tracer = Tracer()
        with tracer.span("sim.run"):
            pass
        (record,) = tracer.events
        assert record.span_id is None and record.parent_id is None
        assert "span_id" not in record.as_dict()
        assert "parent_id" not in record.as_dict()

    def test_as_dict_roundtrips_ids_through_absorb(self):
        source = Tracer(context=TraceContext(trace_id="t", prefix="w"))
        with source.span("engine.shard", shard=1):
            pass
        target = Tracer()
        target.absorb([e.as_dict() for e in source.events], worker="w1")
        (record,) = target.events
        assert record.span_id == "w:1"
        assert record.meta["worker"] == "w1"

    def test_context_attached_mid_run_is_safe(self):
        # Open spans recorded before the context arrived have no ids;
        # closing them must not pop ids minted afterwards.
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.context = TraceContext(trace_id="t")
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events
        assert inner.span_id == "main:1"
        assert outer.span_id is None
        assert tracer._id_stack == []


class TestCausalTree:
    def _spans(self):
        return [
            {"name": "verify.certify", "path": "verify.certify", "depth": 0,
             "start": 0.0, "duration_s": 4.0, "meta": {},
             "span_id": "main:1", "parent_id": None},
            {"name": "engine.shards", "path": "verify.certify/engine.shards",
             "depth": 1, "start": 0.5, "duration_s": 3.0, "meta": {},
             "span_id": "main:2", "parent_id": "main:1"},
            {"name": "engine.shard", "path": "engine.shard", "depth": 0,
             "start": 0.0, "duration_s": 2.5,
             "meta": {"shard": 0, "worker": "certify-0"},
             "span_id": "certify-0:1", "parent_id": "main:2"},
            {"name": "engine.shard", "path": "engine.shard", "depth": 0,
             "start": 0.0, "duration_s": 1.0,
             "meta": {"shard": 1, "worker": "certify-1"},
             "span_id": "certify-1:1", "parent_id": "main:2"},
            # an untraced span (no context when it was recorded)
            {"name": "sim.round", "path": "sim.round", "depth": 0,
             "start": 9.0, "duration_s": 0.1, "meta": {}},
        ]

    def test_tree_links_workers_under_dispatch(self):
        tree = causal_tree(self._spans())
        assert tree["roots"] == ["main:1"]
        assert tree["untraced"] == 1
        dispatch = tree["nodes"]["main:2"]
        assert dispatch["children"] == ["certify-0:1", "certify-1:1"]

    def test_unknown_parent_becomes_root(self):
        spans = [{"name": "orphan", "path": "orphan", "depth": 0, "start": 0.0,
                  "duration_s": 1.0, "meta": {}, "span_id": "w:1",
                  "parent_id": "gone:9"}]
        tree = causal_tree(spans)
        assert tree["roots"] == ["w:1"]

    def test_critical_path_descends_longest_child(self):
        path = critical_path(causal_tree(self._spans()))
        assert [step["span_id"] for step in path] == [
            "main:1", "main:2", "certify-0:1",
        ]
        # self time subtracts the children's durations (clamped at 0:
        # worker clocks are not the parent's, so sums can overshoot)
        assert path[0]["self_s"] == pytest.approx(1.0)
        assert path[1]["self_s"] == 0.0

    def test_worker_rows_mark_straggler(self):
        rows = worker_rows(self._spans())
        by_worker = {row["worker"]: row for row in rows}
        assert set(by_worker) == {"certify-0", "certify-1"}
        assert by_worker["certify-0"]["straggler"] is True
        assert by_worker["certify-1"]["straggler"] is False
        assert by_worker["certify-0"]["of_window"] == pytest.approx(2.5 / 3.0)

    def test_totals_partition_the_flat_list(self):
        spans = self._spans()
        totals = span_totals_by_worker(spans)
        assert sum(totals.values()) == pytest.approx(
            sum(s["duration_s"] for s in spans)
        )
        assert totals["main"] == pytest.approx(4.0 + 3.0 + 0.1)

    def test_phase_breakdown(self):
        events = [
            {"seq": 0, "t": 0.0, "type": "start", "schema": "repro.obs/journal@1"},
            {"seq": 1, "t": 1.0, "type": "phase", "name": "build"},
            {"seq": 2, "t": 4.0, "type": "phase", "name": "verify"},
            {"seq": 3, "t": 9.0, "type": "end"},
        ]
        rows = phase_breakdown(events)
        assert [(r["phase"], r["wall_s"]) for r in rows] == [
            ("build", 3.0), ("verify", 5.0),
        ]


def _journaled_dispatch(tmp_path: Path, workers_spans: dict[str, float]):
    """Build a deterministic journaled run with one dispatch and the
    given worker root-span durations; returns the journal path."""
    from repro.obs.live import EventJournal, JournalSink
    from repro.obs.live.merge import merge_portable, portable_snapshot, roundtrip

    clock = FakeClock()
    registry = obs.Registry(clock=clock)
    registry.tracer.context = TraceContext(trace_id="golden-trace")
    path = tmp_path / "dispatch.jsonl"
    journal = EventJournal(path, clock=clock, command="certify")
    journal.emit("env", pid=1, trace_id="golden-trace")
    sink = JournalSink(registry, journal)
    journal.emit("phase", name="verify")
    with registry.tracer.span("verify.certify", design="revsort"):
        clock.tick(0.25)
        with registry.tracer.span("engine.shards", backend="certify"):
            dispatch_id = registry.tracer.active_span_id
            for worker, duration in workers_spans.items():
                child = obs.Registry(clock=clock)
                child.tracer.context = child_context(
                    {"trace_id": "golden-trace", "parent_id": dispatch_id,
                     "prefix": worker}
                )
                with child.tracer.span("engine.shard", shard=worker):
                    clock.tick(duration)
                merge_portable(
                    registry, roundtrip(portable_snapshot(child)), worker=worker
                )
    sink.close()
    journal.close()
    return path


class TestAnalyzeJournal:
    def test_tree_and_totals_match_replay(self, tmp_path):
        path = _journaled_dispatch(
            tmp_path, {"shard-0": 0.5, "shard-1": 1.5, "shard-2": 0.25}
        )
        analysis = analyze_journal(path)
        assert analysis["command"] == "certify"
        assert analysis["trace_id"] == "golden-trace"
        # the tree is rooted at the command span with all workers
        # hanging off the dispatch span
        tree = analysis["tree"]
        (root,) = tree["roots"]
        dispatch = tree["nodes"][root]["children"][0]
        assert tree["nodes"][dispatch]["name"] == "engine.shards"
        assert len(tree["nodes"][dispatch]["children"]) == 3
        # THE invariant: per-worker totals sum to the flat replay total
        replayed = replay_journal(path)
        flat_total = sum(
            e["duration_s"] for e in replayed["spans"]["events"]
        )
        assert sum(analysis["totals_by_worker"].values()) == pytest.approx(
            flat_total
        )
        # straggler: shard-1 held the window longest
        straggler = [r for r in analysis["workers"] if r["straggler"]]
        assert [r["worker"] for r in straggler] == ["shard-1"]

    def test_report_renders_all_sections(self, tmp_path):
        path = _journaled_dispatch(tmp_path, {"shard-0": 0.5, "shard-1": 1.5})
        analysis = analyze_journal(path)
        for fmt in ("table", "md"):
            text = analysis_report(analysis, fmt=fmt)
            assert "engine.shards" in text
            assert "shard-1" in text
            assert "straggler" in text
            assert "verify" in text  # the phase row


class TestShardedBackendPropagation:
    def test_inline_dispatch_ships_context(self):
        """workers == 1 runs shards inline through the same plumbing:
        worker spans must still link under the dispatch span."""
        from repro.engine.backends.base import StreamSpec
        from repro.engine.backends.sharded import ShardedBackend
        from repro.switches.perfect import PerfectConcentrator

        backend = ShardedBackend(workers=1, shard_trials=8)
        switch = PerfectConcentrator(8, 6)
        with obs.collecting() as registry:
            registry.tracer.context = TraceContext(trace_id="t-backend")
            backend.run_stream(
                switch, StreamSpec(trials=16, load="half", seed=3)
            )
        spans = registry.snapshot()["spans"]["events"]
        dispatch = [s for s in spans if s["name"] == "engine.shards"]
        assert len(dispatch) == 1
        shard_spans = [s for s in spans if s["name"] == "engine.shard"]
        assert shard_spans, "expected merged worker spans"
        for span in shard_spans:
            assert span["parent_id"] == dispatch[0]["span_id"]
            assert span["span_id"].startswith("shard-")
        tree = causal_tree(spans)
        assert tree["untraced"] == 0

    def test_disabled_registry_ships_nothing(self):
        from repro.engine.backends.base import StreamSpec
        from repro.engine.backends.sharded import ShardedBackend
        from repro.switches.perfect import PerfectConcentrator

        backend = ShardedBackend(workers=1, shard_trials=8)
        switch = PerfectConcentrator(8, 6)
        # No collecting scope: the null registry must not blow up on
        # tracer access (it has none).
        summary = backend.run_stream(
            switch, StreamSpec(trials=16, load="half", seed=3)
        )
        assert summary.trials == 16


class TestCLICertifyAnalyze:
    """The acceptance scenario end-to-end: a --workers 4 certify run."""

    def _main(self, argv):
        from repro.cli import main

        return main(argv)

    def test_workers4_certify_journal_analyzes_to_matching_totals(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "certify.jsonl"
        code = self._main(
            ["certify", "revsort", "--n", "16", "--m", "12",
             "--workers", "4", "--journal", str(journal)]
        )
        assert code == 0
        # the journal carries the trace id and id-stamped spans
        events = read_journal(journal)
        env = next(e for e in events if e["type"] == "env")
        assert env["trace_id"].startswith("certify-")
        analysis = analyze_journal(journal)
        assert analysis["trace_id"] == env["trace_id"]
        workers = {r["worker"] for r in analysis["workers"]}
        assert any(w.startswith("certify-") for w in workers)
        replayed = replay_journal(journal)
        flat_total = sum(
            e["duration_s"] for e in replayed["spans"]["events"]
        )
        assert sum(analysis["totals_by_worker"].values()) == pytest.approx(
            flat_total
        )
        # worker engine.shard roots link under the parent's dispatch span
        spans = replayed["spans"]["events"]
        dispatch_ids = {
            s["span_id"] for s in spans
            if s["name"] == "engine.shards" and "span_id" in s
        }
        shard_roots = [
            s for s in spans
            if s["name"] == "engine.shard" and s["meta"].get("worker")
        ]
        assert shard_roots
        assert {s["parent_id"] for s in shard_roots} <= dispatch_ids

    def test_obs_analyze_cli_writes_report_and_trace(self, tmp_path, capsys):
        journal = _journaled_dispatch(tmp_path, {"shard-0": 0.5})
        out = tmp_path / "analysis.md"
        trace = tmp_path / "trace.json"
        code = self._main(
            ["obs", "analyze", str(journal), "--format", "md",
             "--out", str(out), "--trace-out", str(trace)]
        )
        assert code == 0
        assert "Critical path" in out.read_text(encoding="utf-8")
        document = json.loads(trace.read_text(encoding="utf-8"))
        assert any(e.get("ph") == "s" for e in document["traceEvents"])

    def test_obs_analyze_json_format(self, tmp_path, capsys):
        journal = _journaled_dispatch(tmp_path, {"shard-0": 0.5})
        code = self._main(["obs", "analyze", str(journal), "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_id"] == "golden-trace"
        assert payload["tree"]["roots"]


class TestChromeTraceWorkers:
    """Satellite 1: per-worker tracks and dispatch flow arrows."""

    def _spans(self):
        return [
            SpanRecord("verify.certify", "verify.certify", 0, 0.0, 4.0, {},
                       span_id="main:1", parent_id=None).as_dict(),
            SpanRecord("engine.shard", "engine.shard", 0, 1.0, 2.0,
                       {"worker": "shard-0"},
                       span_id="shard-0:1", parent_id="main:1").as_dict(),
            SpanRecord("engine.shard", "engine.shard", 0, 1.5, 2.0,
                       {"worker": "shard-1"},
                       span_id="shard-1:1", parent_id="main:1").as_dict(),
        ]

    def test_workers_get_their_own_named_tracks(self):
        from repro.obs.perf.chrometrace import chrome_trace_document

        document = chrome_trace_document(self._spans())
        names = {
            e["pid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert names == {1: "repro", 2: "worker shard-0", 3: "worker shard-1"}
        by_name = {
            e["args"].get("path"): e["pid"]
            for e in document["traceEvents"]
            if e.get("ph") == "X"
        }
        assert by_name["verify.certify"] == 1
        assert by_name["engine.shard"] in (2, 3)

    def test_flow_arrows_bind_dispatch_to_worker_roots(self):
        from repro.obs.perf.chrometrace import chrome_trace_document

        document = chrome_trace_document(self._spans())
        flows = [e for e in document["traceEvents"] if e.get("cat") == "flow"]
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 2
        assert all(e["pid"] == 1 for e in starts)  # from the main track
        assert {e["pid"] for e in finishes} == {2, 3}
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        assert all(e.get("bp") == "e" for e in finishes)

    def test_same_track_nesting_gets_no_arrow(self):
        from repro.obs.perf.chrometrace import chrome_trace_document

        spans = [
            SpanRecord("a", "a", 0, 0.0, 2.0, {}, span_id="main:1").as_dict(),
            SpanRecord("b", "a/b", 1, 0.5, 1.0, {},
                       span_id="main:2", parent_id="main:1").as_dict(),
        ]
        document = chrome_trace_document(spans)
        assert not [e for e in document["traceEvents"] if e.get("cat") == "flow"]

    def test_untraced_spans_export_unchanged(self):
        from repro.obs.perf.chrometrace import chrome_trace_document

        spans = [SpanRecord("sim.run", "sim.run", 0, 0.0, 1.0, {}).as_dict()]
        document = chrome_trace_document(spans)
        x = [e for e in document["traceEvents"] if e.get("ph") == "X"]
        assert len(x) == 1 and x[0]["pid"] == 1
        assert "span_id" not in x[0]["args"]
