"""Differential harness: the event-driven flow simulator against the
round-synchronous :class:`repro.network.simulate.SwitchSimulation`.

Under the degenerate workload — one fixed-front flow per ingress, all
arriving at t=0, no backpressure — the two models are the same process
stated two ways: at integer cycle/round t, input i is occupied iff
``t < sizes[i]``, every occupied input either delivers or drops, and
the front shrinks by one regardless.  The event-driven side routes via
``setup_batch`` and the round side via ``setup``, so agreement here
also re-checks the batch/scalar engine contract from a new direction.

Any bookkeeping bug in either simulator (double-count, off-by-one
front, phantom retransmission) breaks the equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.rng import default_rng
from repro.messages.congestion import DropPolicy
from repro.network.flows import ConcentratorFabric, FlowSim, one_shot_flows
from repro.network.simulate import SwitchSimulation
from repro.network.traffic import TrafficGenerator
from repro.switches.registry import build_switch

#: Registry designs under differential test — the certified shapes of
#: three distinct architectures (three-stage revsort, two-stage
#: columnsort, and the perfect concentrator reference).
DESIGNS = [
    ("revsort", {"n": 16, "m": 12}),
    ("columnsort", {"r": 8, "s": 2, "m": 12}),
    ("perfect", {"n": 16, "m": 8}),
]


class _FlowFrontTraffic(TrafficGenerator):
    """Presents the one-shot flow fronts round-synchronously: input i
    carries a message at round r iff ``r < sizes[i]``."""

    def __init__(self, sizes):
        super().__init__(len(sizes), payload_bits=0)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self._round = 0

    def active_inputs(self) -> np.ndarray:
        active = np.flatnonzero(self.sizes > self._round)
        self._round += 1
        return active


def _both_models(design: str, params: dict, sizes) -> tuple:
    """Run both simulators over the same flow fronts; independent
    switch instances so no state can leak between the models."""
    round_sim = SwitchSimulation(
        build_switch(design, **params),
        _FlowFrontTraffic(sizes),
        policy=DropPolicy(),
    )
    summary = round_sim.run(rounds=int(max(sizes)))

    stage = ConcentratorFabric(build_switch(design, **params))
    result = FlowSim(
        stage, one_shot_flows(sizes), backpressure=False
    ).run()
    return summary, result


@pytest.mark.parametrize("design,params", DESIGNS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_delivered_and_lost_match(design, params, seed):
    n = 16
    rng = default_rng(seed)
    sizes = rng.integers(1, 9, size=n)
    summary, result = _both_models(design, params, sizes)

    assert summary.offered == result.offered_cells == int(sizes.sum())
    assert summary.delivered == result.delivered_cells
    assert summary.lost == result.dropped_cells
    assert summary.rounds == result.cycles == int(sizes.max())


@pytest.mark.parametrize("design,params", DESIGNS)
def test_saturated_front_matches(design, params):
    # Every input busy for 4 cycles: the switch saturates at m per
    # cycle and both models must agree on exactly which excess is lost.
    sizes = [4] * 16
    summary, result = _both_models(design, params, sizes)
    assert summary.delivered == result.delivered_cells
    assert summary.lost == result.dropped_cells


@pytest.mark.parametrize("design,params", DESIGNS)
def test_per_cycle_front_is_identical(design, params):
    """Stronger than totals: record each cycle's delivered count on
    both sides and compare the full sequences."""
    rng = default_rng(7)
    sizes = rng.integers(1, 7, size=16)

    round_sim = SwitchSimulation(
        build_switch(design, **params),
        _FlowFrontTraffic(sizes),
        policy=DropPolicy(),
    )
    summary = round_sim.run(rounds=int(sizes.max()))
    round_per_cycle = [r.delivered for r in summary.per_round]

    stage = ConcentratorFabric(build_switch(design, **params))
    flow_per_cycle = []

    def checkpoint(sim, cycle):
        delivered = sum(s.delivered for s in sim._states)
        flow_per_cycle.append(delivered - sum(flow_per_cycle))

    FlowSim(
        stage,
        one_shot_flows(sizes),
        backpressure=False,
        checkpoint=checkpoint,
    ).run()

    assert flow_per_cycle == round_per_cycle
