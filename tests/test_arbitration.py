"""Tests for rotating-priority arbitration and the fairness metric."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.concentration import validate_perfect_concentration
from repro.errors import ConfigurationError
from repro.switches.arbitration import (
    RotatingPriorityConcentrator,
    starvation_profile,
)
from repro.switches.perfect import PerfectConcentrator
from tests.conftest import random_bits


class TestContract:
    def test_exhaustive_small(self):
        switch = RotatingPriorityConcentrator(4, 2)
        for bits in itertools.product([False, True], repeat=4):
            valid = np.array(bits, dtype=bool)
            routing = switch.setup(valid)
            validate_perfect_concentration(4, 2, valid, routing.input_to_output)

    def test_random_large(self, rng):
        switch = RotatingPriorityConcentrator(64, 32)
        for _ in range(60):
            valid = random_bits(rng, 64)
            routing = switch.setup(valid)
            validate_perfect_concentration(64, 32, valid, routing.input_to_output)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            RotatingPriorityConcentrator(4, 5)
        with pytest.raises(ConfigurationError):
            RotatingPriorityConcentrator(4, 2, stride=-1)


class TestRotation:
    def test_offset_advances(self):
        switch = RotatingPriorityConcentrator(8, 4, stride=3)
        assert switch.offset == 0
        switch.setup(np.zeros(8, dtype=bool))
        assert switch.offset == 3
        switch.setup(np.zeros(8, dtype=bool))
        assert switch.offset == 6

    def test_losers_rotate_under_full_load(self):
        """With every input valid, the winner set shifts each setup."""
        switch = RotatingPriorityConcentrator(8, 4, stride=1)
        valid = np.ones(8, dtype=bool)
        first = set(np.flatnonzero(switch.setup(valid).input_to_output >= 0))
        second = set(np.flatnonzero(switch.setup(valid).input_to_output >= 0))
        assert first != second

    def test_stride_zero_is_fixed_priority(self):
        switch = RotatingPriorityConcentrator(8, 4, stride=0)
        valid = np.ones(8, dtype=bool)
        a = switch.setup(valid).input_to_output
        b = switch.setup(valid).input_to_output
        assert np.array_equal(a, b)


class TestFairness:
    def test_fixed_priority_starves_high_indices(self, rng):
        fixed = PerfectConcentrator(16, 8)
        profile = starvation_profile(fixed, rounds=200, load=0.9, rng=rng)
        # Low-index inputs almost never lose; high-index inputs lose a lot.
        assert profile[:4].sum() < profile[-4:].sum() / 4

    def test_rotation_flattens_profile(self, rng):
        rotating = RotatingPriorityConcentrator(16, 8)
        profile = starvation_profile(rotating, rounds=200, load=0.9, rng=rng)
        assert profile.min() > 0  # everyone loses sometimes
        assert profile.max() < 3 * max(profile.min(), 1)  # roughly flat

    def test_total_losses_identical_across_policies(self, rng):
        """Arbitration redistributes losses; it cannot reduce them."""
        seeds = np.random.default_rng(5)
        fixed = PerfectConcentrator(16, 8)
        rotating = RotatingPriorityConcentrator(16, 8)
        rng_a = np.random.default_rng(6)
        rng_b = np.random.default_rng(6)
        lost_a = starvation_profile(fixed, 100, 0.9, rng_a).sum()
        lost_b = starvation_profile(rotating, 100, 0.9, rng_b).sum()
        assert lost_a == lost_b
