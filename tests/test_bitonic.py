"""Tests for the bitonic-network concentrators (Section 6's last open
question: Lemma 2 applied to non-mesh nearsorters)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro._util.bits import ilg
from repro._util.rng import default_rng
from repro.core.concentration import (
    validate_hyperconcentration,
    validate_partial_concentration,
)
from repro.errors import ConfigurationError
from repro.switches.bitonic import (
    BitonicHyperconcentrator,
    TruncatedBitonicSwitch,
    apply_comparator_stages,
    bitonic_stages,
)
from tests.conftest import random_bits


class TestBitonicStages:
    def test_stage_count(self):
        # q(q+1)/2 stages for n = 2^q.
        for q in range(1, 7):
            n = 1 << q
            assert len(bitonic_stages(n)) == q * (q + 1) // 2

    def test_comparators_per_stage(self):
        for stage in bitonic_stages(16):
            assert len(stage) == 8  # n/2
            wires = [w for comp in stage for w in comp]
            assert len(set(wires)) == 16  # parallel: no wire reused

    def test_sorts_all_01_inputs(self):
        """0–1 principle check for n = 8: the network fully sorts."""
        n = 8
        stages = bitonic_stages(n)
        for bits in itertools.product([0, 1], repeat=n):
            valid = np.array(bits, dtype=bool)
            final = apply_comparator_stages(valid, stages)
            out = np.zeros(n, dtype=np.int8)
            out[final] = valid.astype(np.int8)
            assert (out[:-1] >= out[1:]).all(), bits

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigurationError):
            bitonic_stages(6)


class TestApplyComparatorStages:
    def test_returns_permutation(self, rng):
        stages = bitonic_stages(16)
        final = apply_comparator_stages(random_bits(rng, 16), stages)
        assert sorted(final) == list(range(16))

    def test_no_exchange_on_ties(self):
        """All-equal inputs never move: messages don't swap gratuitously."""
        stages = bitonic_stages(8)
        for fill in (0, 1):
            valid = np.full(8, fill, dtype=bool)
            final = apply_comparator_stages(valid, stages)
            assert list(final) == list(range(8))


class TestBitonicHyperconcentrator:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_exhaustive_contract(self, n):
        switch = BitonicHyperconcentrator(n)
        for bits in itertools.product([False, True], repeat=n):
            valid = np.array(bits, dtype=bool)
            routing = switch.setup(valid)
            validate_hyperconcentration(n, valid, routing.input_to_output)

    def test_random_contract_large(self, rng):
        switch = BitonicHyperconcentrator(128)
        for _ in range(40):
            valid = random_bits(rng, 128)
            routing = switch.setup(valid)
            validate_hyperconcentration(128, valid, routing.input_to_output)

    def test_depth_quadratic_in_lg_n(self):
        """The reason the paper builds a dedicated chip: bitonic depth
        is lg n (lg n + 1)/2 stages vs the chip's 2 lg n gate delays."""
        for n in (16, 64, 256):
            q = ilg(n)
            switch = BitonicHyperconcentrator(n)
            assert switch.comparator_stages == q * (q + 1) // 2
            assert switch.gate_delays > 2 * q  # strictly worse for q > 3

    def test_comparator_count(self):
        sw = BitonicHyperconcentrator(16)
        assert sw.comparator_count == 8 * 10


class TestTruncatedBitonic:
    def test_calibration_monotone_decreasing_overall(self):
        """ε at the full depth is 0 and at depth 0 is ~n; the truncated
        prefix only becomes a useful nearsorter in the final merge."""
        n = 64
        full = len(bitonic_stages(n))
        eps_start = TruncatedBitonicSwitch.calibrate_epsilon(
            n, 0, 100, default_rng(1)
        )
        eps_late = TruncatedBitonicSwitch.calibrate_epsilon(
            n, full - 3, 100, default_rng(1)
        )
        eps_full = TruncatedBitonicSwitch.calibrate_epsilon(
            n, full, 100, default_rng(1)
        )
        assert eps_start > n // 2
        assert eps_late < n // 4
        assert eps_full == 0

    def test_contract_with_calibrated_epsilon(self, rng):
        n = 64
        full = len(bitonic_stages(n))
        stages = full - 3
        eps = TruncatedBitonicSwitch.calibrate_epsilon(n, stages, 300, default_rng(2))
        switch = TruncatedBitonicSwitch(n, 48, stages, eps)
        spec = switch.spec
        for _ in range(60):
            valid = random_bits(rng, n)
            routing = switch.setup(valid)
            validate_partial_concentration(spec, valid, routing.input_to_output)

    def test_stage_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            TruncatedBitonicSwitch(8, 4, stages=99, epsilon=0)
        with pytest.raises(ConfigurationError):
            TruncatedBitonicSwitch(8, 4, stages=2, epsilon=-1)

    def test_zero_stages_is_identity_wiring(self, rng):
        switch = TruncatedBitonicSwitch(8, 8, stages=0, epsilon=8)
        valid = random_bits(rng, 8)
        final = switch.final_positions(valid)
        assert list(final) == list(range(8))
