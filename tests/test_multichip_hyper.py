"""Tests for the Section 6 full multichip hyperconcentrators."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.concentration import validate_hyperconcentration
from repro.errors import ConfigurationError
from repro.switches.multichip_hyper import (
    FullColumnsortHyperconcentrator,
    FullRevsortHyperconcentrator,
)
from tests.conftest import random_bits


class TestFullRevsort:
    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    def test_hyperconcentration_random(self, rng, n):
        switch = FullRevsortHyperconcentrator(n)
        for _ in range(30):
            valid = random_bits(rng, n)
            routing = switch.setup(valid)
            validate_hyperconcentration(n, valid, routing.input_to_output)

    def test_hyperconcentration_exhaustive_4(self):
        switch = FullRevsortHyperconcentrator(4)
        for bits in itertools.product([False, True], repeat=4):
            valid = np.array(bits, dtype=bool)
            routing = switch.setup(valid)
            validate_hyperconcentration(4, valid, routing.input_to_output)

    @pytest.mark.parametrize("n", [16, 64])
    def test_all_k_values(self, rng, n):
        switch = FullRevsortHyperconcentrator(n)
        for k in range(n + 1):
            valid = random_bits(rng, n, k)
            routing = switch.setup(valid)
            validate_hyperconcentration(n, valid, routing.input_to_output)

    def test_order_preserving(self, rng):
        """The t-th valid input lands on output t (each chip is
        order-preserving and so is their composition on sorted data)."""
        n = 64
        switch = FullRevsortHyperconcentrator(n)
        valid = random_bits(rng, n, 20)
        routing = switch.setup(valid)
        positions = np.flatnonzero(valid)
        # Outputs 0..19 in *some* order; hyperconcentration only fixes
        # the set. Check the set exactly.
        assert set(routing.input_to_output[positions]) == set(range(20))

    def test_resources(self):
        switch = FullRevsortHyperconcentrator(256)
        # reps=2 at side=16: 2·2 + 1 + 6 + 1 = 12 chip layers.
        assert switch.repetitions == 2
        assert switch.chips_on_signal_path == 12
        assert switch.chip_count == 12 * 16
        assert switch.gate_delays == 12 * (2 * 4 + 2)
        assert switch.volume == switch.chip_count * 256

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            FullRevsortHyperconcentrator(10)


class TestFullColumnsort:
    @pytest.mark.parametrize("r,s", [(2, 1), (8, 2), (18, 3), (32, 4)])
    def test_hyperconcentration_random(self, rng, r, s):
        switch = FullColumnsortHyperconcentrator(r, s)
        n = r * s
        for _ in range(30):
            valid = random_bits(rng, n)
            routing = switch.setup(valid)
            validate_hyperconcentration(n, valid, routing.input_to_output)

    def test_hyperconcentration_exhaustive_8x2(self):
        switch = FullColumnsortHyperconcentrator(8, 2)
        for bits in itertools.product([False, True], repeat=16):
            valid = np.array(bits, dtype=bool)
            routing = switch.setup(valid)
            validate_hyperconcentration(16, valid, routing.input_to_output)

    @pytest.mark.parametrize("r,s", [(18, 3), (32, 4)])
    def test_all_k_values(self, rng, r, s):
        n = r * s
        switch = FullColumnsortHyperconcentrator(r, s)
        for k in range(0, n + 1, max(1, n // 16)):
            valid = random_bits(rng, n, k)
            routing = switch.setup(valid)
            validate_hyperconcentration(n, valid, routing.input_to_output)

    def test_rejects_shape_violating_full_condition(self):
        with pytest.raises(ConfigurationError):
            FullColumnsortHyperconcentrator(8, 4)  # 8 < 2(4−1)²

    def test_resources(self):
        switch = FullColumnsortHyperconcentrator(32, 4)
        assert switch.chips_on_signal_path == 4
        assert switch.chip_count == 3 * 4 + 5
        # 4 chips × (2⌈lg 32⌉ + pads)
        assert switch.gate_delays == 4 * (2 * 5 + 2)

    def test_matches_mesh_columnsort_full(self, rng):
        """The chip-level simulation and the matrix-level algorithm
        agree on where every valid bit lands."""
        from repro.mesh.columnsort import columnsort_full_flat

        r, s = 18, 3
        n = r * s
        switch = FullColumnsortHyperconcentrator(r, s)
        for _ in range(20):
            valid = random_bits(rng, n)
            final = switch.final_positions(valid)
            out = np.zeros(n, dtype=np.int8)
            out[final] = valid.astype(np.int8)
            expect = columnsort_full_flat(valid.astype(np.int8).reshape(r, s))
            assert np.array_equal(out, expect)
