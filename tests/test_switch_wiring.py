"""Tests for the stage machinery (groups, chip layers, composition)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.switches.wiring import (
    apply_chip_layer,
    column_groups,
    compose,
    row_groups,
)


class TestGroups:
    def test_column_groups_cover_all_positions(self):
        groups = column_groups(4, 3)
        assert len(groups) == 3
        allpos = np.sort(np.concatenate(groups))
        assert np.array_equal(allpos, np.arange(12))

    def test_column_group_contents(self):
        groups = column_groups(3, 2)
        assert list(groups[0]) == [0, 2, 4]
        assert list(groups[1]) == [1, 3, 5]

    def test_row_group_contents(self):
        groups = row_groups(2, 3)
        assert list(groups[0]) == [0, 1, 2]
        assert list(groups[1]) == [3, 4, 5]

    def test_row_groups_reverse_odd(self):
        groups = row_groups(2, 3, reverse_odd=True)
        assert list(groups[0]) == [0, 1, 2]
        assert list(groups[1]) == [5, 4, 3]

    def test_column_groups_reverse_odd(self):
        groups = column_groups(3, 2, reverse_odd=True)
        assert list(groups[0]) == [0, 2, 4]
        assert list(groups[1]) == [5, 3, 1]

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            column_groups(0, 3)


class TestApplyChipLayer:
    def test_sorts_columns(self):
        # 2x2 matrix, valid bits: [[0,1],[1,0]] -> columns sorted.
        valid = np.array([False, True, True, False])
        perm = apply_chip_layer(valid, column_groups(2, 2))
        out = np.empty(4, dtype=bool)
        out[perm] = valid
        assert list(out) == [True, True, False, False]

    def test_snake_rows(self):
        # One row reversed: valid goes to the right.
        valid = np.array([True, False, False])
        perm = apply_chip_layer(valid, [np.array([2, 1, 0])])
        out = np.empty(3, dtype=bool)
        out[perm] = valid
        assert list(out) == [False, False, True]

    def test_is_permutation(self, rng):
        valid = rng.random(24) < 0.5
        perm = apply_chip_layer(valid, column_groups(6, 4))
        assert sorted(perm) == list(range(24))

    def test_uncovered_positions_stay(self):
        valid = np.array([True, False, True])
        perm = apply_chip_layer(valid, [np.array([0, 1])])
        assert perm[2] == 2

    def test_rejects_overlapping_groups(self):
        valid = np.zeros(4, dtype=bool)
        with pytest.raises(ConfigurationError):
            apply_chip_layer(valid, [np.array([0, 1]), np.array([1, 2])])


class TestBatchedFastPath:
    """The vectorised rectangular-bank path must match the general
    per-group reference exactly."""

    def _reference(self, valid, groups):
        from repro.switches.hyperconcentrator import concentrate_permutation

        perm = np.arange(valid.size, dtype=np.int64)
        for g in groups:
            local = concentrate_permutation(valid[g])
            perm[g] = g[local]
        return perm

    @pytest.mark.parametrize(
        "rows,cols,maker,kwargs",
        [
            (8, 8, column_groups, {}),
            (8, 8, row_groups, {}),
            (16, 4, column_groups, {}),
            (4, 16, row_groups, {}),
            (6, 9, row_groups, {"reverse_odd": True}),
            (9, 6, column_groups, {"reverse_odd": True}),
        ],
    )
    def test_matches_reference(self, rng, rows, cols, maker, kwargs):
        groups = maker(rows, cols, **kwargs)
        for _ in range(30):
            valid = rng.random(rows * cols) < rng.random()
            assert np.array_equal(
                apply_chip_layer(valid, groups), self._reference(valid, groups)
            )

    def test_irregular_groups_use_general_path(self, rng):
        valid = rng.random(7) < 0.5
        groups = [np.array([0, 3, 5]), np.array([1, 2])]
        assert np.array_equal(
            apply_chip_layer(valid, groups), self._reference(valid, groups)
        )

    def test_batched_overlap_detected(self):
        valid = np.zeros(6, dtype=bool)
        groups = [np.array([0, 1, 2]), np.array([2, 3, 4])]  # equal sizes
        with pytest.raises(ConfigurationError):
            apply_chip_layer(valid, groups)


class TestCompose:
    def test_order(self):
        p1 = np.array([1, 2, 0])  # pos p -> p1[p]
        p2 = np.array([0, 2, 1])
        combined = compose([p1, p2])
        # input at 0 -> 1 -> 2
        assert combined[0] == 2

    def test_identity(self):
        p = np.arange(5)
        assert np.array_equal(compose([p, p]), p)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            compose([])
