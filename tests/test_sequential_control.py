"""Tests for the clocked setup controller of the prefix+butterfly
switch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.switches.prefix_butterfly import PrefixButterflyHyperconcentrator
from repro.switches.sequential_control import (
    SequentialController,
    setup_latency_comparison,
)
from tests.conftest import random_bits


class TestController:
    def test_setup_cycles_formula(self):
        assert SequentialController(16).setup_cycles == 2 * 4 + 2
        assert SequentialController(64).setup_cycles == 2 * 6 + 2

    def test_prefix_sweep_converges(self, rng):
        controller = SequentialController(32)
        valid = random_bits(rng, 32)
        trace = controller.run_setup(valid)
        # Final snapshot is the inclusive prefix popcount.
        expected = np.cumsum(valid.astype(np.int64))
        assert np.array_equal(trace.rank_snapshots[-1], expected)

    def test_intermediate_snapshots_are_windowed_counts(self, rng):
        """After cycle t, counts[i] = popcount of window (i−2^t, i]."""
        controller = SequentialController(16)
        valid = random_bits(rng, 16)
        trace = controller.run_setup(valid)
        v = valid.astype(np.int64)
        for t, snapshot in enumerate(trace.rank_snapshots):
            width = 1 << (t + 1)
            for i in range(16):
                lo = max(0, i - width + 1)
                assert snapshot[i] == v[lo : i + 1].sum(), (t, i)

    def test_settings_match_functional_switch(self, rng):
        n = 16
        controller = SequentialController(n)
        switch = PrefixButterflyHyperconcentrator(n)
        for _ in range(20):
            valid = random_bits(rng, n)
            trace = controller.run_setup(valid)
            switch.setup(valid)
            for mine, theirs in zip(trace.settings, switch.switch_settings()):
                assert np.array_equal(mine, theirs)

    def test_trace_cycles(self, rng):
        controller = SequentialController(8)
        trace = controller.run_setup(random_bits(rng, 8))
        assert trace.cycles == controller.setup_cycles
        assert len(trace.rank_snapshots) == 3
        assert len(trace.settings) == 3

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            SequentialController(1)
        with pytest.raises(ConfigurationError):
            SequentialController(12)

    def test_rejects_wrong_width(self):
        with pytest.raises(SimulationError):
            SequentialController(8).run_setup(np.zeros(4, dtype=bool))


class TestLatencyComparison:
    def test_table_shape(self):
        rows = setup_latency_comparison([16, 64, 256])
        assert [r["n"] for r in rows] == [16, 64, 256]
        for row in rows:
            assert row["combinational chip setup cycles"] == 1
            assert row["prefix+butterfly setup cycles"] > 1

    def test_latency_grows_logarithmically(self):
        rows = setup_latency_comparison([16, 256])
        # lg 256 / lg 16 = 2: cycles 2q+2 go from 10 to 18.
        assert rows[0]["prefix+butterfly setup cycles"] == 10
        assert rows[1]["prefix+butterfly setup cycles"] == 18
