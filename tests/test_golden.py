"""Golden regression corpus.

Records the exact routings of every switch family on fixed seeded
inputs; any behavioural drift in a refactor trips these tests.  The
corpus is generated deterministically in-memory (no data files to go
stale): the expectations below were produced by the current
implementation and hand-checked against the theorems' guarantees.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro._util.rng import default_rng
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.multichip_hyper import (
    FullColumnsortHyperconcentrator,
    FullRevsortHyperconcentrator,
)
from repro.switches.prefix_butterfly import PrefixButterflyHyperconcentrator
from repro.switches.revsort_switch import RevsortSwitch


def routing_digest(switch, n: int, trials: int = 25, seed: int = 0x60D) -> str:
    """SHA-256 of the concatenated routings over a fixed input stream."""
    rng = default_rng(seed)
    hasher = hashlib.sha256()
    for _ in range(trials):
        valid = rng.random(n) < rng.random()
        routing = switch.setup(valid)
        hasher.update(valid.tobytes())
        hasher.update(routing.input_to_output.astype(np.int64).tobytes())
    return hasher.hexdigest()[:16]


GOLDEN = {
    "hyper64": ("feb581022214df5e", lambda: Hyperconcentrator(64), 64),
    "revsort256": ("fa192ced6e8a29e8", lambda: RevsortSwitch(256, 192), 256),
    "columnsort64x4": (
        "a5bb827d8d35732d",
        lambda: ColumnsortSwitch(64, 4, 192),
        256,
    ),
    "fullrev64": (
        "8639fd19b9797f7a",
        lambda: FullRevsortHyperconcentrator(64),
        64,
    ),
    "fullcol32x4": (
        "98ea8db70ec8e856",
        lambda: FullColumnsortHyperconcentrator(32, 4),
        128,
    ),
    "butterfly64": (
        "feb581022214df5e",  # identical function to hyper64 by design
        lambda: PrefixButterflyHyperconcentrator(64),
        64,
    ),
}


@pytest.mark.parametrize("name", list(GOLDEN))
def test_golden_routing_digest(name):
    expected, factory, n = GOLDEN[name]
    digest = routing_digest(factory(), n)
    assert digest == expected, (
        f"{name}: routing behaviour changed (digest {digest}, expected "
        f"{expected}). If the change is intentional, re-record the corpus."
    )


def test_butterfly_digest_matches_crossbar():
    """The two hyperconcentrator technologies must stay functionally
    identical — their digests are pinned to the same value."""
    assert GOLDEN["hyper64"][0] == GOLDEN["butterfly64"][0]
