"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestTable1Command:
    def test_prints_all_switches(self, capsys):
        assert main(["table1", "--n", "1024", "--m", "768"]) == 0
        out = capsys.readouterr().out
        assert "Revsort" in out
        assert "Columnsort b=0.5" in out
        assert "Columnsort b=0.75" in out

    def test_bad_size_is_an_error(self, capsys):
        assert main(["table1", "--n", "1000", "--m", "500"]) == 2
        assert "error" in capsys.readouterr().err


class TestDesignCommand:
    def test_finds_feasible_design(self, capsys):
        assert main(["design", "--n", "256", "--m", "192", "--pin-budget", "80"]) == 0
        out = capsys.readouterr().out
        assert "best feasible design" in out

    def test_infeasible_budget(self, capsys):
        assert main(["design", "--n", "256", "--m", "192", "--pin-budget", "3"]) == 1
        assert "no design fits" in capsys.readouterr().out


class TestSimulateCommand:
    def test_revsort_light_load(self, capsys):
        code = main(
            [
                "simulate",
                "--switch",
                "revsort",
                "--n",
                "256",
                "--m",
                "192",
                "--load",
                "0.3",
                "--rounds",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "loss rate" in out
        assert "0.0000" in out  # below capacity: no loss

    def test_columnsort_by_shape(self, capsys):
        code = main(
            [
                "simulate",
                "--switch",
                "columnsort",
                "--r",
                "64",
                "--s",
                "4",
                "--m",
                "192",
                "--load",
                "0.4",
                "--rounds",
                "5",
            ]
        )
        assert code == 0

    def test_policies(self, capsys):
        for policy in ("drop", "buffer", "resend"):
            code = main(
                [
                    "simulate",
                    "--n",
                    "64",
                    "--m",
                    "48",
                    "--load",
                    "0.9",
                    "--rounds",
                    "5",
                    "--policy",
                    policy,
                ]
            )
            assert code == 0


class TestVerifyCommand:
    def test_revsort_contract(self, capsys):
        code = main(
            ["verify", "--switch", "revsort", "--n", "256", "--m", "192", "--trials", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_columnsort_beta(self, capsys):
        code = main(
            [
                "verify",
                "--switch",
                "columnsort",
                "--n",
                "256",
                "--m",
                "192",
                "--beta",
                "0.75",
                "--trials",
                "20",
            ]
        )
        assert code == 0


class TestKnockoutCommand:
    def test_analytic_and_simulated_close(self, capsys):
        assert main(["knockout", "--ports", "16", "--load", "0.9", "--slots", "150"]) == 0
        out = capsys.readouterr().out
        assert "analytic loss" in out and "simulated loss" in out


class TestReproduceCommand:
    def test_full_report_passes(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "All reproduction checks passed." in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestTable1Formats:
    def test_json(self, capsys):
        import json

        assert main(["table1", "--n", "256", "--m", "192", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["switch"] == "Revsort"
        assert len(rows) == 4

    def test_csv(self, capsys):
        assert main(["table1", "--n", "256", "--m", "192", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("switch,")
        assert len(lines) == 5
