"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestTable1Command:
    def test_prints_all_switches(self, capsys):
        assert main(["table1", "--n", "1024", "--m", "768"]) == 0
        out = capsys.readouterr().out
        assert "Revsort" in out
        assert "Columnsort b=0.5" in out
        assert "Columnsort b=0.75" in out

    def test_bad_size_is_an_error(self, capsys):
        assert main(["table1", "--n", "1000", "--m", "500"]) == 2
        assert "error" in capsys.readouterr().err


class TestDesignCommand:
    def test_finds_feasible_design(self, capsys):
        assert main(["design", "--n", "256", "--m", "192", "--pin-budget", "80"]) == 0
        out = capsys.readouterr().out
        assert "best feasible design" in out

    def test_infeasible_budget(self, capsys):
        assert main(["design", "--n", "256", "--m", "192", "--pin-budget", "3"]) == 1
        assert "no design fits" in capsys.readouterr().out


class TestSimulateCommand:
    def test_revsort_light_load(self, capsys):
        code = main(
            [
                "simulate",
                "--switch",
                "revsort",
                "--n",
                "256",
                "--m",
                "192",
                "--load",
                "0.3",
                "--rounds",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "loss rate" in out
        assert "0.0000" in out  # below capacity: no loss

    def test_columnsort_by_shape(self, capsys):
        code = main(
            [
                "simulate",
                "--switch",
                "columnsort",
                "--r",
                "64",
                "--s",
                "4",
                "--m",
                "192",
                "--load",
                "0.4",
                "--rounds",
                "5",
            ]
        )
        assert code == 0

    def test_policies(self, capsys):
        for policy in ("drop", "buffer", "resend"):
            code = main(
                [
                    "simulate",
                    "--n",
                    "64",
                    "--m",
                    "48",
                    "--load",
                    "0.9",
                    "--rounds",
                    "5",
                    "--policy",
                    policy,
                ]
            )
            assert code == 0


class TestVerifyCommand:
    def test_revsort_contract(self, capsys):
        code = main(
            ["verify", "--switch", "revsort", "--n", "256", "--m", "192", "--trials", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_columnsort_beta(self, capsys):
        code = main(
            [
                "verify",
                "--switch",
                "columnsort",
                "--n",
                "256",
                "--m",
                "192",
                "--beta",
                "0.75",
                "--trials",
                "20",
            ]
        )
        assert code == 0


class TestKnockoutCommand:
    def test_analytic_and_simulated_close(self, capsys):
        assert main(["knockout", "--ports", "16", "--load", "0.9", "--slots", "150"]) == 0
        out = capsys.readouterr().out
        assert "analytic loss" in out and "simulated loss" in out


class TestReproduceCommand:
    def test_full_report_passes(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "All reproduction checks passed." in out


class TestObsCommand:
    def test_catalog_table(self, capsys):
        assert main(["obs"]) == 0
        out = capsys.readouterr().out
        assert "sim.delivered" in out
        assert "gates.settle_time" in out

    def test_catalog_json(self, capsys):
        import json

        assert main(["obs", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(r["metric"] == "sim.lost" for r in rows)

    def test_demo_prints_snapshot(self, capsys):
        assert main(["obs", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "`sim.delivered`" in out
        assert "sim.round.seconds" in out


class TestMetricsOut:
    SIM_ARGS = [
        "simulate", "--switch", "revsort", "--n", "256", "--m", "192",
        "--load", "0.9", "--rounds", "10",
    ]

    def test_simulate_writes_snapshot(self, capsys, tmp_path):
        import json

        target = tmp_path / "metrics.json"
        assert main(self.SIM_ARGS + ["--metrics-out", str(target)]) == 0
        assert "metrics written to" in capsys.readouterr().out
        doc = json.loads(target.read_text())
        assert doc["schema"] == "repro.obs/metrics"
        assert doc["counters"]["sim.rounds"] == 10
        assert doc["counters"]["sim.delivered"] > 0
        assert doc["counters"]["sim.lost"] > 0  # overloaded: losses occur
        # at least one timing histogram with per-round samples
        assert doc["histograms"]["sim.round.seconds"]["count"] == 10

    def test_output_identical_with_obs_disabled(self, capsys, tmp_path):
        """Acceptance check: collecting metrics must not perturb the
        simulation (same seed => same table)."""
        assert main(self.SIM_ARGS) == 0
        plain = capsys.readouterr().out
        target = tmp_path / "metrics.json"
        assert main(self.SIM_ARGS + ["--metrics-out", str(target)]) == 0
        instrumented = capsys.readouterr().out
        stripped = instrumented.replace(f"metrics written to {target}\n", "")
        assert stripped == plain

    def test_positional_switch_form(self, capsys, tmp_path):
        """The documented short form `repro simulate revsort ...` works."""
        import json

        target = tmp_path / "metrics.json"
        code = main(
            ["simulate", "revsort", "--n", "256", "--metrics-out", str(target)]
        )
        assert code == 0
        assert "RevsortSwitch(n=256" in capsys.readouterr().out
        doc = json.loads(target.read_text())
        assert doc["counters"]["sim.delivered"] > 0

    def test_obs_disabled_after_run(self, tmp_path):
        from repro import obs

        main(self.SIM_ARGS + ["--metrics-out", str(tmp_path / "m.json")])
        assert not obs.enabled()

    def test_knockout_writes_snapshot(self, capsys, tmp_path):
        import json

        target = tmp_path / "metrics.json"
        code = main(
            ["knockout", "--ports", "16", "--load", "0.9", "--slots", "50",
             "--metrics-out", str(target)]
        )
        assert code == 0
        doc = json.loads(target.read_text())
        assert doc["counters"]["knockout.offered"] > 0
        assert doc["histograms"]["knockout.config.seconds"]["count"] == 4


class TestLogging:
    def test_log_level_flag_accepted(self, capsys):
        assert main(["--log-level", "debug", "table1", "--n", "256", "--m", "192"]) == 0

    def test_library_logger_has_null_handler(self):
        import logging

        import repro  # noqa: F401 - import side effect under test

        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestTable1Formats:
    def test_json(self, capsys):
        import json

        assert main(["table1", "--n", "256", "--m", "192", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["switch"] == "Revsort"
        assert len(rows) == 4

    def test_csv(self, capsys):
        assert main(["table1", "--n", "256", "--m", "192", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("switch,")
        assert len(lines) == 5
