"""Tests for the n-by-m perfect concentrator (Section 1)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.concentration import (
    validate_partial_concentration,
    validate_perfect_concentration,
)
from repro.errors import ConfigurationError
from repro.switches.perfect import PerfectConcentrator


class TestPerfectConcentrator:
    def test_exhaustive_small(self):
        for n in range(1, 7):
            for m in range(1, n + 1):
                switch = PerfectConcentrator(n, m)
                for bits in itertools.product([False, True], repeat=n):
                    valid = np.array(bits, dtype=bool)
                    routing = switch.setup(valid)
                    validate_perfect_concentration(n, m, valid, routing.input_to_output)

    def test_light_load_routes_all(self, rng):
        switch = PerfectConcentrator(32, 8)
        valid = np.zeros(32, dtype=bool)
        valid[rng.choice(32, size=8, replace=False)] = True
        assert switch.setup(valid).routed_count == 8

    def test_congestion_fills_outputs(self, rng):
        switch = PerfectConcentrator(32, 8)
        valid = np.ones(32, dtype=bool)
        routing = switch.setup(valid)
        assert routing.routed_count == 8
        assert routing.output_valid_bits().all()
        assert len(routing.dropped_inputs) == 24

    def test_priority_is_low_index_first(self):
        """The hyperconcentrator construction gives the first m valid
        inputs (in wire order) the paths."""
        switch = PerfectConcentrator(6, 2)
        valid = np.array([0, 1, 1, 1, 0, 1], dtype=bool)
        routing = switch.setup(valid)
        assert routing.input_to_output[1] == 0
        assert routing.input_to_output[2] == 1
        assert (routing.input_to_output[3:] == -1).all()

    def test_spec_alpha_one(self):
        assert PerfectConcentrator(8, 4).spec.alpha == 1.0

    def test_satisfies_partial_contract_too(self, rng):
        switch = PerfectConcentrator(16, 8)
        for _ in range(50):
            valid = rng.random(16) < rng.random()
            routing = switch.setup(valid)
            validate_partial_concentration(switch.spec, valid, routing.input_to_output)

    def test_rejects_bad_m(self):
        with pytest.raises(ConfigurationError):
            PerfectConcentrator(4, 5)
        with pytest.raises(ConfigurationError):
            PerfectConcentrator(4, 0)

    def test_delay_matches_hyperconcentrator(self):
        switch = PerfectConcentrator(16, 4)
        assert switch.gate_delays == switch.hyperconcentrator.gate_delays

    def test_route_messages_overflow(self):
        switch = PerfectConcentrator(4, 2)
        outputs = switch.route(["a", "b", "c", None])
        assert outputs == ["a", "b"]
