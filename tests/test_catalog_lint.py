"""Catalog-completeness lint: the metric namespace cannot drift.

Greps every ``.counter("...")`` / ``.gauge`` / ``.histogram`` /
``.series`` / ``.span`` call in ``src/`` (multi-line calls included,
and ``obs.series(...)`` module-level calls match the same pattern) and
checks the
name set against :data:`repro.obs.catalog.CATALOG` in both directions:

* a metric emitted in source but missing from the catalog fails with
  the missing names (and the files using them) listed;
* a cataloged name that no longer appears as a string literal anywhere
  in ``src/`` is stale and fails too.

Dynamic names (f-strings, like the derived ``<span>.seconds``
histograms) are exempt — they cannot be cataloged one-by-one.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.catalog import CATALOG, SPAN_SECONDS_SUFFIX

SRC = Path(__file__).resolve().parents[1] / "src"

#: ``registry.counter("name", ...)`` and friends; ``re.S`` lets the
#: quoted name sit on the line after the opening paren.
_EMIT_CALL = re.compile(
    r"\.(counter|gauge|histogram|series|span)\(\s*(f?)\"([^\"]+)\"", re.S
)


def _emitted_names() -> dict[str, set[str]]:
    """Metric/span name -> the src-relative files emitting it."""
    names: dict[str, set[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "catalog.py":
            continue
        for match in _EMIT_CALL.finditer(path.read_text(encoding="utf-8")):
            _kind, fprefix, name = match.groups()
            if fprefix:  # dynamic name (e.g. the .seconds suffix)
                continue
            names.setdefault(name, set()).add(str(path.relative_to(SRC)))
    return names


def test_every_emitted_name_is_cataloged():
    cataloged = {m.name for m in CATALOG}
    emitted = _emitted_names()
    missing = {
        name: sorted(files)
        for name, files in sorted(emitted.items())
        if name not in cataloged and not name.endswith(SPAN_SECONDS_SUFFIX)
    }
    assert not missing, (
        "metric names emitted in src/ but missing from repro/obs/catalog.py:\n"
        + "\n".join(f"  {name}  (used in {', '.join(files)})"
                    for name, files in missing.items())
    )


def test_no_stale_catalog_entries():
    emitted = set(_emitted_names())
    stale = sorted(
        m.name
        for m in CATALOG
        if m.name not in emitted
    )
    assert not stale, (
        "cataloged metric names no longer emitted anywhere in src/ "
        "(remove them or restore the instrumentation): " + ", ".join(stale)
    )


def test_catalog_kinds_and_names_wellformed():
    kinds = {"counter", "gauge", "histogram", "series", "span"}
    seen: set[str] = set()
    for m in CATALOG:
        assert m.kind in kinds, f"{m.name}: unknown kind {m.kind!r}"
        assert m.description, f"{m.name}: empty description"
        assert m.name not in seen, f"duplicate catalog entry {m.name}"
        seen.add(m.name)
