"""Tests for repro.faults: scenarios, injection, certification, sweeps,
and the resilient-routing simulator extensions."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, FaultInjectionError
from repro.faults import (
    DEGRADATION_SCHEMA,
    DeadChipFault,
    DeadOutputFault,
    FaultScenario,
    FaultySwitch,
    FlakyPinFault,
    SeveredWireFault,
    StuckAtFault,
    certify_chain,
    certify_scenarios,
    compile_scenario,
    fault_sites,
    flaky_resilience,
    gate_occupancy,
    measure_scenario,
    read_degradation_certificate,
    sample_chain,
    sample_flaky_scenario,
    sample_scenario,
    sweep_switch,
    write_degradation_certificate,
)
from repro.messages.congestion import DropPolicy, RetryPolicy
from repro.network.simulate import SimulationSummary, SwitchSimulation
from repro.network.traffic import BernoulliTraffic
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.revsort_switch import RevsortSwitch
from tests.conftest import random_bits


class TestScenarioModel:
    def test_structural_strips_flaky(self):
        scenario = FaultScenario(
            name="s",
            faults=(DeadOutputFault(1), FlakyPinFault(3, 0.2)),
        )
        assert scenario.fault_count == 2
        assert scenario.structural().fault_count == 1
        assert scenario.flaky_pins() == [(3, 0.2)]

    def test_with_fault_extends(self):
        scenario = FaultScenario(name="s").with_fault(DeadOutputFault(0))
        assert scenario.fault_count == 1

    def test_as_dict_round_trips_kinds(self):
        scenario = FaultScenario(
            name="s",
            faults=(
                StuckAtFault(0, 1),
                SeveredWireFault(1, 2),
                DeadChipFault(0, 0),
                DeadOutputFault(3),
                FlakyPinFault(4, 0.1),
            ),
        )
        kinds = [f["kind"] for f in scenario.as_dict()["faults"]]
        assert kinds == [
            "stuck_at", "severed_wire", "dead_chip", "dead_output", "flaky_pin",
        ]


class TestCompileScenario:
    def test_rejects_out_of_range_pin(self):
        sw = RevsortSwitch(16, 12)
        with pytest.raises(FaultInjectionError):
            compile_scenario(
                FaultScenario(name="bad", faults=(StuckAtFault(99, 0),)), sw
            )

    def test_rejects_conflicting_stuck_values(self):
        sw = RevsortSwitch(16, 12)
        scenario = FaultScenario(
            name="bad", faults=(StuckAtFault(3, 0), StuckAtFault(3, 1))
        )
        with pytest.raises(FaultInjectionError):
            compile_scenario(scenario, sw)

    def test_rejects_interior_fault_without_plan(self):
        sw = Hyperconcentrator(16)
        scenario = FaultScenario(name="bad", faults=(DeadChipFault(0, 0),))
        with pytest.raises(FaultInjectionError):
            compile_scenario(scenario, sw)

    def test_rejects_bad_stage(self):
        sw = RevsortSwitch(16, 12)
        scenario = FaultScenario(name="bad", faults=(DeadChipFault(9, 0),))
        with pytest.raises(FaultInjectionError):
            compile_scenario(scenario, sw)


class TestFaultySwitch:
    def test_empty_scenario_matches_healthy(self, rng):
        sw = RevsortSwitch(64, 48)
        fsw = FaultySwitch(sw, FaultScenario(name="empty"))
        for _ in range(5):
            valid = random_bits(rng, 64)
            assert np.array_equal(
                fsw.setup(valid).input_to_output,
                sw.setup(valid).input_to_output,
            )

    def test_stuck_at_zero_silences_pin(self, rng):
        sw = RevsortSwitch(64, 48)
        fsw = FaultySwitch(
            sw, FaultScenario(name="s0", faults=(StuckAtFault(5, 0),))
        )
        valid = np.zeros(64, dtype=bool)
        valid[5] = True
        assert fsw.setup(valid).routed_count == 0

    def test_stuck_at_one_raises_ghost(self):
        sw = RevsortSwitch(64, 48)
        fsw = FaultySwitch(
            sw, FaultScenario(name="s1", faults=(StuckAtFault(5, 1),))
        )
        routing = fsw.setup(np.zeros(64, dtype=bool))
        assert routing.input_to_output[5] >= 0
        assert routing.routed_count == 1

    def test_dead_output_never_receives(self, rng):
        sw = RevsortSwitch(64, 48)
        fsw = FaultySwitch(
            sw, FaultScenario(name="do", faults=(DeadOutputFault(7),))
        )
        for _ in range(5):
            routing = fsw.setup(random_bits(rng, 64))
            assert 7 not in routing.input_to_output.tolist()

    def test_remap_outputs_recovers_capacity(self):
        sw = RevsortSwitch(64, 48)
        scenario = FaultScenario(name="do", faults=(DeadOutputFault(0),))
        plain = FaultySwitch(sw, scenario)
        remapped = FaultySwitch(sw, scenario, remap_outputs=True)
        assert plain.live_outputs == 47
        assert remapped.live_outputs == 48
        valid = np.ones(64, dtype=bool)
        assert remapped.setup(valid).routed_count > plain.setup(valid).routed_count

    def test_scalar_batch_parity_interior_faults(self, rng):
        sw = RevsortSwitch(64, 48)
        scenario = FaultScenario(
            name="mix",
            faults=(
                DeadChipFault(0, 1),
                SeveredWireFault(1, 10),
                StuckAtFault(3, 0),
                DeadOutputFault(2),
            ),
        )
        fsw = FaultySwitch(sw, scenario)
        batch = np.stack([random_bits(rng, 64) for _ in range(8)])
        routed = fsw.setup_batch(batch).input_to_output
        for row in range(8):
            assert np.array_equal(
                fsw.setup(batch[row]).input_to_output, routed[row]
            )

    def test_columnsort_parity(self, rng):
        sw = ColumnsortSwitch(16, 4, 48)
        scenario = FaultScenario(
            name="cs", faults=(DeadChipFault(1, 0), SeveredWireFault(0, 5))
        )
        fsw = FaultySwitch(sw, scenario)
        batch = np.stack([random_bits(rng, 64) for _ in range(6)])
        routed = fsw.setup_batch(batch).input_to_output
        for row in range(6):
            assert np.array_equal(
                fsw.setup(batch[row]).input_to_output, routed[row]
            )

    def test_gate_parity_at_netlist_size(self, rng):
        sw = RevsortSwitch(16, 12)
        scenario = FaultScenario(name="g", faults=(DeadChipFault(1, 0),))
        fsw = FaultySwitch(sw, scenario)
        batch = np.stack([random_bits(rng, 16) for _ in range(8)])
        gates = gate_occupancy(fsw, batch)
        assert gates is not None
        assert np.array_equal(gates, fsw.occupancy_batch(batch))

    def test_gate_occupancy_none_above_netlist_limit(self, rng):
        sw = RevsortSwitch(64, 48)
        fsw = FaultySwitch(
            sw, FaultScenario(name="big", faults=(DeadChipFault(0, 0),))
        )
        assert gate_occupancy(fsw, random_bits(rng, 64)[None, :]) is None

    def test_dead_chip_kills_exactly_its_messages(self):
        from repro.faults.scenario import chip_layers, plan_of

        sw = RevsortSwitch(64, 48)
        fsw = FaultySwitch(
            sw, FaultScenario(name="dc", faults=(DeadChipFault(0, 0),))
        )
        group = np.asarray(chip_layers(plan_of(sw))[0].groups[0])
        valid = np.zeros(64, dtype=bool)
        valid[group] = True  # offer exactly the dead chip's inputs
        assert sw.setup(valid).routed_count == group.size
        assert fsw.setup(valid).routed_count == 0
        # Full load minus one chip still saturates the outputs.
        assert fsw.setup(np.ones(64, dtype=bool)).routed_count == 48


class TestSampling:
    def test_boundary_sites_only_last_stage(self):
        sw = RevsortSwitch(64, 48)
        sites = fault_sites(sw, classes="boundary")
        layers = max(
            f.stage for _, f in sites if isinstance(f, DeadChipFault)
        )
        assert all(
            f.stage == layers
            for _, f in sites
            if isinstance(f, (DeadChipFault, SeveredWireFault))
        )

    def test_sample_chain_is_nested(self):
        sw = RevsortSwitch(64, 48)
        chain = sample_chain(
            sw, length=4, rng=np.random.default_rng(0), name="c"
        )
        assert [s.fault_count for s in chain] == [1, 2, 3, 4]
        for shorter, longer in zip(chain, chain[1:]):
            assert set(shorter.faults) <= set(longer.faults)

    def test_sample_scenario_distinct_faults(self):
        sw = RevsortSwitch(64, 48)
        scenario = sample_scenario(
            sw, faults=5, rng=np.random.default_rng(1), name="s"
        )
        assert len(set(scenario.faults)) == 5

    def test_sample_flaky_probabilities_in_range(self):
        sw = RevsortSwitch(64, 48)
        scenario = sample_flaky_scenario(
            sw, pins=3, rng=np.random.default_rng(2), name="f"
        )
        for _, p in scenario.flaky_pins():
            assert 0.05 <= p <= 0.3

    def test_unknown_class_preset_rejected(self):
        sw = RevsortSwitch(64, 48)
        with pytest.raises(FaultInjectionError):
            fault_sites(sw, classes="bogus")


class TestCertification:
    def test_measure_scenario_parity_and_alpha(self):
        sw = RevsortSwitch(64, 48)
        scenario = FaultScenario(name="dc", faults=(DeadChipFault(0, 1),))
        report = measure_scenario(sw, scenario, trials=8, seed=1)
        assert report.parity_ok
        assert 0.0 < report.empirical_alpha <= 1.0
        assert report.worst_epsilon is not None

    def test_chain_certificate_monotone(self):
        sw = RevsortSwitch(64, 48)
        chain = sample_chain(
            sw, length=3, rng=np.random.default_rng(3), name="c"
        )
        cert = certify_chain(sw, chain, design="revsort-64", trials=8, seed=1)
        assert cert.kind == "chain"
        assert cert.monotone_alpha is True
        assert cert.ok
        alphas = [s.empirical_alpha for s in cert.steps]
        assert alphas == sorted(alphas, reverse=True)
        # Healthy baseline is prepended.
        assert cert.steps[0].fault_count == 0

    def test_certificate_round_trip(self, tmp_path):
        sw = RevsortSwitch(16, 12)
        cert = certify_scenarios(
            sw,
            [FaultScenario(name="do", faults=(DeadOutputFault(1),))],
            design="revsort-16",
            trials=4,
            seed=0,
        )
        path = write_degradation_certificate(cert, tmp_path / "cert.json")
        doc = read_degradation_certificate(path)
        assert doc["schema"] == DEGRADATION_SCHEMA
        assert doc["design"] == "revsort-16"
        assert doc["ok"] is True

    def test_read_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something/else@1"}))
        with pytest.raises(ValueError):
            read_degradation_certificate(path)

    def test_flaky_resilience_retry_recovers(self):
        sw = RevsortSwitch(64, 48)
        scenario = FaultScenario(
            name="fl",
            faults=(FlakyPinFault(2, 0.4), FlakyPinFault(9, 0.25)),
            seed=7,
        )
        result = flaky_resilience(sw, scenario, rounds=30, seed=5)
        assert result["recovered"]
        # Policy-independent flip stream: both runs saw the same faults.
        assert result["drop_faulted"] == result["retry_faulted"]

    def test_sweep_smoke(self):
        sw = RevsortSwitch(64, 48)
        result = sweep_switch(
            sw,
            design="revsort-64",
            chains=1,
            chain_length=2,
            parity_scenarios=1,
            parity_faults=2,
            flaky_scenarios=1,
            trials=6,
            rounds=15,
            seed=0,
        )
        assert result.ok
        assert result.parity_violations == 0
        assert result.non_monotone_chains == 0
        assert result.unrecovered_flaky == 0
        kinds = [c.kind for c in result.certificates]
        assert kinds == ["chain", "scenarios"]


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(base_delay=1, backoff_factor=2.0, max_delay=8)
        assert [policy.delay_for(a) for a in (1, 2, 3, 4, 5)] == [1, 2, 4, 8, 8]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(ttl=0)

    def test_ttl_expiry_counted(self):
        from repro.messages.message import Message

        policy = RetryPolicy(max_retries=100, ttl=2, jitter=0, seed=0)
        msg = Message(payload=(), tag=1)
        policy.on_unrouted([msg], 0)
        assert policy.stats.retried == 1
        policy.on_unrouted([msg], 5)  # past ttl
        assert policy.stats.expired == 1
        assert policy.stats.dropped == 1

    def test_backlog_due_releases_by_round(self):
        from repro.messages.message import Message

        policy = RetryPolicy(base_delay=2, jitter=0, seed=0)
        policy.on_unrouted([Message(payload=(), tag=1)], 0)
        assert policy.backlog_due(0) == []
        assert policy.in_flight == 1
        assert len(policy.backlog_due(2)) == 1
        assert policy.in_flight == 0


class TestSimulationFaults:
    def test_zero_offered_delivery_rate_is_zero(self):
        # Regression: an empty run delivered nothing, not everything.
        summary = SimulationSummary()
        assert summary.offered == 0
        assert summary.delivery_rate == 0.0
        assert summary.loss_rate == 0.0

    def test_per_round_lost_retried_accounting(self):
        # Backfill: every round satisfies unrouted == lost + retried and
        # the summary totals equal the per-round sums.
        sw = RevsortSwitch(64, 48)
        traffic = BernoulliTraffic(64, 0.9, payload_bits=0, seed=3)
        sim = SwitchSimulation(
            sw, traffic, RetryPolicy(max_retries=2, jitter=0, seed=0), seed=1
        )
        summary = sim.run(25)
        assert summary.lost > 0 or summary.retried > 0
        for r in summary.per_round:
            assert r.unrouted == r.lost + r.retried
        assert summary.lost == sum(r.lost for r in summary.per_round)
        assert summary.retried == sum(r.retried for r in summary.per_round)
        assert summary.expired == sum(r.expired for r in summary.per_round)

    def test_structural_scenario_wraps_switch(self):
        sw = RevsortSwitch(64, 48)
        scenario = FaultScenario(name="do", faults=(DeadOutputFault(0),))
        sim = SwitchSimulation(
            sw,
            BernoulliTraffic(64, 0.2, payload_bits=0, seed=0),
            scenario=scenario,
        )
        assert isinstance(sim.switch, FaultySwitch)

    def test_flaky_faulted_accounting(self):
        sw = RevsortSwitch(64, 48)
        scenario = FaultScenario(
            name="fl", faults=(FlakyPinFault(0, 1.0),), seed=1
        )
        traffic = BernoulliTraffic(64, 1.0, payload_bits=0, seed=0)
        sim = SwitchSimulation(sw, traffic, DropPolicy(), scenario=scenario)
        summary = sim.run(10)
        # p=1.0 flaky pin under full load kills one message per round.
        assert summary.faulted == 10
        assert all(r.faulted == 1 for r in summary.per_round)

    def test_fault_stream_independent_of_policy(self):
        sw = RevsortSwitch(64, 48)
        scenario = FaultScenario(
            name="fl",
            faults=(FlakyPinFault(3, 0.5), FlakyPinFault(11, 0.5)),
            seed=9,
        )

        def run(policy):
            traffic = BernoulliTraffic(64, 0.4, payload_bits=0, seed=2)
            return SwitchSimulation(
                sw, traffic, policy, seed=2, scenario=scenario
            ).run(20)

        drop = run(DropPolicy())
        retry = run(RetryPolicy(seed=2))
        assert drop.faulted == retry.faulted
        assert retry.delivery_rate >= drop.delivery_rate


class TestFaultsCli:
    def test_inject_with_specs(self, capsys):
        from repro.cli import main

        code = main([
            "faults", "inject", "--switch", "revsort", "--n", "64",
            "--m", "48", "--fault", "chip:0:1", "--trials", "8",
        ])
        assert code == 0
        assert "dead chip 1 in stage 0" in capsys.readouterr().out

    def test_inject_bad_spec_exits_2(self, capsys):
        from repro.cli import main

        assert main([
            "faults", "inject", "--switch", "revsort", "--n", "64",
            "--m", "48", "--fault", "gremlin:1",
        ]) == 2

    def test_sweep_smoke_writes_certificates(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "certs"
        code = main([
            "faults", "sweep", "--switch", "revsort", "--n", "64",
            "--m", "48", "--chains", "1", "--chain-length", "2",
            "--parity-scenarios", "1", "--flaky-scenarios", "1",
            "--trials", "6", "--rounds", "15", "--out", str(out),
        ])
        assert code == 0
        files = sorted(out.glob("*.json"))
        assert files
        assert main(["faults", "report", str(out)]) == 0

    def test_contract_violation_exit_code(self, monkeypatch, capsys):
        import argparse

        from repro import cli
        from repro.errors import ConcentrationError

        def raising_func(args):
            raise ConcentrationError("deliberately broken")

        monkeypatch.setattr(
            argparse.ArgumentParser,
            "parse_args",
            lambda self, argv=None: argparse.Namespace(
                func=raising_func, log_level="warning"
            ),
        )
        assert cli.main([]) == 1
        assert "contract violation" in capsys.readouterr().err

    def test_configuration_error_exit_code(self, capsys):
        from repro.cli import main

        # FaultInjectionError is a ConfigurationError → usage exit 2.
        assert main([
            "faults", "inject", "--switch", "revsort", "--n", "64",
            "--m", "48", "--fault", "chip:9:0",
        ]) == 2
        assert "error:" in capsys.readouterr().err
