"""Tests for the 2-D floorplan generator (Figures 3/6 geometry)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.floorplan import (
    Floorplan,
    Rect,
    columnsort_floorplan,
    revsort_floorplan,
)
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.revsort_switch import RevsortSwitch


class TestRect:
    def test_area(self):
        assert Rect("a", "chip", 0, 0, 4, 3).area == 12

    def test_overlap_detection(self):
        a = Rect("a", "chip", 0, 0, 4, 4)
        assert a.overlaps(Rect("b", "chip", 3, 3, 2, 2))
        assert not a.overlaps(Rect("c", "chip", 4, 0, 2, 2))
        assert not a.overlaps(Rect("d", "chip", 0, 4, 2, 2))


class TestRevsortFloorplan:
    def test_structure(self):
        plan = revsort_floorplan(RevsortSwitch(64, 28))
        chips = [r for r in plan.rects if r.kind == "chip"]
        bars = [r for r in plan.rects if r.kind == "crossbar"]
        assert len(chips) == 24
        assert len(bars) == 2
        assert all(r.w == r.h == 8 for r in chips)
        assert all(r.w == r.h == 64 for r in bars)

    def test_no_overlaps(self):
        revsort_floorplan(RevsortSwitch(256, 192)).validate()

    def test_crossbars_dominate_area(self):
        """The Θ(n²) crossbar channels dominate the Θ(n^{3/2}) chips —
        the Section 4 area argument, now geometric."""
        plan = revsort_floorplan(RevsortSwitch(256, 192))
        assert plan.crossbar_area > plan.chip_area

    def test_bounding_area_theta_n_squared(self):
        small = revsort_floorplan(RevsortSwitch(64, 32)).bounding_area
        large = revsort_floorplan(RevsortSwitch(256, 128)).bounding_area
        ratio = large / small
        assert 10 < ratio < 20  # n² scaling ⇒ ~16× for 4× n

    def test_ascii_art_renders(self):
        art = revsort_floorplan(RevsortSwitch(64, 28)).ascii_art(scale=8)
        assert "#" in art  # crossbar visible
        assert "0" in art and "2" in art  # stage digits


class TestColumnsortFloorplan:
    def test_structure(self):
        plan = columnsort_floorplan(ColumnsortSwitch(8, 4, 18))
        chips = [r for r in plan.rects if r.kind == "chip"]
        bars = [r for r in plan.rects if r.kind == "crossbar"]
        assert len(chips) == 8
        assert len(bars) == 1
        assert all(r.w == r.h == 8 for r in chips)

    def test_no_overlaps_various_shapes(self):
        for r, s in [(8, 4), (16, 4), (64, 8)]:
            columnsort_floorplan(ColumnsortSwitch(r, s, r * s // 2)).validate()

    def test_validate_catches_overlap(self):
        bad = Floorplan(
            rects=(
                Rect("a", "chip", 0, 0, 4, 4),
                Rect("b", "chip", 2, 2, 4, 4),
            )
        )
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_empty_plan(self):
        plan = Floorplan(rects=())
        assert plan.bounding_area == 0
        plan.validate()
