"""Tests for the gate-level elaboration of entire multichip switches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gates.depth import critical_path_length
from repro.gates.multichip_gates import (
    build_columnsort_switch_gates,
    build_gate_level_switch,
    build_revsort_switch_gates,
    simulate_valid_bits,
)
from repro.mesh.columnsort import columnsort_nearsort
from repro.mesh.revsort import revsort_nearsort
from repro.switches.wiring import column_groups
from tests.conftest import random_bits


class TestRevsortGateLevel:
    def test_matches_algorithm1(self, rng):
        circuit, outs = build_revsort_switch_gates(16)
        for _ in range(40):
            valid = random_bits(rng, 16)
            got = simulate_valid_bits(circuit, outs, valid).astype(np.int8)
            expect = revsort_nearsort(
                valid.astype(np.int8).reshape(4, 4)
            ).reshape(-1)
            assert np.array_equal(got, expect)

    def test_matches_functional_switch(self, rng):
        from repro.switches.revsort_switch import RevsortSwitch

        circuit, outs = build_revsort_switch_gates(16)
        switch = RevsortSwitch(16, 16)
        for _ in range(30):
            valid = random_bits(rng, 16)
            got = simulate_valid_bits(circuit, outs, valid)
            routing = switch.setup(valid)
            assert np.array_equal(got, routing.output_valid_bits())

    def test_depth_is_three_chip_stages(self):
        """End-to-end setup depth ≈ 3 × single-chip setup depth."""
        from repro.gates.hyperconc_gates import GateHyperconcentrator

        circuit, outs = build_revsort_switch_gates(16)
        total = critical_path_length(circuit, sinks=outs)
        single = GateHyperconcentrator(4).setup_delay()
        # Each stage adds the chip's setup depth plus the output OR plane.
        assert 2 * single <= total <= 4 * (single + 4)


class TestColumnsortGateLevel:
    @pytest.mark.parametrize("r,s", [(4, 2), (8, 4)])
    def test_matches_algorithm2(self, rng, r, s):
        circuit, outs = build_columnsort_switch_gates(r, s)
        n = r * s
        for _ in range(40):
            valid = random_bits(rng, n)
            got = simulate_valid_bits(circuit, outs, valid).astype(np.int8)
            expect = columnsort_nearsort(
                valid.astype(np.int8).reshape(r, s)
            ).reshape(-1)
            assert np.array_equal(got, expect)

    def test_gate_count_scales_with_chip_area(self):
        small, _ = build_columnsort_switch_gates(4, 2)
        large, _ = build_columnsort_switch_gates(8, 2)
        # Chips are r-by-r: doubling r should grow gates superlinearly.
        assert large.n_logic_gates > 2 * small.n_logic_gates


class TestEndToEndDatapath:
    """The complete silicon-level message path: payload bits streamed
    through every chip crossbar and wiring layer of the multichip
    switches."""

    def test_revsort_datapath_delivers_payloads(self, rng):
        from repro.gates.evaluate import evaluate
        from repro.switches.revsort_switch import RevsortSwitch

        n = 16
        circuit, _ = build_revsort_switch_gates(n, with_datapath=True)
        switch = RevsortSwitch(n, n)
        douts = [circuit.wire(f"dout{p}") for p in range(n)]
        for _ in range(15):
            valid = random_bits(rng, n)
            data = random_bits(rng, n)
            values = evaluate(circuit, np.concatenate([valid, data]))
            final = switch.final_positions(valid)
            for i in np.flatnonzero(valid):
                assert bool(values[douts[final[i]]]) == bool(data[i]), i

    def test_columnsort_datapath_delivers_payloads(self, rng):
        from repro.gates.evaluate import evaluate
        from repro.switches.columnsort_switch import ColumnsortSwitch

        r, s = 4, 2
        n = r * s
        circuit, _ = build_columnsort_switch_gates(r, s, with_datapath=True)
        switch = ColumnsortSwitch(r, s, n)
        douts = [circuit.wire(f"dout{p}") for p in range(n)]
        for _ in range(25):
            valid = random_bits(rng, n)
            data = random_bits(rng, n)
            values = evaluate(circuit, np.concatenate([valid, data]))
            final = switch.final_positions(valid)
            for i in np.flatnonzero(valid):
                assert bool(values[douts[final[i]]]) == bool(data[i]), i

    def test_idle_outputs_carry_zero(self, rng):
        from repro.gates.evaluate import evaluate
        from repro.switches.columnsort_switch import ColumnsortSwitch

        r, s = 4, 2
        n = r * s
        circuit, outs = build_columnsort_switch_gates(r, s, with_datapath=True)
        switch = ColumnsortSwitch(r, s, n)
        valid = np.zeros(n, dtype=bool)
        valid[0] = True
        data = np.ones(n, dtype=bool)  # garbage high on idle wires
        values = evaluate(circuit, np.concatenate([valid, data]))
        final = switch.final_positions(valid)
        busy = {int(final[0])}
        for p in range(n):
            dout = bool(values[circuit.wire(f"dout{p}")])
            assert dout == (p in busy)

    def test_datapath_depth_logarithmic_per_stage(self):
        from repro.gates.depth import critical_path_length

        n = 16
        circuit, _ = build_revsort_switch_gates(n, with_datapath=True)
        sources = [circuit.wire(f"d{i}") for i in range(n)]
        sinks = [circuit.wire(f"dout{p}") for p in range(n)]
        depth = critical_path_length(circuit, sources, sinks)
        # Three chip crossbars of width 4: (1 + ⌈lg 4⌉) each = 9.
        assert depth == 3 * 3


class TestBuilderValidation:
    def test_wiring_count_mismatch(self):
        groups = [column_groups(2, 2)]
        with pytest.raises(ConfigurationError):
            build_gate_level_switch(groups, [], 4)

    def test_identity_wiring_layers(self, rng):
        """A single chip layer over one group is just a sorter."""
        groups = [[np.arange(4)]]
        circuit, outs = build_gate_level_switch(groups, [None], 4)
        for _ in range(10):
            valid = random_bits(rng, 4)
            got = simulate_valid_bits(circuit, outs, valid)
            k = int(valid.sum())
            assert list(got) == [True] * k + [False] * (4 - k)
