"""Tests for the batched execution engine (repro.engine).

The load-bearing property: for EVERY switch design in the registry,
``setup_batch(V)[i]`` equals ``setup(V[i])`` — the scalar path stays
the correctness oracle and the vectorized path must be bit-identical.
Also covers the plan cache (sharing without state leaks, hit/miss
counters, clear()), the BatchRouting container, bit-parallel gate
evaluation, and the worker-count determinism contracts of
``analysis.sweep`` and ``network.simulate.compare_partial_vs_perfect``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.analysis.sweep import sweep
from repro.engine import (
    BatchRouting,
    plan_cache,
    run_plan,
    run_plan_sparse,
)
from repro.errors import ConfigurationError
from repro.gates.evaluate import evaluate, evaluate_packed, pack_bits, unpack_bits
from repro.gates.hyperconc_gates import build_hyperconcentrator
from repro.network.simulate import compare_partial_vs_perfect
from repro.switches.base import ConcentratorSwitch
from repro.switches.cascade import CascadeSwitch
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.iterated_columnsort import IteratedColumnsortSwitch
from repro.switches.perfect import PerfectConcentrator
from repro.switches.registry import REGISTRY, build_switch
from repro.switches.revsort_switch import RevsortSwitch


def _registry_instances() -> list[tuple[str, ConcentratorSwitch]]:
    """One modest instance of every registered design, plus designs
    that only exist outside the registry (iterated, cascade)."""
    out = [
        (name, build_switch(name, n=64, m=48, r=16, s=4, beta=0.75))
        for name in sorted(REGISTRY)
    ]
    out.append(("iterated-k3", IteratedColumnsortSwitch(16, 4, 48, passes=3)))
    out.append(
        (
            "cascade",
            CascadeSwitch(ColumnsortSwitch(16, 4, 48), PerfectConcentrator(48, 32)),
        )
    )
    return out


def _trial_batch(rng, n, batch=13):
    """Mixed-density random trials including the all-empty and all-full
    edge rows."""
    valid = rng.random((batch, n)) < rng.random((batch, 1))
    valid[0] = False
    if batch > 1:
        valid[1] = True
    return valid


class TestBatchScalarParity:
    @pytest.mark.parametrize(
        "name,switch", _registry_instances(), ids=lambda v: v if isinstance(v, str) else ""
    )
    def test_setup_batch_matches_setup(self, name, switch, rng):
        valid = _trial_batch(rng, switch.n)
        batch = switch.setup_batch(valid)
        assert len(batch) == valid.shape[0]
        for i in range(valid.shape[0]):
            scalar = switch.setup(valid[i])
            routing = batch[i]
            assert np.array_equal(routing.input_to_output, scalar.input_to_output)
            assert np.array_equal(routing.valid, scalar.valid)

    def test_batch_counts_match_scalar(self, rng):
        switch = RevsortSwitch(64, 48)
        valid = _trial_batch(rng, switch.n)
        batch = switch.setup_batch(valid)
        for i in range(valid.shape[0]):
            scalar = switch.setup(valid[i])
            assert batch.routed_counts[i] == scalar.routed_count
            assert batch.dropped_counts[i] == scalar.dropped_inputs.size
            assert np.array_equal(
                batch.output_valid_bits()[i], scalar.output_valid_bits()
            )

    def test_single_row_batch(self, rng):
        switch = ColumnsortSwitch(16, 4, 48)
        valid = _trial_batch(rng, switch.n, batch=1)
        batch = switch.setup_batch(valid)
        assert np.array_equal(
            batch[0].input_to_output, switch.setup(valid[0]).input_to_output
        )

    def test_empty_batch(self):
        switch = ColumnsortSwitch(16, 4, 48)
        batch = switch.setup_batch(np.zeros((0, switch.n), dtype=bool))
        assert len(batch) == 0
        assert batch.input_to_output.shape == (0, switch.n)


class TestValidBitChecking:
    def test_setup_rejects_non_binary_values(self):
        switch = PerfectConcentrator(8, 6)
        with pytest.raises(ConfigurationError):
            switch.setup(np.array([0, 1, 2, 0, 1, 0, 1, 0]))

    def test_setup_batch_rejects_non_binary_values(self):
        switch = PerfectConcentrator(8, 6)
        bad = np.zeros((3, 8), dtype=np.int64)
        bad[1, 4] = 7
        with pytest.raises(ConfigurationError):
            switch.setup_batch(bad)

    def test_setup_accepts_int_01(self):
        switch = PerfectConcentrator(8, 6)
        routing = switch.setup(np.array([0, 1, 1, 0, 1, 0, 0, 1]))
        assert routing.routed_count == 4

    def test_setup_batch_rejects_wrong_width(self):
        switch = PerfectConcentrator(8, 6)
        with pytest.raises(ConfigurationError):
            switch.setup_batch(np.zeros((3, 9), dtype=bool))


class TestPlanCache:
    def test_instances_share_one_plan(self):
        plan_cache().clear()
        a = RevsortSwitch(256, 192)
        b = RevsortSwitch(256, 128)
        assert a._plan is b._plan
        stats = plan_cache().stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] >= 1

    def test_no_state_leaks_between_sharers(self, rng):
        """Routing one instance must not perturb another instance that
        shares the same compiled plan."""
        plan_cache().clear()
        a = ColumnsortSwitch(16, 4, 48)
        b = ColumnsortSwitch(16, 4, 32)  # same plan key (r, s), different m
        valid = _trial_batch(rng, a.n)
        before = a.setup_batch(valid).input_to_output.copy()
        b.setup_batch(~valid)  # interleave foreign traffic
        b.setup(~valid[2])
        after = a.setup_batch(valid).input_to_output
        assert np.array_equal(before, after)

    def test_clear_resets_and_rebuilds(self, rng):
        switch = RevsortSwitch(64, 48)
        valid = _trial_batch(rng, switch.n)
        first = switch.setup_batch(valid).input_to_output.copy()
        plan_cache().clear()
        assert plan_cache().stats()["entries"] == 0
        again = switch.setup_batch(valid).input_to_output
        assert np.array_equal(first, again)

    def test_hit_miss_counters_on_obs(self):
        plan_cache().clear()
        obs.install(obs.Registry())
        try:
            RevsortSwitch(64, 48)._plan
            RevsortSwitch(64, 32)._plan
            snap = obs.get_registry().snapshot()["counters"]
            assert snap["engine.plan_cache.miss{kind=revsort}"] == 1
            assert snap["engine.plan_cache.hit{kind=revsort}"] == 1
        finally:
            obs.uninstall()

    def test_batch_setup_counters_on_obs(self, rng):
        obs.install(obs.Registry())
        try:
            switch = PerfectConcentrator(16, 12)
            switch.setup_batch(_trial_batch(rng, 16, batch=5))
            snap = obs.get_registry().snapshot()["counters"]
            assert snap["engine.batch_setups{switch=PerfectConcentrator}"] == 1
            assert snap["engine.batch_trials{switch=PerfectConcentrator}"] == 5
        finally:
            obs.uninstall()


class TestPlanExecutor:
    def test_run_plan_matches_compose_for_valid_inputs(self, rng):
        switch = ColumnsortSwitch(16, 4, 48)
        valid = _trial_batch(rng, switch.n)
        final = run_plan(switch._plan, valid)
        for i in range(valid.shape[0]):
            expected = switch.final_positions(valid[i])
            assert np.array_equal(final[i][valid[i]], expected[valid[i]])

    def test_run_plan_sparse_tracks_every_valid_bit(self, rng):
        switch = RevsortSwitch(64, 48)
        valid = _trial_batch(rng, switch.n)
        rows, cols, pos = run_plan_sparse(switch._plan, valid)
        assert rows.shape == cols.shape == pos.shape
        assert valid[rows, cols].all()
        assert rows.size == int(valid.sum())
        # Final positions of one trial's valid inputs are all distinct.
        sel = rows == 2
        assert np.unique(pos[sel]).size == int(sel.sum())


class TestBatchRouting:
    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            BatchRouting(
                n_inputs=4,
                n_outputs=4,
                valid=np.zeros((2, 5), dtype=bool),
                input_to_output=np.zeros((2, 5), dtype=np.int64),
            )
        with pytest.raises(ConfigurationError):
            BatchRouting(
                n_inputs=4,
                n_outputs=4,
                valid=np.zeros((2, 4), dtype=bool),
                input_to_output=np.zeros((3, 4), dtype=np.int64),
            )

    def test_getitem_returns_validated_routing(self, rng):
        switch = Hyperconcentrator(16)
        valid = _trial_batch(rng, 16, batch=4)
        batch = switch.setup_batch(valid)
        routing = batch[3]
        assert routing.n_inputs == 16
        assert routing.routed_count == int(valid[3].sum())


class TestBitParallelGates:
    def test_pack_unpack_roundtrip(self, rng):
        for batch in (1, 63, 64, 65, 130):
            bits = rng.random((batch, 9)) < 0.5
            assert np.array_equal(unpack_bits(pack_bits(bits), batch), bits)

    def test_evaluate_packed_matches_evaluate(self, rng):
        circuit = build_hyperconcentrator(16, with_datapath=False)
        n_in = len(circuit.input_wires())
        inputs = rng.random((100, n_in)) < 0.5
        assert np.array_equal(
            evaluate_packed(circuit, inputs), evaluate(circuit, inputs)
        )

    def test_evaluate_packed_single_vector(self, rng):
        circuit = build_hyperconcentrator(8, with_datapath=False)
        vec = rng.random(len(circuit.input_wires())) < 0.5
        assert np.array_equal(
            evaluate_packed(circuit, vec), evaluate(circuit, vec)
        )


class TestDeterministicParallelism:
    def test_sweep_workers_do_not_change_results(self):
        def measure(value, rng):
            return {"draw": float(rng.random()), "sq": value * value}

        params = [1, 2, 3, 4, 5, 6]
        serial = sweep(params, measure, seed=11)
        threaded = sweep(params, measure, seed=11, workers=4)
        assert serial == threaded
        assert [row["param"] for row in threaded] == params

    def test_compare_partial_vs_perfect_workers_deterministic(self):
        perfect = PerfectConcentrator(48, 36)
        partial = ColumnsortSwitch(16, 4, 36)
        one = compare_partial_vs_perfect(
            perfect, partial, k_values=[12, 36], trials=8, seed=3, workers=1
        )
        four = compare_partial_vs_perfect(
            perfect, partial, k_values=[12, 36], trials=8, seed=3, workers=4
        )
        assert one == four
