"""Tests for the adversarial input search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.adversarial import (
    drop_objective,
    epsilon_objective,
    hill_climb,
)
from repro.errors import ConfigurationError
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.revsort_switch import RevsortSwitch


class TestHillClimb:
    def test_finds_known_optimum(self):
        """Objective = popcount: the search must find all-ones."""
        result = hill_climb(
            16, lambda v: int(v.sum()), iterations=300, restarts=2, seed=1
        )
        assert result.best_score == 16
        assert result.best_input.all()

    def test_deterministic(self):
        a = hill_climb(12, lambda v: int(v.sum()), iterations=50, restarts=1, seed=3)
        b = hill_climb(12, lambda v: int(v.sum()), iterations=50, restarts=1, seed=3)
        assert a.best_score == b.best_score
        assert np.array_equal(a.best_input, b.best_input)

    def test_counts_evaluations(self):
        result = hill_climb(8, lambda v: 0, iterations=10, restarts=2, seed=4)
        assert result.evaluations == 2 * 11

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            hill_climb(0, lambda v: 0)
        with pytest.raises(ConfigurationError):
            hill_climb(4, lambda v: 0, iterations=0)


class TestEpsilonObjective:
    def test_adversarial_beats_random_sampling(self):
        """Hill climbing on ε must do at least as well as the best of
        an equal random sample — and stays within the theorem bound."""
        switch = ColumnsortSwitch(16, 4, 64)
        objective = epsilon_objective(switch)

        result = hill_climb(64, objective, iterations=150, restarts=2, seed=5)

        rng = np.random.default_rng(5)
        random_best = max(
            objective(rng.random(64) < rng.random()) for _ in range(302)
        )
        assert result.best_score >= random_best
        assert result.best_score <= switch.epsilon_bound

    def test_revsort_adversarial_within_bound(self):
        switch = RevsortSwitch(64, 64)
        result = hill_climb(
            64, epsilon_objective(switch), iterations=150, restarts=2, seed=6
        )
        assert 0 < result.best_score <= switch.epsilon_bound


class TestDropObjective:
    def test_finds_dropping_inputs_on_tight_switch(self):
        """With m close to n and ε > 0 an adversary can force drops."""
        switch = ColumnsortSwitch(16, 4, 60)
        result = hill_climb(
            64, drop_objective(switch), iterations=200, restarts=2, seed=7
        )
        assert result.best_score > 0

    def test_never_violates_floor(self):
        """Even the adversarial worst case must respect αm."""
        switch = ColumnsortSwitch(16, 4, 60)
        result = hill_climb(
            64, drop_objective(switch), iterations=200, restarts=2, seed=8
        )
        valid = result.best_input
        routed = switch.setup(valid).routed_count
        assert routed >= min(int(valid.sum()), switch.spec.guaranteed_capacity)
