"""Golden snapshots for the ``repro flows`` CLI.

The ``--format json`` documents and the rendered FCT report are pinned
under ``tests/golden/`` — any schema or behavioural drift (workload
generation, fabric semantics, percentile math, float rounding) trips
these tests.  Regenerate with the exact commands recorded on each
class if the change is intentional.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.cli import main
from repro.network.flows import fabric_names

GOLDEN_DIR = Path(__file__).parent / "golden"


def _golden(name: str) -> dict | list:
    return json.loads((GOLDEN_DIR / name).read_text())


class TestFlowsRunJson:
    # PYTHONPATH=src python -m repro flows run --fabric concentrator \
    #   --n 16 --duration 40 --seed 0 --format json
    ARGS = [
        "flows", "run", "--fabric", "concentrator", "--n", "16",
        "--duration", "40", "--seed", "0", "--format", "json",
    ]

    def test_matches_golden_snapshot(self, capsys):
        assert main(self.ARGS) == 0
        assert json.loads(capsys.readouterr().out) == _golden(
            "flows_run_concentrator.json"
        )

    def test_stdout_schema(self, capsys):
        assert main(self.ARGS) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.cli/flows-run@1"
        result = doc["result"]
        assert result["fabric"] == "concentrator"
        assert result["completed"] <= result["flows"]
        assert {"p50", "p90", "p99", "p99.9"} <= set(result)
        assert result["delivered_cells"] + result["dropped_cells"] <= (
            result["offered_cells"]
        )

    def test_bad_fabric_param_exits_2(self, capsys):
        args = [
            "flows", "run", "--fabric", "knockout", "--n", "16",
            "--lanes", "0",
        ]
        assert main(args) == 2
        assert "error" in capsys.readouterr().err


class TestFlowsCompareJson:
    # PYTHONPATH=src python -m repro flows compare --n 16 --duration 30 \
    #   --seed 0 --format json
    ARGS = [
        "flows", "compare", "--n", "16", "--duration", "30",
        "--seed", "0", "--format", "json",
    ]

    def test_matches_golden_snapshot(self, capsys):
        assert main(self.ARGS) == 0
        assert json.loads(capsys.readouterr().out) == _golden(
            "flows_compare_n16.json"
        )

    def test_all_fabrics_on_the_same_workload(self, capsys):
        assert main(self.ARGS) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.cli/flows-compare@1"
        assert sorted(doc["fabrics"]) == fabric_names()
        flow_counts = {f["flows"] for f in doc["fabrics"].values()}
        assert flow_counts == {doc["flows"]}
        assert doc["total_events"] == sum(
            f["events"] for f in doc["fabrics"].values()
        )

    def test_percentiles_are_json_safe(self, capsys):
        # _json_safe turns NaN into null and rounds floats, so the
        # document must survive a strict JSON parse.
        assert main(self.ARGS) == 0
        doc = json.loads(capsys.readouterr().out, parse_constant=_reject)
        for fabric in doc["fabrics"].values():
            for key in ("p50", "p90", "p99", "p99.9"):
                assert fabric[key] is None or math.isfinite(fabric[key])


class TestFlowsCompareReport:
    # PYTHONPATH=src python -m repro flows compare --n 16 --duration 30 \
    #   --seed 0
    ARGS = ["flows", "compare", "--n", "16", "--duration", "30", "--seed", "0"]

    def test_fct_report_matches_golden_text(self, capsys):
        assert main(self.ARGS) == 0
        expected = (GOLDEN_DIR / "flows_compare_n16.txt").read_text()
        assert capsys.readouterr().out == expected


def _reject(token: str):
    raise AssertionError(f"non-strict JSON constant leaked: {token}")
