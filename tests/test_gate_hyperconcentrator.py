"""Tests for the gate-level hyperconcentrator netlist: exhaustive
equivalence with the functional model, datapath correctness, and the
measured depth/area figures."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.core.concentration import validate_hyperconcentration
from repro.errors import ConfigurationError
from repro.gates.evaluate import evaluate
from repro.gates.hyperconc_gates import GateHyperconcentrator, build_hyperconcentrator
from repro.switches.hyperconcentrator import Hyperconcentrator
from tests.conftest import random_bits


class TestEquivalence:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8])
    def test_exhaustive_vs_functional(self, n):
        gate = GateHyperconcentrator(n)
        model = Hyperconcentrator(n)
        for bits in itertools.product([False, True], repeat=n):
            valid = np.array(bits, dtype=bool)
            rg = gate.setup(valid)
            rm = model.setup(valid)
            assert np.array_equal(rg.input_to_output, rm.input_to_output)

    @pytest.mark.parametrize("n", [12, 16, 24])
    def test_random_vs_functional(self, rng, n):
        gate = GateHyperconcentrator(n)
        model = Hyperconcentrator(n)
        for _ in range(40):
            valid = random_bits(rng, n)
            assert np.array_equal(
                gate.setup(valid).input_to_output,
                model.setup(valid).input_to_output,
            )

    def test_contract(self, rng):
        n = 16
        gate = GateHyperconcentrator(n)
        for _ in range(30):
            valid = random_bits(rng, n)
            routing = gate.setup(valid)
            validate_hyperconcentration(n, valid, routing.input_to_output)


class TestOutputValidBits:
    @pytest.mark.parametrize("n", [4, 8])
    def test_yv_wires_sorted(self, rng, n):
        """The output valid bits yv0..yv{n-1} must equal the sorted
        valid bits: k leading 1s."""
        circuit = build_hyperconcentrator(n, with_datapath=False)
        yv = [circuit.wire(f"yv{j}") for j in range(n)]
        for bits in itertools.product([False, True], repeat=n):
            vals = evaluate(circuit, np.array(bits, dtype=bool))
            k = sum(bits)
            assert [bool(vals[w]) for w in yv] == [True] * k + [False] * (n - k)


class TestDatapath:
    def test_payload_bits_follow_controls(self, rng):
        n = 8
        gate = GateHyperconcentrator(n, with_datapath=True)
        for _ in range(30):
            valid = random_bits(rng, n)
            data = random_bits(rng, n)
            vals = evaluate(gate.circuit, np.concatenate([valid, data]))
            routing = gate.setup(valid)
            for i in np.flatnonzero(valid):
                j = routing.input_to_output[i]
                assert bool(vals[gate.circuit.wire(f"y{j}")]) == bool(data[i])

    def test_idle_outputs_low(self):
        n = 4
        gate = GateHyperconcentrator(n, with_datapath=True)
        valid = np.array([True, False, False, False])
        data = np.array([True, True, True, True])
        vals = evaluate(gate.circuit, np.concatenate([valid, data]))
        # Only output 0 carries a message; others must be low even
        # though idle inputs have high data bits.
        assert bool(vals[gate.circuit.wire("y0")])
        for j in range(1, n):
            assert not bool(vals[gate.circuit.wire(f"y{j}")])

    def test_datapath_required(self):
        with pytest.raises(ConfigurationError):
            GateHyperconcentrator(4).datapath_delay()


class TestMeasuredFigures:
    def test_datapath_delay_is_logarithmic(self):
        """Measured datapath delay = 1 + ⌈lg n⌉ — the same Θ(lg n)
        scaling as the paper's 2 lg n chip figure."""
        for n in (4, 8, 16, 32):
            gate = GateHyperconcentrator(n, with_datapath=True)
            assert gate.datapath_delay() == 1 + math.ceil(math.log2(n))

    def test_component_count_quadratic(self):
        """Θ(n²) components: doubling n must roughly quadruple gates."""
        counts = {n: GateHyperconcentrator(n).component_count for n in (8, 16, 32)}
        assert 3.0 < counts[16] / counts[8] < 6.0
        assert 3.0 < counts[32] / counts[16] < 6.0

    def test_setup_delay_logarithmic(self):
        """Measured setup depth is ~4 lg n at these widths (the ripple
        carries are short enough not to dominate) — the same Θ(lg n)
        family as the paper's setup claim."""
        for n in (8, 16, 32, 64):
            gate = GateHyperconcentrator(n)
            assert gate.setup_delay() <= 4 * math.ceil(math.log2(n)) + 6
