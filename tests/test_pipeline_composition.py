"""Cross-module composition tests: wave pipelining over cascades and
funnels, driving several subsystems together."""

from __future__ import annotations

from repro.messages.clock import WavePipeline
from repro.messages.congestion import DropPolicy
from repro.network.funnel import FunnelNetwork
from repro.network.traffic import FixedKTraffic
from repro.switches.cascade import CascadeSwitch
from repro.switches.perfect import PerfectConcentrator
from repro.switches.revsort_switch import RevsortSwitch


class TestWavesOverCascade:
    def test_pipeline_accepts_cascade(self):
        cascade = CascadeSwitch(
            PerfectConcentrator(32, 16), PerfectConcentrator(16, 8)
        )
        pipe = WavePipeline(cascade, payload_bits=4, seed=1)
        traffic = FixedKTraffic(32, k=6, payload_bits=4, seed=2)
        summary = pipe.run(traffic, waves=10)
        assert summary.delivered == 60  # 6 per wave, under every capacity

    def test_min_clock_uses_summed_delays(self):
        cascade = CascadeSwitch(
            RevsortSwitch(64, 32), PerfectConcentrator(32, 16)
        )
        pipe = WavePipeline(cascade, payload_bits=2)
        assert pipe.sim.min_clock_period() == cascade.gate_delays

    def test_overload_saturates_at_inner_bottleneck(self):
        cascade = CascadeSwitch(
            PerfectConcentrator(32, 16), PerfectConcentrator(16, 4)
        )
        pipe = WavePipeline(cascade, payload_bits=2, policy=DropPolicy(), seed=3)
        traffic = FixedKTraffic(32, k=20, payload_bits=2, seed=4)
        summary = pipe.run(traffic, waves=5)
        assert all(w.delivered == 4 for w in summary.waves)


class TestFunnelDelayModel:
    def test_funnel_exposes_summed_delays(self):
        funnel = FunnelNetwork.regular(
            leaf_factory=lambda: PerfectConcentrator(16, 8),
            merge_factory=lambda n: PerfectConcentrator(n, n // 2),
            leaf_count=2,
            fan_in=2,
            depth=2,
        )
        leaf = PerfectConcentrator(16, 8).gate_delays
        merge = PerfectConcentrator(16, 8).gate_delays
        assert funnel.gate_delays == leaf + merge

    def test_funnel_equivalent_cascade(self):
        """A 1-wide funnel is exactly a cascade; both views agree on
        capacity and delay."""
        funnel = FunnelNetwork(
            [[PerfectConcentrator(32, 16)], [PerfectConcentrator(16, 8)]]
        )
        cascade = CascadeSwitch(
            PerfectConcentrator(32, 16), PerfectConcentrator(16, 8)
        )
        assert funnel.gate_delays == cascade.gate_delays
        assert funnel.capacity() == cascade.spec.guaranteed_capacity
