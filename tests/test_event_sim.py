"""Tests for the event-driven timing simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.gates.depth import critical_path_length
from repro.gates.event_sim import EventSimulator
from repro.gates.evaluate import evaluate
from repro.gates.hyperconc_gates import build_hyperconcentrator
from repro.gates.netlist import Circuit, Op


def chain_circuit(length: int) -> tuple[Circuit, int]:
    c = Circuit()
    wire = c.input(name="x")
    for _ in range(length):
        wire = c.add_gate(Op.NOT, wire)
    c.set_name("out", wire)
    return c, wire


class TestBasicTiming:
    def test_inverter_chain_settles_at_depth(self):
        c, _ = chain_circuit(5)
        sim = EventSimulator(c)
        result = sim.transition(np.array([False]), np.array([True]))
        assert result.settle_time == 5

    def test_no_change_no_events(self):
        c, _ = chain_circuit(3)
        sim = EventSimulator(c)
        result = sim.transition(np.array([True]), np.array([True]))
        assert result.settle_time == 0
        assert result.total_transitions == 0

    def test_final_values_match_static_evaluation(self):
        c = Circuit()
        a, b = c.input(), c.input()
        g1 = c.add_gate(Op.AND, a, b)
        g2 = c.add_gate(Op.XOR, g1, a)
        sim = EventSimulator(c)
        for old in ([0, 0], [0, 1], [1, 0], [1, 1]):
            for new in ([0, 0], [0, 1], [1, 0], [1, 1]):
                result = sim.transition(
                    np.array(old, dtype=bool), np.array(new, dtype=bool)
                )
                static = evaluate(c, np.array(new, dtype=bool))
                assert np.array_equal(result.final_values, static)

    def test_settle_bounded_by_critical_path(self):
        c = Circuit()
        inputs = [c.input() for _ in range(8)]
        from repro.gates.builders import or_tree

        out = or_tree(c, inputs)
        sim = EventSimulator(c)
        bound = critical_path_length(c, sinks=[out])
        rng = np.random.default_rng(1)
        assert sim.measure_settle_time(30, rng) <= bound

    def test_rejects_bad_input_shape(self):
        c, _ = chain_circuit(1)
        with pytest.raises(CircuitError):
            EventSimulator(c).transition(np.array([True, False]), np.array([True, False]))


class TestGlitches:
    def test_hazard_produces_glitch(self):
        """Classic static-1 hazard: f = a·b + ¬a·c with b=c=1 glitches
        when a flips (the AND paths race through different depths)."""
        c = Circuit()
        a, b, cc = c.input(), c.input(), c.input()
        na = c.add_gate(Op.NOT, a)
        left = c.add_gate(Op.AND, a, b)
        right = c.add_gate(Op.AND, na, cc)
        out = c.add_gate(Op.OR, left, right)
        sim = EventSimulator(c)
        result = sim.transition(
            np.array([True, True, True]), np.array([False, True, True])
        )
        # Output must end high; the hazard may briefly drop it.
        assert bool(result.final_values[out])
        assert result.total_transitions >= 2  # at least a and na moved

    def test_glitch_counter_nonnegative(self):
        c, _ = chain_circuit(4)
        sim = EventSimulator(c)
        result = sim.transition(np.array([False]), np.array([True]))
        assert result.glitches() >= 0


class TestOnHyperconcentrator:
    def test_setup_settles_within_static_bound(self, rng):
        """The dynamic settle time of the real hyperconcentrator setup
        logic never exceeds the static critical path — the timing model
        the paper's delay claims rest on."""
        circuit = build_hyperconcentrator(8, with_datapath=False)
        sim = EventSimulator(circuit)
        static_bound = critical_path_length(circuit)
        worst = sim.measure_settle_time(20, rng)
        assert worst <= static_bound
        assert worst > 0
