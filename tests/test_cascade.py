"""Tests for cascaded concentrator switches and the spec algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concentration import (
    ConcentratorSpec,
    validate_partial_concentration,
)
from repro.errors import ConfigurationError
from repro.switches.cascade import CascadeSwitch, cascade_spec
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.perfect import PerfectConcentrator
from repro.switches.revsort_switch import RevsortSwitch
from tests.conftest import random_bits


class TestCascadeSpec:
    def test_perfect_chain(self):
        a = ConcentratorSpec(n=32, m=16, alpha=1.0)
        b = ConcentratorSpec(n=16, m=8, alpha=1.0)
        spec = cascade_spec(a, b)
        assert (spec.n, spec.m) == (32, 8)
        assert spec.guaranteed_capacity == 8

    def test_bottleneck_is_min(self):
        a = ConcentratorSpec(n=64, m=32, alpha=0.5)   # cap 16
        b = ConcentratorSpec(n=32, m=24, alpha=1.0)   # cap 24
        spec = cascade_spec(a, b)
        assert spec.guaranteed_capacity == 16

    def test_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            cascade_spec(
                ConcentratorSpec(n=8, m=4, alpha=1.0),
                ConcentratorSpec(n=8, m=4, alpha=1.0),
            )


class TestCascadeSwitch:
    def _cascade(self) -> CascadeSwitch:
        # Sizes chosen so both stages carry non-vacuous guarantees:
        # Revsort (256, 192, 0.417) -> Columnsort (192, 96, 1-9/96).
        return CascadeSwitch(
            RevsortSwitch(256, 192), ColumnsortSwitch(48, 4, 96)
        )

    def test_composed_contract_random(self, rng):
        cascade = self._cascade()
        spec = cascade.spec
        for _ in range(60):
            valid = random_bits(rng, cascade.n)
            routing = cascade.setup(valid)
            validate_partial_concentration(spec, valid, routing.input_to_output)

    def test_light_load_end_to_end(self, rng):
        cascade = self._cascade()
        cap = cascade.spec.guaranteed_capacity
        assert cap > 0
        for _ in range(30):
            valid = random_bits(rng, cascade.n, cap)
            assert cascade.setup(valid).routed_count == cap

    def test_delay_is_sum(self):
        cascade = self._cascade()
        assert (
            cascade.gate_delays
            == RevsortSwitch(256, 192).gate_delays
            + ColumnsortSwitch(48, 4, 96).gate_delays
        )

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            CascadeSwitch(PerfectConcentrator(16, 8), PerfectConcentrator(16, 8))

    def test_three_deep_composition(self, rng):
        """Cascades nest: ((A → B) → C) still satisfies its derived
        contract."""
        inner = CascadeSwitch(PerfectConcentrator(32, 16), PerfectConcentrator(16, 8))
        outer = CascadeSwitch(inner, PerfectConcentrator(8, 4))
        spec = outer.spec
        assert (spec.n, spec.m) == (32, 4)
        assert spec.guaranteed_capacity == 4
        for _ in range(30):
            valid = random_bits(rng, 32)
            routing = outer.setup(valid)
            validate_partial_concentration(spec, valid, routing.input_to_output)

    @given(st.integers(min_value=0, max_value=32))
    @settings(max_examples=25)
    def test_routed_counts_monotone_composition(self, k):
        """The cascade never routes more than either stage allows."""
        rng = np.random.default_rng(1)
        cascade = CascadeSwitch(
            PerfectConcentrator(32, 16), PerfectConcentrator(16, 8)
        )
        valid = np.zeros(32, dtype=bool)
        if k:
            valid[rng.choice(32, size=k, replace=False)] = True
        routed = cascade.setup(valid).routed_count
        assert routed == min(k, 8)
