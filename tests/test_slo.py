"""The declarative SLO gate: spec parsing, the metric selector
grammar, verdict evaluation, and the ``repro obs slo`` exit-code
contract (1 on violation, 0 on pass or ``--warn-only``)."""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.obs.slo import (
    SLO_SCHEMA,
    SloRule,
    evaluate_slo,
    load_slo_spec,
    parse_slo_spec,
    resolve_metric,
    slo_rows,
    violations,
)


def _spec(rules: list[dict]) -> dict:
    return {"schema": SLO_SCHEMA, "rules": rules}


def _rule(metric: str, op: str = "<=", threshold: float = 10.0, name=None):
    return SloRule(name=name or metric, metric=metric, op=op, threshold=threshold)


class TestSpecParsing:
    def test_parses_rules_with_defaulted_names(self):
        rules = parse_slo_spec(
            _spec(
                [
                    {"name": "loss", "metric": "flows:knockout.loss_rate",
                     "op": "<=", "threshold": 0.05},
                    {"metric": "counter:sim.rounds", "op": ">", "threshold": 0},
                ]
            )
        )
        assert [r.name for r in rules] == ["loss", "counter:sim.rounds"]
        assert rules[0].threshold == 0.05

    def test_wrong_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            parse_slo_spec({"schema": "nope", "rules": [{}]})

    def test_empty_rules_rejected(self):
        with pytest.raises(ConfigurationError, match="no rules"):
            parse_slo_spec(_spec([]))

    def test_missing_field_names_the_rule(self):
        with pytest.raises(ConfigurationError, match="rule 0"):
            parse_slo_spec(_spec([{"op": "<=", "threshold": 1.0}]))

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown op"):
            parse_slo_spec(
                _spec([{"metric": "counter:x", "op": "==", "threshold": 1.0}])
            )

    def test_load_json_spec(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps(
                _spec([{"metric": "counter:x", "op": "<", "threshold": 2.0}])
            ),
            encoding="utf-8",
        )
        (rule,) = load_slo_spec(path)
        assert rule.op == "<"

    def test_load_toml_spec(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(
            'schema = "repro.obs/slo@1"\n\n'
            "[[rules]]\n"
            'name = "loss"\n'
            'metric = "flows:knockout.loss_rate"\n'
            'op = "<="\n'
            "threshold = 0.05\n",
            encoding="utf-8",
        )
        if sys.version_info >= (3, 11):
            (rule,) = load_slo_spec(path)
            assert rule.name == "loss"
        else:
            with pytest.raises(ConfigurationError, match="JSON instead"):
                load_slo_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no SLO spec"):
            load_slo_spec(tmp_path / "absent.toml")


class TestSelectors:
    SOURCE = {
        "counters": {"sim.delivered": 90.0, "sim.offered": 100.0,
                     "sim.dropped": 0.0, "sim.faults": 0.0},
        "gauges": {"proc.rss_kb": 4096.0},
        "series": {
            "flows.queue_depth{fabric=knockout}": {
                "budget": 256, "stride": 1, "count": 4,
                "points": [[0.0, 1.0], [1.0, 5.0], [2.0, 3.0], [3.0, 2.0]],
            }
        },
        "spans": {"events": [], "dropped": 0},
    }

    def test_counter_and_gauge(self):
        assert resolve_metric("counter:sim.delivered", self.SOURCE)[0] == 90.0
        assert resolve_metric("gauge:proc.rss_kb", self.SOURCE)[0] == 4096.0
        value, detail = resolve_metric("counter:absent", self.SOURCE)
        assert value is None and "no such counter" in detail

    def test_ratio(self):
        value, _ = resolve_metric(
            "ratio:sim.delivered/sim.offered", self.SOURCE
        )
        assert value == pytest.approx(0.9)
        # 0/0 resolves to 0 (a no-traffic run violates no loss budget)
        assert resolve_metric("ratio:sim.dropped/sim.faults", self.SOURCE)[
            0
        ] == 0.0
        # x/0 with x != 0 is unresolvable
        assert resolve_metric("ratio:sim.offered/sim.dropped", self.SOURCE)[
            0
        ] is None

    def test_series_aggregates(self):
        key = "flows.queue_depth{fabric=knockout}"
        assert resolve_metric(f"series_max:{key}", self.SOURCE)[0] == 5.0
        assert resolve_metric(f"series_last:{key}", self.SOURCE)[0] == 2.0
        assert resolve_metric(f"series_mean:{key}", self.SOURCE)[0] == pytest.approx(2.75)
        assert resolve_metric("series_max:absent", self.SOURCE)[0] is None

    def test_worker_idle_pct(self):
        spans = [
            {"name": "engine.shards", "path": "engine.shards", "depth": 0,
             "start": 0.0, "duration_s": 4.0, "meta": {}},
            {"name": "engine.shard", "path": "engine.shard", "depth": 0,
             "start": 0.0, "duration_s": 4.0, "meta": {"worker": "w0"}},
            {"name": "engine.shard", "path": "engine.shard", "depth": 0,
             "start": 0.0, "duration_s": 1.0, "meta": {"worker": "w1"}},
        ]
        source = {"spans": {"events": spans, "dropped": 0}}
        value, _ = resolve_metric("worker_idle_pct", source)
        # the worst worker (w1) was busy 25% of the window -> 75% idle
        assert value == pytest.approx(75.0)
        # no workers at all -> nothing was idle
        assert resolve_metric("worker_idle_pct", {"spans": {"events": []}})[
            0
        ] == 0.0

    def test_flows_compare_document(self):
        doc = {
            "schema": "repro.cli/flows-compare@1",
            "fabrics": {
                "knockout": {"p99": 412.0, "loss_rate": 0.01},
                "fat-tree": {"p99": 123.0, "loss_rate": 0.0},
            },
        }
        assert resolve_metric("flows:knockout.p99", doc)[0] == 412.0
        assert resolve_metric("flows:fat-tree.loss_rate", doc)[0] == 0.0
        assert resolve_metric("flows:absent.p99", doc)[0] is None
        assert resolve_metric("flows:knockout", doc)[0] is None  # no field

    def test_flows_run_document(self):
        doc = {
            "schema": "repro.cli/flows-run@1",
            "result": {"fabric": "knockout", "p99": 412.0},
        }
        assert resolve_metric("flows:result.p99", doc)[0] == 412.0
        assert resolve_metric("flows:knockout.p99", doc)[0] == 412.0
        assert resolve_metric("flows:fat-tree.p99", doc)[0] is None

    def test_unknown_selector_kind(self):
        value, detail = resolve_metric("histogram:x", self.SOURCE)
        assert value is None and "unknown selector" in detail


class TestEvaluation:
    def test_pass_and_fail_verdicts(self):
        rules = [
            _rule("counter:sim.delivered", op=">=", threshold=50.0),
            _rule("counter:sim.delivered", op=">=", threshold=99.0,
                  name="too strict"),
        ]
        verdicts = evaluate_slo(rules, TestSelectors.SOURCE)
        assert [v.ok for v in verdicts] == [True, False]
        assert [v.rule.name for v in violations(verdicts)] == ["too strict"]

    def test_missing_metric_fails(self):
        (verdict,) = evaluate_slo(
            [_rule("counter:absent", op="<=", threshold=1.0)],
            TestSelectors.SOURCE,
        )
        assert not verdict.ok and verdict.value is None

    def test_nan_fails(self):
        doc = {"schema": "repro.cli/flows-run@1",
               "result": {"fabric": "k", "p99": math.nan}}
        (verdict,) = evaluate_slo(
            [_rule("flows:result.p99", op="<=", threshold=1e9)], doc
        )
        assert not verdict.ok and verdict.detail == "value is NaN"

    def test_slo_rows_render(self):
        rules = [_rule("counter:sim.delivered", op=">=", threshold=50.0)]
        (row,) = slo_rows(evaluate_slo(rules, TestSelectors.SOURCE))
        assert row["verdict"] == "ok"
        assert row["want"] == ">= 50"
        assert row["got"] == "90"


def _write_spec(tmp_path: Path, rules: list[dict]) -> Path:
    path = tmp_path / "slo.json"
    path.write_text(
        json.dumps({"schema": SLO_SCHEMA, "rules": rules}), encoding="utf-8"
    )
    return path


def _flows_json(tmp_path: Path) -> Path:
    doc = {
        "schema": "repro.cli/flows-compare@1",
        "fabrics": {"knockout": {"p99": 412.0, "loss_rate": 0.01}},
    }
    path = tmp_path / "head-to-head.json"
    path.write_text(json.dumps(doc), encoding="utf-8")
    return path


class TestCLIGate:
    def _main(self, argv):
        from repro.cli import main

        return main(argv)

    def test_passing_spec_exits_zero(self, tmp_path, capsys):
        spec = _write_spec(
            tmp_path,
            [{"name": "p99", "metric": "flows:knockout.p99",
              "op": "<=", "threshold": 600.0}],
        )
        code = self._main(
            ["obs", "slo", "--spec", str(spec),
             "--input", str(_flows_json(tmp_path))]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_violated_spec_exits_one(self, tmp_path, capsys):
        spec = _write_spec(
            tmp_path,
            [{"name": "p99", "metric": "flows:knockout.p99",
              "op": "<=", "threshold": 100.0}],
        )
        code = self._main(
            ["obs", "slo", "--spec", str(spec),
             "--input", str(_flows_json(tmp_path))]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "contract violation" in captured.err
        assert "p99" in captured.err
        assert "FAIL" in captured.out

    def test_warn_only_exits_zero_with_warning(self, tmp_path, capsys):
        spec = _write_spec(
            tmp_path,
            [{"name": "p99", "metric": "flows:knockout.p99",
              "op": "<=", "threshold": 100.0}],
        )
        code = self._main(
            ["obs", "slo", "--spec", str(spec),
             "--input", str(_flows_json(tmp_path)), "--warn-only"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "WARNING" in captured.err
        assert "warn-only" in captured.err

    def test_json_format_emits_verdict_document(self, tmp_path, capsys):
        spec = _write_spec(
            tmp_path,
            [{"name": "p99", "metric": "flows:knockout.p99",
              "op": "<=", "threshold": 600.0}],
        )
        code = self._main(
            ["obs", "slo", "--spec", str(spec),
             "--input", str(_flows_json(tmp_path)), "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.cli/slo-verdicts@1"
        assert payload["ok"] is True
        assert payload["verdicts"][0]["value"] == 412.0

    def test_requires_exactly_one_source(self, tmp_path, capsys):
        spec = _write_spec(
            tmp_path,
            [{"metric": "counter:x", "op": "<=", "threshold": 1.0}],
        )
        assert self._main(["obs", "slo", "--spec", str(spec)]) == 2
        journal = tmp_path / "j.jsonl"
        flows = _flows_json(tmp_path)
        assert (
            self._main(
                ["obs", "slo", "--spec", str(spec), "--journal",
                 str(journal), "--input", str(flows)]
            )
            == 2
        )

    def test_journal_source(self, tmp_path, capsys):
        from tests.test_timeseries import deterministic_flows_run

        journal = tmp_path / "flows.jsonl"
        deterministic_flows_run(journal)
        spec = _write_spec(
            tmp_path,
            [
                {"name": "events", "metric":
                 "counter:flows.events{fabric=knockout}",
                 "op": ">=", "threshold": 6.0},
                {"name": "peak queue", "metric":
                 "series_max:flows.queue_depth{fabric=knockout}",
                 "op": "<=", "threshold": 10.0},
            ],
        )
        code = self._main(
            ["obs", "slo", "--spec", str(spec), "--journal", str(journal)]
        )
        assert code == 0

    def test_smoke_spec_parses(self):
        """The committed CI smoke spec must stay loadable (TOML needs
        tomllib, so only check on runtimes that have it)."""
        path = Path(__file__).parent.parent / "benchmarks" / "slo_smoke.toml"
        assert path.exists()
        if sys.version_info >= (3, 11):
            rules = load_slo_spec(path)
            assert rules
            assert all(r.metric.startswith("flows:") for r in rules)
