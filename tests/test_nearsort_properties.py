"""Property-based coverage for ε-nearsortedness and Lemmas 1/2.

Hypothesis drives the analytical core (``core.nearsort``,
``core.concentration``) over arbitrary bit sequences, checking the
paper's structural claims rather than hand-picked examples.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given
from hypothesis import strategies as st

from repro._util.rng import default_rng
from repro.core.concentration import (
    figure2_counterexample,
    lemma2_load_ratio,
    lemma2_spec,
)
from repro.core.nearsort import (
    decompose_dirty_window,
    is_nearsorted,
    lemma1_epsilon_from_window,
    lemma1_window_from_epsilon,
    nearsortedness,
    nearsortedness_strict,
    random_epsilon_nearsorted,
)
from repro.engine import nearsortedness_batch
from repro.verify import strategies as vst


class TestNearsortedness:
    @given(seq=vst.valid_bits(24))
    def test_epsilon_is_minimal(self, seq):
        eps = nearsortedness(seq)
        assert is_nearsorted(seq, eps)
        if eps > 0:
            assert not is_nearsorted(seq, eps - 1)

    @given(seq=vst.valid_bits(24))
    def test_strict_notion_dominates(self, seq):
        assert nearsortedness_strict(seq) >= nearsortedness(seq)

    @given(batch=vst.bit_batches(12, max_batch=80))
    def test_batch_matches_scalar(self, batch):
        expected = np.array(
            [nearsortedness(row.astype(np.int8)) for row in batch], dtype=np.int64
        )
        assert np.array_equal(nearsortedness_batch(batch), expected)


class TestLemma1:
    @given(seq=vst.valid_bits(24))
    def test_forward_window_structure(self, seq):
        """An ε-nearsorted sequence has ≥ k−ε clean 1s, ≤ 2ε dirty
        positions, ≥ n−k−ε clean 0s (Lemma 1 ⇒)."""
        eps = nearsortedness(seq)
        d = decompose_dirty_window(seq)
        min_ones, max_dirty, min_zeros = lemma1_window_from_epsilon(d.n, d.k, eps)
        assert d.clean_ones >= min_ones
        assert d.dirty_length <= max_dirty
        assert d.clean_zeros >= min_zeros
        assert d.clean_ones + d.dirty_length + d.clean_zeros == d.n

    @given(seq=vst.valid_bits(24))
    def test_backward_epsilon_from_window(self, seq):
        """The window-derived ε makes the sequence ε-nearsorted, never
        exceeds the window length, and is exactly minimal (Lemma 1 ⇐)."""
        d = decompose_dirty_window(seq)
        eps = lemma1_epsilon_from_window(d)
        assert 0 <= eps <= d.dirty_length
        assert is_nearsorted(seq, eps)
        assert eps == nearsortedness(seq)

    @given(
        n=st.integers(min_value=1, max_value=32),
        data=st.data(),
    )
    def test_sampler_respects_epsilon(self, n, data):
        k = data.draw(st.integers(min_value=0, max_value=n))
        eps = data.draw(st.integers(min_value=0, max_value=n))
        seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
        seq = random_epsilon_nearsorted(n, k, eps, default_rng(seed))
        assert int(seq.sum()) == k
        assert nearsortedness(seq) <= eps


class TestLemma2:
    @given(
        m=st.integers(min_value=1, max_value=64),
        eps=st.integers(min_value=0, max_value=80),
        extra=st.integers(min_value=0, max_value=64),
    )
    def test_guaranteed_capacity_is_m_minus_epsilon(self, m, eps, extra):
        spec = lemma2_spec(m + extra, m, eps)
        assert spec.guaranteed_capacity == max(0, m - eps)

    @given(
        m=st.integers(min_value=1, max_value=64),
        eps=st.integers(min_value=0, max_value=80),
    )
    def test_load_ratio_monotone_in_epsilon(self, m, eps):
        assert lemma2_load_ratio(m, eps) >= lemma2_load_ratio(m, eps + 1)
        assert 0.0 <= lemma2_load_ratio(m, eps) <= 1.0

    @given(
        n=st.integers(min_value=8, max_value=128),
        m=st.integers(min_value=2, max_value=32),
        eps=st.integers(min_value=1, max_value=31),
    )
    def test_figure2_witness_is_not_nearsorted(self, n, m, eps):
        """The converse of Lemma 2 fails: the Figure 2 output pattern is
        contract-legal yet more than ε from sorted."""
        assume(m <= n and eps < m)
        k = m - eps + 1
        assume(k + eps < (n + m) / 2)
        k_out, bits = figure2_counterexample(n, m, eps)
        assert k_out == k
        assert int(bits.sum()) == k
        assert nearsortedness(bits) > eps
        # Still a legitimate (n, m, 1 − ε/m) outcome: ⌊αm⌋ = m − ε of
        # the k messages occupy the first m outputs.
        assert int(bits[:m].sum()) == m - eps
