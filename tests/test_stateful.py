"""Stateful property tests (hypothesis rule-based state machines).

These drive long random interaction sequences against stateful
components — the knockout switch's queues and the congestion policies —
checking conservation and ordering invariants at every step.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.messages.congestion import BufferPolicy
from repro.messages.message import Message
from repro.network.knockout import KnockoutSwitch, Packet


class KnockoutMachine(RuleBasedStateMachine):
    """Random packet injections into a knockout switch; conservation
    must hold at every step: offered = delivered + lost + queued."""

    def __init__(self):
        super().__init__()
        self.switch = KnockoutSwitch(8, 3, buffer_depth=4)
        self.slot = 0

    @rule(data=st.data())
    def inject(self, data):
        sources = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=7),
                max_size=8,
                unique=True,
            )
        )
        packets: list[Packet | None] = [None] * 8
        for src in sources:
            dst = data.draw(st.integers(min_value=0, max_value=7))
            packets[src] = Packet(source=src, destination=dst, slot=self.slot)
        self.switch.step(packets)
        self.slot += 1

    @rule()
    def idle_slot(self):
        self.switch.step([None] * 8)
        self.slot += 1

    @invariant()
    def conservation(self):
        stats = self.switch.stats
        queued = sum(self.switch.queue_lengths())
        assert stats.offered == stats.delivered + stats.lost + queued

    @invariant()
    def queues_within_capacity(self):
        assert all(q <= 4 for q in self.switch.queue_lengths())


KnockoutMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestKnockout = KnockoutMachine.TestCase


class BufferPolicyMachine(RuleBasedStateMachine):
    """The buffer policy must preserve FIFO order and never lose
    messages below capacity."""

    def __init__(self):
        super().__init__()
        self.policy = BufferPolicy(capacity=16)
        self.expected: list[int] = []
        self.round = 0

    @rule(count=st.integers(min_value=0, max_value=5))
    def lose_messages(self, count):
        msgs = [Message.from_int(i % 16, 4) for i in range(count)]
        accepted = min(count, 16 - len(self.expected))
        self.policy.on_unrouted(msgs, self.round)
        self.expected.extend(m.tag for m in msgs[:accepted])
        self.round += 1

    @rule()
    def drain(self):
        got = [m.tag for m in self.policy.backlog()]
        assert got == self.expected
        self.expected = []

    @invariant()
    def never_over_capacity(self):
        # Internal queue bounded by construction; drain proves order.
        assert len(self.expected) <= 16


BufferPolicyMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestBufferPolicy = BufferPolicyMachine.TestCase
