"""Tests for the performance observatory (repro.obs.perf).

Covers the trajectory store, the noise-aware regression detector (and
its edge cases: empty baseline, single repeat, exact tie), the
Chrome-trace exporter, the cProfile hooks, the bench-suite runner, the
engine's per-stage spans, and the ``repro bench`` / ``repro obs
trace|report`` CLI — including the acceptance check that an injected
slowdown in the batch executor trips ``bench compare``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs.perf import (
    chrometrace,
    profiler,
    regression,
    report,
    suite,
    trajectory,
)
from repro.obs.tracing import SpanRecord

REPO_ROOT = Path(__file__).resolve().parents[1]


def _record(bench: str, median: float, **over) -> dict:
    base = trajectory.new_record(
        bench=bench,
        suite="smoke",
        unit="trials",
        repeats=3,
        wall_s=[median, median, median],
        median_wall_s=median,
        best_wall_s=median,
        work=64,
        throughput=64 / median if median else None,
        rss_peak_kb=1000,
        alloc_peak_kb=10,
        alloc_blocks=5,
        plan_cache={"hits": 3, "misses": 0, "hit_rate": 1.0},
        span_seconds={},
        meta={},
        env={"git_sha": "a" * 40, "git_dirty": False, "python": "3",
             "numpy": "2", "platform": "test"},
        seed=7,
        started_at="2026-01-01T00:00:00+0000",
    )
    base.update(over)
    return base


class TestTrajectory:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "traj.jsonl"
        first = [_record("a", 0.1), _record("b", 0.2)]
        trajectory.append_records(path, first)
        trajectory.append_records(path, [_record("a", 0.3)])
        records = trajectory.read_trajectory(path)
        assert [r["bench"] for r in records] == ["a", "b", "a"]
        assert records[0] == first[0]  # append never rewrites old lines

    def test_append_rejects_foreign_schema(self, tmp_path):
        with pytest.raises(ConfigurationError):
            trajectory.append_records(tmp_path / "t.jsonl", [{"schema": "x"}])

    def test_read_rejects_foreign_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"schema": "not-a-bench"}\n')
        with pytest.raises(ConfigurationError, match="not a repro.obs/bench"):
            trajectory.read_trajectory(path)

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no trajectory"):
            trajectory.read_trajectory(tmp_path / "absent.jsonl")

    def test_split_latest(self):
        records = [_record("a", 0.1), _record("b", 0.2), _record("a", 0.3)]
        candidates, history = trajectory.split_latest(records)
        assert candidates["a"]["median_wall_s"] == 0.3
        assert candidates["b"]["median_wall_s"] == 0.2
        assert history == [records[0]]

    def test_backfill_engine_report(self):
        engine = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
        records = trajectory.backfill_engine_report(
            engine, env={"git_sha": "f" * 40}
        )
        assert len(records) == len(engine["rows"])
        first = records[0]
        assert first["schema"] == trajectory.TRAJECTORY_SCHEMA
        assert first["bench"].startswith("engine.")
        assert first["median_wall_s"] == engine["rows"][0]["batch_seconds"]
        assert first["meta"]["backfilled_from"] == "BENCH_engine.json"
        assert first["env"]["git_sha"] == "f" * 40

    def test_backfill_empty_report(self):
        with pytest.raises(ConfigurationError):
            trajectory.backfill_engine_report({"rows": []})

    def test_committed_seed_baseline(self):
        """The repo ships the backfilled BENCH_engine.json as record 0,
        so `repro bench compare` always has a baseline file."""
        records = trajectory.read_trajectory(REPO_ROOT / "BENCH_TRAJECTORY.jsonl")
        assert len(records) >= 4
        benches = {r["bench"] for r in records}
        assert "engine.columnsort-n4096" in benches
        assert all(r["meta"].get("backfilled_from") == "BENCH_engine.json"
                   for r in records[:4])


class TestRegression:
    def test_empty_baseline_passes(self):
        verdicts = regression.compare_records({"a": _record("a", 0.1)}, [])
        assert [v.status for v in verdicts] == ["no-baseline"]
        assert not regression.has_regressions(verdicts)

    def test_single_repeat_record(self):
        cand = _record("a", 0.1, repeats=1, wall_s=[0.1])
        verdicts = regression.compare_records(
            {"a": cand}, [_record("a", 0.1, repeats=1, wall_s=[0.1])]
        )
        assert verdicts[0].status == "ok"
        assert verdicts[0].ratio == 1.0

    def test_exact_tie_is_ok(self):
        verdicts = regression.compare_records(
            {"a": _record("a", 0.0)}, [_record("a", 0.0)]
        )
        assert verdicts[0].status == "ok"

    def test_zero_baseline_nonzero_candidate_regresses(self):
        verdicts = regression.compare_records(
            {"a": _record("a", 0.1)}, [_record("a", 0.0)]
        )
        assert verdicts[0].status == "regression"
        assert verdicts[0].ratio is None

    def test_two_x_slowdown_regresses(self):
        verdicts = regression.compare_records(
            {"a": _record("a", 0.2)}, [_record("a", 0.1)]
        )
        assert verdicts[0].status == "regression"
        assert verdicts[0].ratio == pytest.approx(2.0)
        assert regression.has_regressions(verdicts)

    def test_improvement_and_noise_band(self):
        verdicts = regression.compare_records(
            {"fast": _record("fast", 0.04), "noisy": _record("noisy", 0.13)},
            [_record("fast", 0.1), _record("noisy", 0.1)],
        )
        by_bench = {v.bench: v for v in verdicts}
        assert by_bench["fast"].status == "improvement"
        assert by_bench["noisy"].status == "ok"

    def test_window_uses_trailing_median(self):
        history = [_record("a", w) for w in (0.1, 0.1, 10.0, 0.1, 0.1)]
        verdicts = regression.compare_records(
            {"a": _record("a", 0.12)}, history, window=5
        )
        # median of the window is 0.1 — one historic outlier cannot
        # poison the baseline.
        assert verdicts[0].baseline_wall_s == pytest.approx(0.1)
        assert verdicts[0].status == "ok"
        # a window of 1 sees only the newest historic record
        verdicts = regression.compare_records(
            {"a": _record("a", 0.12)}, history[:3], window=1
        )
        assert verdicts[0].baseline_wall_s == pytest.approx(10.0)
        assert verdicts[0].status == "improvement"

    def test_bad_options(self):
        with pytest.raises(ConfigurationError):
            regression.compare_records({}, [], tolerance=-0.1)
        with pytest.raises(ConfigurationError):
            regression.compare_records({}, [], window=0)

    def test_regressions_sort_first(self):
        verdicts = regression.compare_records(
            {"ok": _record("ok", 0.1), "bad": _record("bad", 0.9)},
            [_record("ok", 0.1), _record("bad", 0.1)],
        )
        assert verdicts[0].bench == "bad"
        assert verdicts[0].regressed


class TestChromeTrace:
    SPANS = [
        SpanRecord("outer", "outer", 0, start=10.0, duration_s=0.5),
        SpanRecord("inner", "outer/inner", 1, start=10.1,
                   duration_s=0.2, meta={"layer": 0}),
    ]

    def test_events_rebased_to_microseconds(self):
        events = chrometrace.chrome_trace_events(self.SPANS)
        assert [e["name"] for e in events] == ["outer", "inner"]
        assert events[0]["ts"] == 0.0
        assert events[0]["dur"] == pytest.approx(5e5)
        assert events[1]["ts"] == pytest.approx(1e5)
        assert events[1]["args"]["layer"] == 0
        assert events[1]["args"]["path"] == "outer/inner"
        assert all(e["ph"] == "X" for e in events)

    def test_document_and_write(self, tmp_path):
        path = tmp_path / "trace.json"
        chrometrace.write_chrome_trace(
            {"events": [s.as_dict() for s in self.SPANS], "dropped": 3},
            path,
            metadata={"switch": "demo"},
        )
        document = json.loads(path.read_text())
        assert document["otherData"]["switch"] == "demo"
        assert document["otherData"]["dropped_spans"] == 3
        phases = {e["ph"] for e in document["traceEvents"]}
        assert phases == {"M", "X"}
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "M"]
        assert "process_name" in names and "thread_name" in names

    def test_empty_spans(self):
        assert chrometrace.chrome_trace_events([]) == []
        document = chrometrace.chrome_trace_document([])
        assert all(e["ph"] == "M" for e in document["traceEvents"])


class TestProfiler:
    def test_profiled_and_text(self):
        with profiler.profiled() as prof:
            sorted(range(1000))
        text = profiler.profile_text(prof, top=5)
        assert "function calls" in text

    def test_write_binary_and_text(self, tmp_path):
        with profiler.profiled() as prof:
            sum(range(100))
        binary = profiler.write_profile(prof, tmp_path / "out.prof")
        import pstats

        pstats.Stats(str(binary))  # loadable
        text = profiler.write_profile(prof, tmp_path / "out.txt")
        assert "Ordered by" in text.read_text()

    def test_bad_sort_key(self):
        with profiler.profiled() as prof:
            pass
        with pytest.raises(ConfigurationError):
            profiler.profile_text(prof, sort="nope")


class TestSuite:
    def test_suite_registry_shape(self):
        assert set(suite.suite_names()) == {"smoke", "full", "scaling", "flows"}
        flows = suite.suite_specs("flows")
        assert {s.id for s in flows} == {
            f"flows.{fabric}-n64"
            for fabric in ("concentrator", "fattree", "knockout", "rotor")
        }
        smoke = suite.suite_specs("smoke")
        assert {s.id for s in smoke} >= {
            "engine.columnsort-n256",
            "quality.thm4-columnsort-n256",
            "certify.revsort-n16",
        }
        only = suite.suite_specs("smoke", contains="hyper")
        assert [s.id for s in only] == ["engine.hyper-n256"]
        with pytest.raises(ConfigurationError):
            suite.suite_specs("nope")

    def test_run_bench_record_shape(self):
        spec = suite.suite_specs("smoke", contains="engine.columnsort")[0]
        record = suite.run_bench(spec, suite="smoke", repeats=2, alloc=True)
        assert record["schema"] == trajectory.TRAJECTORY_SCHEMA
        assert record["bench"] == spec.id
        assert len(record["wall_s"]) == 2
        assert record["median_wall_s"] > 0
        assert record["throughput"] > 0
        assert record["plan_cache"]["hit_rate"] == 1.0  # warmed in make()
        assert record["alloc_peak_kb"] is not None
        assert record["alloc_blocks"] is not None
        assert "engine.stage.seconds" in record["span_seconds"]
        assert record["span_seconds"]["bench.repeat.seconds"]["count"] == 2
        assert record["env"]["numpy"] == np.__version__
        json.dumps(record)  # JSONL-ready

    def test_quality_bench_meta_has_theory_lines(self):
        spec = suite.suite_specs("smoke", contains="thm4")[0]
        record = suite.run_bench(spec, suite="smoke", repeats=1, alloc=False)
        meta = record["meta"]
        assert meta["gate_delays"] > 0
        assert meta["theory_delays"] == pytest.approx(4 * 0.75 * 8)  # 4b lg 256
        assert record["alloc_peak_kb"] is None  # alloc pass skipped

    def test_run_bench_rejects_zero_repeats(self):
        spec = suite.suite_specs("smoke")[0]
        with pytest.raises(ConfigurationError):
            suite.run_bench(spec, suite="smoke", repeats=0)


class TestEngineSpans:
    def test_one_span_per_chip_layer(self):
        from repro.engine.batch import _compile_steps
        from repro.switches.columnsort_switch import ColumnsortSwitch

        switch = ColumnsortSwitch.from_beta(256, 0.75, 192)
        valid = np.zeros((4, 256), dtype=bool)
        valid[:, :64] = True
        switch.setup_batch(valid)  # warm: compile outside the traced run
        steps, _ = _compile_steps(switch._plan)
        with obs.collecting() as registry:
            switch.setup_batch(valid)
        events = registry.snapshot()["spans"]["events"]
        run_plans = [e for e in events if e["name"] == "engine.run_plan"]
        stages = [e for e in events if e["name"] == "engine.stage"]
        assert len(run_plans) == 1
        assert len(stages) == len(steps)
        assert all(e["path"] == "engine.run_plan/engine.stage" for e in stages)
        assert [e["meta"]["layer"] for e in stages] == list(range(len(steps)))

    def test_comparator_plan_spans(self):
        from repro.switches.bitonic import BitonicHyperconcentrator

        switch = BitonicHyperconcentrator(16)
        valid = np.zeros((2, 16), dtype=bool)
        valid[:, :5] = True
        switch.setup_batch(valid)
        with obs.collecting() as registry:
            switch.setup_batch(valid)
        stages = [
            e for e in registry.snapshot()["spans"]["events"]
            if e["name"] == "engine.stage"
        ]
        assert stages
        assert all(e["meta"]["kind"] == "comparator" for e in stages)

    def test_new_metrics_are_cataloged(self):
        known = set(obs.metric_names())
        for name in ("engine.run_plan", "engine.stage", "bench.repeat",
                     "trace.run"):
            assert name in known


class TestBenchCli:
    ARGS = [
        "bench", "run", "--suite", "smoke", "--filter",
        "engine.columnsort-n256", "--repeats", "1", "--no-alloc",
    ]

    def test_run_then_compare_ok(self, tmp_path, capsys):
        out = tmp_path / "traj.jsonl"
        assert main([*self.ARGS, "--out", str(out)]) == 0
        assert "record(s) appended" in capsys.readouterr().out
        # first record: no baseline yet, still exit 0
        assert main(["bench", "compare", "--baseline", str(out)]) == 0
        assert "no-baseline" in capsys.readouterr().out
        # second identical run: well inside the noise band
        assert main([*self.ARGS, "--out", str(out)]) == 0
        assert main(["bench", "compare", "--baseline", str(out)]) == 0
        assert len(trajectory.read_trajectory(out)) == 2

    def test_injected_slowdown_trips_the_gate(self, tmp_path, capsys,
                                              monkeypatch):
        """Acceptance: a 2x slowdown in the batch executor makes
        `repro bench compare` exit nonzero."""
        import repro.engine.batch as batch_mod

        out = tmp_path / "traj.jsonl"
        assert main([*self.ARGS, "--out", str(out)]) == 0

        original = batch_mod._run_plan_sparse_flat

        def handicapped(plan, valid):
            time.sleep(0.02)  # >> the ~1ms genuine workload => >2x
            return original(plan, valid)

        monkeypatch.setattr(batch_mod, "_run_plan_sparse_flat", handicapped)
        assert main([*self.ARGS, "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["bench", "compare", "--baseline", str(out)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "performance regression" in captured.err
        # warn-only mode reports but exits 0 (the CI smoke contract)
        assert main(["bench", "compare", "--baseline", str(out),
                     "--warn-only"]) == 0

    def test_compare_json_format_and_candidate_file(self, tmp_path, capsys):
        baseline = tmp_path / "base.jsonl"
        candidate = tmp_path / "cand.jsonl"
        trajectory.append_records(baseline, [_record("a", 0.1)])
        trajectory.append_records(candidate, [_record("a", 0.3)])
        code = main([
            "bench", "compare", "--baseline", str(baseline),
            "--candidate", str(candidate), "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["verdicts"][0]["status"] == "regression"
        assert payload["verdicts"][0]["ratio"] == pytest.approx(3.0)

    def test_compare_missing_file_is_cli_error(self, tmp_path, capsys):
        code = main(["bench", "compare", "--baseline",
                     str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestObsCli:
    def test_trace_produces_perfetto_loadable_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "obs", "trace", "--switch", "columnsort", "--n", "256",
            "--m", "192", "--trials", "8", "--out", str(out),
        ])
        assert code == 0
        assert "perfetto" in capsys.readouterr().out.lower()
        document = json.loads(out.read_text())
        names = [e["name"] for e in document["traceEvents"]
                 if e.get("ph") == "X"]
        assert "trace.run" in names
        assert "engine.run_plan" in names
        assert names.count("engine.stage") >= 1
        # every X event carries the fields the trace viewers require
        for event in document["traceEvents"]:
            if event.get("ph") == "X":
                assert {"name", "ts", "dur", "pid", "tid"} <= set(event)

    def test_trace_with_profile(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        prof = tmp_path / "hot.txt"
        code = main([
            "obs", "trace", "--switch", "revsort", "--n", "64", "--m", "48",
            "--trials", "4", "--out", str(out), "--profile", str(prof),
        ])
        assert code == 0
        assert "profile written" in capsys.readouterr().out
        assert "function calls" in prof.read_text()

    def test_report_table_and_md(self, tmp_path, capsys):
        traj = tmp_path / "traj.jsonl"
        trajectory.append_records(traj, [
            _record("engine.demo", 0.1),
            _record("engine.demo", 0.08),
            _record(
                "quality.demo", 0.2,
                meta={"n": 256, "family": "revsort", "gate_delays": 31,
                      "theory_delays": 24.0},
            ),
        ])
        assert main(["obs", "report", "--trajectory", str(traj)]) == 0
        text = capsys.readouterr().out
        assert "bench trajectory" in text
        assert "3 lg n = 24" in text
        md_out = tmp_path / "report.md"
        assert main(["obs", "report", "--trajectory", str(traj),
                     "--format", "md", "--out", str(md_out)]) == 0
        assert "# Bench trajectory" in md_out.read_text()

    def test_plain_obs_still_lists_catalog(self, capsys):
        assert main(["obs"]) == 0
        assert "metric catalog" in capsys.readouterr().out


class TestReportHelpers:
    def test_sparkline(self):
        assert report.sparkline([]) == ""
        assert report.sparkline([1.0, 1.0]) == "▁▁"
        line = report.sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_empty_trajectory_raises(self):
        with pytest.raises(ConfigurationError):
            report.trajectory_report([])

    def test_bad_format(self):
        with pytest.raises(ConfigurationError):
            report.trajectory_report([_record("a", 0.1)], fmt="html")


class TestBenchMetricsCataloged:
    def test_bench_run_emits_only_cataloged_metrics(self):
        """A bench run (engine + quality paths) emits no metric the
        catalog does not document — the 'repro obs' table stays
        complete."""
        spec = suite.suite_specs("smoke", contains="thm3")[0]
        record = suite.run_bench(spec, suite="smoke", repeats=1, alloc=False)
        known = set(obs.metric_names())
        for key in record["span_seconds"]:
            base = key.split("{")[0].removesuffix(".seconds")
            assert base in known, f"{key} missing from repro.obs.catalog"
