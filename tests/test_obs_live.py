"""Live telemetry pipeline: journal, merge protocol, sampler, flight
recorder, live view, Prometheus exposition, and the CLI wiring.

The heart of the suite is **replay parity**: the journal's delta-flush
metric events must reduce to exactly the live registry's final totals,
including metrics merged back from worker registries — the property
that makes the journal a faithful forensic record rather than a lossy
log.  A byte-for-byte golden (``tests/golden/journal_deterministic.
jsonl``) pins the schema; everything runs on injected fake clocks, so
nothing here sleeps.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from io import StringIO
from pathlib import Path

import pytest

from repro import obs
from repro.errors import ConfigurationError, exit_code_for
from repro.obs.live import (
    CRASH_SCHEMA,
    JOURNAL_SCHEMA,
    WORKER_SCHEMA,
    EventJournal,
    FlightRecorder,
    JournalSink,
    LiveView,
    ResourceSampler,
    failing_span,
    merge_portable,
    portable_snapshot,
    prometheus_text,
    read_crash_report,
    read_journal,
    replay_journal,
    roundtrip,
)
from repro.obs.registry import split_metric_key
from repro.obs.tracing import SpanRecord, Tracer

GOLDEN_DIR = Path(__file__).parent / "golden"


class FakeClock:
    """Manually advanced clock — no sleeps anywhere in this module."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


def deterministic_run(path: Path | None):
    """One fully deterministic journaled run (fixed clock, fixed
    values).  Returns ``(registry, journal)`` after closing both; used
    by the golden test and regenerable via
    ``python -m tests.test_obs_live`` semantics below."""
    clock = FakeClock(start=0.0)
    registry = obs.Registry(clock=clock)
    journal = EventJournal(path, clock=clock, command="golden")
    sink = JournalSink(registry, journal)
    journal.emit("phase", name="work", total=2)
    registry.counter("sim.rounds").inc(3)
    registry.gauge("proc.rss_kb").set(512)
    with registry.tracer.span("sim.run", rounds=1):
        clock.tick(0.5)
        with registry.tracer.span("sim.round", round=0):
            clock.tick(0.25)
    registry.histogram("serial.transit_cycles").observe(9)
    sink.flush()
    journal.emit("progress", phase="work", done=1, total=2)
    # A worker registry merged through the portable protocol: counters
    # land in the parent's keys, gauges gain a worker label.
    worker = obs.Registry(clock=clock)
    worker.counter("sim.rounds").inc(2)
    worker.gauge("proc.rss_kb").set(640)
    with worker.tracer.span("sim.round", round=1):
        clock.tick(0.25)
    merge_portable(registry, roundtrip(portable_snapshot(worker)), worker="w0")
    sink.flush()
    journal.emit("progress", phase="work", done=2, total=2)
    sink.close()
    journal.close()
    return registry, journal


class TestEventJournal:
    def test_start_line_carries_schema_and_command(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path, clock=FakeClock(), command="test"):
            pass
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0]["type"] == "start"
        assert events[0]["schema"] == JOURNAL_SCHEMA
        assert events[0]["command"] == "test"
        assert events[-1]["type"] == "end"

    def test_seq_is_monotonic_and_lines_flush_immediately(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path, clock=FakeClock())
        journal.emit("phase", name="a")
        # visible before close: a live tailer must see every line
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        journal.emit("phase", name="b")
        journal.close()
        seqs = [json.loads(line)["seq"] for line in path.read_text().splitlines()]
        assert seqs == list(range(len(seqs)))

    def test_in_memory_journal_feeds_subscribers(self):
        seen = []
        journal = EventJournal(None, clock=FakeClock())
        journal.subscribe(seen.append)
        journal.emit("phase", name="x")
        journal.close()
        assert [e["type"] for e in seen] == ["phase", "end"]

    def test_broken_subscriber_does_not_break_the_journal(self):
        def bad(event):
            raise RuntimeError("consumer bug")

        journal = EventJournal(None, clock=FakeClock())
        journal.subscribe(bad)
        event = journal.emit("phase", name="x")
        assert event["name"] == "x"

    def test_span_budget_counts_overflow(self):
        journal = EventJournal(None, clock=FakeClock(), span_limit=2)
        seen = []
        journal.subscribe(seen.append)
        for i in range(5):
            journal.emit_span(
                SpanRecord(f"s{i}", f"s{i}", 0, start=0.0, duration_s=0.1)
            )
        journal.close()
        spans = [e for e in seen if e["type"] == "span"]
        assert len(spans) == 2
        assert seen[-1]["type"] == "end"
        assert seen[-1]["spans_dropped"] == 3

    def test_directory_path_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            EventJournal(tmp_path)

    def test_read_journal_rejects_garbage(self, tmp_path):
        path = tmp_path / "not.jsonl"
        path.write_text('{"seq": 0, "type": "other"}\n')
        with pytest.raises(ConfigurationError):
            read_journal(path)
        with pytest.raises(ConfigurationError):
            read_journal([])
        with pytest.raises(ConfigurationError):
            read_journal(tmp_path / "missing.jsonl")


class TestJournalGolden:
    GOLDEN = GOLDEN_DIR / "journal_deterministic.jsonl"

    def test_golden_journal_is_byte_stable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        deterministic_run(path)
        produced = path.read_text(encoding="utf-8")
        assert produced == self.GOLDEN.read_text(encoding="utf-8"), (
            "the journal schema drifted; if intentional, regenerate "
            "tests/golden/journal_deterministic.jsonl with "
            "tests.test_obs_live.deterministic_run"
        )

    def test_replay_reduces_to_live_registry_totals(self, tmp_path):
        path = tmp_path / "j.jsonl"
        registry, _ = deterministic_run(path)
        snapshot = registry.snapshot()
        replayed = replay_journal(path)
        assert replayed["counters"] == snapshot["counters"]
        assert replayed["gauges"] == snapshot["gauges"]
        for key, hist in snapshot["histograms"].items():
            assert replayed["histograms"][key]["count"] == hist["count"]
            assert replayed["histograms"][key]["sum"] == pytest.approx(hist["sum"])
            assert replayed["histograms"][key]["min"] == hist["min"]
            assert replayed["histograms"][key]["max"] == hist["max"]

    def test_worker_metrics_present_after_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"
        registry, _ = deterministic_run(path)
        replayed = replay_journal(path)
        # worker counter landed in the parent's key (3 local + 2 merged)
        assert replayed["counters"]["sim.rounds"] == 5
        assert replayed["counters"]["obs.workers_merged{worker=w0}"] == 1
        # worker gauge kept its provenance label
        assert replayed["gauges"]["proc.rss_kb{worker=w0}"] == 640
        assert replayed["gauges"]["proc.rss_kb"] == 512

    def test_replayed_spans_match_tracer(self, tmp_path):
        path = tmp_path / "j.jsonl"
        registry, _ = deterministic_run(path)
        replayed = replay_journal(path)
        live = [e.as_dict() for e in registry.tracer.events]
        assert replayed["spans"]["events"] == live
        assert replayed["spans"]["dropped"] == 0


class TestMergeProtocol:
    def test_portable_snapshot_roundtrips_as_json(self):
        registry = obs.Registry(clock=FakeClock())
        registry.counter("sim.rounds").inc()
        with registry.tracer.span("sim.run"):
            pass
        document = portable_snapshot(registry, worker="w3")
        assert document["schema"] == WORKER_SCHEMA
        assert document["worker"] == "w3"
        assert roundtrip(document) == json.loads(json.dumps(document))

    def test_merge_semantics(self):
        clock = FakeClock()
        parent = obs.Registry(clock=clock)
        parent.counter("sim.rounds").inc(10)
        parent.histogram("serial.transit_cycles").observe(4)
        worker = obs.Registry(clock=clock)
        worker.counter("sim.rounds").inc(7)
        worker.counter("sim.delivered", policy="drop").inc(2)
        worker.gauge("proc.cpu_s").set(1.5)
        worker.histogram("serial.transit_cycles").observe(16)
        with worker.tracer.span("sim.round"):
            clock.tick(0.1)
        merge_portable(parent, roundtrip(portable_snapshot(worker)), worker="w1")
        snap = parent.snapshot()
        # counters/histograms keep their original keys: totals exact
        assert snap["counters"]["sim.rounds"] == 17
        assert snap["counters"]["sim.delivered{policy=drop}"] == 2
        assert snap["counters"]["obs.workers_merged{worker=w1}"] == 1
        hist = snap["histograms"]["serial.transit_cycles"]
        assert hist["count"] == 2 and hist["min"] == 4 and hist["max"] == 16
        # gauges are per-worker facts: rekeyed with provenance
        assert snap["gauges"]["proc.cpu_s{worker=w1}"] == 1.5
        # spans absorbed with worker meta
        merged = [e for e in parent.tracer.events if e.name == "sim.round"]
        assert merged and merged[0].meta["worker"] == "w1"

    def test_merge_rejects_wrong_schema(self):
        registry = obs.Registry()
        with pytest.raises(ConfigurationError):
            merge_portable(registry, {"schema": "nope", "counters": {}})

    def test_split_metric_key_inverts_metric_key(self):
        from repro.obs.registry import metric_key

        for name, labels in [
            ("sim.rounds", {}),
            ("sim.delivered", {"policy": "drop"}),
            ("x", {"b": "2", "a": "1"}),
        ]:
            base, parsed = split_metric_key(metric_key(name, labels))
            assert base == name
            assert parsed == {k: str(v) for k, v in labels.items()}


class TestThreadLocalRegistry:
    def test_using_overrides_only_this_thread(self):
        local = obs.Registry()
        with obs.using(local):
            obs.counter("sim.rounds").inc()
            assert obs.get_registry() is local
        assert obs.get_registry() is not local
        assert local.snapshot()["counters"]["sim.rounds"] == 1

    def test_using_nests(self):
        a, b = obs.Registry(), obs.Registry()
        with obs.using(a):
            with obs.using(b):
                obs.counter("sim.rounds").inc()
            obs.counter("sim.rounds").inc(5)
        assert b.snapshot()["counters"]["sim.rounds"] == 1
        assert a.snapshot()["counters"]["sim.rounds"] == 5

    def test_worker_threads_do_not_interleave_shared_tracer(self):
        """Regression: spans from pool threads must not corrupt the
        installed registry's span stack."""
        with obs.collecting() as registry:
            with obs.span("main.work"):
                done = threading.Event()

                def worker():
                    local = obs.Registry()
                    with obs.using(local):
                        with obs.span("worker.work"):
                            pass
                    done.set()

                t = threading.Thread(target=worker)
                t.start()
                t.join()
                assert done.is_set()
            paths = [e.path for e in registry.tracer.events]
        assert paths == ["main.work"]  # no worker.work under main.work


class TestSweepMergesWorkers:
    def test_parallel_sweep_merges_metrics_in_order(self):
        from repro.analysis.sweep import sweep

        def measure(value):
            obs.counter("sim.rounds").inc(value)
            return {"doubled": value * 2}

        with obs.collecting() as registry:
            rows = sweep([1, 2, 3], measure, workers=3)
        assert [r["doubled"] for r in rows] == [2, 4, 6]
        snap = registry.snapshot()
        assert snap["counters"]["sim.rounds"] == 6
        assert snap["counters"]["obs.workers_merged{worker=sweep-0}"] == 1
        assert snap["counters"]["obs.workers_merged{worker=sweep-2}"] == 1

    def test_serial_sweep_unchanged(self):
        from repro.analysis.sweep import sweep

        with obs.collecting() as registry:
            rows = sweep([1, 2], lambda v: {"v": v}, workers=0)
        assert [r["v"] for r in rows] == [1, 2]
        assert "obs.workers_merged" not in str(registry.snapshot()["counters"])

    def test_compare_workers_tag_provenance(self):
        from repro.network.simulate import compare_partial_vs_perfect
        from repro.switches.perfect import PerfectConcentrator
        from repro.switches.revsort_switch import RevsortSwitch

        partial = RevsortSwitch(64, 48)
        perfect = PerfectConcentrator(n=48, m=36)
        with obs.collecting() as registry:
            parallel = compare_partial_vs_perfect(
                perfect, partial, [8, 36], trials=4, seed=0, workers=2
            )
        serial = compare_partial_vs_perfect(
            perfect, partial, [8, 36], trials=4, seed=0, workers=1
        )
        assert parallel == serial  # worker determinism contract
        counters = registry.snapshot()["counters"]
        merged = [k for k in counters if k.startswith("obs.workers_merged")]
        assert "obs.workers_merged{worker=perfect-k8}" in merged
        assert "obs.workers_merged{worker=partial-k36}" in merged
        assert counters["engine.batch_setups{switch=RevsortSwitch}"] == 2

    def test_run_bench_merge_into(self):
        from repro.obs.perf.suite import run_bench, suite_specs

        spec = suite_specs("smoke", contains="engine.hyper")[0]
        registry = obs.Registry()
        record = run_bench(
            spec, suite="smoke", repeats=1, alloc=False, merge_into=registry
        )
        assert record["bench"] == spec.id
        counters = registry.snapshot()["counters"]
        assert counters[f"obs.workers_merged{{worker={spec.id}}}"] == 1
        assert "bench.repeat.seconds" in registry.snapshot()["histograms"]


class TestTracerSink:
    def test_sink_sees_every_completed_span_even_past_buffer(self):
        seen = []
        tracer = Tracer(clock=FakeClock(), max_events=1, sink=seen.append)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in seen] == ["a", "b"]
        assert len(tracer.events) == 1 and tracer.dropped == 1

    def test_sink_exception_does_not_break_span(self):
        def bad(record):
            raise RuntimeError("sink bug")

        tracer = Tracer(clock=FakeClock(), sink=bad)
        with tracer.span("works"):
            pass
        assert tracer.events[0].name == "works"

    def test_exception_tags_span_error_and_unwinds_stack(self):
        """Regression pin for the exception-path audit: a span the
        exception escapes from is error-tagged, the stack fully
        unwinds, and the span still reaches the sink."""
        seen = []
        tracer = Tracer(clock=FakeClock(), sink=seen.append)
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.active_depth == 0
        assert tracer.active_path == ""
        by_name = {s.name: s for s in seen}
        assert by_name["inner"].meta["error"] == "ValueError"
        assert by_name["outer"].meta["error"] == "ValueError"

    def test_keyboardinterrupt_also_tagged(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(KeyboardInterrupt):
            with tracer.span("killed"):
                raise KeyboardInterrupt
        assert tracer.events[0].meta["error"] == "KeyboardInterrupt"
        assert tracer.active_depth == 0

    def test_clean_span_has_no_error_tag(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("fine"):
            pass
        assert "error" not in tracer.events[0].meta

    def test_registry_span_histogram_still_fills_on_exception(self):
        clock = FakeClock()
        registry = obs.Registry(clock=clock)
        with pytest.raises(RuntimeError):
            with registry.span("work"):
                clock.tick(2.0)
                raise RuntimeError
        hist = registry.snapshot()["histograms"]["work.seconds"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(2.0)


class TestResourceSampler:
    def test_sample_once_sets_gauges_and_heartbeat(self):
        registry = obs.Registry(clock=FakeClock())
        journal = EventJournal(None, clock=FakeClock())
        seen = []
        journal.subscribe(seen.append)
        sampler = ResourceSampler(
            registry,
            journal,
            clock=FakeClock(start=5.0),
            sampler=lambda: {"rss_kb": 1024, "cpu_s": 0.5, "gc_collections": 3},
        )
        vitals = sampler.sample_once()
        assert vitals["rss_kb"] == 1024
        snap = registry.snapshot()
        assert snap["gauges"]["proc.rss_kb"] == 1024
        assert snap["gauges"]["proc.cpu_s"] == 0.5
        assert snap["gauges"]["proc.gc_collections"] == 3
        assert snap["counters"]["obs.heartbeats"] == 1
        beats = [e for e in seen if e["type"] == "heartbeat"]
        assert beats == [
            {
                "seq": 1,
                "t": 100.0,
                "type": "heartbeat",
                "uptime": 5.0,
                "rss_kb": 1024,
                "cpu_s": 0.5,
                "gc_collections": 3,
            }
        ]

    def test_gauges_created_eagerly_before_thread_start(self):
        registry = obs.Registry()
        ResourceSampler(registry, None)
        gauges = registry.snapshot()["gauges"]
        for name in ("proc.rss_kb", "proc.cpu_s", "proc.gc_collections"):
            assert name in gauges

    def test_start_samples_synchronously_and_stop_joins(self):
        registry = obs.Registry()
        with ResourceSampler(registry, None, interval=3600.0) as sampler:
            assert sampler.samples >= 1
        assert sampler._thread is None

    def test_real_process_sample_shape(self):
        from repro.obs.live import sample_process

        vitals = sample_process()
        assert vitals["cpu_s"] >= 0.0
        assert vitals["gc_collections"] >= 0
        assert vitals["rss_kb"] is None or vitals["rss_kb"] > 0


class TestFlightRecorder:
    def _journaled_crash(self):
        clock = FakeClock()
        registry = obs.Registry(clock=clock)
        journal = EventJournal(None, clock=clock)
        sink = JournalSink(registry, journal)
        recorder = FlightRecorder(capacity=4)
        journal.subscribe(recorder.record)
        registry.counter("sim.rounds").inc(2)
        sink.flush()
        exc = None
        try:
            with registry.tracer.span("sim.run"):
                clock.tick(0.5)
                raise RuntimeError("mid-flight death")
        except RuntimeError as caught:
            exc = caught
        sink.flush()
        return registry, recorder, exc

    def test_ring_buffer_is_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record({"seq": i, "type": "phase"})
        assert len(recorder.events) == 3
        assert recorder.total_seen == 10
        assert [e["seq"] for e in recorder.events] == [7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=0)

    def test_crash_report_identifies_failing_span(self):
        registry, recorder, exc = self._journaled_crash()
        report = recorder.crash_report(
            reason="unhandled-exception", command="test", exc=exc,
            registry=registry,
        )
        assert report["schema"] == CRASH_SCHEMA
        assert report["reason"] == "unhandled-exception"
        assert report["failing_span"]["name"] == "sim.run"
        assert report["failing_span"]["error"] == "RuntimeError"
        assert report["exception"]["type"] == "RuntimeError"
        assert report["exception"]["exit_code"] == 70
        assert report["counters"]["sim.rounds"] == 2
        assert report["events"]  # the last-N window is present

    def test_write_and_read_roundtrip(self, tmp_path):
        _, recorder, exc = self._journaled_crash()
        path = recorder.write(
            tmp_path / "deep" / "crash.json", reason="contract-violation",
            exc=exc,
        )
        doc = read_crash_report(path)
        assert doc["reason"] == "contract-violation"
        with pytest.raises(ConfigurationError):
            bad = tmp_path / "bad.json"
            bad.write_text("{}")
            read_crash_report(bad)

    def test_failing_span_scans_in_given_order(self):
        events = [
            {"type": "span", "name": "a", "meta": {"error": "X"}},
            {"type": "phase"},
            {"type": "span", "name": "b", "meta": {}},
        ]
        assert failing_span(events)["name"] == "a"
        assert failing_span(reversed(events))["name"] == "a"
        assert failing_span([{"type": "span", "name": "c", "meta": {}}]) is None

    def test_exit_codes(self):
        from repro.errors import ConcentrationError, ReproError

        assert exit_code_for(ConcentrationError("x")) == 1
        assert exit_code_for(ReproError("x")) == 2
        assert exit_code_for(ConfigurationError("x")) == 2
        assert exit_code_for(RuntimeError("x")) == 70


class TestLiveView:
    def _view(self, **kwargs):
        stream = StringIO()
        clock = FakeClock()
        view = LiveView(stream, clock=clock, force=True, **kwargs)
        return view, stream, clock

    def test_disabled_without_tty(self):
        view = LiveView(StringIO())
        view.update("phase", 1, 2)
        assert view.enabled is False

    def test_renders_rate_and_eta(self):
        view, stream, clock = self._view()
        view.update("certify", 0, 100)
        clock.tick(2.0)
        view.update("certify", 20, 100)
        text = stream.getvalue()
        assert "[certify]" in text
        assert "20/100" in text
        assert "10.0/s" in text  # 20 done in 2s
        assert "eta 8s" in text  # 80 left at 10/s
        assert "(20%)" in text

    def test_rate_limited_rendering(self):
        view, stream, clock = self._view(min_interval=1.0)
        view.update("p", 0, 10)
        before = stream.getvalue()
        clock.tick(0.2)
        view.update("p", 1, 10)  # suppressed: same phase, too soon
        assert stream.getvalue() == before
        clock.tick(1.0)
        view.update("p", 2, 10)
        assert stream.getvalue() != before

    def test_journal_sink_dispatch(self):
        view, stream, clock = self._view()
        view({"type": "phase", "name": "sweep", "total": 3})
        clock.tick(1.0)
        view({"type": "progress", "phase": "sweep", "done": 2, "total": 3})
        assert "[sweep]" in stream.getvalue()
        assert "2/3" in stream.getvalue()
        view({"type": "counter", "key": "x", "delta": 1})  # ignored

    def test_note_and_close(self):
        view, stream, clock = self._view()
        view.update("p", 1, 2)
        view.note("hello")
        view.close()
        assert "hello\n" in stream.getvalue()

    def test_eta_formatting(self):
        from repro.obs.live.progress import _fmt_eta

        assert _fmt_eta(5) == "5s"
        assert _fmt_eta(65) == "1m05s"
        assert _fmt_eta(3700) == "1h01m"


class TestPrometheusText:
    def test_families_types_and_labels(self):
        snapshot = {
            "counters": {"sim.rounds": 4, "sim.delivered{policy=drop}": 2},
            "gauges": {"proc.rss_kb": 1024},
            "histograms": {
                "serial.transit_cycles": {
                    "count": 2, "sum": 20.0, "min": 4, "max": 16,
                    "buckets": {"2^2": 1, "2^4": 1},
                }
            },
        }
        text = prometheus_text(snapshot)
        assert "# TYPE repro_sim_rounds counter" in text
        assert "repro_sim_rounds_total 4" in text
        assert 'repro_sim_delivered_total{policy="drop"} 2' in text
        assert "# TYPE repro_proc_rss_kb gauge" in text
        assert "repro_proc_rss_kb 1024" in text
        assert "# TYPE repro_serial_transit_cycles histogram" in text
        assert 'repro_serial_transit_cycles_bucket{bucket="2^2"} 1' in text
        assert "repro_serial_transit_cycles_count 2" in text
        assert "repro_serial_transit_cycles_sum 20" in text
        # HELP lines come from the catalog
        assert "# HELP repro_proc_rss_kb" in text

    def test_label_values_escaped(self):
        text = prometheus_text({"counters": {'x{k=a"b}': 1}})
        assert 'repro_x_total{k="a\\"b"} 1' in text

    def test_empty_snapshot(self):
        assert prometheus_text({}) == ""


class TestChromeTraceGolden:
    GOLDEN = GOLDEN_DIR / "chrometrace_deterministic.json"

    def test_chrome_trace_export_is_byte_stable(self, tmp_path):
        from repro.obs.perf.chrometrace import write_chrome_trace

        registry, _ = deterministic_run(None)
        path = tmp_path / "trace.json"
        write_chrome_trace(
            registry.snapshot()["spans"], path, metadata={"run": "golden"}
        )
        assert path.read_text(encoding="utf-8") == self.GOLDEN.read_text(
            encoding="utf-8"
        ), (
            "the Chrome-trace export drifted; if intentional, regenerate "
            "tests/golden/chrometrace_deterministic.json"
        )


class TestCLITelemetry:
    """End-to-end CLI wiring: the acceptance-criteria scenarios."""

    def _main(self, argv):
        from repro.cli import main

        return main(argv)

    def test_certify_journal_replays_to_live_totals(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        code = self._main(
            ["certify", "revsort", "--n", "16", "--m", "12",
             "--journal", str(journal), "--metrics-out", str(metrics)]
        )
        assert code == 0
        snapshot = obs.read_metrics_json(metrics)
        replayed = replay_journal(journal)
        assert replayed["counters"] == snapshot["counters"]
        events = read_journal(journal)
        kinds = {e["type"] for e in events}
        assert {"start", "env", "phase", "progress", "heartbeat",
                "counter", "span", "end"} <= kinds
        assert events[0]["command"] == "certify"

    def test_compare_journal_includes_worker_metrics(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        code = self._main(
            ["compare", "--switch", "revsort", "--n", "64", "--m", "48",
             "--trials", "4", "--workers", "2",
             "--journal", str(journal), "--metrics-out", str(metrics)]
        )
        assert code == 0
        snapshot = obs.read_metrics_json(metrics)
        replayed = replay_journal(journal)
        # worker-process metrics included, exactly
        assert replayed["counters"] == snapshot["counters"]
        assert any(
            k.startswith("obs.workers_merged") for k in replayed["counters"]
        )

    def test_mid_flight_kill_dumps_flight_recorder(self, tmp_path, capsys,
                                                   monkeypatch):
        import repro.verify

        def killed(design, params, options=None, workers=1):
            with obs.span("verify.certify", design=design):
                obs.counter("verify.patterns", design=design).inc(7)
                raise KeyboardInterrupt

        monkeypatch.setattr(repro.verify, "certify_design", killed)
        journal = tmp_path / "run.jsonl"
        with pytest.raises(KeyboardInterrupt):
            self._main(
                ["certify", "revsort", "--n", "16", "--m", "12",
                 "--journal", str(journal)]
            )
        report = read_crash_report(tmp_path / "run-crash.json")
        assert report["reason"] == "unhandled-exception"
        assert report["exception"]["type"] == "KeyboardInterrupt"
        assert report["events"]  # the last-N events window
        assert report["failing_span"]["name"] == "verify.certify"
        assert report["failing_span"]["error"] == "KeyboardInterrupt"
        # the journal survived the kill with an un-closed tail
        events = read_journal(journal)
        assert events[0]["schema"] == JOURNAL_SCHEMA

    def test_contract_violation_dumps_crash_report(self, tmp_path, capsys,
                                                   monkeypatch):
        import repro.verify

        def violated(design, params, options=None, workers=1):
            from repro.errors import ConcentrationError

            with obs.span("verify.certify", design=design):
                raise ConcentrationError("valid message dropped")

        monkeypatch.setattr(repro.verify, "certify_design", violated)
        code = self._main(
            ["certify", "revsort", "--n", "16", "--m", "12",
             "--crash-dir", str(tmp_path / "crashes")]
        )
        assert code == 1  # ConcentrationError -> contract violation
        reports = list((tmp_path / "crashes").glob("*.json"))
        assert len(reports) == 1
        doc = read_crash_report(reports[0])
        assert doc["reason"] == "contract-violation"
        assert doc["exception"]["exit_code"] == 1

    def test_sigusr1_emits_snapshot(self, tmp_path, capfd, monkeypatch):
        if not hasattr(signal, "SIGUSR1"):  # pragma: no cover
            pytest.skip("no SIGUSR1 on this platform")
        import repro.verify

        real = repro.verify.certify_design

        def poked(design, params, options=None, workers=1):
            os.kill(os.getpid(), signal.SIGUSR1)
            return real(design, params, options=options)

        monkeypatch.setattr(repro.verify, "certify_design", poked)
        journal = tmp_path / "run.jsonl"
        code = self._main(
            ["certify", "revsort", "--n", "16", "--m", "12",
             "--journal", str(journal)]
        )
        assert code == 0
        snapshots = [
            e for e in read_journal(journal) if e["type"] == "snapshot"
        ]
        assert snapshots and snapshots[0]["signal"] == "SIGUSR1"
        err = capfd.readouterr().err
        assert "# TYPE repro_obs_heartbeats counter" in err

    def test_obs_export_prometheus_from_journal(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        deterministic_run(journal)
        code = self._main(
            ["obs", "export", "--journal", str(journal),
             "--format", "prometheus"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_sim_rounds_total 5" in out
        assert 'repro_proc_rss_kb{worker="w0"} 640' in out

    def test_obs_export_json_from_metrics(self, tmp_path, capsys):
        registry, _ = deterministic_run(None)
        metrics = tmp_path / "metrics.json"
        obs.write_metrics_json(registry.snapshot(), metrics)
        code = self._main(
            ["obs", "export", "--metrics", str(metrics), "--format", "json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["counters"]["sim.rounds"] == 5

    def test_obs_export_requires_exactly_one_source(self, capsys):
        assert self._main(["obs", "export"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_compare_regression_output_and_crash(self, tmp_path,
                                                       capsys):
        def record(bench, wall):
            return {
                "schema": "repro.obs/bench",
                "version": 1,
                "bench": bench,
                "median_wall_s": wall,
                "wall_s": [wall],
            }

        trajectory = tmp_path / "traj.jsonl"
        with trajectory.open("w") as fh:
            for wall in (0.1, 0.1, 0.1, 0.4):
                fh.write(json.dumps(record("engine.demo", wall)) + "\n")
        code = self._main(
            ["bench", "compare", "--baseline", str(trajectory),
             "--crash-dir", str(tmp_path / "crashes")]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "performance regression" in captured.err
        # satellite: offending metric's baseline/candidate/delta in text
        assert "baseline 100.000ms -> candidate 400.000ms" in captured.err
        assert "delta +300.0%" in captured.err
        reports = list((tmp_path / "crashes").glob("*.json"))
        assert len(reports) == 1
        assert read_crash_report(reports[0])["reason"] == "regression-gate"

        code = self._main(
            ["bench", "compare", "--baseline", str(trajectory),
             "--format", "json"]
        )
        assert code == 1
        verdict = json.loads(capsys.readouterr().out)["verdicts"][0]
        # satellite: JSON mode carries the same numbers
        assert verdict["baseline_wall_s"] == pytest.approx(0.1)
        assert verdict["candidate_wall_s"] == pytest.approx(0.4)
        assert verdict["ratio"] == pytest.approx(4.0)
        assert verdict["delta_pct"] == pytest.approx(300.0)

    def test_live_flag_is_harmless_without_tty(self, tmp_path, capsys):
        code = self._main(
            ["certify", "revsort", "--n", "16", "--m", "12", "--live"]
        )
        assert code == 0
