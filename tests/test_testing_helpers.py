"""Tests for the public repro.testing helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.switches.base import Routing
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.perfect import PerfectConcentrator
from repro.switches.revsort_switch import RevsortSwitch
from repro.testing import (
    adversarial_valid_bits,
    check_concentrator,
    random_valid_bits,
)


class TestRandomValidBits:
    def test_exact_k(self):
        bits = random_valid_bits(32, k=7, seed=1)
        assert bits.sum() == 7

    def test_deterministic(self):
        assert np.array_equal(
            random_valid_bits(16, seed=2), random_valid_bits(16, seed=2)
        )


class TestCheckConcentrator:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: Hyperconcentrator(16),
            lambda: PerfectConcentrator(32, 16),
            lambda: RevsortSwitch(64, 48),
            lambda: ColumnsortSwitch(16, 4, 48),
        ],
    )
    def test_healthy_switches_pass(self, factory):
        report = check_concentrator(factory(), trials=40, seed=3)
        assert report.ok, report.failures

    def test_reports_epsilon_for_nearsorters(self):
        report = check_concentrator(ColumnsortSwitch(16, 4, 64), trials=40, seed=4)
        assert report.worst_epsilon is not None
        assert report.epsilon_bound == 9
        assert report.worst_epsilon <= 9

    def test_no_epsilon_for_plain_switches(self):
        report = check_concentrator(Hyperconcentrator(8), trials=10, seed=5)
        assert report.worst_epsilon is None

    def test_detects_broken_switch(self):
        class Liar(PerfectConcentrator):
            """Claims perfection, silently drops one message."""

            def setup(self, valid):
                routing = super().setup(valid)
                broken = routing.input_to_output.copy()
                routed = np.flatnonzero(broken >= 0)
                if routed.size:
                    broken[routed[0]] = -1
                return Routing(
                    n_inputs=self.n,
                    n_outputs=self.m,
                    valid=routing.valid,
                    input_to_output=broken,
                )

        report = check_concentrator(Liar(16, 8), trials=20, seed=6)
        assert not report.ok
        assert any("contract violation" in f for f in report.failures)

    def test_detects_nondeterminism(self):
        class Flaky(Hyperconcentrator):
            def __init__(self, n):
                super().__init__(n)
                self._flip = False

            def setup(self, valid):
                routing = super().setup(valid)
                self._flip = not self._flip
                if self._flip and valid.sum() >= 2:
                    swapped = routing.input_to_output.copy()
                    idx = np.flatnonzero(swapped >= 0)[:2]
                    swapped[idx] = swapped[idx][::-1]
                    return Routing(
                        n_inputs=self.n,
                        n_outputs=self.m,
                        valid=routing.valid,
                        input_to_output=swapped,
                    )
                return routing

        report = check_concentrator(Flaky(16), trials=20, seed=7)
        assert not report.ok
        assert any("nondeterministic" in f for f in report.failures)


class _DroppingColumnsort(ColumnsortSwitch):
    """Honest nearsorting, broken routing: drops the first routed
    message, violating the contract at almost every load."""

    def setup(self, valid):
        routing = super().setup(valid)
        broken = routing.input_to_output.copy()
        routed = np.flatnonzero(broken >= 0)
        if routed.size:
            broken[routed[0]] = -1
        return Routing(
            n_inputs=self.n,
            n_outputs=self.m,
            valid=routing.valid,
            input_to_output=broken,
        )


class TestFailureReproduction:
    def test_failures_carry_seed_and_pattern(self):
        import re

        from repro.core.concentration import validate_partial_concentration
        from repro.errors import ReproError
        from repro.verify.patterns import pattern_from_hex

        switch = _DroppingColumnsort(16, 4, 48)
        report = check_concentrator(switch, trials=30, seed=9)
        assert not report.ok
        match = next(
            m
            for m in (
                re.search(r"seed (\d+), pattern ([0-9a-f]+)", f)
                for f in report.failures
            )
            if m
        )
        # The recorded pattern alone replays the violation.
        valid = pattern_from_hex(match.group(2), switch.n)
        routing = switch.setup(valid)
        with pytest.raises(ReproError):
            validate_partial_concentration(
                switch.spec, valid, routing.input_to_output
            )

    def test_early_abort_still_reports_epsilon(self):
        """PR 3 fix: aborting on max_failures must not hide the ε
        evidence collected before the abort."""
        report = check_concentrator(
            _DroppingColumnsort(16, 4, 48), trials=60, seed=9, max_failures=3
        )
        assert not report.ok
        assert len(report.failures) >= 3
        assert report.completed_trials < 60
        assert report.worst_epsilon is not None
        assert report.epsilon_bound == 9
        assert report.worst_epsilon <= 9

    def test_completed_trials_counts_full_runs(self):
        report = check_concentrator(Hyperconcentrator(8), trials=12, seed=10)
        assert report.ok
        assert report.completed_trials == 12


class TestAdversarialValidBits:
    def test_produces_congesting_pattern_when_possible(self):
        switch = ColumnsortSwitch(16, 4, 60)
        bits = adversarial_valid_bits(switch, seed=8)
        routing = switch.setup(bits)
        assert routing.routed_count < int(bits.sum())  # drops found
