"""Tests for the gate-level substrate: netlist, evaluator, depth
analysis, and combinational builders."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CircuitError
from repro.gates.builders import (
    and_tree,
    equals_const,
    full_adder,
    half_adder,
    or_tree,
    popcount,
    prefix_popcounts,
    ripple_add,
)
from repro.gates.depth import critical_path_length, wire_depths
from repro.gates.evaluate import evaluate, evaluate_wires
from repro.gates.netlist import Circuit, Op


class TestNetlist:
    def test_topological_enforcement(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.add_gate(Op.NOT, 0)  # wire 0 not driven yet

    def test_arity_checks(self):
        c = Circuit()
        a = c.input()
        with pytest.raises(CircuitError):
            c.add_gate(Op.NOT, a, a)
        with pytest.raises(CircuitError):
            c.add_gate(Op.AND, a)

    def test_duplicate_names(self):
        c = Circuit()
        c.input(name="x")
        with pytest.raises(CircuitError):
            c.input(name="x")

    def test_unknown_name(self):
        with pytest.raises(CircuitError):
            Circuit().wire("nope")

    def test_logic_gate_count_excludes_inputs(self):
        c = Circuit()
        a, b = c.input(), c.input()
        c.add_gate(Op.AND, a, b)
        c.const(True)
        assert c.n_logic_gates == 1


class TestEvaluate:
    def test_basic_ops(self):
        c = Circuit()
        a, b = c.input(), c.input()
        gates = {
            "and": c.add_gate(Op.AND, a, b),
            "or": c.add_gate(Op.OR, a, b),
            "xor": c.add_gate(Op.XOR, a, b),
            "nand": c.add_gate(Op.NAND, a, b),
            "nor": c.add_gate(Op.NOR, a, b),
            "not": c.add_gate(Op.NOT, a),
            "buf": c.add_gate(Op.BUF, a),
        }
        for va, vb in itertools.product([False, True], repeat=2):
            vals = evaluate(c, np.array([va, vb]))
            assert vals[gates["and"]] == (va and vb)
            assert vals[gates["or"]] == (va or vb)
            assert vals[gates["xor"]] == (va != vb)
            assert vals[gates["nand"]] == (not (va and vb))
            assert vals[gates["nor"]] == (not (va or vb))
            assert vals[gates["not"]] == (not va)
            assert vals[gates["buf"]] == va

    def test_constants(self):
        c = Circuit()
        one = c.const(True)
        zero = c.const(False)
        c.input()
        vals = evaluate(c, np.array([False]))
        assert vals[one] and not vals[zero]

    def test_batch_evaluation(self):
        c = Circuit()
        a, b = c.input(), c.input()
        g = c.add_gate(Op.AND, a, b)
        batch = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=bool)
        vals = evaluate(c, batch)
        assert list(vals[:, g]) == [False, False, False, True]

    def test_wrong_input_count(self):
        c = Circuit()
        c.input()
        with pytest.raises(CircuitError):
            evaluate(c, np.array([True, False]))

    def test_evaluate_wires_projection(self):
        c = Circuit()
        a = c.input()
        g = c.add_gate(Op.NOT, a)
        out = evaluate_wires(c, np.array([True]), [g])
        assert list(out) == [False]


class TestDepth:
    def test_simple_chain(self):
        c = Circuit()
        a = c.input()
        x = c.add_gate(Op.NOT, a)
        y = c.add_gate(Op.NOT, x)
        depths = wire_depths(c)
        assert depths[a] == 0 and depths[x] == 1 and depths[y] == 2

    def test_buf_free(self):
        c = Circuit()
        a = c.input()
        b = c.add_gate(Op.BUF, a)
        g = c.add_gate(Op.NOT, b)
        assert wire_depths(c)[g] == 1

    def test_restricted_sources(self):
        c = Circuit()
        a, b = c.input(), c.input()
        g = c.add_gate(Op.AND, a, b)
        h = c.add_gate(Op.NOT, g)
        # Paths from b only.
        assert critical_path_length(c, sources=[b], sinks=[h]) == 2
        # No path from an unrelated wire.
        unrelated = c.input()
        assert critical_path_length(c, sources=[unrelated], sinks=[h]) == 0

    def test_or_tree_depth_logarithmic(self):
        c = Circuit()
        leaves = [c.input() for _ in range(16)]
        root = or_tree(c, leaves)
        assert critical_path_length(c, sinks=[root]) == 4


class TestTrees:
    @given(st.lists(st.booleans(), min_size=1, max_size=24))
    def test_or_tree_semantics(self, bits):
        c = Circuit()
        leaves = [c.input() for _ in bits]
        root = or_tree(c, leaves)
        vals = evaluate(c, np.array(bits, dtype=bool))
        assert vals[root] == any(bits)

    @given(st.lists(st.booleans(), min_size=1, max_size=24))
    def test_and_tree_semantics(self, bits):
        c = Circuit()
        leaves = [c.input() for _ in bits]
        root = and_tree(c, leaves)
        vals = evaluate(c, np.array(bits, dtype=bool))
        assert vals[root] == all(bits)

    def test_empty_rejected(self):
        with pytest.raises(CircuitError):
            or_tree(Circuit(), [])


def _read_number(vals, bits) -> int:
    return sum(int(vals[w]) << i for i, w in enumerate(bits))


class TestAdders:
    def test_half_adder_truth_table(self):
        for a, b in itertools.product([False, True], repeat=2):
            c = Circuit()
            wa, wb = c.input(), c.input()
            s, carry = half_adder(c, wa, wb)
            vals = evaluate(c, np.array([a, b]))
            assert int(vals[s]) + 2 * int(vals[carry]) == int(a) + int(b)

    def test_full_adder_truth_table(self):
        for a, b, cin in itertools.product([False, True], repeat=3):
            c = Circuit()
            wires = [c.input() for _ in range(3)]
            s, carry = full_adder(c, *wires)
            vals = evaluate(c, np.array([a, b, cin]))
            assert int(vals[s]) + 2 * int(vals[carry]) == int(a) + int(b) + int(cin)

    @given(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=63))
    def test_ripple_add(self, x, y):
        c = Circuit()
        xa = [c.input() for _ in range(6)]
        ya = [c.input() for _ in range(6)]
        out = ripple_add(c, xa, ya)
        bits = [(x >> i) & 1 for i in range(6)] + [(y >> i) & 1 for i in range(6)]
        vals = evaluate(c, np.array(bits, dtype=bool))
        assert _read_number(vals, out) == x + y


class TestPopcount:
    @given(st.lists(st.booleans(), min_size=0, max_size=20))
    def test_counts(self, bits):
        c = Circuit()
        wires = [c.input() for _ in bits]
        out = popcount(c, wires)
        vals = evaluate(c, np.array(bits, dtype=bool))
        assert _read_number(vals, out) == sum(bits)

    @given(st.lists(st.booleans(), min_size=1, max_size=16))
    def test_prefix_counts(self, bits):
        c = Circuit()
        wires = [c.input() for _ in bits]
        prefixes = prefix_popcounts(c, wires)
        vals = evaluate(c, np.array(bits, dtype=bool))
        running = 0
        for i, bit in enumerate(bits):
            running += int(bit)
            assert _read_number(vals, prefixes[i]) == running

    def test_prefix_empty(self):
        assert prefix_popcounts(Circuit(), []) == []


class TestEqualsConst:
    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
    def test_decode(self, stored, probe):
        c = Circuit()
        bits = [c.input() for _ in range(4)]
        eq = equals_const(c, bits, probe)
        vals = evaluate(c, np.array([(stored >> i) & 1 for i in range(4)], dtype=bool))
        assert bool(vals[eq]) == (stored == probe)

    def test_rejects_oversized_constant(self):
        c = Circuit()
        bits = [c.input() for _ in range(2)]
        with pytest.raises(CircuitError):
            equals_const(c, bits, 4)
