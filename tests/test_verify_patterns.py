"""Pattern enumeration and encoding for the certification tiers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.verify.patterns import (
    all_patterns,
    pattern_count,
    pattern_from_hex,
    pattern_hex,
    patterns_with_k,
)


def _collect(chunks) -> np.ndarray:
    parts = list(chunks)
    return (
        np.concatenate(parts, axis=0) if parts else np.empty((0, 0), dtype=bool)
    )


class TestAllPatterns:
    def test_enumerates_every_pattern_exactly_once(self):
        got = _collect(all_patterns(8, chunk=100))
        assert got.shape == (256, 8)
        assert len({pattern_hex(row) for row in got}) == 256

    def test_numeric_order(self):
        got = _collect(all_patterns(4))
        weights = 1 << np.arange(4)
        assert np.array_equal(got @ weights, np.arange(16))

    def test_refuses_huge_n(self):
        with pytest.raises(ConfigurationError):
            next(all_patterns(25))


class TestPatternsWithK:
    def test_exhaustive_when_under_budget(self):
        exhaustive, chunks = patterns_with_k(10, 3, limit=512)
        got = _collect(chunks)
        assert exhaustive
        assert got.shape[0] == pattern_count(10, 3) == math.comb(10, 3)
        assert (got.sum(axis=1) == 3).all()
        assert len({pattern_hex(row) for row in got}) == got.shape[0]

    def test_sampled_when_over_budget(self):
        exhaustive, chunks = patterns_with_k(20, 10, limit=50)
        got = _collect(chunks)
        assert not exhaustive
        assert got.shape[0] == 50
        assert (got.sum(axis=1) == 10).all()

    def test_sampled_is_deterministic(self):
        a = _collect(patterns_with_k(20, 10, limit=50)[1])
        b = _collect(patterns_with_k(20, 10, limit=50)[1])
        assert np.array_equal(a, b)

    def test_sample_includes_structural_corners(self):
        _, chunks = patterns_with_k(20, 6, limit=50)
        got = {pattern_hex(row) for row in _collect(chunks)}
        leading = np.zeros(20, dtype=bool)
        leading[:6] = True
        trailing = np.zeros(20, dtype=bool)
        trailing[-6:] = True
        assert pattern_hex(leading) in got
        assert pattern_hex(trailing) in got

    def test_k_zero_and_k_full(self):
        for k in (0, 6):
            exhaustive, chunks = patterns_with_k(6, k, limit=8)
            got = _collect(chunks)
            assert exhaustive
            assert got.shape[0] == 1
            assert int(got.sum()) == k


class TestPatternHex:
    @given(
        bits=st.lists(st.booleans(), min_size=0, max_size=70).map(
            lambda xs: np.array(xs, dtype=bool)
        )
    )
    def test_round_trip(self, bits):
        decoded = pattern_from_hex(pattern_hex(bits), bits.size)
        assert np.array_equal(decoded, bits)

    def test_too_short_encoding_rejected(self):
        with pytest.raises(ConfigurationError):
            pattern_from_hex("ff", 16)
