"""Tests for the analytic knockout loss model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.network.analytic import (
    binomial_pmf,
    knockout_l_for_target_loss,
    knockout_loss_analytic,
)
from repro.network.knockout import knockout_loss_curve


class TestBinomialPmf:
    def test_sums_to_one(self):
        total = sum(binomial_pmf(20, k, 0.3) for k in range(21))
        assert total == pytest.approx(1.0)

    def test_matches_closed_form_small(self):
        # P[Bin(3, 0.5) = 2] = 3/8.
        assert binomial_pmf(3, 2, 0.5) == pytest.approx(0.375)

    def test_edges(self):
        assert binomial_pmf(5, 0, 0.0) == 1.0
        assert binomial_pmf(5, 5, 1.0) == 1.0
        assert binomial_pmf(5, 6, 0.5) == 0.0


class TestKnockoutLossAnalytic:
    def test_l_equals_n_is_lossless(self):
        assert knockout_loss_analytic(16, 0.9, 16) == pytest.approx(0.0)

    def test_monotone_decreasing_in_l(self):
        losses = [knockout_loss_analytic(16, 0.9, L) for L in range(1, 9)]
        assert losses == sorted(losses, reverse=True)

    def test_monotone_increasing_in_load(self):
        losses = [knockout_loss_analytic(16, p, 2) for p in (0.2, 0.5, 0.9)]
        assert losses == sorted(losses)

    def test_zero_load(self):
        assert knockout_loss_analytic(16, 0.0, 1) == 0.0

    def test_matches_simulation(self):
        """The event-level simulator and the closed form agree — two
        independent routes to the same number."""
        sim = knockout_loss_curve(
            16, loads=[0.9], l_values=[1, 2, 4], slots=600, seed=41
        )
        for L in (1, 2, 4):
            analytic = knockout_loss_analytic(16, 0.9, L)
            measured = sim[(0.9, L)]
            assert measured == pytest.approx(analytic, abs=0.02)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            knockout_loss_analytic(0, 0.5, 1)
        with pytest.raises(ConfigurationError):
            knockout_loss_analytic(8, 1.5, 1)
        with pytest.raises(ConfigurationError):
            knockout_loss_analytic(8, 0.5, 9)


class TestDesignHelper:
    def test_small_l_suffices(self):
        """The knockout headline: single-digit L reaches tiny loss even
        at full load, independent of N."""
        for ports in (16, 32, 64):
            L = knockout_l_for_target_loss(ports, 1.0, 1e-6)
            assert L <= 12

    def test_monotone_in_target(self):
        strict = knockout_l_for_target_loss(32, 0.9, 1e-8)
        loose = knockout_l_for_target_loss(32, 0.9, 1e-2)
        assert strict >= loose

    def test_rejects_zero_target(self):
        with pytest.raises(ConfigurationError):
            knockout_l_for_target_loss(8, 0.5, 0.0)
