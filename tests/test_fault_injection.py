"""Fault-injection tests: the behavioural validators must *detect*
broken hardware, not just bless working hardware.

Each test deliberately miswires or damages a switch and asserts that
the relevant validator (or invariants test) catches the fault — the
reproduction's guarantees are only as good as its checkers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.concentration import (
    validate_hyperconcentration,
    validate_partial_concentration,
)
from repro.core.nearsort import nearsortedness
from repro.errors import ConcentrationError
from repro.mesh.order import rev_rotate_permutation
from repro.switches.base import Routing
from repro.switches.revsort_switch import RevsortSwitch
from tests.conftest import random_bits


class BrokenRotationSwitch(RevsortSwitch):
    """A Revsort switch whose rotation wiring has two swapped wires on
    every row — a plausible fabrication/wiring fault."""

    def __init__(self, n: int, m: int):
        super().__init__(n, m)
        perm = rev_rotate_permutation(self.side).copy()
        for i in range(self.side):
            a, b = self.side * i, self.side * i + self.side // 2
            perm[[a, b]] = perm[[b, a]]
        self._rotate_perm_cache = perm


class DroppingChipSwitch(RevsortSwitch):
    """A switch with one dead output wire: anything routed to flat
    position 0 is lost."""

    def setup(self, valid: np.ndarray) -> Routing:
        routing = super().setup(valid)
        broken = routing.input_to_output.copy()
        broken[broken == 0] = -1
        return Routing(
            n_inputs=self.n,
            n_outputs=self.m,
            valid=routing.valid,
            input_to_output=broken,
        )


class TestWiringFaults:
    def test_identity_instead_of_rotation_degrades_epsilon(self, rng):
        """Ablation-style fault: removing the rev(i) rotation entirely
        makes Algorithm 1 collapse (columns sorted twice + row sort);
        worst-case ε degrades measurably versus the healthy switch."""
        n = 1024
        healthy = RevsortSwitch(n, n)
        broken = RevsortSwitch(n, n)
        broken._rotate_perm_cache = np.arange(n, dtype=np.int64)

        def worst_eps(switch):
            worst = 0
            for _ in range(40):
                valid = random_bits(rng, n)
                final = switch.final_positions(valid)
                out = np.zeros(n, dtype=np.int8)
                out[final] = valid
                worst = max(worst, nearsortedness(out))
            return worst

        assert worst_eps(broken) > 1.5 * worst_eps(healthy)

    def test_swapped_wires_still_permutation_but_worse(self, rng):
        """Swapped wires keep paths disjoint (no validator trip) but
        hurt nearsorting quality — quality checks are what catch it."""
        n = 256
        broken = BrokenRotationSwitch(n, n)
        healthy = RevsortSwitch(n, n)
        worst_broken = worst_healthy = 0
        for _ in range(60):
            valid = random_bits(rng, n)
            fb = broken.final_positions(valid)
            fh = healthy.final_positions(valid)
            ob = np.zeros(n, dtype=np.int8)
            ob[fb] = valid
            oh = np.zeros(n, dtype=np.int8)
            oh[fh] = valid
            worst_broken = max(worst_broken, nearsortedness(ob))
            worst_healthy = max(worst_healthy, nearsortedness(oh))
        assert worst_broken >= worst_healthy


class TestDeadOutputFault:
    def test_validator_catches_dropped_message(self, rng):
        switch = DroppingChipSwitch(256, 192)
        spec = switch.spec
        caught = False
        for _ in range(60):
            valid = random_bits(rng, 256, spec.guaranteed_capacity)
            routing = switch.setup(valid)
            try:
                validate_partial_concentration(
                    spec, valid, routing.input_to_output
                )
            except ConcentrationError:
                caught = True
                break
        assert caught, "a dead output wire must eventually trip the validator"


class TestValidatorTeeth:
    """Direct checks that each validator rejects each fault class."""

    def test_duplicate_output(self):
        valid = np.array([1, 1, 0, 0], dtype=bool)
        with pytest.raises(ConcentrationError):
            validate_hyperconcentration(4, valid, np.array([0, 0, -1, -1]))

    def test_gap_in_hyperconcentration(self):
        valid = np.array([1, 1, 0, 0], dtype=bool)
        with pytest.raises(ConcentrationError):
            validate_hyperconcentration(4, valid, np.array([0, 2, -1, -1]))

    def test_ghost_message(self):
        from repro.core.concentration import ConcentratorSpec

        spec = ConcentratorSpec(n=4, m=4, alpha=1.0)
        valid = np.array([0, 0, 0, 0], dtype=bool)
        with pytest.raises(ConcentrationError):
            validate_partial_concentration(spec, valid, np.array([0, -1, -1, -1]))
