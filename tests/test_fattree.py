"""Tests for the fat-tree network with concentrator up-links."""

from __future__ import annotations

import pytest

from repro._util.rng import default_rng
from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.fattree import (
    FatTree,
    Routed,
    constant_capacity,
    lca_level,
    random_permutation_round,
    universal_capacity,
)
from repro.switches.columnsort_switch import ColumnsortSwitch


def send(tree: FatTree, pairs: list[tuple[int, int]]):
    msgs: list[Routed | None] = [None] * tree.leaves
    for src, dst in pairs:
        msgs[src] = Routed(message=Message.from_int(src % 16, 4), src=src, dst=dst)
    return tree.route_round(msgs)


class TestLcaLevel:
    def test_same_leaf(self):
        assert lca_level(5, 5) == 0

    def test_siblings(self):
        assert lca_level(0, 1) == 1
        assert lca_level(6, 7) == 1

    def test_cousins(self):
        assert lca_level(0, 2) == 2
        assert lca_level(0, 7) == 3

    def test_symmetric(self):
        for a, b in [(0, 5), (3, 12), (7, 8)]:
            assert lca_level(a, b) == lca_level(b, a)


class TestConstruction:
    def test_rejects_bad_height(self):
        with pytest.raises(ConfigurationError):
            FatTree(0, constant_capacity(1))

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            FatTree(3, constant_capacity(0))

    def test_capacity_profiles(self):
        cap = universal_capacity(4)
        assert cap(1) == 1 and cap(2) == 2 and cap(3) == 4
        assert constant_capacity(3)(2) == 3


class TestRouting:
    def test_local_traffic_never_contends(self):
        """Sibling exchanges turn at level 1 and need no up capacity."""
        tree = FatTree(3, constant_capacity(1))
        stats = send(tree, [(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4)])
        assert stats.delivered == 6
        assert stats.dropped == 0

    def test_thin_tree_drops_cross_traffic(self):
        """Capacity 1 up-links cannot carry two far messages from the
        same subtree."""
        tree = FatTree(3, constant_capacity(1))
        # Leaves 0 and 1 both send across the root (to 4, 5): their
        # shared level-1 and level-2 up-links admit only one.
        stats = send(tree, [(0, 4), (1, 5)])
        assert stats.offered == 2
        assert stats.delivered == 1
        assert stats.dropped == 1

    def test_capacity_profile_ordering(self):
        """Thin < half-bisection < full-bisection on root-crossing
        traffic; full bisection is lossless on permutations."""
        from repro.network.fattree import full_bisection_capacity

        pairs = [(i, i ^ 0b1000) for i in range(8)]  # all cross the root
        thin = send(FatTree(4, constant_capacity(1)), pairs)
        half = send(FatTree(4, universal_capacity(4)), pairs)
        full = send(FatTree(4, full_bisection_capacity()), pairs)
        assert thin.delivered <= half.delivered <= full.delivered
        assert thin.dropped > 0
        assert full.dropped == 0

    def test_offered_equals_delivered_plus_dropped(self):
        tree = FatTree(4, constant_capacity(2))
        rng = default_rng(1)
        for _ in range(20):
            msgs = random_permutation_round(tree, 0.8, rng)
            stats = tree.route_round(msgs)
            assert stats.offered == stats.delivered + stats.dropped

    def test_self_traffic_rejected_by_generator(self):
        tree = FatTree(3, constant_capacity(2))
        rng = default_rng(2)
        for _ in range(10):
            msgs = random_permutation_round(tree, 1.0, rng)
            for i, routed in enumerate(msgs):
                if routed is not None:
                    assert routed.dst != i

    def test_bad_slot_rejected(self):
        tree = FatTree(3, constant_capacity(1))
        msgs: list[Routed | None] = [None] * 8
        msgs[0] = Routed(message=Message.from_int(0, 4), src=3, dst=5)
        with pytest.raises(ConfigurationError):
            tree.route_round(msgs)

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigurationError):
            FatTree(3, constant_capacity(1)).route_round([None] * 4)


class TestConcentratorChoice:
    def test_partial_concentrator_uplinks(self):
        """The paper's switches as fat-tree up-links: a Columnsort
        partial concentrator with enough slack delivers like the
        perfect one."""
        def partial_factory(n, m):
            # Only (8 -> 4) switches arise at level 3 of this test.
            if (n, m) == (8, 4):
                return ColumnsortSwitch(4, 2, 4)
            from repro.switches.perfect import PerfectConcentrator

            return PerfectConcentrator(n, m)

        perfect_tree = FatTree(3, constant_capacity(4))
        partial_tree = FatTree(
            3, constant_capacity(4), concentrator_factory=partial_factory
        )
        rng_a, rng_b = default_rng(3), default_rng(3)
        delivered = [0, 0]
        for _ in range(30):
            ma = random_permutation_round(perfect_tree, 0.9, rng_a)
            mb = random_permutation_round(partial_tree, 0.9, rng_b)
            delivered[0] += perfect_tree.route_round(ma).delivered
            delivered[1] += partial_tree.route_round(mb).delivered
        # Identical traffic: the (8, 4, 3/4) switch may drop slightly
        # more under full contention but must stay within its alpha.
        assert delivered[1] >= delivered[0] * 0.9

    def test_per_level_drop_accounting(self):
        tree = FatTree(3, constant_capacity(1))
        stats = send(tree, [(0, 4), (1, 5), (2, 6), (3, 7)])
        assert sum(stats.dropped_per_level.values()) == stats.dropped
        assert all(d >= 1 for d in stats.dropped_per_level)
