"""Unit tests for the event-driven flow simulator: the event plumbing,
the workload generators, the four fabric stages, and FlowSim itself.

The cross-model guarantees live elsewhere: parity with the
round-synchronous simulator in ``test_flows_differential.py``,
randomized invariants in ``test_flows_properties.py``, and CLI
snapshots in ``test_flows_golden.py``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.network.flows import (
    Cell,
    ConcentratorFabric,
    EventQueue,
    FatTreeFabric,
    FlowSim,
    KnockoutFabric,
    RotorFabric,
    SimClock,
    WorkloadSpec,
    build_fabric,
    fabric_names,
    generate_flows,
    head_to_head,
    one_shot_flows,
    run_fabric,
    size_distribution,
    size_distribution_names,
)
from repro.switches.perfect import PerfectConcentrator


class TestSimClock:
    def test_advances_forward(self):
        clock = SimClock()
        clock.advance_to(2.5)
        clock.advance_to(2.5)
        assert clock.now == 2.5

    def test_backwards_raises(self):
        clock = SimClock(now=3.0)
        with pytest.raises(ConfigurationError):
            clock.advance_to(2.0)


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]
        assert q.clock.now == 3.0

    def test_same_time_events_pop_in_push_order(self):
        q = EventQueue()
        for payload in range(10):
            q.push(1.0, "tie", payload)
        assert [q.pop().payload for _ in range(10)] == list(range(10))

    def test_uncomparable_payloads_never_break_ties(self):
        # heapq only ever compares the (time, seq) prefix.
        q = EventQueue()
        q.push(1.0, "x", {"a": 1})
        q.push(1.0, "x", {"b": 2})
        assert q.pop().payload == {"a": 1}

    def test_push_behind_clock_raises(self):
        q = EventQueue()
        q.push(5.0, "later")
        q.pop()
        with pytest.raises(ConfigurationError):
            q.push(4.0, "past")

    def test_peek_len_and_popped(self):
        q = EventQueue()
        assert q.peek_time() is None and not q
        q.push(1.5, "e")
        assert q.peek_time() == 1.5 and len(q) == 1 and bool(q)
        q.pop()
        assert q.popped == 1 and not q


class TestSizeDistributions:
    def test_names_include_fixed(self):
        names = size_distribution_names()
        assert "fixed" in names and "websearch" in names and "datamining" in names

    def test_fixed_is_a_point_mass(self):
        dist = size_distribution("fixed", fixed_size=7)
        assert dist.mean_cells == 7.0
        rng = np.random.default_rng(0)
        assert set(dist.sample(rng, 50)) == {7}

    def test_samples_stay_in_support(self):
        dist = size_distribution("websearch")
        rng = np.random.default_rng(1)
        assert set(dist.sample(rng, 500)) <= set(dist.sizes)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            size_distribution("nope")

    def test_bad_fixed_size_raises(self):
        with pytest.raises(ConfigurationError):
            size_distribution("fixed", fixed_size=0)


class TestWorkload:
    def test_spec_validation(self):
        for kwargs in ({"n": 0}, {"n": 4, "load": 0.0}, {"n": 4, "duration": 0.0}):
            with pytest.raises(ConfigurationError):
                WorkloadSpec(**kwargs)

    def test_generate_is_deterministic(self):
        spec = WorkloadSpec(n=8, load=0.5, duration=20.0, seed=3)
        assert generate_flows(spec) == generate_flows(spec)

    def test_flow_ids_dense_and_sorted_by_arrival(self):
        flows = generate_flows(WorkloadSpec(n=8, load=0.8, duration=30.0, seed=1))
        assert [f.flow_id for f in flows] == list(range(len(flows)))
        arrivals = [f.arrival for f in flows]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= f.arrival < 30.0 for f in flows)
        assert all(0 <= f.dst < 8 and f.size_cells >= 1 for f in flows)

    def test_one_shot_defaults_dst_to_src(self):
        flows = one_shot_flows([2, 3, 1])
        assert [(f.src, f.dst, f.size_cells, f.arrival) for f in flows] == [
            (0, 0, 2, 0.0), (1, 1, 3, 0.0), (2, 2, 1, 0.0),
        ]

    def test_one_shot_validation(self):
        with pytest.raises(ConfigurationError):
            one_shot_flows([0])
        with pytest.raises(ConfigurationError):
            one_shot_flows([1, 1], dsts=[0])


def _cells(present: dict[int, tuple[int, int]], n: int) -> list[Cell | None]:
    """Ingress slots from {src: (flow_id, dst)} (all cell index 0)."""
    slots: list[Cell | None] = [None] * n
    for src, (fid, dst) in present.items():
        slots[src] = Cell(flow_id=fid, src=src, dst=dst, index=0)
    return slots


class TestConcentratorFabric:
    def test_under_capacity_all_delivered(self):
        stage = ConcentratorFabric(PerfectConcentrator(8, 4))
        outcome = stage.step(_cells({0: (0, 0), 3: (1, 3), 7: (2, 7)}, 8))
        assert len(outcome.delivered) == 3 and not outcome.rejected

    def test_over_capacity_rejects_the_excess(self):
        stage = ConcentratorFabric(PerfectConcentrator(8, 4))
        slots = _cells({i: (i, i) for i in range(8)}, 8)
        outcome = stage.step(slots)
        assert len(outcome.delivered) == 4
        assert len(outcome.rejected) == 4
        assert outcome.faulted == 0

    def test_slot_src_mismatch_raises(self):
        stage = ConcentratorFabric(PerfectConcentrator(4, 2))
        bad = [None, Cell(flow_id=0, src=0, dst=1, index=0), None, None]
        with pytest.raises(ConfigurationError):
            stage.step(bad)

    def test_describe_names_the_switch(self):
        stage = ConcentratorFabric(PerfectConcentrator(4, 2))
        doc = stage.describe()
        assert doc["m"] == 2 and doc["switch"] == "PerfectConcentrator"


class TestKnockoutFabric:
    def test_accepted_cells_queue_then_drain(self):
        stage = KnockoutFabric(4, lanes=2, fifo_depth=4)
        first = stage.step(_cells({0: (0, 2), 1: (1, 2)}, 4))
        # Both contenders fit the two lanes; the FIFO transmits one.
        assert len(first.delivered) == 1 and not first.rejected
        assert stage.in_flight() == 1
        second = stage.step([None] * 4)
        assert len(second.delivered) == 1 and stage.in_flight() == 0

    def test_contention_beyond_lanes_knocks_out(self):
        stage = KnockoutFabric(4, lanes=1, fifo_depth=8)
        outcome = stage.step(_cells({0: (0, 3), 1: (1, 3), 2: (2, 3)}, 4))
        assert len(outcome.rejected) == 2
        assert len(outcome.delivered) + stage.in_flight() == 1

    def test_full_fifo_overflows(self):
        stage = KnockoutFabric(4, lanes=1, fifo_depth=1)
        stage._fifos[2].append(Cell(flow_id=9, src=0, dst=2, index=0))
        outcome = stage.step(_cells({1: (0, 2)}, 4))
        # The drain frees a slot only after admission, so the arrival
        # bounces off the still-full FIFO.
        assert len(outcome.rejected) == 1 and len(outcome.delivered) == 1

    def test_bad_params_raise(self):
        for kwargs in ({"lanes": 0}, {"fifo_depth": 0}):
            with pytest.raises(ConfigurationError):
                KnockoutFabric(4, **kwargs)


class TestRotorFabric:
    def test_only_the_wired_destination_delivers(self):
        stage = RotorFabric(4)
        # Cycle 0 wires i -> i+1.
        outcome = stage.step(_cells({0: (0, 1), 1: (1, 3)}, 4))
        assert [c.flow_id for c in outcome.delivered] == [0]
        assert [c.flow_id for c in outcome.blocked] == [1]

    def test_admits_tracks_the_rotation(self):
        stage = RotorFabric(4)
        assert stage.admits(0, 1) and not stage.admits(0, 2)
        stage.step([None] * 4)
        assert stage.admits(0, 2) and not stage.admits(0, 1)

    def test_self_destination_always_admitted(self):
        stage = RotorFabric(4)
        assert stage.admits(2, 2)

    def test_slot_cycles_holds_the_matching(self):
        stage = RotorFabric(4, slot_cycles=2)
        stage.step([None] * 4)
        assert stage.admits(0, 1)  # still slot 0 after one cycle
        stage.step([None] * 4)
        assert stage.admits(0, 2)

    def test_tiny_n_raises(self):
        with pytest.raises(ConfigurationError):
            RotorFabric(1)


class TestFatTreeFabric:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            FatTreeFabric(12)

    def test_single_cell_survives(self):
        stage = FatTreeFabric(8)
        outcome = stage.step(_cells({2: (0, 5)}, 8))
        assert [c.flow_id for c in outcome.delivered] == [0]


class TestBuildFabric:
    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            build_fabric("warp", 16)

    def test_concentrator_m_defaults_to_three_quarters(self):
        stage = build_fabric("concentrator", 16)
        assert stage.describe()["m"] == 12

    def test_all_names_buildable_at_n16(self):
        for name in fabric_names():
            assert build_fabric(name, 16).n == 16


class TestFlowSim:
    def test_uncontended_flow_fct_equals_its_size(self):
        stage = ConcentratorFabric(PerfectConcentrator(4, 2))
        result = FlowSim(stage, one_shot_flows([3])).run()
        assert result.completed == 1
        assert result.fct[0] == 3.0
        assert result.delivered_cells == 3 and result.dropped_cells == 0
        assert result.cycles == 3

    def test_flow_ids_must_be_dense(self):
        stage = RotorFabric(4)
        flows = one_shot_flows([1, 1])
        with pytest.raises(ConfigurationError):
            FlowSim(stage, [flows[1]])

    def test_src_must_fit_the_fabric(self):
        with pytest.raises(ConfigurationError):
            FlowSim(RotorFabric(2), one_shot_flows([1, 1, 1]))

    def test_no_backpressure_drops_and_still_completes(self):
        stage = ConcentratorFabric(PerfectConcentrator(4, 1))
        result = FlowSim(
            stage, one_shot_flows([2, 2]), backpressure=False
        ).run()
        # Two contenders per cycle, one uplink: one delivers, one drops.
        assert result.delivered_cells == 2 and result.dropped_cells == 2
        assert result.completed == 2 and result.cycles == 2
        assert result.loss_rate == pytest.approx(0.5)

    def test_backpressure_retransmits_to_zero_loss(self):
        stage = ConcentratorFabric(PerfectConcentrator(4, 1))
        result = FlowSim(stage, one_shot_flows([2, 2]), max_cycles=200).run()
        assert result.dropped_cells == 0
        assert result.delivered_cells == 4
        assert result.completed == 2
        # Retransmissions make offered exceed the unique cell count.
        assert result.offered_cells >= 4

    def test_max_cycles_leaves_unresolved_flows_nan(self):
        stage = ConcentratorFabric(PerfectConcentrator(4, 1))
        result = FlowSim(stage, one_shot_flows([50, 50]), max_cycles=3).run()
        assert result.cycles == 3
        assert result.completed == 0
        assert np.isnan(result.fct).all()
        assert np.isnan(result.fct_percentiles()["p50"])

    def test_accounting_balances_mid_run(self):
        stage = KnockoutFabric(4, lanes=1, fifo_depth=2)
        seen = []

        def check(sim, cycle):
            acct = sim.accounting()
            seen.append(acct)
            assert acct["arrived"] == (
                acct["delivered"] + acct["dropped"]
                + acct["in_fabric"] + acct["at_source"]
            )
            assert acct["in_fabric"] == sim.stage.in_flight()

        FlowSim(
            stage,
            one_shot_flows([3, 3, 2], dsts=[1, 1, 1]),
            checkpoint=check,
            max_cycles=100,
        ).run()
        assert seen, "checkpoint never ran"

    def test_fractional_arrivals_round_up_to_the_next_cycle(self):
        stage = ConcentratorFabric(PerfectConcentrator(4, 2))
        flows = [replace(f, arrival=1.25) for f in one_shot_flows([1])]
        result = FlowSim(stage, flows).run()
        # Delivered in cycle 2: FCT = 2 - 1.25 + 1.
        assert result.fct[0] == pytest.approx(1.75)

    def test_emits_cataloged_metrics(self):
        registry = obs.Registry()
        stage = ConcentratorFabric(PerfectConcentrator(4, 2))
        with obs.using(registry):
            FlowSim(stage, one_shot_flows([2, 1])).run()
        counters = registry.snapshot()["counters"]
        assert counters["flows.cells_delivered{fabric=concentrator}"] == 3
        assert counters["flows.cycles{fabric=concentrator}"] == 2
        assert "flows.events{fabric=concentrator}" in counters


class TestStudy:
    def test_run_fabric_completes_a_small_workload(self):
        spec = WorkloadSpec(n=16, load=0.4, duration=10.0, seed=2)
        result = run_fabric("concentrator", spec)
        assert result.fabric == "concentrator"
        assert result.flows == len(generate_flows(spec))
        assert result.completed == result.flows

    def test_head_to_head_shares_one_workload(self):
        spec = WorkloadSpec(n=16, load=0.4, duration=10.0, seed=2)
        report = head_to_head(spec, ["concentrator", "rotor"])
        assert report.fabrics == ["concentrator", "rotor"]
        assert {r.flows for r in report.results.values()} == {
            len(generate_flows(spec))
        }
        assert report.total_events == sum(
            r.events for r in report.results.values()
        )

    def test_unknown_fabric_raises(self):
        spec = WorkloadSpec(n=16, load=0.4, duration=5.0)
        with pytest.raises(ConfigurationError):
            head_to_head(spec, ["concentrator", "warp"])

    def test_as_dict_carries_percentiles(self):
        spec = WorkloadSpec(n=16, load=0.4, duration=10.0, seed=2)
        doc = head_to_head(spec, ["rotor"]).as_dict()
        assert doc["workload"]["n"] == 16
        assert "p99" in doc["fabrics"]["rotor"]
