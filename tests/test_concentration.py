"""Tests for concentrator specs, validators, Lemma 2, and the Figure 2
converse counterexample."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.concentration import (
    ConcentratorSpec,
    figure2_counterexample,
    lemma2_load_ratio,
    lemma2_spec,
    validate_hyperconcentration,
    validate_partial_concentration,
    validate_perfect_concentration,
    validate_routing_disjoint,
)
from repro.core.nearsort import is_nearsorted, nearsortedness
from repro.errors import ConcentrationError, ConfigurationError


class TestConcentratorSpec:
    def test_capacity(self):
        spec = ConcentratorSpec(n=16, m=8, alpha=0.75)
        assert spec.guaranteed_capacity == 6
        assert not spec.is_vacuous

    def test_vacuous(self):
        spec = ConcentratorSpec(n=16, m=8, alpha=0.0)
        assert spec.is_vacuous
        assert spec.guaranteed_capacity == 0

    def test_full_alpha(self):
        spec = ConcentratorSpec(n=8, m=8, alpha=1.0)
        assert spec.guaranteed_capacity == 8

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            ConcentratorSpec(n=4, m=5, alpha=1.0)
        with pytest.raises(ConfigurationError):
            ConcentratorSpec(n=0, m=0, alpha=1.0)
        with pytest.raises(ConfigurationError):
            ConcentratorSpec(n=4, m=4, alpha=1.5)

    def test_scaled_for_perfect(self):
        # Section 1: an (n/α, m/α, α) partial replaces an n-by-m perfect.
        spec = ConcentratorSpec(n=16, m=8, alpha=0.5)
        scaled = spec.scaled_for_perfect()
        assert scaled.n == 32 and scaled.m == 16 and scaled.alpha == 0.5
        # The scaled switch's guaranteed capacity covers the original m.
        assert scaled.guaranteed_capacity >= spec.m

    def test_scaled_rejects_vacuous(self):
        with pytest.raises(ConfigurationError):
            ConcentratorSpec(n=4, m=4, alpha=0.0).scaled_for_perfect()


class TestValidateRoutingDisjoint:
    def test_accepts_disjoint(self):
        validate_routing_disjoint(np.array([0, -1, 2, 1]), 3)

    def test_rejects_reuse(self):
        with pytest.raises(ConcentrationError):
            validate_routing_disjoint(np.array([0, 0]), 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConcentrationError):
            validate_routing_disjoint(np.array([5]), 3)


class TestValidatePartial:
    def setup_method(self):
        self.spec = ConcentratorSpec(n=8, m=4, alpha=0.75)  # cap = 3

    def test_light_load_all_routed(self):
        valid = np.array([1, 0, 1, 0, 0, 1, 0, 0], dtype=bool)
        routing = np.array([0, -1, 1, -1, -1, 2, -1, -1])
        validate_partial_concentration(self.spec, valid, routing)

    def test_light_load_drop_fails(self):
        valid = np.array([1, 0, 1, 0, 0, 1, 0, 0], dtype=bool)
        routing = np.array([0, -1, 1, -1, -1, -1, -1, -1])
        with pytest.raises(ConcentrationError):
            validate_partial_concentration(self.spec, valid, routing)

    def test_heavy_load_needs_alpha_m(self):
        valid = np.ones(8, dtype=bool)
        routing = np.array([0, 1, 2, -1, -1, -1, -1, -1])  # 3 = cap: OK
        validate_partial_concentration(self.spec, valid, routing)
        routing = np.array([0, 1, -1, -1, -1, -1, -1, -1])  # 2 < cap
        with pytest.raises(ConcentrationError):
            validate_partial_concentration(self.spec, valid, routing)

    def test_invalid_input_must_not_route(self):
        valid = np.zeros(8, dtype=bool)
        routing = np.full(8, -1)
        routing[3] = 0
        with pytest.raises(ConcentrationError):
            validate_partial_concentration(self.spec, valid, routing)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            validate_partial_concentration(self.spec, np.zeros(4, dtype=bool), np.full(8, -1))


class TestValidatePerfect:
    def test_congested_must_fill_outputs(self):
        valid = np.ones(4, dtype=bool)
        # Only one of the two outputs busy under k=4 > m=2: violation.
        with pytest.raises(ConcentrationError):
            validate_perfect_concentration(4, 2, valid, np.array([0, -1, -1, -1]))
        # Both outputs busy: satisfied, regardless of which inputs won.
        validate_perfect_concentration(4, 2, valid, np.array([-1, 1, 0, -1]))

    def test_light_load_all_routed(self):
        valid = np.array([0, 1, 0, 1], dtype=bool)
        validate_perfect_concentration(4, 2, valid, np.array([-1, 0, -1, 1]))
        with pytest.raises(ConcentrationError):
            validate_perfect_concentration(4, 2, valid, np.array([-1, 0, -1, -1]))


class TestValidateHyper:
    def test_accepts_prefix(self):
        valid = np.array([0, 1, 1, 0], dtype=bool)
        routing = np.array([-1, 0, 1, -1])
        validate_hyperconcentration(4, valid, routing)

    def test_rejects_non_prefix(self):
        valid = np.array([0, 1, 1, 0], dtype=bool)
        routing = np.array([-1, 0, 2, -1])
        with pytest.raises(ConcentrationError):
            validate_hyperconcentration(4, valid, routing)

    def test_rejects_drop(self):
        valid = np.array([1, 0, 0, 0], dtype=bool)
        routing = np.full(4, -1)
        with pytest.raises(ConcentrationError):
            validate_hyperconcentration(4, valid, routing)


class TestLemma2:
    def test_load_ratio_formula(self):
        assert lemma2_load_ratio(10, 2) == pytest.approx(0.8)
        assert lemma2_load_ratio(10, 0) == 1.0

    def test_clamps_vacuous(self):
        assert lemma2_load_ratio(4, 9) == 0.0

    def test_spec(self):
        spec = lemma2_spec(16, 8, 2)
        assert spec.n == 16 and spec.m == 8
        assert spec.alpha == pytest.approx(0.75)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            lemma2_load_ratio(0, 0)
        with pytest.raises(ConfigurationError):
            lemma2_load_ratio(4, -1)

    @given(
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=40),
    )
    def test_lemma2_semantics_on_synthetic_nearsorter(self, m, eps, k):
        """Simulate Lemma 2's proof: any ε-nearsorted output restricted
        to the first m wires routes ≥ min(k, m−ε) messages when the
        nearsorter places k 1s."""
        n = m + eps + 16
        if k > n:
            return
        rng = np.random.default_rng(42)
        from repro.core.nearsort import random_epsilon_nearsorted

        bits = random_epsilon_nearsorted(n, k, eps, rng)
        routed = int(bits[:m].sum())
        cap = max(0, m - eps)
        if k <= cap:
            assert routed == k
        else:
            assert routed >= cap


class TestFigure2:
    def test_witness_not_nearsorted(self):
        n, m, eps = 64, 16, 4
        k, bits = figure2_counterexample(n, m, eps)
        assert int(bits.sum()) == k
        assert not is_nearsorted(bits, eps)
        # It still satisfies the (n, m, 1−ε/m) output contract: at
        # least m−ε of the first m outputs carry messages.
        assert int(bits[:m].sum()) >= m - eps

    def test_condition_checked(self):
        # k + ε < (n+m)/2 must hold; with n too small it can't.
        with pytest.raises(ConfigurationError):
            figure2_counterexample(10, 9, 4)

    def test_rejects_epsilon_out_of_range(self):
        with pytest.raises(ConfigurationError):
            figure2_counterexample(64, 16, 0)
        with pytest.raises(ConfigurationError):
            figure2_counterexample(64, 16, 16)

    def test_nearsortedness_exceeds_epsilon_substantially(self):
        n, m, eps = 128, 16, 3
        _, bits = figure2_counterexample(n, m, eps)
        assert nearsortedness(bits) > eps
