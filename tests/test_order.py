"""Tests for matrix numberings and wiring permutations (Figure 5 and
the inter-stage wirings of Sections 4–5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util.bits import bit_reverse, ilg
from repro.errors import ConfigurationError
from repro.mesh.order import (
    apply_position_permutation,
    cm_index,
    cm_to_rm_permutation,
    column_major_matrix,
    is_permutation,
    rev_rotate_permutation,
    rm_index,
    rm_inverse,
    rm_to_cm_permutation,
    row_major_matrix,
    shift_down_permutation,
    snake_index,
    transpose_permutation,
)


class TestFigure5:
    """The exact 6×3 example of the paper's Figure 5."""

    def test_row_major_matrix(self):
        expected = np.array(
            [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11], [12, 13, 14], [15, 16, 17]]
        )
        assert np.array_equal(row_major_matrix(6, 3), expected)

    def test_column_major_matrix(self):
        expected = np.array(
            [[0, 6, 12], [1, 7, 13], [2, 8, 14], [3, 9, 15], [4, 10, 16], [5, 11, 17]]
        )
        assert np.array_equal(column_major_matrix(6, 3), expected)


class TestIndexing:
    def test_rm_formula(self):
        # RM(i, j) = s·i + j
        assert rm_index(2, 1, 6, 3) == 7

    def test_cm_formula(self):
        # CM(i, j) = r·j + i
        assert cm_index(2, 1, 6, 3) == 8

    def test_rm_inverse_roundtrip(self):
        r, s = 6, 3
        for x in range(r * s):
            i, j = rm_inverse(x, r, s)
            assert rm_index(i, j, r, s) == x

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            rm_index(6, 0, 6, 3)
        with pytest.raises(ConfigurationError):
            rm_inverse(18, 6, 3)

    def test_snake_order(self):
        # Row 0 left-to-right, row 1 right-to-left.
        assert snake_index(0, 0, 4, 4) == 0
        assert snake_index(0, 3, 4, 4) == 3
        assert snake_index(1, 0, 4, 4) == 7
        assert snake_index(1, 3, 4, 4) == 4


class TestTransposePermutation:
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
    def test_is_bijection(self, r, s):
        assert is_permutation(transpose_permutation(r, s))

    def test_moves_entries(self):
        r, s = 3, 2
        perm = transpose_permutation(r, s)
        m = row_major_matrix(r, s)
        flat = np.empty(r * s, dtype=np.int64)
        flat[perm] = m.reshape(-1)
        assert np.array_equal(flat.reshape(s, r), m.T)

    def test_double_transpose_is_identity(self):
        r, s = 4, 8
        p1 = transpose_permutation(r, s)
        p2 = transpose_permutation(s, r)
        assert np.array_equal(p2[p1], np.arange(r * s))


class TestRevRotatePermutation:
    def test_is_bijection(self):
        for side in (2, 4, 8, 16):
            assert is_permutation(rev_rotate_permutation(side))

    def test_matches_formula(self):
        # Element at (i, j) -> (i, (rev(i)+j) mod side).
        side = 8
        q = ilg(side)
        perm = rev_rotate_permutation(side)
        for i in range(side):
            for j in range(side):
                target = side * i + (bit_reverse(i, q) + j) % side
                assert perm[side * i + j] == target

    def test_row_zero_unmoved(self):
        # rev(0) = 0, so row 0 never rotates.
        side = 16
        perm = rev_rotate_permutation(side)
        assert np.array_equal(perm[:side], np.arange(side))

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigurationError):
            rev_rotate_permutation(6)


class TestCmToRmPermutation:
    def test_matches_paper_formula(self):
        # Element (i, j) -> row ⌊(rj+i)/s⌋, column (rj+i) mod s.
        r, s = 8, 4
        perm = cm_to_rm_permutation(r, s)
        for i in range(r):
            for j in range(s):
                x = r * j + i
                assert perm[s * i + j] == s * (x // s) + (x % s)

    def test_is_bijection(self):
        for r, s in [(4, 2), (8, 4), (16, 4), (64, 8)]:
            assert is_permutation(cm_to_rm_permutation(r, s))

    def test_inverse(self):
        r, s = 8, 4
        fwd = cm_to_rm_permutation(r, s)
        inv = rm_to_cm_permutation(r, s)
        assert np.array_equal(inv[fwd], np.arange(r * s))

    def test_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            cm_to_rm_permutation(8, 3)

    def test_figure5_semantics(self):
        # Applying CM->RM to the column-major numbering must produce
        # the row-major numbering.
        r, s = 6, 3
        perm = transpose_permutation(r, s)  # unused guard
        del perm
        cm = column_major_matrix(r, s)
        moved = apply_position_permutation(cm, cm_to_rm_permutation(r, s))
        assert np.array_equal(moved, row_major_matrix(r, s))


class TestShiftDownPermutation:
    def test_is_bijection(self):
        for r, s in [(4, 2), (8, 4)]:
            assert is_permutation(shift_down_permutation(r, s, r // 2))

    def test_shift_by_zero_is_identity(self):
        r, s = 4, 2
        assert np.array_equal(shift_down_permutation(r, s, 0), np.arange(r * s))

    def test_shift_moves_cm_positions(self):
        r, s = 4, 2
        perm = shift_down_permutation(r, s, 2)
        # CM position 0 = (0,0) -> CM position 2 = (2,0) = flat 4.
        assert perm[0] == 4


class TestApplyPositionPermutation:
    def test_identity(self, rng):
        m = rng.integers(0, 2, size=(4, 4))
        out = apply_position_permutation(m, np.arange(16))
        assert np.array_equal(out, m)

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            apply_position_permutation(np.zeros((2, 2)), np.arange(5))

    def test_inverse_recovers(self, rng):
        m = rng.integers(0, 2, size=(4, 4))
        perm = rng.permutation(16)
        moved = apply_position_permutation(m, perm)
        inv = np.empty(16, dtype=np.int64)
        inv[perm] = np.arange(16)
        # Moving back with the inverse permutation restores the matrix.
        back = apply_position_permutation(moved, inv)
        assert np.array_equal(back, m)


class TestIsPermutation:
    def test_accepts(self):
        assert is_permutation(np.array([2, 0, 1]))
        assert is_permutation(np.arange(0))

    def test_rejects_duplicates(self):
        assert not is_permutation(np.array([0, 0, 1]))

    def test_rejects_out_of_range(self):
        assert not is_permutation(np.array([0, 3, 1]))
        assert not is_permutation(np.array([-1, 0, 1]))
