"""Engine backend protocol: registry, parity across execution paths,
plan-cache warm start, and the worker-count determinism guarantees of
the sharded multiprocess backend."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.engine import (
    StreamSpec,
    StreamSummary,
    backend_names,
    get_backend,
    plan_cache,
    resolve_workers,
)
from repro.engine.backends import (
    CAP_OCCUPANCY,
    CAP_PARALLEL,
    CAP_ROUTING,
    CAP_STREAM,
    shard_valid,
    summarize_batch,
)
from repro.engine.backends.sharded import ShardedBackend
from repro.errors import ConfigurationError
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.revsort_switch import RevsortSwitch
from repro.verify import CertifyOptions, certify_design

#: Small budgets so certify-based tests run in seconds.
QUICK = CertifyOptions(
    max_total=1 << 10, max_per_k=32, chunk=64, scalar_rows=16,
    metamorphic_rows=8,
)


def _mixed_valid(rng, trials: int, n: int) -> np.ndarray:
    return rng.random((trials, n)) < rng.random((trials, 1))


class TestRegistry:
    def test_all_execution_paths_registered(self):
        names = backend_names()
        for name in ("scalar", "batch", "packed", "netlist", "process"):
            assert name in names

    def test_unknown_backend_is_config_error(self):
        with pytest.raises(ConfigurationError):
            get_backend("gpu")

    def test_capabilities(self):
        assert CAP_ROUTING in get_backend("batch").capabilities()
        assert CAP_STREAM in get_backend("batch").capabilities()
        assert CAP_PARALLEL in get_backend("process").capabilities()
        assert CAP_PARALLEL not in get_backend("batch").capabilities()
        packed = get_backend("packed").capabilities()
        assert CAP_OCCUPANCY in packed
        assert CAP_ROUTING not in packed

    def test_occupancy_only_backend_refuses_routing(self):
        sw = Hyperconcentrator(8)
        with pytest.raises(ConfigurationError):
            get_backend("packed").run_trials(sw, np.zeros((1, 8), bool))

    def test_plan_key_matches_compiled_plan(self):
        sw = ColumnsortSwitch(8, 2, 12)
        key = get_backend("batch").plan_key(sw)
        assert key is not None
        assert key == get_backend("process").plan_key(sw)
        assert get_backend("batch").plan_key(object()) is None


class TestParity:
    def test_routing_parity_scalar_batch_process(self, rng):
        sw = ColumnsortSwitch(8, 2, 12)
        valid = _mixed_valid(rng, 40, sw.n)
        ref = get_backend("scalar").run_trials(sw, valid).input_to_output
        batch = get_backend("batch").run_trials(sw, valid).input_to_output
        proc = (
            get_backend("process", workers=2, shard_trials=8)
            .run_trials(sw, valid)
            .input_to_output
        )
        assert np.array_equal(ref, batch)
        assert np.array_equal(ref, proc)

    def test_occupancy_parity_gate_backends(self, rng):
        sw = Hyperconcentrator(8)
        valid = _mixed_valid(rng, 24, sw.n)
        ref = get_backend("batch").run_occupancy(sw, valid)
        assert ref is not None
        for name in ("packed", "netlist"):
            occ = get_backend(name).run_occupancy(sw, valid)
            assert np.array_equal(ref, occ), name


class TestStreamDeterminism:
    def test_summary_invariant_across_worker_counts(self):
        sw = RevsortSwitch(16, 12)
        spec = StreamSpec(trials=64, seed=9, shard_trials=16)
        ref = get_backend("batch").run_stream(sw, spec)
        assert ref.trials == 64 and ref.shards == 4
        for workers in (1, 2, 4):
            got = get_backend("process", workers=workers).run_stream(sw, spec)
            assert got == ref, f"workers={workers}"

    @settings(max_examples=20, deadline=None)
    @given(
        trials=st.integers(min_value=0, max_value=48),
        shard_trials=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_shard_boundaries_partition_and_fold(self, trials, shard_trials, seed):
        """Any shard grid partitions [0, trials) exactly, and folding
        the per-shard summaries in any bracketing equals the backend's
        own stream result — the property that makes the ε/α results
        independent of how shards land on workers."""
        sw = Hyperconcentrator(8)
        spec = StreamSpec(trials=trials, seed=seed, shard_trials=shard_trials)
        shards = spec.shards()
        assert [s for s, _ in shards] == list(range(0, trials, shard_trials))
        assert sum(stop - start for start, stop in shards) == trials
        children = np.random.SeedSequence(seed).spawn(max(1, len(shards)))
        pieces = []
        for index, (start, stop) in enumerate(shards):
            valid = shard_valid(sw.n, stop - start, children[index], spec.load)
            batch = sw.setup_batch(valid)
            pieces.append(summarize_batch(sw, valid, batch.input_to_output))
        left = StreamSummary()
        for piece in pieces:
            left = left.fold(piece)
        right = StreamSummary()
        for piece in reversed(pieces):
            right = piece.fold(right)
        assert left == right  # fold order cannot matter
        assert left == get_backend("process", workers=1).run_stream(sw, spec)
        assert left == get_backend("batch").run_stream(sw, spec)


class TestPlanCacheSnapshot:
    def test_snapshot_restore_roundtrip(self):
        cache = plan_cache()
        cache.clear()
        sw = ColumnsortSwitch(8, 2, 12)
        warm = np.zeros((2, sw.n), dtype=bool)
        warm[:, 0] = True
        sw.setup_batch(warm)
        assert cache.stats()["misses"] >= 1
        snap = cache.snapshot()
        assert set(snap) == cache.keys()
        # The payload is pure data: it must survive the pickle boundary
        # the worker protocol ships it over.
        snap = pickle.loads(pickle.dumps(snap))

        cache.clear()
        assert cache.stats()["restored"] == 0
        assert cache.restore(snap) == len(snap)
        assert cache.stats()["restored"] == len(snap)
        # Warm start: a fresh switch finds every plan — hits, no misses.
        before = cache.stats()
        ColumnsortSwitch(8, 2, 12).setup_batch(warm)
        after = cache.stats()
        assert after["misses"] == before["misses"]
        assert after["hits"] > before["hits"]
        # Restoring the same payload again installs nothing.
        assert cache.restore(snap) == 0

    def test_restored_plans_are_frozen(self):
        cache = plan_cache()
        cache.clear()
        sw = ColumnsortSwitch(8, 2, 12)
        warm = np.zeros((2, sw.n), dtype=bool)
        warm[:, 0] = True
        sw.setup_batch(warm)
        snap = pickle.loads(pickle.dumps(cache.snapshot()))
        cache.clear()
        cache.restore(snap)
        routed = ColumnsortSwitch(8, 2, 12).setup_batch(warm)
        assert routed.input_to_output.shape == (2, sw.n)


class TestWorkersOption:
    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1
        with pytest.raises(ConfigurationError):
            resolve_workers(-1)

    @pytest.mark.parametrize(
        "argv",
        [
            ["certify", "hyper", "--n", "8", "--workers", "-1"],
            ["verify", "hyper", "--n", "8", "--backend", "process",
             "--workers", "-1"],
            ["compare", "--switch", "revsort", "--n", "16", "--m", "12",
             "--workers", "-1"],
            ["bench", "run", "--suite", "smoke", "--workers", "-1"],
        ],
    )
    def test_negative_workers_exits_2(self, argv, capsys):
        assert main(argv) == 2
        assert "workers" in capsys.readouterr().err


class TestCrossProcessCertify:
    @pytest.mark.parametrize(
        "design,params",
        [
            ("hyper", {"n": 8}),
            ("revsort", {"n": 16, "m": 12}),
            ("columnsort", {"r": 8, "s": 2, "m": 12}),
        ],
    )
    def test_certificate_json_worker_invariant(self, design, params):
        docs = []
        for workers in (0, 1, 2, 4):
            cert = certify_design(
                design, dict(params), options=QUICK, workers=workers
            )
            assert cert.ok
            docs.append(cert.to_json())
        assert all(doc == docs[0] for doc in docs[1:]), design


class TestSlowShardGate:
    def _spec(self, delay_s: float):
        from repro.obs.perf.suite import BenchSpec, Workload

        def make():
            sw = ColumnsortSwitch.from_beta(256, 0.75, 192)
            backend = ShardedBackend(
                workers=1, shard_trials=256, _test_shard_delay_s=delay_s
            )
            stream = StreamSpec(
                trials=1024, shard_trials=256, load="half",
                check_contract=False, measure_epsilon=False,
            )

            def run(rng):
                return backend.run_stream(sw, stream).trials

            return Workload(run=run, meta={})

        return BenchSpec("test.slow-shard", ("test",), "trials", make)

    def test_injected_slow_shard_trips_the_gate(self):
        from repro.obs.perf.regression import compare_records, has_regressions
        from repro.obs.perf.suite import run_bench

        history = [
            run_bench(self._spec(0.0), suite="test", repeats=3, alloc=False)
        ]
        slow = run_bench(self._spec(0.5), suite="test", repeats=3, alloc=False)
        verdicts = compare_records({"test.slow-shard": slow}, history)
        assert has_regressions(verdicts)
        # A clean re-run stays inside the (generous) noise band.
        clean = run_bench(self._spec(0.0), suite="test", repeats=3, alloc=False)
        verdicts = compare_records(
            {"test.slow-shard": clean}, history, tolerance=2.0
        )
        assert not has_regressions(verdicts)
