"""Tests for the knockout-style packet switch built on concentrators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.network.knockout import (
    KnockoutSwitch,
    Packet,
    knockout_loss_curve,
    uniform_packet_traffic,
)
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.perfect import PerfectConcentrator


def packet(src: int, dst: int, slot: int = 0) -> Packet:
    return Packet(source=src, destination=dst, slot=slot)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            KnockoutSwitch(0, 1)
        with pytest.raises(ConfigurationError):
            KnockoutSwitch(8, 0)
        with pytest.raises(ConfigurationError):
            KnockoutSwitch(8, 9)
        with pytest.raises(ConfigurationError):
            KnockoutSwitch(8, 2, buffer_depth=0)

    def test_rejects_mis_sized_factory(self):
        with pytest.raises(ConfigurationError):
            KnockoutSwitch(
                8, 2, concentrator_factory=lambda n, m: PerfectConcentrator(4, 2)
            )


class TestSingleSlot:
    def test_delivery_under_l(self):
        switch = KnockoutSwitch(4, 2)
        packets = [packet(0, 1), None, packet(2, 1), None]
        switch.step(packets)
        out = switch.step([None] * 4) + switch.drain()
        delivered = [p for p in out if p is not None]
        assert switch.stats.knocked_out == 0
        assert switch.stats.delivered >= 2

    def test_knockout_beyond_l(self):
        """Three packets to one output through an N-to-2 concentrator:
        exactly one is knocked out."""
        switch = KnockoutSwitch(4, 2)
        packets = [packet(i, 0) for i in range(3)] + [None]
        switch.step(packets)
        assert switch.stats.knocked_out == 1

    def test_output_line_rate_one_per_slot(self):
        switch = KnockoutSwitch(4, 2)
        switch.step([packet(0, 0), packet(1, 0), None, None])
        outputs = switch.step([None] * 4)
        assert sum(1 for p in outputs if p is not None) <= 4
        # Output 0 emits at most one packet per slot even with 2 queued.
        assert switch.queue_lengths()[0] <= 1

    def test_buffer_overflow_accounted(self):
        switch = KnockoutSwitch(4, 2, buffer_depth=1)
        # Two winners per slot into a depth-1 FIFO, drained 1/slot.
        switch.step([packet(0, 0), packet(1, 0), None, None])
        assert switch.stats.buffer_overflow >= 1

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigurationError):
            KnockoutSwitch(4, 2).step([None] * 3)


class TestConservation:
    def test_packets_conserved(self, rng):
        """offered = delivered + knocked_out + overflow (+ in flight)."""
        switch = KnockoutSwitch(8, 3, buffer_depth=4)
        for packets in uniform_packet_traffic(8, 0.7, 50, seed=1):
            switch.step(packets)
        switch.drain()
        stats = switch.stats
        assert stats.offered == stats.delivered + stats.lost

    def test_fifo_order_preserved(self):
        switch = KnockoutSwitch(4, 2)
        first = packet(0, 0, slot=0)
        second = packet(1, 0, slot=0)
        third = packet(2, 0, slot=1)
        # first and second arrive together; third one slot later.
        out0 = switch.step([first, second, None, None])
        out1 = switch.step([None, None, third, None])
        out2 = switch.step([None] * 4)
        emitted = [out[0] for out in (out0, out1, out2)]
        assert emitted == [first, second, third]


class TestLossCurve:
    def test_loss_decreases_in_l(self):
        """The knockout property: concentrator loss falls steeply as L
        grows, at fixed offered load."""
        curve = knockout_loss_curve(
            16, loads=[0.9], l_values=[1, 2, 4, 8], slots=150, seed=2
        )
        losses = [curve[(0.9, L)] for L in (1, 2, 4, 8)]
        assert losses == sorted(losses, reverse=True)
        assert losses[0] > 0.1         # L=1 loses heavily at 90% load
        assert losses[-1] < 0.01       # L=8 is nearly lossless

    def test_loss_increases_in_load(self):
        curve = knockout_loss_curve(
            16, loads=[0.3, 0.6, 0.9], l_values=[2], slots=150, seed=3
        )
        losses = [curve[(p, 2)] for p in (0.3, 0.6, 0.9)]
        assert losses == sorted(losses)

    def test_partial_concentrator_in_the_role(self):
        """A Columnsort partial concentrator can serve as the knockout
        concentrator: with its ε-slack covered by extra outputs, the
        loss matches the perfect concentrator's."""
        def partial_factory(n, m):
            # 16-to-8 via a Columnsort switch (ε = 1 with s = 2).
            assert (n, m) == (16, 8)
            return ColumnsortSwitch(8, 2, 8)

        perfect = knockout_loss_curve(
            16, loads=[0.8], l_values=[8], slots=100, seed=4
        )[(0.8, 8)]
        partial = knockout_loss_curve(
            16,
            loads=[0.8],
            l_values=[8],
            slots=100,
            seed=4,
            concentrator_factory=partial_factory,
        )[(0.8, 8)]
        assert partial <= perfect + 0.02


class TestTraffic:
    def test_uniform_traffic_rate(self):
        total = 0
        for packets in uniform_packet_traffic(100, 0.5, 20, seed=5):
            total += sum(1 for p in packets if p is not None)
        assert 800 < total < 1200

    def test_rejects_bad_load(self):
        with pytest.raises(ConfigurationError):
            list(uniform_packet_traffic(4, 1.5, 1))
