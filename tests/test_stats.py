"""Tests for the statistical helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import (
    Interval,
    bootstrap_mean,
    proportions_differ,
    wilson_interval,
)
from repro.errors import ConfigurationError


class TestWilson:
    def test_contains_true_proportion_typically(self, rng):
        """Coverage sanity: ~95% of intervals contain the truth."""
        p_true = 0.3
        hits = 0
        runs = 200
        for _ in range(runs):
            successes = int((rng.random(100) < p_true).sum())
            if wilson_interval(successes, 100).contains(p_true):
                hits += 1
        assert hits / runs > 0.85

    def test_zero_successes_includes_zero_but_not_half(self):
        iv = wilson_interval(0, 50)
        assert iv.low == 0.0
        assert iv.high < 0.15

    def test_all_successes(self):
        iv = wilson_interval(50, 50)
        assert iv.high == 1.0
        assert iv.low > 0.85

    def test_width_shrinks_with_trials(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert large.width < small.width

    def test_higher_confidence_wider(self):
        assert (
            wilson_interval(30, 100, 0.99).width
            > wilson_interval(30, 100, 0.90).width
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 4)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 10, confidence=0.5)


class TestBootstrap:
    def test_contains_mean_of_tight_data(self):
        data = np.array([10.0, 10.1, 9.9, 10.05, 9.95] * 10)
        iv = bootstrap_mean(data, seed=1)
        assert iv.contains(10.0)
        assert iv.width < 0.2

    def test_deterministic_given_seed(self):
        data = np.arange(20, dtype=float)
        a = bootstrap_mean(data, seed=2)
        b = bootstrap_mean(data, seed=2)
        assert (a.low, a.high) == (b.low, b.high)

    def test_rejects_tiny_samples(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean(np.array([1.0]))


class TestProportionsDiffer:
    def test_clearly_different(self):
        assert proportions_differ(5, 1000, 300, 1000)

    def test_identical_not_different(self):
        assert not proportions_differ(100, 1000, 100, 1000)

    def test_small_samples_inconclusive(self):
        # 1/10 vs 3/10: intervals overlap, so no claim.
        assert not proportions_differ(1, 10, 3, 10)


class TestInterval:
    def test_contains(self):
        iv = Interval(estimate=0.5, low=0.4, high=0.6, confidence=0.95)
        assert iv.contains(0.4) and iv.contains(0.6)
        assert not iv.contains(0.61)
