"""Tests for the functional single-chip hyperconcentrator."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.concentration import validate_hyperconcentration
from repro.errors import ConfigurationError
from repro.switches.hyperconcentrator import (
    Hyperconcentrator,
    concentrate_permutation,
    hyperconcentrate_routing,
)

valid_vectors = st.lists(st.booleans(), min_size=1, max_size=64).map(
    lambda xs: np.array(xs, dtype=bool)
)


class TestConcentratePermutation:
    @given(valid_vectors)
    def test_is_permutation(self, valid):
        perm = concentrate_permutation(valid)
        assert sorted(perm) == list(range(valid.size))

    @given(valid_vectors)
    def test_valids_lead(self, valid):
        perm = concentrate_permutation(valid)
        k = int(valid.sum())
        assert set(perm[valid]) == set(range(k))

    @given(valid_vectors)
    def test_order_preserving(self, valid):
        perm = concentrate_permutation(valid)
        v_targets = perm[valid]
        assert list(v_targets) == sorted(v_targets)
        i_targets = perm[~valid]
        assert list(i_targets) == sorted(i_targets)


class TestRouting:
    @given(valid_vectors)
    def test_contract(self, valid):
        routing = hyperconcentrate_routing(valid)
        validate_hyperconcentration(valid.size, valid, routing)

    @given(valid_vectors)
    def test_invalid_gets_no_path(self, valid):
        routing = hyperconcentrate_routing(valid)
        assert (routing[~valid] == -1).all()


class TestHyperconcentratorSwitch:
    def test_exhaustive_small(self):
        for n in range(1, 7):
            switch = Hyperconcentrator(n)
            for bits in itertools.product([False, True], repeat=n):
                valid = np.array(bits, dtype=bool)
                routing = switch.setup(valid)
                validate_hyperconcentration(n, valid, routing.input_to_output)

    def test_spec(self):
        switch = Hyperconcentrator(8)
        assert switch.spec.n == switch.spec.m == 8
        assert switch.spec.alpha == 1.0

    def test_routing_object(self):
        switch = Hyperconcentrator(4)
        valid = np.array([True, False, True, False])
        routing = switch.setup(valid)
        assert routing.routed_count == 2
        assert list(routing.dropped_inputs) == []
        out_valid = routing.output_valid_bits()
        assert list(out_valid) == [True, True, False, False]
        inv = routing.output_to_input()
        assert inv[0] == 0 and inv[1] == 2 and inv[2] == -1

    def test_route_messages(self):
        switch = Hyperconcentrator(4)
        outputs = switch.route(["a", None, "b", None])
        assert outputs == ["a", "b", None, None]

    def test_route_wrong_length(self):
        from repro.errors import RoutingError

        with pytest.raises(RoutingError):
            Hyperconcentrator(4).route(["a"])

    def test_wrong_valid_shape(self):
        with pytest.raises(ConfigurationError):
            Hyperconcentrator(4).setup(np.zeros(5, dtype=bool))

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            Hyperconcentrator(0)

    def test_resource_model(self):
        switch = Hyperconcentrator(16)
        assert switch.data_pins == 32
        assert switch.component_count == 256
        assert switch.area == 256
        # 2⌈lg n⌉ + pads
        assert switch.gate_delays == 2 * 4 + 2

    def test_delay_monotone_in_n(self):
        delays = [Hyperconcentrator(1 << q).gate_delays for q in range(1, 8)]
        assert delays == sorted(delays)
