"""Tests for the generic-key mesh sorts (0–1 principle cross-check)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mesh.generic import (
    columnsort,
    columnsort_flat,
    is_sorted_column_major,
    is_sorted_row_major,
    revsort,
    shearsort,
)


def int_matrix(r, c, lo=-100, hi=100):
    return st.lists(
        st.lists(st.integers(min_value=lo, max_value=hi), min_size=c, max_size=c),
        min_size=r,
        max_size=r,
    ).map(lambda rows: np.array(rows))


class TestGenericRevsort:
    @given(int_matrix(8, 8))
    @settings(max_examples=30)
    def test_sorts(self, m):
        out = revsort(m)
        assert is_sorted_row_major(out)

    @given(int_matrix(4, 4))
    @settings(max_examples=30)
    def test_multiset_preserved(self, m):
        out = revsort(m)
        assert sorted(out.reshape(-1)) == sorted(m.reshape(-1).astype(float))

    def test_duplicates(self):
        m = np.full((8, 8), 7)
        assert np.array_equal(revsort(m), m.astype(float))

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            revsort(np.array([["a", "b"], ["c", "d"]]))

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigurationError):
            revsort(np.zeros((6, 6)))


class TestGenericColumnsort:
    @pytest.mark.parametrize("r,s", [(8, 2), (18, 3), (32, 4)])
    def test_sorts_random(self, rng, r, s):
        for _ in range(20):
            m = rng.integers(-50, 50, size=(r, s))
            flat = columnsort_flat(m)
            assert (flat[:-1] >= flat[1:]).all()

    @given(int_matrix(8, 2))
    @settings(max_examples=30)
    def test_multiset_preserved(self, m):
        flat = columnsort_flat(m)
        assert sorted(flat) == sorted(m.reshape(-1).astype(float))

    def test_column_major_readout(self, rng):
        out = columnsort(rng.normal(size=(18, 3)))
        assert is_sorted_column_major(out)

    def test_rejects_shape_violations(self):
        with pytest.raises(ConfigurationError):
            columnsort(np.zeros((8, 4)))  # r < 2(s-1)^2

    def test_floats(self, rng):
        flat = columnsort_flat(rng.normal(size=(32, 4)))
        assert (flat[:-1] >= flat[1:]).all()


class TestGenericShearsort:
    @pytest.mark.parametrize("shape", [(4, 4), (8, 8), (5, 7), (16, 2)])
    def test_sorts(self, rng, shape):
        for _ in range(20):
            out = shearsort(rng.integers(0, 1000, size=shape))
            assert is_sorted_row_major(out)

    @given(int_matrix(6, 5))
    @settings(max_examples=30)
    def test_multiset_preserved(self, m):
        out = shearsort(m)
        assert sorted(out.reshape(-1)) == sorted(m.reshape(-1).astype(float))


class TestReadoutPredicates:
    def test_row_major(self):
        assert is_sorted_row_major(np.array([[3, 2], [1, 0]]))
        assert not is_sorted_row_major(np.array([[1, 2], [3, 0]]))

    def test_column_major(self):
        assert is_sorted_column_major(np.array([[3, 1], [2, 0]]))
        assert not is_sorted_column_major(np.array([[1, 3], [0, 2]]))

    def test_trivial(self):
        assert is_sorted_row_major(np.zeros((1, 1)))
