"""Tests for the reliability roll-up model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.reliability import (
    ReliabilityModel,
    columnsort_reliability,
    monolithic_reliability,
    revsort_reliability,
)


class TestReliabilityModel:
    def test_chip_rate_components(self):
        model = ReliabilityModel(chip_base=1.0, area_exponent=0.5, pin_rate=0.1)
        assert model.chip_rate(area=100, pins=10) == pytest.approx(10.0 + 1.0)

    def test_area_exponent_one_is_linear(self):
        model = ReliabilityModel(area_exponent=1.0, pin_rate=0.0)
        assert model.chip_rate(200, 0) == pytest.approx(2 * model.chip_rate(100, 0))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ReliabilityModel(chip_base=0.0)
        with pytest.raises(ConfigurationError):
            ReliabilityModel(area_exponent=1.5)
        with pytest.raises(ConfigurationError):
            ReliabilityModel().chip_rate(0, 4)


class TestSystemRollups:
    def test_revsort_counts(self):
        rel = revsort_reliability(256)
        assert rel.chips == 4 * 16
        assert rel.system_rate > 0

    def test_columnsort_beta_tradeoff(self):
        """Higher β = fewer, larger chips.  With sublinear die-rate
        scaling, consolidation wins: β=3/4 beats β=1/2 on MTBF."""
        low = columnsort_reliability(1 << 12, 0.5)
        high = columnsort_reliability(1 << 12, 0.75)
        assert high.chips < low.chips
        assert high.relative_mtbf > low.relative_mtbf

    def test_linear_area_flattens_the_tradeoff(self):
        """With defects strictly proportional to silicon area the chip
        area sums dominate and consolidation no longer helps on die
        rate — only the pin-joint savings remain."""
        model = ReliabilityModel(area_exponent=1.0, pin_rate=0.0)
        low = columnsort_reliability(1 << 12, 0.5, model)
        high = columnsort_reliability(1 << 12, 0.75, model)
        # Total silicon area: 2s·r² = 2nr — larger r means MORE total
        # area, so the big-chip design is *worse* under e = 1.
        assert high.system_rate > low.system_rate

    def test_monolithic_single_part(self):
        rel = monolithic_reliability(1 << 10)
        assert rel.chips == 1
        assert rel.pin_joints == 2 * (1 << 10) + 3

    def test_relative_mtbf_inverse(self):
        rel = revsort_reliability(64)
        assert rel.relative_mtbf == pytest.approx(1.0 / rel.system_rate)
