"""Self-healing sharded execution: the shard supervisor's retry /
respawn / deadline / degradation loop, the pool's respawn and
shared-memory hygiene, certify checkpoint/resume, and the supervision
observability surface (journal frames, SLO defaults, flight-recorder
fallback, analyze section).

The load-bearing property everywhere: a worker death, deadline expiry,
or transient exception changes *when* results arrive, never *what*
they are — every shard's entropy is keyed to its position, so retried
output is byte-identical to a clean run's.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.engine import StreamSpec, get_backend
from repro.engine.backends import CAP_SUPERVISED
from repro.engine.backends.pool import (
    WorkerPool,
    _LIVE_SHM,
    create_shm,
    shm_segments,
    sweep_orphan_shm,
)
from repro.engine.backends.supervisor import chaos_from_env
from repro.errors import ConfigurationError, ExecutionError, exit_code_for
from repro.switches.revsort_switch import RevsortSwitch
from repro.verify import CertifyOptions, certify_design

#: Small budgets so certify-based tests run in seconds.
QUICK = CertifyOptions(
    max_total=1 << 10, max_per_k=32, chunk=64, scalar_rows=16,
    metamorphic_rows=8,
)

SPEC = StreamSpec(trials=24000, seed=42, load="mixed", shard_trials=4000)


def _switch() -> RevsortSwitch:
    return RevsortSwitch(16, 12)


def _stream_ref():
    return get_backend("batch").run_stream(_switch(), SPEC)


def _chaos_token(tmp_path) -> str:
    return str(tmp_path / "chaos.token")


class TestPoolRespawn:
    def test_respawn_resets_plan_shipping(self):
        """Satellite fix: a respawned pool's children start with empty
        plan caches, so previously-shipped keys must ship again."""
        pool = WorkerPool(1)
        pool._shipped = {"stale-key"}
        pool._inherited = {"stale-too"}
        generation = pool.generation
        pool.respawn()
        assert pool._shipped == set()
        assert pool._inherited == set()
        assert pool.generation == generation + 1

    def test_executor_property_resets_stale_sets(self):
        """The lazy executor property itself also clears the sets: a
        pool whose executor was torn down elsewhere (shutdown) must not
        starve fresh children of plans recorded as shipped to dead
        ones."""
        pool = WorkerPool(1)
        pool._shipped = {"stale-key"}
        try:
            pool.executor  # noqa: B018 - property has the side effect
            assert "stale-key" not in pool._shipped
        finally:
            pool.shutdown()

    def test_supervised_capability_advertised(self):
        assert CAP_SUPERVISED in get_backend("process").capabilities()


class TestShmHygiene:
    def test_segments_released_on_clean_exit(self):
        with shm_segments(64, 128) as (a, b):
            names = {a.name, b.name}
            assert names <= _LIVE_SHM
        assert not (names & _LIVE_SHM)

    def test_segments_released_when_body_raises(self):
        """Satellite fix: a shard job raising mid-dispatch used to leak
        both segments."""
        with pytest.raises(RuntimeError):
            with shm_segments(64, 128) as (a, b):
                names = {a.name, b.name}
                raise RuntimeError("shard job died")
        assert not (names & _LIVE_SHM)

    def test_partial_allocation_failure_releases_earlier_segments(
        self, monkeypatch
    ):
        import repro.engine.backends.pool as pool_mod

        created = []
        real = pool_mod.create_shm

        def flaky(nbytes):
            if created:
                raise OSError("out of segments")
            shm = real(nbytes)
            created.append(shm.name)
            return shm

        monkeypatch.setattr(pool_mod, "create_shm", flaky)
        with pytest.raises(OSError):
            with pool_mod.shm_segments(64, 128):
                pass  # pragma: no cover - never entered
        assert created and created[0] not in _LIVE_SHM

    def test_sweep_reclaims_orphans(self):
        shm = create_shm(64)
        name = shm.name
        shm.close()  # owner died without unlinking
        assert name in _LIVE_SHM
        assert sweep_orphan_shm() >= 1
        assert name not in _LIVE_SHM


class TestChaosEnv:
    def test_unset_means_no_chaos(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert chaos_from_env() is None

    def test_parses_mode_shard_and_token(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "sleep:2:7.5")
        monkeypatch.setenv("REPRO_CHAOS_TOKEN", "/tmp/tok")
        assert chaos_from_env() == {
            "die_mode": "sleep", "shard": 2, "sleep_s": 7.5,
            "once_token": "/tmp/tok",
        }


class TestSupervisedStream:
    """Kill, crash, stall, and exhaust workers; the stream summary must
    match the in-process batch backend bit for bit."""

    @pytest.mark.parametrize("mode", ["kill", "exit"])
    def test_worker_death_is_retried_and_identical(self, tmp_path, mode):
        chaos = {"die_mode": mode, "once_token": _chaos_token(tmp_path)}
        with obs.collecting() as registry:
            backend = get_backend("process", workers=3, _test_chaos=chaos)
            got = backend.run_stream(_switch(), SPEC)
        assert got == _stream_ref()
        counters = registry.snapshot()["counters"]
        assert counters.get("engine.shard_retries", 0) >= 1
        assert counters.get("engine.pool_respawns", 0) >= 1

    def test_transient_exception_is_retried_and_identical(self, tmp_path):
        chaos = {"die_mode": "raise", "once_token": _chaos_token(tmp_path)}
        with obs.collecting() as registry:
            backend = get_backend("process", workers=3, _test_chaos=chaos)
            got = backend.run_stream(_switch(), SPEC)
        assert got == _stream_ref()
        counters = registry.snapshot()["counters"]
        assert counters.get("engine.shard_retries", 0) >= 1
        # A transient in-job exception needs no executor teardown.
        assert counters.get("engine.pool_respawns", 0) == 0

    def test_deadline_expiry_kills_and_retries(self, tmp_path):
        chaos = {
            "die_mode": "sleep", "sleep_s": 60.0, "shard": 0,
            "once_token": _chaos_token(tmp_path),
        }
        with obs.collecting() as registry:
            backend = get_backend(
                "process", workers=3, deadline_s=1.0, _test_chaos=chaos
            )
            got = backend.run_stream(_switch(), SPEC)
        assert got == _stream_ref()
        counters = registry.snapshot()["counters"]
        assert counters.get("engine.shard_timeouts", 0) >= 1
        assert counters.get("engine.pool_respawns", 0) >= 1

    def test_exhausted_budget_degrades_to_in_process(self):
        # Shard 2 fails on *every* attempt (no once-token): after the
        # retry budget it must run inline in the parent — with the
        # chaos payload stripped — and still produce identical output.
        chaos = {"die_mode": "raise", "shard": 2}
        with obs.collecting() as registry:
            backend = get_backend(
                "process", workers=3, max_retries=1, _test_chaos=chaos
            )
            got = backend.run_stream(_switch(), SPEC)
        assert got == _stream_ref()
        counters = registry.snapshot()["counters"]
        assert counters.get("engine.degraded_fallbacks", 0) >= 1

    def test_degradation_disabled_raises_execution_error(self):
        chaos = {"die_mode": "raise", "shard": 2}
        backend = get_backend(
            "process", workers=3, max_retries=1, degrade=False,
            _test_chaos=chaos,
        )
        with pytest.raises(ExecutionError) as excinfo:
            backend.run_stream(_switch(), SPEC)
        assert exit_code_for(excinfo.value) == 3

    def test_no_shm_leaked_after_chaos(self, tmp_path, rng):
        # run_trials crosses shared memory; kill a worker mid-round and
        # check the parent's segment registry drains.
        chaos = {"die_mode": "kill", "once_token": _chaos_token(tmp_path)}
        backend = get_backend(
            "process", workers=2, shard_trials=64, _test_chaos=chaos
        )
        valid = rng.random((256, 16)) < 0.5
        batch = backend.run_trials(_switch(), valid)
        ref = get_backend("batch").run_trials(_switch(), valid)
        assert (batch.input_to_output == ref.input_to_output).all()
        assert not _LIVE_SHM


class TestCertifyChaos:
    """The acceptance scenario: SIGKILL a pool worker mid
    ``certify --workers 4`` and require a byte-identical certificate
    plus visible retry counters."""

    ARGS = [
        "certify", "revsort", "--n", "16", "--m", "12",
        "--workers", "4", "--chunk", "64", "--max-total", "1024",
    ]

    def _run(self, tmp_path, name, env=None, journal=None, monkeypatch=None):
        from repro.cli import main

        out = tmp_path / name
        argv = self.ARGS + ["--out", str(out)]
        if journal is not None:
            argv += ["--journal", str(journal)]
        if env:
            for key, value in env.items():
                monkeypatch.setenv(key, value)
        try:
            assert main(argv) == 0
        finally:
            if env:
                for key in env:
                    monkeypatch.delenv(key)
        return out.read_bytes()

    def test_worker_kill_mid_certify_is_byte_identical(
        self, tmp_path, monkeypatch
    ):
        clean = self._run(tmp_path, "clean.json")
        journal = tmp_path / "chaos.jsonl"
        killed = self._run(
            tmp_path, "killed.json",
            env={
                "REPRO_CHAOS": "kill",
                "REPRO_CHAOS_TOKEN": _chaos_token(tmp_path),
            },
            journal=journal,
            monkeypatch=monkeypatch,
        )
        assert killed == clean

        from repro.obs.live import replay_journal

        events = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        counters = replay_journal(events)["counters"]
        assert counters.get("engine.shard_retries", 0) >= 1
        assert counters.get("engine.pool_respawns", 0) >= 1
        assert any(e.get("type") == "worker_death" for e in events)

        from repro.obs.perf.analyze import analyze_journal

        supervision = analyze_journal(events)["supervision"]
        assert supervision["shard_retries"] >= 1
        assert supervision["pool_respawns"] >= 1
        assert supervision["worker_deaths"] >= 1


class TestCheckpoint:
    DESIGN = ("revsort", {"n": 16, "m": 12})

    def _clean(self):
        name, params = self.DESIGN
        return certify_design(name, dict(params), options=QUICK, workers=1)

    def test_serial_crash_and_resume_identical(self, tmp_path, monkeypatch):
        import repro.verify.exhaustive as ex

        clean = self._clean().as_dict()
        real = ex._examine_chunk
        calls = {"n": 0, "armed": True}

        def dying(switch, chunk, config):
            calls["n"] += 1
            if calls["armed"] and calls["n"] > 3:
                calls["armed"] = False
                raise RuntimeError("simulated kill")
            return real(switch, chunk, config)

        monkeypatch.setattr(ex, "_examine_chunk", dying)
        name, params = self.DESIGN
        with pytest.raises(RuntimeError, match="simulated kill"):
            certify_design(
                name, dict(params), options=QUICK, workers=1,
                checkpoint_dir=str(tmp_path),
            )
        total_chunks = calls["n"]  # 3 completed + the dying one

        # Resume: only unfinished chunks re-run, certificate identical.
        calls["n"] = 0
        resumed = certify_design(
            name, dict(params), options=QUICK, workers=1,
            checkpoint_dir=str(tmp_path),
        )
        assert resumed.as_dict() == clean
        assert calls["n"] >= 1  # something was actually left to do
        # The three checkpointed chunks were skipped.
        full_calls = calls["n"] + 3
        assert full_calls >= total_chunks

        # A second resume finds everything done: zero chunk executions.
        calls["n"] = 0
        again = certify_design(
            name, dict(params), options=QUICK, workers=1,
            checkpoint_dir=str(tmp_path),
        )
        assert again.as_dict() == clean
        assert calls["n"] == 0

    def test_parallel_resume_from_serial_checkpoint(self, tmp_path):
        """Chunk identity is worker-invariant, so a checkpoint written
        serially resumes under the supervised pool (and vice versa)."""
        name, params = self.DESIGN
        clean = self._clean().as_dict()
        first = certify_design(
            name, dict(params), options=QUICK, workers=1,
            checkpoint_dir=str(tmp_path),
        )
        resumed = certify_design(
            name, dict(params), options=QUICK, workers=2,
            checkpoint_dir=str(tmp_path),
        )
        assert first.as_dict() == clean
        assert resumed.as_dict() == clean

    def test_truncated_checkpoint_resumes(self, tmp_path):
        name, params = self.DESIGN
        clean = self._clean().as_dict()
        certify_design(
            name, dict(params), options=QUICK, workers=1,
            checkpoint_dir=str(tmp_path),
        )
        path = tmp_path / "revsort-n16-m12.jsonl"
        lines = path.read_text().splitlines()
        # Keep the header + 2 records, plus a half-written record (the
        # run died mid-write); the partial line must be discarded.
        path.write_text("\n".join(lines[:3]) + "\n" + lines[3][: len(lines[3]) // 2])
        resumed = certify_design(
            name, dict(params), options=QUICK, workers=1,
            checkpoint_dir=str(tmp_path),
        )
        assert resumed.as_dict() == clean

    def test_fingerprint_mismatch_is_config_error(self, tmp_path):
        name, params = self.DESIGN
        certify_design(
            name, dict(params), options=QUICK, workers=1,
            checkpoint_dir=str(tmp_path),
        )
        from dataclasses import replace

        other = replace(QUICK, scalar_rows=8)
        with pytest.raises(ConfigurationError):
            certify_design(
                name, dict(params), options=other, workers=1,
                checkpoint_dir=str(tmp_path),
            )


class TestSloDefaults:
    def test_absent_metric_uses_default(self):
        from repro.obs.slo import evaluate_slo, parse_slo_spec

        rules = parse_slo_spec(
            {
                "schema": "repro.obs/slo@1",
                "rules": [
                    {
                        "metric": "counter:engine.shard_retries",
                        "op": "<=", "threshold": 0, "default": 0,
                    },
                    {
                        "metric": "counter:engine.shard_retries",
                        "op": "<=", "threshold": 0,
                    },
                ],
            }
        )
        defaulted, missing = evaluate_slo(rules, {"counters": {}})
        assert defaulted.ok and "defaulted" in defaulted.detail
        assert not missing.ok  # no default: absence still fails

        # A present value ignores the default entirely.
        present, _ = evaluate_slo(
            rules, {"counters": {"engine.shard_retries": 2}}
        )
        assert not present.ok and present.value == 2.0

    def test_committed_supervision_spec_loads(self):
        from pathlib import Path

        from repro.obs.slo import evaluate_slo, load_slo_spec

        spec = (
            Path(__file__).parent.parent / "benchmarks" / "slo_supervision.toml"
        )
        rules = load_slo_spec(spec)
        source = {"counters": {"verify.patterns{design=revsort}": 5906.0}}
        assert all(v.ok for v in evaluate_slo(rules, source))
        source["counters"]["engine.pool_respawns"] = 1.0
        assert not all(v.ok for v in evaluate_slo(rules, source))


class TestFlightRecorderWorkerDeath:
    def test_worker_death_frame_becomes_failing_span(self):
        from repro.obs.live.flight import failing_span

        events = [
            {"type": "counter"},
            {"type": "worker_death", "shard": 5, "label": "certify"},
        ]
        span = failing_span(reversed(events))
        assert span == {
            "name": "engine.shard",
            "path": None,
            "error": "worker-death (shard 5)",
            "duration_s": None,
        }

    def test_error_tagged_span_still_wins(self):
        from repro.obs.live.flight import failing_span

        events = [
            {"type": "worker_death", "shard": 5},
            {
                "type": "span", "name": "verify.certify", "path": "p",
                "meta": {"error": "boom"}, "duration_s": 0.5,
            },
        ]
        assert failing_span(reversed(events))["name"] == "verify.certify"


class TestExitCodeContract:
    def test_execution_error_exits_3(self):
        assert exit_code_for(ExecutionError("pool gave up")) == 3

    def test_cli_maps_execution_error_to_3(self, monkeypatch, capsys):
        from repro.cli import main
        import repro.verify.exhaustive as ex

        def broken(*args, **kwargs):
            raise ExecutionError("shard 0 exhausted its retry budget")

        monkeypatch.setattr(ex, "certify_design", broken)
        monkeypatch.setattr("repro.verify.certify_design", broken)
        assert main(["certify", "hyper", "--n", "8"]) == 3
        assert "execution failure" in capsys.readouterr().err


def teardown_module() -> None:
    """Chaos tests leave broken executors behind; later test modules
    reuse the process-wide pools, so reset them."""
    from repro.engine.backends.pool import shutdown_pools

    shutdown_pools()
    for key in ("REPRO_CHAOS", "REPRO_CHAOS_TOKEN"):
        os.environ.pop(key, None)
