"""Thread-vs-process executor parity.

``analysis.sweep.sweep`` and ``simulate.compare_partial_vs_perfect``
both promise that ``executor="thread"`` and ``executor="process"``
produce identical results (and match serial) for any worker count:
work items are seeded by position via ``SeedSequence.spawn``, never by
worker or completion order.  These tests pin that promise — a
divergence here means one path reordered draws or dropped the
positional seeding.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.analysis.sweep import sweep
from repro.network.simulate import compare_partial_vs_perfect
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.perfect import PerfectConcentrator


def _measure(value, rng):
    # Module level so the process pool can pickle it.
    return {"sq": value * value, "draw": float(rng.random())}


class TestSweepExecutorParity:
    PARAMS = [1, 2, 3, 4, 5]

    def test_thread_and_process_match_serial(self):
        serial = sweep(self.PARAMS, _measure, seed=9)
        threaded = sweep(
            self.PARAMS, _measure, seed=9, workers=2, executor="thread"
        )
        processed = sweep(
            self.PARAMS, _measure, seed=9, workers=2, executor="process"
        )
        assert threaded == serial
        assert processed == serial
        assert [row["param"] for row in processed] == self.PARAMS

    def test_parity_holds_with_telemetry_enabled(self):
        # The metric-collection wrappers (private worker registries,
        # portable snapshot merges) must not perturb the rows either.
        def run(executor):
            registry = obs.Registry()
            with obs.using(registry):
                return sweep(
                    self.PARAMS, _measure, seed=9, workers=2,
                    executor=executor,
                )

        assert run("thread") == run("process") == sweep(
            self.PARAMS, _measure, seed=9
        )


class TestComparePartialVsPerfectExecutorParity:
    KW = dict(k_values=[12, 24, 36], trials=6, seed=3)

    @staticmethod
    def _switches():
        return PerfectConcentrator(48, 36), ColumnsortSwitch(16, 4, 36)

    def test_thread_and_process_match(self):
        perfect, partial = self._switches()
        one = compare_partial_vs_perfect(
            perfect, partial, workers=1, **self.KW
        )
        threaded = compare_partial_vs_perfect(
            perfect, partial, workers=2, executor="thread", **self.KW
        )
        processed = compare_partial_vs_perfect(
            perfect, partial, workers=2, executor="process", **self.KW
        )
        assert threaded == one
        assert processed == one

    def test_process_parity_with_telemetry_enabled(self):
        perfect, partial = self._switches()

        def run(executor):
            registry = obs.Registry()
            with obs.using(registry):
                result = compare_partial_vs_perfect(
                    perfect, partial, workers=2, executor=executor, **self.KW
                )
            return result, registry.snapshot()["counters"]

        threaded, thread_counters = run("thread")
        processed, process_counters = run("process")
        assert threaded == processed
        # The routed work itself is identical on both paths (plan-cache
        # traffic legitimately differs: processes restore shipped plans).
        trials_key = "engine.batch_trials{switch=PerfectConcentrator}"
        assert thread_counters[trials_key] == process_counters[trials_key]

    def test_means_are_finite_and_bounded(self):
        perfect, partial = self._switches()
        results = compare_partial_vs_perfect(
            perfect, partial, workers=2, executor="process", **self.KW
        )
        for k, row in results.items():
            assert 0.0 <= row["perfect"] <= min(k, perfect.m)
            assert np.isfinite(row["partial"])
