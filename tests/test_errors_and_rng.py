"""Tests for the exception hierarchy and deterministic RNG helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.rng import DEFAULT_SEED, default_rng, random_valid_bits
from repro.errors import (
    CircuitError,
    ConcentrationError,
    ConfigurationError,
    ReproError,
    RoutingError,
    SimulationError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            ConcentrationError,
            RoutingError,
            SimulationError,
            CircuitError,
        ):
            assert issubclass(exc, ReproError)

    def test_stdlib_compatibility(self):
        """Each error doubles as the stdlib family callers expect."""
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ConcentrationError, AssertionError)
        assert issubclass(RoutingError, RuntimeError)
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(CircuitError, ValueError)

    def test_one_except_catches_all(self):
        with pytest.raises(ReproError):
            raise CircuitError("boom")


class TestDefaultRng:
    def test_none_seed_is_fixed(self):
        a = default_rng().random(8)
        b = default_rng().random(8)
        assert np.array_equal(a, b)

    def test_explicit_seed(self):
        assert not np.array_equal(
            default_rng(1).random(8), default_rng(2).random(8)
        )

    def test_default_seed_constant(self):
        assert DEFAULT_SEED == 0x1987  # the repo-wide seed; changing it
        # invalidates the golden corpus, so it is pinned here.


class TestRandomValidBits:
    def test_exact_k(self):
        bits = random_valid_bits(64, k=13, rng=default_rng(3))
        assert bits.sum() == 13
        assert bits.dtype == bool

    def test_k_zero_and_full(self):
        assert random_valid_bits(8, k=0, rng=default_rng(4)).sum() == 0
        assert random_valid_bits(8, k=8, rng=default_rng(4)).sum() == 8

    def test_p_extremes(self):
        assert random_valid_bits(32, p=0.0, rng=default_rng(5)).sum() == 0
        assert random_valid_bits(32, p=1.0, rng=default_rng(5)).sum() == 32

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            random_valid_bits(4, k=5, rng=default_rng(6))
