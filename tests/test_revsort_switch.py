"""Tests for the Revsort-based multichip partial concentrator
(Section 4): behaviour, equivalence with Algorithm 1, Theorem 3's
contract, the Figure 3 instance, and the resource model."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.bits import bit_reverse, ilg
from repro.core.concentration import validate_partial_concentration
from repro.core.nearsort import nearsortedness
from repro.errors import ConfigurationError
from repro.mesh.revsort import revsort_nearsort
from repro.switches.revsort_switch import RevsortSwitch
from tests.conftest import random_bits


class TestConstruction:
    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            RevsortSwitch(60, 30)

    def test_rejects_square_of_non_pow2(self):
        with pytest.raises(ConfigurationError):
            RevsortSwitch(36, 18)  # √36 = 6 not a power of two

    def test_rejects_bad_m(self):
        with pytest.raises(ConfigurationError):
            RevsortSwitch(16, 0)
        with pytest.raises(ConfigurationError):
            RevsortSwitch(16, 17)

    def test_side(self):
        assert RevsortSwitch(64, 32).side == 8


class TestEquivalenceWithAlgorithm1:
    """The physical switch and Algorithm 1 move valid bits identically."""

    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    def test_output_bits_match(self, rng, n):
        switch = RevsortSwitch(n, n)
        side = switch.side
        for _ in range(30):
            valid = random_bits(rng, n)
            final = switch.final_positions(valid)
            out = np.zeros(n, dtype=np.int8)
            out[final] = valid.astype(np.int8)
            expect = revsort_nearsort(
                valid.astype(np.int8).reshape(side, side)
            ).reshape(-1)
            assert np.array_equal(out, expect)

    def test_final_positions_is_permutation(self, rng):
        switch = RevsortSwitch(64, 64)
        valid = random_bits(rng, 64)
        final = switch.final_positions(valid)
        assert sorted(final) == list(range(64))


class TestConcentrationContract:
    @pytest.mark.parametrize("n,m", [(64, 48), (256, 200), (1024, 800)])
    def test_partial_contract_random(self, rng, n, m):
        switch = RevsortSwitch(n, m)
        spec = switch.spec
        for _ in range(40):
            valid = random_bits(rng, n)
            routing = switch.setup(valid)
            validate_partial_concentration(spec, valid, routing.input_to_output)

    @pytest.mark.parametrize("n,m", [(256, 200), (1024, 700)])
    def test_light_load_routes_everything(self, rng, n, m):
        """At k ≤ αm every valid message must get a path (Theorem 3 +
        Lemma 2)."""
        switch = RevsortSwitch(n, m)
        cap = switch.spec.guaranteed_capacity
        assert cap > 0, "test sizes must give a non-vacuous guarantee"
        for k in {1, cap // 2, cap}:
            if k < 1:
                continue
            valid = random_bits(rng, n, k)
            assert switch.setup(valid).routed_count == k

    def test_measured_epsilon_within_bound(self, rng):
        n = 1024
        switch = RevsortSwitch(n, n)
        worst = 0
        for _ in range(60):
            valid = random_bits(rng, n)
            final = switch.final_positions(valid)
            out = np.zeros(n, dtype=np.int8)
            out[final] = valid
            worst = max(worst, nearsortedness(out))
        assert worst <= switch.epsilon_bound

    def test_full_and_empty_loads(self):
        switch = RevsortSwitch(64, 32)
        assert switch.setup(np.ones(64, dtype=bool)).routed_count == 32
        assert switch.setup(np.zeros(64, dtype=bool)).routed_count == 0


class TestFigure3Instance:
    """The paper's Figure 3: n = 64, m = 28, 24 valid messages."""

    def test_dimensions(self):
        switch = RevsortSwitch(64, 28)
        assert switch.side == 8
        assert switch.chip_count == 24  # 3 stages of 8 chips
        assert switch.data_pins_per_chip == 16  # 2√n

    def test_figure3_instance_routes_fully(self):
        """Figure 3 draws a concrete instance in which all 24 valid
        messages reach the 28 outputs.  A deterministic such instance:
        the 24 messages on the first three matrix rows stay within the
        first 28 row-major positions after nearsorting."""
        switch = RevsortSwitch(64, 28)
        valid = np.zeros(64, dtype=bool)
        valid[:24] = True
        assert switch.setup(valid).routed_count == 24

    def test_24_messages_mostly_routed(self, rng):
        """Random 24-message instances route nearly all messages (the
        figure's k=24 < m=28 regime); none may drop below the measured
        dirty-window floor."""
        switch = RevsortSwitch(64, 28)
        routed = [
            switch.setup(random_bits(rng, 64, 24)).routed_count for _ in range(200)
        ]
        assert min(routed) >= 20
        assert max(routed) == 24  # fully routed instances exist
        assert float(np.mean(routed)) > 22

    def test_output_wires_per_chip(self):
        """m = 28 = 4 wires from each of chips H3,0..H3,3 plus 3 wires
        from each of H3,4..H3,7 (row-major restriction)."""
        # Output wire index w < 28 corresponds to matrix position w:
        # row i = w // 8 taken fully for i < 3, and row 3 partially.
        per_chip = [0] * 8
        for w in range(28):
            chip = w % 8  # stage-3 chip j holds column j
            per_chip[chip] += 1
        assert per_chip == [4, 4, 4, 4, 3, 3, 3, 3]


class TestResourceModel:
    def test_pins_formula(self):
        # 2√n + ⌈(lg n)/2⌉ (the barrel shifter's pins dominate).
        switch = RevsortSwitch(256, 128)
        assert switch.max_pins_per_chip == 2 * 16 + 4

    def test_chip_count(self):
        assert RevsortSwitch(256, 128).chip_count == 48  # 3·16

    def test_barrel_shifters_hardwired_to_rev(self):
        switch = RevsortSwitch(64, 32)
        q = ilg(switch.side)
        shifts = [b.shift for b in switch.barrel_shifters]
        assert shifts == [bit_reverse(i, q) for i in range(switch.side)]

    def test_gate_delays_scale(self):
        """Delay = 3·(2 lg √n + pads) + barrel = 3 lg n + O(1)."""
        import math

        for n in (64, 256, 1024, 4096):
            switch = RevsortSwitch(n, n // 2)
            lg_n = int(math.log2(n))
            assert switch.gate_delays == 3 * lg_n + 7  # 3 pads·2 + barrel

    def test_stage_reports(self):
        reports = RevsortSwitch(64, 32).stage_reports()
        assert [r.name for r in reports] == [
            "stage1-columns",
            "stage2-rows",
            "stage3-columns",
        ]
        assert all(r.chip_count == 8 for r in reports)
        assert reports[1].extras["barrel_shifters"] == 8


class TestMessageRouting:
    def test_payloads_follow_paths(self, rng):
        switch = RevsortSwitch(64, 48)
        payloads: list[object | None] = [None] * 64
        chosen = rng.choice(64, size=20, replace=False)
        for i in chosen:
            payloads[int(i)] = f"msg{i}"
        outputs = switch.route(payloads)
        delivered = [msg for msg in outputs if msg is not None]
        assert sorted(delivered) == sorted(f"msg{i}" for i in chosen)
