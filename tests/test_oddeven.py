"""Tests for the odd-even transposition sorter and weakened-chip
pipeline variants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nearsort import nearsortedness
from repro.errors import ConfigurationError
from repro.mesh.columnsort import columnsort_nearsort
from repro.mesh.oddeven import (
    oddeven_sort_rounds,
    weak_column_sort,
    weak_columnsort_pass,
    weak_revsort_pass,
    weak_row_sort,
)
from repro.mesh.revsort import revsort_nearsort

bit_rows = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=16).map(
    lambda xs: np.array(xs, dtype=np.int8)
)


class TestOddEvenRounds:
    @given(bit_rows)
    @settings(max_examples=40)
    def test_full_rounds_fully_sort(self, row):
        out = oddeven_sort_rounds(row, rounds=row.size)
        assert (out[:-1] >= out[1:]).all()

    @given(bit_rows)
    @settings(max_examples=40)
    def test_counts_preserved(self, row):
        for rounds in (0, 1, row.size // 2, row.size):
            out = oddeven_sort_rounds(row, rounds)
            assert out.sum() == row.sum()

    def test_zero_rounds_identity(self):
        row = np.array([0, 1, 0, 1], dtype=np.int8)
        assert np.array_equal(oddeven_sort_rounds(row, 0), row)

    def test_progressive_improvement(self, rng):
        """More rounds never worsen the row's sortedness (0/1 odd-even
        is monotone in rounds)."""
        row = (rng.random(16) < 0.5).astype(np.int8)
        eps = [
            nearsortedness(oddeven_sort_rounds(row, t)) for t in range(17)
        ]
        assert eps[-1] == 0
        assert all(a >= b for a, b in zip(eps, eps[1:]))

    def test_batch_shape(self, rng):
        batch = (rng.random((5, 8)) < 0.5).astype(np.int8)
        out = oddeven_sort_rounds(batch, 8)
        assert out.shape == (5, 8)
        assert (out[:, :-1] >= out[:, 1:]).all()

    def test_rejects_negative_rounds(self):
        with pytest.raises(ConfigurationError):
            oddeven_sort_rounds(np.array([1, 0]), -1)


class TestWeakSorts:
    def test_full_rounds_match_true_sorts(self, rng):
        from repro.mesh.grid import sort_columns, sort_rows

        m = (rng.random((8, 8)) < 0.5).astype(np.int8)
        assert np.array_equal(weak_column_sort(m, 8), sort_columns(m))
        assert np.array_equal(weak_row_sort(m, 8), sort_rows(m))

    def test_weak_revsort_with_full_rounds_matches_algorithm1(self, rng):
        m = (rng.random((8, 8)) < 0.5).astype(np.int8)
        assert np.array_equal(weak_revsort_pass(m, 8), revsort_nearsort(m))

    def test_weak_columnsort_with_full_rounds_matches_algorithm2(self, rng):
        m = (rng.random((8, 4)) < 0.5).astype(np.int8)
        assert np.array_equal(weak_columnsort_pass(m, 8), columnsort_nearsort(m))

    def test_quality_degrades_gracefully(self, rng):
        """Weakened chips degrade ε monotonically-ish: quarter-strength
        chips are worse than full, better than zero."""
        side = 16
        worst = {}
        for rounds in (0, side // 4, side):
            w = 0
            for _ in range(60):
                m = (rng.random((side, side)) < rng.random()).astype(np.int8)
                out = weak_revsort_pass(m, rounds)
                w = max(w, nearsortedness(out.reshape(-1)))
            worst[rounds] = w
        assert worst[side] < worst[side // 4] < worst[0]
