"""Tests for the switch registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.switches.registry import REGISTRY, available, build_switch


class TestRegistry:
    def test_available_names(self):
        names = available()
        assert "revsort" in names and "columnsort" in names
        assert "butterfly" in names and "bitonic" in names

    def test_build_each_design(self):
        params = {"n": 64, "m": 48, "r": 0, "s": 0, "beta": 0.75}
        for name in available():
            switch = build_switch(name, **params)
            assert switch.n >= 1
            assert switch.spec is not None

    def test_columnsort_by_shape(self):
        switch = build_switch("columnsort", n=0, m=16, r=8, s=4, beta=0.75)
        assert (switch.r, switch.s) == (8, 4)

    def test_columnsort_by_beta(self):
        switch = build_switch("columnsort", n=256, m=128, r=0, s=0, beta=0.5)
        assert switch.r == switch.s == 16

    def test_columnsort_requires_some_shape(self):
        with pytest.raises(ConfigurationError):
            build_switch("columnsort", n=0, m=16, r=0, s=0, beta=0.75)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_switch("warp-drive", n=8, m=4)

    def test_entries_documented(self):
        for entry in REGISTRY.values():
            assert entry.description
