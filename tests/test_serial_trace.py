"""Wire-trace invariants for the bit-serial simulator.

The per-cycle output matrix a :class:`BitSerialSimulator` returns must
itself be consistent: the setup row carries exactly the concentrated
valid bits, idle output wires stay low for the whole transit, and the
payload rows reconstruct every delivered message.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.messages.message import Message
from repro.messages.serial_sim import BitSerialSimulator
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator


def message_sets(n: int, payload: int):
    return st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=(1 << payload) - 1)),
        min_size=n,
        max_size=n,
    ).map(
        lambda vals: [
            None if v is None else Message.from_int(v, payload) for v in vals
        ]
    )


class TestTraceInvariants:
    @given(message_sets(8, 4))
    @settings(max_examples=40)
    def test_setup_row_is_concentrated_valid_bits(self, messages):
        sim = BitSerialSimulator(Hyperconcentrator(8))
        record = sim.transit(messages)
        k = sum(1 for m in messages if m is not None)
        assert list(record.wire_trace[0]) == [1] * k + [0] * (8 - k)

    @given(message_sets(8, 4))
    @settings(max_examples=40)
    def test_idle_wires_stay_low(self, messages):
        sim = BitSerialSimulator(Hyperconcentrator(8))
        record = sim.transit(messages)
        busy = set(record.delivered)
        for wire in range(8):
            if wire not in busy:
                assert not record.wire_trace[1:, wire].any()

    @given(message_sets(8, 4))
    @settings(max_examples=40)
    def test_payload_rows_reconstruct_messages(self, messages):
        sim = BitSerialSimulator(Hyperconcentrator(8))
        record = sim.transit(messages)
        for wire, msg in record.delivered.items():
            got = tuple(int(b) for b in record.wire_trace[1:, wire])
            assert got == msg.payload

    def test_partial_switch_trace_width_is_m(self, rng):
        switch = ColumnsortSwitch(8, 4, 18)
        sim = BitSerialSimulator(switch)
        messages: list[Message | None] = [None] * 32
        for i in rng.choice(32, size=10, replace=False):
            messages[int(i)] = Message.from_int(int(i) % 16, 4)
        record = sim.transit(messages)
        assert record.wire_trace.shape == (5, 18)
        assert len(record.delivered) + len(record.dropped) == 10
