"""Tests for the dirty-row analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mesh.analysis import (
    count_dirty_rows,
    dirty_row_span,
    dirty_rows_mask,
    is_block_sorted,
    is_column_major_sorted,
    is_row_major_sorted,
)


class TestDirtyRows:
    def test_clean_matrix(self):
        m = np.array([[1, 1], [0, 0]])
        assert count_dirty_rows(m) == 0
        assert dirty_row_span(m) == 0

    def test_mixed_rows(self):
        m = np.array([[1, 1], [1, 0], [0, 0]])
        assert count_dirty_rows(m) == 1
        assert dirty_row_span(m) == 1
        assert list(dirty_rows_mask(m)) == [False, True, False]

    def test_span_exceeds_count_with_gap(self):
        # Dirty rows 0 and 2 with a clean row between: span 3, count 2.
        m = np.array([[1, 0], [1, 1], [0, 1]])
        assert count_dirty_rows(m) == 2
        assert dirty_row_span(m) == 3

    def test_empty_columns(self):
        m = np.zeros((3, 0), dtype=np.int8)
        assert count_dirty_rows(m) == 0


class TestIsBlockSorted:
    def test_accepts_canonical(self):
        m = np.array([[1, 1], [1, 0], [0, 0]])
        assert is_block_sorted(m)

    def test_accepts_all_clean(self):
        assert is_block_sorted(np.array([[1, 1], [0, 0]]))
        assert is_block_sorted(np.ones((3, 3), dtype=np.int8))
        assert is_block_sorted(np.zeros((3, 3), dtype=np.int8))

    def test_rejects_zeros_above_ones(self):
        assert not is_block_sorted(np.array([[0, 0], [1, 1]]))

    def test_rejects_dirty_before_clean_ones(self):
        assert not is_block_sorted(np.array([[1, 0], [1, 1]]))

    def test_accepts_multiple_dirty_rows(self):
        m = np.array([[1, 1], [1, 0], [0, 1], [0, 0]])
        assert is_block_sorted(m)


class TestSortedReadouts:
    def test_row_major(self):
        assert is_row_major_sorted(np.array([[1, 1], [1, 0]]))
        assert not is_row_major_sorted(np.array([[1, 0], [1, 0]]))

    def test_column_major(self):
        assert is_column_major_sorted(np.array([[1, 1], [1, 0]]).T)
        assert not is_column_major_sorted(np.array([[0, 1], [1, 0]]))

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            count_dirty_rows(np.array([1, 0]))
