"""Tests for the bit-serial message format and clocked simulation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.messages.message import Message, invalid_wire_stream
from repro.messages.serial_sim import BitSerialSimulator
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.perfect import PerfectConcentrator
from repro.switches.revsort_switch import RevsortSwitch


class TestMessage:
    def test_roundtrip_int(self):
        msg = Message.from_int(173, 8)
        assert msg.to_int() == 173
        assert msg.length == 8

    def test_wire_stream_has_valid_bit_first(self):
        msg = Message(payload=(0, 1, 1))
        assert list(msg.wire_stream()) == [1, 0, 1, 1]

    def test_invalid_wire_stream(self):
        assert list(invalid_wire_stream(3)) == [0, 0, 0, 0]

    def test_rejects_non_bits(self):
        with pytest.raises(ConfigurationError):
            Message(payload=(0, 2))

    def test_rejects_overflow(self):
        with pytest.raises(ConfigurationError):
            Message.from_int(256, 8)

    def test_tags_unique(self):
        a, b = Message(payload=(1,)), Message(payload=(1,))
        assert a.tag != b.tag


class TestBitSerialSimulator:
    def test_transit_delivers_payloads(self, rng):
        switch = Hyperconcentrator(8)
        sim = BitSerialSimulator(switch)
        messages = [None] * 8
        messages[1] = Message.from_int(0x5A, 8)
        messages[4] = Message.from_int(0xC3, 8)
        record = sim.transit(messages)
        assert record.cycles == 9  # setup + 8 payload bits
        assert record.delivered[0].to_int() == 0x5A
        assert record.delivered[1].to_int() == 0xC3
        assert record.dropped == []

    def test_setup_cycle_carries_valid_bits(self):
        switch = Hyperconcentrator(4)
        sim = BitSerialSimulator(switch)
        messages = [Message.from_int(0, 2), None, Message.from_int(3, 2), None]
        record = sim.transit(messages)
        # Cycle 0 on outputs: valid bits, concentrated to the left.
        assert list(record.wire_trace[0]) == [1, 1, 0, 0]

    def test_congestion_drops_reported(self, rng):
        switch = PerfectConcentrator(4, 2)
        sim = BitSerialSimulator(switch)
        messages = [Message.from_int(i, 4) for i in range(4)]
        record = sim.transit(messages)
        assert len(record.delivered) == 2
        assert len(record.dropped) == 2

    def test_misaligned_payloads_rejected(self):
        switch = Hyperconcentrator(2)
        sim = BitSerialSimulator(switch)
        with pytest.raises(SimulationError):
            sim.transit([Message.from_int(0, 2), Message.from_int(0, 3)])

    def test_wrong_width_rejected(self):
        sim = BitSerialSimulator(Hyperconcentrator(4))
        with pytest.raises(SimulationError):
            sim.transit([None, None])

    def test_empty_payloads(self):
        """Zero-length payloads: only the setup cycle happens."""
        sim = BitSerialSimulator(Hyperconcentrator(2))
        record = sim.transit([Message(payload=()), None])
        assert record.cycles == 1
        assert record.delivered[0].length == 0

    def test_min_clock_period(self):
        sim = BitSerialSimulator(RevsortSwitch(64, 32))
        assert sim.min_clock_period() == RevsortSwitch(64, 32).gate_delays
        assert sim.min_clock_period(delay_per_gate=0.5) == pytest.approx(
            RevsortSwitch(64, 32).gate_delays / 2
        )

    def test_through_multichip_switch(self, rng):
        """End-to-end: payload integrity through the Revsort switch."""
        switch = RevsortSwitch(64, 48)
        sim = BitSerialSimulator(switch)
        messages: list[Message | None] = [None] * 64
        chosen = rng.choice(64, size=30, replace=False)
        for i in chosen:
            messages[int(i)] = Message.from_int(int(i) * 3 % 256, 8)
        record = sim.transit(messages)
        delivered_values = sorted(m.to_int() for m in record.delivered.values())
        sent_values = sorted(int(i) * 3 % 256 for i in chosen)
        dropped_values = sorted(m.to_int() for m in record.dropped)
        assert sorted(delivered_values + dropped_values) == sent_values
        assert len(record.delivered) >= switch.spec.guaranteed_capacity or not record.dropped
