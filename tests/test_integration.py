"""End-to-end integration tests spanning multiple subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.concentration import validate_partial_concentration
from repro.core.nearsort import nearsortedness
from repro.gates.hyperconc_gates import GateHyperconcentrator
from repro.hardware.costs import table1
from repro.messages.message import Message
from repro.messages.serial_sim import BitSerialSimulator
from repro.network.simulate import ConcentrationTree
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.revsort_switch import RevsortSwitch
from tests.conftest import random_bits


class TestLemma2EndToEnd:
    """The whole Section 3 argument, measured on the real switches: an
    ε-nearsorting construction restricted to its first m outputs meets
    the (n, m, 1 − ε/m) contract, with measured ε ≤ the theorem bound."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RevsortSwitch(256, 192),
            lambda: ColumnsortSwitch(64, 4, 192),
            lambda: ColumnsortSwitch(32, 8, 192),
        ],
    )
    def test_theorem_pipeline(self, rng, factory):
        switch = factory()
        n = switch.n
        worst_eps = 0
        for _ in range(40):
            valid = random_bits(rng, n)
            final = switch.final_positions(valid)
            out = np.zeros(n, dtype=np.int8)
            out[final] = valid.astype(np.int8)
            worst_eps = max(worst_eps, nearsortedness(out))
            routing = switch.setup(valid)
            validate_partial_concentration(
                switch.spec, valid, routing.input_to_output
            )
        assert worst_eps <= switch.epsilon_bound


class TestGateModelInsideMultichipStory:
    """The functional chip model used by the multichip switches and
    the gate-level netlist agree — so the multichip results transfer
    to the gate level."""

    def test_substitute_gate_chip_for_column_sorts(self, rng):
        r, s = 8, 2
        n = r * s
        switch = ColumnsortSwitch(r, s, n)
        gate_chip = GateHyperconcentrator(r)
        for _ in range(20):
            valid = random_bits(rng, n)
            # Stage 1 on gate chips.
            mat = valid.reshape(r, s)
            cols = []
            for j in range(s):
                routing = gate_chip.setup(mat[:, j])
                out = np.zeros(r, dtype=bool)
                targets = routing.input_to_output[mat[:, j]]
                out[targets] = True
                cols.append(out)
            gate_stage1 = np.stack(cols, axis=1)

            final = switch.stage_permutations(valid)[0]
            model_stage1 = np.zeros(n, dtype=bool)
            model_stage1[final] = valid
            assert np.array_equal(gate_stage1.reshape(-1), model_stage1)


class TestMessagesThroughTree:
    def test_bit_serial_through_two_levels(self, rng):
        """Full story: bit-serial messages → leaf switches → root."""
        leaves = [ColumnsortSwitch(8, 2, 8) for _ in range(2)]
        from repro.switches.perfect import PerfectConcentrator

        root = PerfectConcentrator(16, 8)
        tree = ConcentrationTree(leaves, root)
        messages: list[Message | None] = [None] * 32
        for i in range(0, 32, 8):
            messages[i] = Message.from_int(i, 6)
        outputs, lost = tree.route(messages)
        assert lost == 0
        values = sorted(m.to_int() for m in outputs if m is not None)
        assert values == [0, 8, 16, 24]

    def test_serial_sim_matches_route(self, rng):
        switch = RevsortSwitch(64, 48)
        sim = BitSerialSimulator(switch)
        messages: list[Message | None] = [None] * 64
        for i in rng.choice(64, size=25, replace=False):
            messages[int(i)] = Message.from_int(int(i), 6)
        record = sim.transit(messages)
        outputs = switch.route(messages)
        for wire, msg in record.delivered.items():
            assert outputs[wire] is msg


class TestTable1Consistency:
    def test_measures_match_switch_objects(self):
        n, m = 1 << 10, 3 << 8
        rows = table1(n, m)
        rev = rows[0]
        switch = RevsortSwitch(n, m)
        assert rev.chip_count == switch.chip_count
        assert rev.gate_delays == switch.gate_delays
        assert rev.load_ratio == switch.spec.alpha
