"""Property suites for the event-driven flow simulator.

Three invariant families:

* **flow conservation** — at every fabric cycle of every run,
  ``arrived == delivered + dropped + in_fabric + at_source`` and the
  simulator's in-fabric count matches the stage's own buffers;
* **event-time monotonicity** — the queue pops in non-decreasing time
  with stable FIFO tie-breaking, for any push schedule;
* **seed determinism** — a workload is a pure function of its spec and
  the FCT arrays are byte-identical across repeat runs and across
  ``workers`` counts.

The strategies (`workload_specs`, `fabric_topologies`) live in
:mod:`repro.verify.strategies` so downstream fabric authors inherit
the same coverage.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.flows import (
    EventQueue,
    FlowSim,
    WorkloadSpec,
    generate_flows,
    head_to_head,
)
from repro.verify import strategies as vst

#: Cap per-example simulation length: conservation holds at every
#: checkpoint whether or not the run drains, so truncation loses
#: nothing and keeps heavy-tailed examples fast.
MAX_CYCLES = 300


class TestFlowConservation:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_cells_are_conserved_every_cycle(self, data):
        spec = data.draw(vst.workload_specs(ports=(4, 16)))
        stage = data.draw(vst.fabric_topologies(n=spec.n))
        backpressure = data.draw(st.booleans())
        flows = generate_flows(spec)
        checked = 0

        def checkpoint(sim, cycle):
            nonlocal checked
            acct = sim.accounting()
            assert acct["arrived"] == (
                acct["delivered"] + acct["dropped"]
                + acct["in_fabric"] + acct["at_source"]
            ), f"cycle {cycle}: {acct}"
            assert acct["in_fabric"] == sim.stage.in_flight()
            checked += 1

        result = FlowSim(
            stage,
            flows,
            backpressure=backpressure,
            max_cycles=MAX_CYCLES,
            checkpoint=checkpoint,
        ).run()
        assert checked == result.cycles

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_resolved_flows_account_for_all_their_cells(self, data):
        spec = data.draw(vst.workload_specs(ports=(4, 16)))
        stage = data.draw(vst.fabric_topologies(n=spec.n))
        flows = generate_flows(spec)
        result = FlowSim(
            stage, flows, backpressure=False, max_cycles=MAX_CYCLES
        ).run()
        # Open loop: every offered cell resolves the cycle it is
        # offered unless the stage absorbed it.
        assert result.completed <= result.flows
        assert (
            result.delivered_cells + result.dropped_cells
            <= result.offered_cells
        )
        finished = result.fct[~np.isnan(result.fct)]
        assert (finished >= 1.0).all()


class TestEventTimeMonotonicity:
    @settings(max_examples=100)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_pops_sorted_with_fifo_ties(self, times):
        q = EventQueue()
        for payload, t in enumerate(times):
            q.push(t, "evt", payload)
        popped = [q.pop() for _ in range(len(times))]
        assert all(a.time <= b.time for a, b in zip(popped, popped[1:]))
        for a, b in zip(popped, popped[1:]):
            if a.time == b.time:
                assert a.seq < b.seq  # push order == pop order on ties
        assert q.clock.now == max(times)

    @settings(max_examples=50)
    @given(
        batches=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=1,
                max_size=5,
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_interleaved_push_pop_stays_monotone(self, batches):
        q = EventQueue()
        last = -1.0
        for batch in batches:
            for offset in batch:
                q.push(q.clock.now + offset, "evt")
            event = q.pop()
            assert event.time >= last
            last = event.time


class TestSeedDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_workload_is_a_pure_function_of_its_spec(self, seed):
        spec = WorkloadSpec(n=8, load=0.6, duration=15.0, seed=seed)
        assert generate_flows(spec) == generate_flows(spec)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_repeat_runs_are_byte_identical(self, seed):
        spec = WorkloadSpec(n=16, load=0.5, duration=12.0, seed=seed)
        first = head_to_head(spec, max_cycles=MAX_CYCLES)
        second = head_to_head(spec, max_cycles=MAX_CYCLES)
        for name in first.fabrics:
            assert (
                first.results[name].fct.tobytes()
                == second.results[name].fct.tobytes()
            )
            assert first.results[name].events == second.results[name].events

    def test_worker_count_does_not_change_a_byte(self):
        spec = WorkloadSpec(n=16, load=0.6, duration=20.0, seed=7)
        serial = head_to_head(spec, max_cycles=1000)
        threaded = head_to_head(spec, max_cycles=1000, workers=3)
        for name in serial.fabrics:
            a, b = serial.results[name], threaded.results[name]
            assert a.fct.tobytes() == b.fct.tobytes()
            assert (a.delivered_cells, a.dropped_cells, a.cycles, a.events) == (
                b.delivered_cells, b.dropped_cells, b.cycles, b.events
            )
