"""Tests for the analysis helpers (exponent fitting, tables, sweeps)."""

from __future__ import annotations

import pytest

from repro.analysis.asymptotics import fit_exponent, fit_log_slope
from repro.analysis.sweep import sweep
from repro.analysis.tables import render_table
from repro.errors import ConfigurationError


class TestFitExponent:
    def test_exact_power_law(self):
        ns = [2**k for k in range(4, 10)]
        values = [7.0 * n**1.5 for n in ns]
        assert fit_exponent(ns, values) == pytest.approx(1.5)

    def test_linear(self):
        ns = [10, 100, 1000]
        assert fit_exponent(ns, [2 * n for n in ns]) == pytest.approx(1.0)

    def test_noise_tolerance(self, rng):
        ns = [2**k for k in range(6, 14)]
        values = [n**0.75 * (1 + 0.05 * rng.standard_normal()) for n in ns]
        assert abs(fit_exponent(ns, values) - 0.75) < 0.1

    def test_rejects_short_input(self):
        with pytest.raises(ConfigurationError):
            fit_exponent([4], [2.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            fit_exponent([4, 8], [0.0, 1.0])


class TestFitLogSlope:
    def test_exact_line(self):
        ns = [2**k for k in range(4, 12)]
        values = [3.0 * k + 5.0 for k in range(4, 12)]
        a, b = fit_log_slope(ns, values)
        assert a == pytest.approx(3.0)
        assert b == pytest.approx(5.0)

    def test_rejects_mismatch(self):
        with pytest.raises(ConfigurationError):
            fit_log_slope([2, 4], [1.0])


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(
            [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in lines[4]

    def test_empty(self):
        assert "(no rows)" in render_table([], title="T")

    def test_missing_keys_blank(self):
        out = render_table([{"a": 1, "b": 2}, {"a": 3}])
        assert out.splitlines()[-1].startswith("3")


class TestSweep:
    def test_collects_rows(self):
        rows = sweep([1, 2, 3], lambda v: {"square": v * v})
        assert [r["param"] for r in rows] == [1, 2, 3]
        assert [r["square"] for r in rows] == [1, 4, 9]


class TestEndToEndExponentChecks:
    """The Table 1 Θ(n^x) claims, verified by fitting across an n
    sweep (the bench prints these; here we assert them)."""

    NS = [1 << t for t in (8, 10, 12, 14, 16)]

    def test_revsort_exponents(self):
        from repro.hardware.costs import revsort_measures

        rows = [revsort_measures(n, n // 2) for n in self.NS]
        assert abs(fit_exponent(self.NS, [r.pins_per_chip for r in rows]) - 0.5) < 0.1
        assert abs(fit_exponent(self.NS, [r.chip_count for r in rows]) - 0.5) < 0.05
        assert abs(fit_exponent(self.NS, [r.epsilon for r in rows]) - 0.75) < 0.05
        assert abs(fit_exponent(self.NS, [r.volume for r in rows]) - 1.5) < 0.1

    @pytest.mark.parametrize(
        # Use n = 2^t with β·t integral so the power-of-two shape
        # rounding does not stair-step the fit.
        "beta,eps_exp,ts",
        [
            (0.5, 1.0, (8, 10, 12, 14, 16)),
            (0.625, 0.75, (8, 16, 24, 32)),
            (0.75, 0.5, (8, 12, 16, 20, 24)),
        ],
    )
    def test_columnsort_exponents(self, beta, eps_exp, ts):
        from repro.hardware.costs import columnsort_measures

        ns = [1 << t for t in ts]
        rows = [columnsort_measures(n, n // 2, beta) for n in ns]
        assert abs(fit_exponent(ns, [r.pins_per_chip for r in rows]) - beta) < 0.05
        assert abs(fit_exponent(ns, [r.chip_count for r in rows]) - (1 - beta)) < 0.05
        assert abs(fit_exponent(ns, [r.epsilon for r in rows]) - eps_exp) < 0.1
        assert abs(fit_exponent(ns, [r.volume for r in rows]) - (1 + beta)) < 0.05

    def test_delay_slopes(self):
        from repro.hardware.costs import columnsort_measures, revsort_measures

        rev = [revsort_measures(n, n // 2).gate_delays for n in self.NS]
        a, _ = fit_log_slope(self.NS, rev)
        assert abs(a - 3.0) < 0.2

        col = [columnsort_measures(n, n // 2, 0.5).gate_delays for n in self.NS]
        a, _ = fit_log_slope(self.NS, col)
        assert abs(a - 2.0) < 0.2
