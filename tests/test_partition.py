"""Tests for the Section 1 partitioning-cost model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.partition import (
    columnsort_partition,
    monolithic_partition,
    partition_comparison,
    revsort_partition,
)


class TestMonolithic:
    def test_area_limited_regime(self):
        plan = monolithic_partition(1024, 64)
        assert plan.chips == (1024 // 64) ** 2  # (n/p)^2 = 256

    def test_wire_limited_floor(self):
        # Huge pins: at least enough chips to carry 2n wires... with
        # p >= 2n one chip suffices.
        plan = monolithic_partition(64, 256)
        assert plan.chips == 1

    def test_quadratic_growth(self):
        chips = [monolithic_partition(1 << 12, p).chips for p in (64, 128, 256)]
        assert chips[0] == 4 * chips[1] == 16 * chips[2]

    def test_rejects_tiny_budget(self):
        with pytest.raises(ConfigurationError):
            monolithic_partition(64, 2)


class TestRevsortPartition:
    def test_fixed_pin_requirement(self):
        plan = revsort_partition(1024, 128)
        assert plan is not None
        assert plan.pins_used_per_chip == 2 * 32 + 5
        assert plan.chips == 96

    def test_infeasible_when_budget_too_small(self):
        assert revsort_partition(1024, 40) is None

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            revsort_partition(1000, 100)


class TestColumnsortPartition:
    def test_uses_largest_feasible_chip(self):
        plan = columnsort_partition(1024, 128)
        assert plan is not None
        assert plan.pins_used_per_chip <= 128
        # r = 64 fits (2r = 128): s = 16, chips = 32.
        assert plan.chips == 32

    def test_infeasible_when_r_below_s(self):
        # Tiny budget forces r < s = n/r.
        assert columnsort_partition(1 << 12, 8) is None

    def test_linear_in_inverse_pins(self):
        chips = [columnsort_partition(1 << 12, p).chips for p in (256, 512, 1024)]
        assert chips[0] == 2 * chips[1] == 4 * chips[2]


class TestComparison:
    def test_paper_motivation_reproduced(self):
        """For moderate pin budgets the monolithic split needs far more
        chips than the paper's designs, and the gap widens as the pin
        budget shrinks (Ω((n/p)²) vs Θ(n/p))."""
        rows = partition_comparison(1 << 12, [144, 192, 256])
        for row in rows:
            mono = row["monolithic chips"]
            col = row["Columnsort chips"]
            assert isinstance(col, int)
            assert mono > 2 * col
        # The asymptotic gap: comparing the same relative pin budget at
        # two sizes, the monolithic/Columnsort ratio grows with n.
        small = partition_comparison(1 << 10, [128])[0]
        large = partition_comparison(1 << 14, [512])[0]
        ratio_small = small["monolithic chips"] / small["Columnsort chips"]
        ratio_large = large["monolithic chips"] / large["Columnsort chips"]
        assert ratio_large > ratio_small

    def test_revsort_appears_when_budget_sufficient(self):
        rows = partition_comparison(1 << 12, [64, 150])
        assert rows[0]["Revsort chips"] == "(needs more pins)"
        assert isinstance(rows[1]["Revsort chips"], int)
