"""Tests for the top-level package API and the documented quickstart."""

from __future__ import annotations

import numpy as np

import repro


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_docstring_quickstart(self):
        switch = repro.RevsortSwitch(n=256, m=192)
        valid = np.zeros(256, dtype=bool)
        valid[:100] = True
        routing = switch.setup(valid)
        assert routing.routed_count == 100

    def test_switch_family_specs(self):
        assert repro.Hyperconcentrator(8).spec.alpha == 1.0
        assert repro.PerfectConcentrator(8, 4).spec.alpha == 1.0
        assert repro.ColumnsortSwitch(64, 4, 128).spec.alpha < 1.0

    def test_message_round_trip_through_api(self):
        sim = repro.BitSerialSimulator(repro.Hyperconcentrator(4))
        record = sim.transit(
            [repro.Message.from_int(5, 4), None, None, repro.Message.from_int(9, 4)]
        )
        assert record.delivered[0].to_int() == 5
        assert record.delivered[1].to_int() == 9
