"""Smoke tests: every example program must run to completion.

These execute the example scripts in-process (import + ``main()``)
with stdout captured, asserting on a few landmark lines so regressions
in the public API surface immediately.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Revsort-based partial concentrator" in out
        assert "Columnsort-based partial concentrator" in out
        assert "dropped 0" in out

    def test_network_routing(self, capsys):
        out = run_example("network_routing", capsys)
        assert "loss vs offered load" in out
        assert "partial-for-perfect substitution" in out
        assert "two-level concentration tree" in out

    def test_design_explorer(self, capsys):
        out = run_example("design_explorer", capsys)
        assert "best feasible design" in out
        assert "measured worst alpha" in out

    def test_bit_serial_gates(self, capsys):
        out = run_example("bit_serial_gates", capsys)
        assert "reassembled at outputs" in out
        assert "CORRUPTED" not in out

    def test_knockout_router(self, capsys):
        out = run_example("knockout_router", capsys)
        assert "knockout loss surface" in out
        assert "partial concentrator in the knockout role" in out

    @pytest.mark.slow
    def test_reproduce_paper(self, capsys):
        out = run_example("reproduce_paper", capsys)
        assert "All reproduction checks passed." in out
        assert "FAIL" not in out

    def test_algorithm_walkthrough(self, capsys):
        out = run_example("algorithm_walkthrough", capsys)
        assert "Algorithm 1" in out and "Algorithm 2" in out
        assert "Lemma 2" in out
