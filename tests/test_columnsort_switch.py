"""Tests for the Columnsort-based multichip partial concentrator
(Section 5): behaviour, equivalence with Algorithm 2, Theorem 4's
contract, the Figure 6 instance, and the β continuum."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.concentration import validate_partial_concentration
from repro.core.nearsort import nearsortedness
from repro.errors import ConfigurationError
from repro.mesh.columnsort import columnsort_nearsort
from repro.switches.columnsort_switch import ColumnsortSwitch
from tests.conftest import random_bits


class TestConstruction:
    def test_rejects_non_divisible(self):
        with pytest.raises(ConfigurationError):
            ColumnsortSwitch(8, 3, 12)

    def test_rejects_bad_m(self):
        with pytest.raises(ConfigurationError):
            ColumnsortSwitch(8, 4, 0)
        with pytest.raises(ConfigurationError):
            ColumnsortSwitch(8, 4, 33)

    def test_from_beta(self):
        switch = ColumnsortSwitch.from_beta(4096, 0.75, 2048)
        assert switch.r == 512 and switch.s == 8
        assert switch.beta == pytest.approx(0.75)


class TestEquivalenceWithAlgorithm2:
    @pytest.mark.parametrize("r,s", [(4, 2), (8, 4), (16, 4), (32, 8)])
    def test_output_bits_match(self, rng, r, s):
        n = r * s
        switch = ColumnsortSwitch(r, s, n)
        for _ in range(30):
            valid = random_bits(rng, n)
            final = switch.final_positions(valid)
            out = np.zeros(n, dtype=np.int8)
            out[final] = valid.astype(np.int8)
            expect = columnsort_nearsort(
                valid.astype(np.int8).reshape(r, s)
            ).reshape(-1)
            assert np.array_equal(out, expect)

    def test_final_positions_is_permutation(self, rng):
        switch = ColumnsortSwitch(8, 4, 32)
        final = switch.final_positions(random_bits(rng, 32))
        assert sorted(final) == list(range(32))


class TestConcentrationContract:
    @pytest.mark.parametrize("r,s", [(16, 4), (64, 4), (64, 8)])
    def test_partial_contract_random(self, rng, r, s):
        n = r * s
        switch = ColumnsortSwitch(r, s, max(1, int(0.8 * n)))
        spec = switch.spec
        for _ in range(40):
            valid = random_bits(rng, n)
            routing = switch.setup(valid)
            validate_partial_concentration(spec, valid, routing.input_to_output)

    def test_light_load_routes_everything(self, rng):
        r, s = 64, 4
        n = r * s
        switch = ColumnsortSwitch(r, s, 200)
        cap = switch.spec.guaranteed_capacity
        assert cap == 200 - 9
        for k in (1, cap // 2, cap):
            valid = random_bits(rng, n, k)
            assert switch.setup(valid).routed_count == k

    def test_guarantee_is_sharp_at_capacity_plus_dirt(self, rng):
        """Past αm the switch may (and eventually does) drop messages —
        the partial-concentrator contract only promises αm paths."""
        r, s = 16, 4
        n = r * s
        m = 16
        switch = ColumnsortSwitch(r, s, m)
        cap = switch.spec.guaranteed_capacity  # m − (s−1)² = 7
        dropped_seen = False
        for _ in range(300):
            valid = random_bits(rng, n, m)  # overload beyond cap
            routing = switch.setup(valid)
            assert routing.routed_count >= cap
            if routing.routed_count < m:
                dropped_seen = True
        assert dropped_seen, "overload never caused a drop; ε bound suspiciously slack"

    def test_measured_epsilon_within_bound(self, rng):
        r, s = 32, 8
        n = r * s
        switch = ColumnsortSwitch(r, s, n)
        worst = 0
        for _ in range(60):
            valid = random_bits(rng, n)
            final = switch.final_positions(valid)
            out = np.zeros(n, dtype=np.int8)
            out[final] = valid
            worst = max(worst, nearsortedness(out))
        assert worst <= switch.epsilon_bound


class TestFigure6Instance:
    """The paper's Figure 6: n = 32, m = 18, r = 8, s = 4, 14 valid."""

    def test_dimensions(self):
        switch = ColumnsortSwitch(8, 4, 18)
        assert switch.n == 32
        assert switch.chip_count == 8  # 2 stages of 4 chips
        assert switch.data_pins_per_chip == 16  # 2r

    def test_output_wires_per_chip(self):
        """m = 18 = first five output wires of chips H2,0 and H2,1 plus
        first four of H2,2 and H2,3."""
        per_chip = [0] * 4
        for w in range(18):
            per_chip[w % 4] += 1
        assert per_chip == [5, 5, 4, 4]

    def test_14_messages_routed(self, rng):
        """Figure 6 shows 14 valid messages all routed to 18 outputs;
        14 ≤ m − ε = 18 − 9 = 9 fails, so this is NOT guaranteed — but
        the figure's point is a concrete routable instance.  Verify the
        guarantee level and that typical instances route ≥ αm."""
        switch = ColumnsortSwitch(8, 4, 18)
        cap = switch.spec.guaranteed_capacity
        assert cap == 9
        fully_routed = 0
        for _ in range(100):
            valid = random_bits(rng, 32, 14)
            routed = switch.setup(valid).routed_count
            assert routed >= min(14, cap)
            if routed == 14:
                fully_routed += 1
        # The overwhelming majority of 14-message instances route fully
        # (the figure draws one of them).
        assert fully_routed >= 60


class TestBetaContinuum:
    """Table 1's tradeoff: increasing β raises pins and volume but
    improves the load ratio and lowers the chip count."""

    def test_monotone_tradeoffs(self):
        n, m = 1 << 14, 3 << 12  # n=16384, m=12288
        betas = (0.5, 0.625, 0.75, 0.875, 1.0)
        switches = [ColumnsortSwitch.from_beta(n, b, m) for b in betas]
        pins = [sw.data_pins_per_chip for sw in switches]
        chips = [sw.chip_count for sw in switches]
        eps = [sw.epsilon_bound for sw in switches]
        assert pins == sorted(pins)
        assert chips == sorted(chips, reverse=True)
        assert eps == sorted(eps, reverse=True)

    def test_beta_one_is_single_stage_pair(self):
        switch = ColumnsortSwitch.from_beta(256, 1.0, 128)
        assert switch.s == 1
        assert switch.epsilon_bound == 0  # a perfect concentrator
        assert switch.spec.alpha == 1.0

    def test_beta_one_acts_perfectly(self, rng):
        switch = ColumnsortSwitch.from_beta(64, 1.0, 32)
        for _ in range(30):
            valid = random_bits(rng, 64, 32)
            assert switch.setup(valid).routed_count == 32


class TestResourceModel:
    def test_gate_delays_scale(self):
        """Delay = 2·(2 lg r + pads) = 4β lg n + O(1)."""
        switch = ColumnsortSwitch(512, 8, 2048)  # n=4096, β=0.75
        assert switch.gate_delays == 2 * (2 * 9 + 2)

    def test_interstack_connectors(self):
        assert ColumnsortSwitch(8, 4, 18).interstack_connectors == 16

    def test_stage_reports(self):
        reports = ColumnsortSwitch(8, 4, 18).stage_reports()
        assert len(reports) == 2
        assert all(r.chip_count == 4 for r in reports)
