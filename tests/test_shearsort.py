"""Tests for Shearsort (the Section 6 finishing stage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mesh.analysis import count_dirty_rows, is_row_major_sorted
from repro.mesh.shearsort import shearsort, shearsort_iteration


def random_01(rng, r, c):
    return (rng.random((r, c)) < rng.random()).astype(np.int8)


class TestShearsortIteration:
    def test_count_preserved(self, rng):
        m = random_01(rng, 8, 8)
        assert shearsort_iteration(m).sum() == m.sum()

    def test_halves_dirty_rows(self, rng):
        """For a matrix already in shearsort form (one iteration done),
        each further iteration at least halves the dirty rows — the
        classical halving argument, checked empirically."""
        for _ in range(40):
            m = shearsort_iteration(random_01(rng, 16, 16))
            before = count_dirty_rows(m)
            after = count_dirty_rows(shearsort_iteration(m))
            assert after <= max(1, -(-before // 2))

    def test_three_iterations_clean_eight_dirty_rows(self, rng):
        """Section 6: three iterations finish a matrix with ≤8 dirty
        rows (modulo the final row-direction fixup)."""
        side = 16
        for _ in range(40):
            # Construct: clean 1-rows, 8 random rows, clean 0-rows.
            ones = int(rng.integers(0, side - 8))
            m = np.zeros((side, side), dtype=np.int8)
            m[:ones] = 1
            m[ones:ones + 8] = (rng.random((8, side)) < rng.random()).astype(np.int8)
            out = m
            for _ in range(3):
                out = shearsort_iteration(out)
            assert count_dirty_rows(out) <= 1

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            shearsort_iteration(np.array([1, 0]))


class TestShearsort:
    @pytest.mark.parametrize("shape", [(4, 4), (8, 8), (16, 16), (8, 4), (5, 7)])
    def test_fully_sorts(self, rng, shape):
        for _ in range(30):
            out = shearsort(random_01(rng, *shape))
            assert is_row_major_sorted(out)

    def test_single_row(self, rng):
        out = shearsort(random_01(rng, 1, 8))
        assert is_row_major_sorted(out)

    def test_single_column(self, rng):
        out = shearsort(random_01(rng, 8, 1))
        assert is_row_major_sorted(out)

    def test_count_preserved(self, rng):
        m = random_01(rng, 8, 8)
        assert shearsort(m).sum() == m.sum()
