"""Tests for the 0/1 mesh sorting primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mesh.grid import (
    column_counts,
    is_sorted_columns,
    is_sorted_rows,
    row_counts,
    sort_columns,
    sort_rows,
    sort_rows_snake,
)

matrices = st.integers(min_value=1, max_value=8).flatmap(
    lambda r: st.integers(min_value=1, max_value=8).flatmap(
        lambda c: st.lists(
            st.lists(st.integers(min_value=0, max_value=1), min_size=c, max_size=c),
            min_size=r,
            max_size=r,
        )
    )
)


class TestSortColumns:
    def test_ones_rise_to_top(self):
        m = np.array([[0, 1], [1, 0], [0, 1]])
        out = sort_columns(m)
        assert np.array_equal(out, np.array([[1, 1], [0, 1], [0, 0]]))

    @given(matrices)
    def test_nonincreasing_and_counts_preserved(self, rows):
        m = np.array(rows)
        out = sort_columns(m)
        assert is_sorted_columns(out)
        assert np.array_equal(column_counts(out), column_counts(m))

    def test_idempotent(self, rng):
        m = (rng.random((6, 5)) < 0.5).astype(np.int8)
        once = sort_columns(m)
        assert np.array_equal(sort_columns(once), once)

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            sort_columns(np.array([1, 0, 1]))


class TestSortRows:
    def test_ones_move_left(self):
        m = np.array([[0, 1, 1], [1, 0, 0]])
        out = sort_rows(m)
        assert np.array_equal(out, np.array([[1, 1, 0], [1, 0, 0]]))

    @given(matrices)
    def test_nonincreasing_and_counts_preserved(self, rows):
        m = np.array(rows)
        out = sort_rows(m)
        assert is_sorted_rows(out)
        assert np.array_equal(row_counts(out), row_counts(m))


class TestSortRowsSnake:
    def test_alternating_directions(self):
        m = np.array([[0, 1, 0, 1], [0, 1, 0, 1], [1, 1, 0, 0]])
        out = sort_rows_snake(m)
        assert np.array_equal(out[0], [1, 1, 0, 0])  # even: nonincreasing
        assert np.array_equal(out[1], [0, 0, 1, 1])  # odd: nondecreasing
        assert np.array_equal(out[2], [1, 1, 0, 0])

    @given(matrices)
    def test_counts_preserved(self, rows):
        m = np.array(rows)
        assert np.array_equal(row_counts(sort_rows_snake(m)), row_counts(m))

    def test_input_not_mutated(self):
        m = np.array([[0, 1], [1, 0]])
        copy = m.copy()
        sort_rows_snake(m)
        assert np.array_equal(m, copy)


class TestPredicates:
    def test_single_row_and_column(self):
        assert is_sorted_columns(np.array([[1, 0, 1]]))
        assert is_sorted_rows(np.array([[1], [0], [1]]))

    def test_detects_unsorted(self):
        assert not is_sorted_columns(np.array([[0], [1]]))
        assert not is_sorted_rows(np.array([[0, 1]]))
