"""Tests for the gate-level butterfly datapath."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gates.butterfly_gates import (
    build_butterfly_datapath,
    datapath_delay,
    stream_bit,
)
from repro.switches.prefix_butterfly import PrefixButterflyHyperconcentrator
from tests.conftest import random_bits


class TestDatapath:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_streams_match_functional_routing(self, rng, n):
        """Latch the functional model's switch settings into the gate
        datapath and verify a streamed bit lands exactly where the
        routing says it should."""
        circuit = build_butterfly_datapath(n)
        switch = PrefixButterflyHyperconcentrator(n)
        for _ in range(25):
            valid = random_bits(rng, n)
            routing = switch.setup(valid)
            settings = switch.switch_settings()
            data = random_bits(rng, n) & valid  # payload on valid wires
            out = stream_bit(circuit, n, data, settings)
            for i in np.flatnonzero(valid):
                target = routing.input_to_output[i]
                assert out[target] == data[i], (n, i)

    def test_identity_settings_pass_through(self):
        n = 8
        circuit = build_butterfly_datapath(n)
        settings = [np.zeros(n // 2, dtype=bool) for _ in range(3)]
        data = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=bool)
        out = stream_bit(circuit, n, data, settings)
        assert np.array_equal(out, data)

    def test_single_stage_cross(self):
        n = 2
        circuit = build_butterfly_datapath(n)
        out = stream_bit(
            circuit, n, np.array([True, False]), [np.array([True])]
        )
        assert list(out) == [False, True]  # crossed

    def test_delay_is_two_gates_per_stage(self):
        """Streaming delay = 2 lg n — the same constant as the paper's
        combinational chip, with the control latched instead."""
        for n in (4, 8, 16, 32):
            circuit = build_butterfly_datapath(n)
            assert datapath_delay(circuit, n) == 2 * int(math.log2(n))

    def test_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            build_butterfly_datapath(1)

    def test_rejects_wrong_setting_count(self):
        circuit = build_butterfly_datapath(4)
        with pytest.raises(ConfigurationError):
            stream_bit(circuit, 4, np.zeros(4, dtype=bool), [np.zeros(2, dtype=bool)])
