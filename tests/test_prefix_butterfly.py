"""Tests for the Section 1 prefix + butterfly hyperconcentrator."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.concentration import validate_hyperconcentration
from repro.errors import ConfigurationError, RoutingError
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.prefix_butterfly import (
    PrefixButterflyHyperconcentrator,
    butterfly_route,
    prefix_ranks,
)
from tests.conftest import random_bits


class TestPrefixRanks:
    def test_basic(self):
        valid = np.array([1, 0, 1, 1, 0], dtype=bool)
        assert list(prefix_ranks(valid)) == [1, 0, 2, 3, 0]

    def test_all_invalid(self):
        assert list(prefix_ranks(np.zeros(4, dtype=bool))) == [0, 0, 0, 0]

    def test_all_valid(self):
        assert list(prefix_ranks(np.ones(4, dtype=bool))) == [1, 2, 3, 4]


class TestButterflyRoute:
    def test_identity_routing(self):
        final, settings = butterfly_route(np.arange(8))
        assert list(final) == list(range(8))
        assert len(settings) == 3

    def test_concentration_patterns_conflict_free_exhaustive(self):
        """Every monotone concentration pattern routes without conflicts
        (the reverse-banyan concentrator property), n = 8 exhaustive."""
        n = 8
        for bits in itertools.product([0, 1], repeat=n):
            valid = np.array(bits, dtype=bool)
            ranks = prefix_ranks(valid)
            dest = np.where(valid, ranks - 1, -1)
            final, _ = butterfly_route(dest)
            assert np.array_equal(final[valid], dest[valid])

    def test_reports_conflicts_on_bad_pattern(self):
        # Two packets to the same destination must conflict eventually.
        with pytest.raises(RoutingError):
            butterfly_route(np.array([3, 3, -1, -1]))

    def test_nonmonotone_pattern_may_conflict(self):
        # The reversal permutation 0..n-1 -> n-1..0 is routable on a
        # butterfly, but crossing patterns like (1,0,3,2...) with
        # shared intermediate ports are not guaranteed; we only require
        # that *concentration* patterns never conflict, so just check
        # that arbitrary permutations either route correctly or raise.
        rng = np.random.default_rng(0)
        for _ in range(50):
            perm = rng.permutation(8)
            try:
                final, _ = butterfly_route(perm)
            except RoutingError:
                continue
            assert np.array_equal(final, perm)


class TestPrefixButterflySwitch:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_exhaustive_contract(self, n):
        switch = PrefixButterflyHyperconcentrator(n)
        for bits in itertools.product([False, True], repeat=n):
            valid = np.array(bits, dtype=bool)
            routing = switch.setup(valid)
            validate_hyperconcentration(n, valid, routing.input_to_output)

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_random_matches_crossbar_model(self, rng, n):
        """Both chip technologies implement the same function."""
        butterfly = PrefixButterflyHyperconcentrator(n)
        crossbar = Hyperconcentrator(n)
        for _ in range(30):
            valid = random_bits(rng, n)
            assert np.array_equal(
                butterfly.setup(valid).input_to_output,
                crossbar.setup(valid).input_to_output,
            )

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigurationError):
            PrefixButterflyHyperconcentrator(6)

    def test_switch_settings_shape(self, rng):
        switch = PrefixButterflyHyperconcentrator(16)
        switch.setup(random_bits(rng, 16))
        settings = switch.switch_settings()
        assert len(settings) == 4  # lg 16 stages
        assert all(s.size == 8 for s in settings)  # n/2 switches each

    def test_settings_require_setup(self):
        with pytest.raises(RoutingError):
            PrefixButterflyHyperconcentrator(8).switch_settings()

    def test_cost_profile_vs_crossbar(self):
        """Section 1's tradeoff: few pins and O(n lg n) chips for the
        butterfly vs 2n pins and one Θ(n²) chip for the crossbar —
        and only the crossbar is combinational."""
        n = 1024
        butterfly = PrefixButterflyHyperconcentrator(n)
        crossbar = Hyperconcentrator(n)
        assert butterfly.data_pins_per_chip == 4
        assert crossbar.data_pins == 2 * n
        assert butterfly.chip_count == (n // 2) * 10 + n
        assert not butterfly.is_combinational
        assert butterfly.control_bits == (n // 2) * 10

    def test_volume_model(self):
        assert PrefixButterflyHyperconcentrator(256).volume == 256 * 16
