"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro._util.rng import default_rng

# One moderate profile for CI-style runs: deterministic, bounded time.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG, fresh per test."""
    return default_rng(0xC0FFEE)


def random_bits(rng: np.random.Generator, n: int, k: int | None = None) -> np.ndarray:
    """Random valid-bit vector; exactly k ones when k is given."""
    out = np.zeros(n, dtype=bool)
    if k is None:
        out[:] = rng.random(n) < rng.random()
    elif k > 0:
        out[rng.choice(n, size=k, replace=False)] = True
    return out
