"""Every registered design must pass the full public contract checker
— the same gate a downstream implementation would face."""

from __future__ import annotations

import pytest

from repro.switches.registry import available, build_switch
from repro.testing import check_concentrator

PARAMS = {"n": 64, "m": 48, "r": 0, "s": 0, "beta": 0.75}


@pytest.mark.parametrize("name", available())
def test_registered_design_passes_contract_checker(name):
    switch = build_switch(name, **PARAMS)
    report = check_concentrator(switch, trials=40, seed=0xBEEF)
    assert report.ok, f"{name}: {report.failures}"
    if report.epsilon_bound is not None:
        assert report.worst_epsilon <= report.epsilon_bound


def test_checker_reports_are_informative():
    report = check_concentrator(
        build_switch("columnsort", **PARAMS), trials=20, seed=1
    )
    assert "ColumnsortSwitch" in report.switch
    assert report.trials == 20
