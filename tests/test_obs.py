"""Tests for the repro.obs observability layer.

Covers the registry primitives (counters/gauges/histograms), span
nesting, the zero-cost no-op guarantee (instrumented code produces
byte-identical simulation results with obs disabled), JSON export
round-trips, run-metadata records, and the metric-name catalog.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.messages.congestion import BufferPolicy, DropPolicy, ResendPolicy
from repro.network.simulate import SwitchSimulation
from repro.network.traffic import BernoulliTraffic
from repro.switches.revsort_switch import RevsortSwitch


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with the null registry installed."""
    obs.uninstall()
    yield
    obs.uninstall()


def _run_simulation(policy=None, rounds=12, seed=7):
    switch = RevsortSwitch(64, 48)
    traffic = BernoulliTraffic(64, p=0.9, seed=seed)
    return SwitchSimulation(
        switch, traffic, policy if policy is not None else DropPolicy(), seed=seed
    ).run(rounds)


class TestCounters:
    def test_inc_accumulates(self):
        reg = obs.Registry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.counter("x").value == 5

    def test_counter_cannot_decrease(self):
        with pytest.raises(ValueError):
            obs.Registry().counter("x").inc(-1)

    def test_labels_split_series(self):
        reg = obs.Registry()
        reg.counter("hits", switch="A").inc()
        reg.counter("hits", switch="B").inc(2)
        snap = reg.snapshot()["counters"]
        assert snap == {"hits{switch=A}": 1, "hits{switch=B}": 2}

    def test_metric_key_sorts_labels(self):
        assert obs.metric_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        assert obs.metric_key("m", {}) == "m"


class TestGauges:
    def test_set_inc_dec(self):
        reg = obs.Registry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert reg.snapshot()["gauges"]["depth"] == 12


class TestHistograms:
    def test_summary_stats(self):
        reg = obs.Registry()
        h = reg.histogram("t")
        for v in (1, 2, 4, 8):
            h.observe(v)
        d = reg.snapshot()["histograms"]["t"]
        assert d["count"] == 4
        assert d["sum"] == 15
        assert d["min"] == 1 and d["max"] == 8
        assert d["mean"] == pytest.approx(3.75)

    def test_magnitude_buckets(self):
        assert obs.bucket_key(0) == "0"
        assert obs.bucket_key(1) == "2^0"
        assert obs.bucket_key(3) == "2^1"
        assert obs.bucket_key(1024) == "2^10"
        assert obs.bucket_key(0.25) == "2^-2"
        assert obs.bucket_key(-1) == "neg"

    def test_bucket_census(self):
        reg = obs.Registry()
        h = reg.histogram("t")
        for v in (1, 1.5, 3, 0):
            h.observe(v)
        assert h.buckets == {"2^0": 2, "2^1": 1, "0": 1}

    def test_empty_histogram_exports_none_bounds(self):
        d = obs.Registry().histogram("t").as_dict()
        assert d["min"] is None and d["max"] is None and d["count"] == 0


class TestSpans:
    def test_nesting_records_paths(self):
        reg = obs.Registry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
            with reg.span("inner"):
                pass
        events = reg.tracer.events
        assert [e.path for e in events] == ["outer/inner", "outer/inner", "outer"]
        assert [e.depth for e in events] == [1, 1, 0]
        assert all(e.duration_s >= 0 for e in events)

    def test_span_feeds_seconds_histogram(self):
        reg = obs.Registry()
        with reg.span("work", step=3):
            pass
        hist = reg.snapshot()["histograms"]["work.seconds"]
        assert hist["count"] == 1
        assert reg.tracer.events[0].meta == {"step": 3}

    def test_trace_buffer_is_bounded(self):
        reg = obs.Registry(max_trace_events=2)
        for _ in range(5):
            with reg.span("s"):
                pass
        assert len(reg.tracer.events) == 2
        assert reg.tracer.dropped == 3
        # aggregate stats keep counting past the buffer cap
        assert reg.snapshot()["histograms"]["s.seconds"]["count"] == 5

    def test_stack_unwinds_on_exception(self):
        reg = obs.Registry()
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                raise RuntimeError("boom")
        assert reg.tracer.active_depth == 0
        assert reg.tracer.events[0].name == "outer"


class FakeClock:
    """A manually advanced clock for sleep-free timing assertions."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TestClockInjection:
    """Span timing with an injected clock — no real sleeps anywhere."""

    def test_span_duration_is_clock_delta(self):
        clock = FakeClock()
        tracer = obs.Tracer(clock=clock)
        with tracer.span("work"):
            clock.tick(2.5)
        event = tracer.events[0]
        assert event.start == 100.0
        assert event.duration_s == pytest.approx(2.5)

    def test_nested_spans_time_their_own_regions(self):
        clock = FakeClock()
        tracer = obs.Tracer(clock=clock)
        with tracer.span("outer"):
            clock.tick(1.0)
            with tracer.span("inner"):
                clock.tick(3.0)
            clock.tick(1.0)
        by_name = {e.name: e for e in tracer.events}
        assert by_name["inner"].duration_s == pytest.approx(3.0)
        assert by_name["outer"].duration_s == pytest.approx(5.0)
        # the child's interval is contained in the parent's — the
        # invariant Chrome-trace nesting relies on
        inner, outer = by_name["inner"], by_name["outer"]
        assert outer.start <= inner.start
        assert (inner.start + inner.duration_s
                <= outer.start + outer.duration_s)

    def test_sequential_spans_are_monotonic(self):
        clock = FakeClock()
        tracer = obs.Tracer(clock=clock)
        for _ in range(4):
            with tracer.span("step"):
                clock.tick(0.5)
        starts = [e.start for e in tracer.events]
        assert starts == sorted(starts)
        ends = [e.start + e.duration_s for e in tracer.events]
        for end, next_start in zip(ends, starts[1:]):
            assert next_start >= end

    def test_registry_histogram_uses_injected_clock(self):
        clock = FakeClock()
        reg = obs.Registry(clock=clock)
        with reg.span("work"):
            clock.tick(4.0)
        hist = reg.snapshot()["histograms"]["work.seconds"]
        assert hist["sum"] == pytest.approx(4.0)
        assert reg.tracer.events[0].duration_s == pytest.approx(4.0)

    def test_zero_elapsed_clock_gives_zero_duration(self):
        tracer = obs.Tracer(clock=FakeClock())
        with tracer.span("instant"):
            pass
        assert tracer.events[0].duration_s == 0.0


class TestInstallation:
    def test_null_by_default(self):
        assert not obs.enabled()
        assert obs.get_registry() is obs.NULL_REGISTRY

    def test_collecting_restores_previous(self):
        with obs.collecting() as reg:
            assert obs.get_registry() is reg
            assert obs.enabled()
        assert obs.get_registry() is obs.NULL_REGISTRY

    def test_collecting_nests(self):
        with obs.collecting() as outer:
            with obs.collecting() as inner:
                obs.counter("x").inc()
                assert obs.get_registry() is inner
            assert obs.get_registry() is outer
        assert inner.snapshot()["counters"] == {"x": 1}
        assert outer.snapshot()["counters"] == {}

    def test_install_returns_previous(self):
        reg = obs.Registry()
        prev = obs.install(reg)
        assert prev is obs.NULL_REGISTRY
        assert obs.uninstall() is reg

    def test_null_registry_is_inert(self):
        obs.counter("x").inc(100)
        obs.gauge("g").set(5)
        obs.histogram("h").observe(1.0)
        with obs.span("s"):
            pass
        assert obs.NULL_REGISTRY.snapshot()["counters"] == {}


class TestNoOpParity:
    """Obs disabled vs enabled must not change simulation results."""

    @pytest.mark.parametrize("policy_cls", [DropPolicy, BufferPolicy, ResendPolicy])
    def test_switch_simulation_identical(self, policy_cls):
        plain = _run_simulation(policy_cls())
        with obs.collecting():
            instrumented = _run_simulation(policy_cls())
        assert plain == instrumented

    def test_event_sim_identical(self):
        from repro.gates.event_sim import EventSimulator
        from repro.gates.hyperconc_gates import build_hyperconcentrator

        circuit = build_hyperconcentrator(8, with_datapath=False)
        rng = np.random.default_rng(3)
        old = rng.random(8) < 0.5
        new = rng.random(8) < 0.5
        r1 = EventSimulator(circuit).transition(old, new)
        with obs.collecting():
            r2 = EventSimulator(circuit).transition(old, new)
        assert r1.settle_time == r2.settle_time
        assert np.array_equal(r1.final_values, r2.final_values)
        assert np.array_equal(r1.transitions_per_wire, r2.transitions_per_wire)

    def test_instrumentation_consumes_no_rng(self):
        # Two identically seeded runs, one instrumented, must drive the
        # backlog shuffle RNG identically.
        p1 = BufferPolicy(capacity=4)
        s1 = _run_simulation(p1, rounds=20)
        with obs.collecting():
            p2 = BufferPolicy(capacity=4)
            s2 = _run_simulation(p2, rounds=20)
        assert s1.per_round == s2.per_round
        assert p1.depth_history == p2.depth_history


class TestSimulationMetrics:
    def test_counters_match_summary(self):
        with obs.collecting() as reg:
            summary = _run_simulation(BufferPolicy(capacity=3), rounds=15)
        counters = reg.snapshot()["counters"]
        assert counters["sim.rounds"] == summary.rounds
        assert counters["sim.offered"] == summary.offered
        assert counters["sim.delivered"] == summary.delivered
        assert counters["sim.lost"] == summary.lost
        assert counters["sim.retried"] == summary.retried

    def test_round_spans_nested_under_run(self):
        with obs.collecting() as reg:
            _run_simulation(rounds=5)
        paths = [e.path for e in reg.tracer.events]
        assert paths.count("sim.run/sim.round") == 5
        assert paths[-1] == "sim.run"
        hist = reg.snapshot()["histograms"]
        assert hist["sim.round.seconds"]["count"] == 5
        assert hist["sim.run.seconds"]["count"] == 1

    def test_congestion_counters_labelled_by_policy(self):
        with obs.collecting() as reg:
            _run_simulation(ResendPolicy(ack_timeout=1, max_retries=1), rounds=15)
        counters = reg.snapshot()["counters"]
        assert counters.get("congestion.retried{policy=ResendPolicy}", 0) > 0

    def test_knockout_counters_match_stats(self):
        from repro.network.knockout import KnockoutSwitch, uniform_packet_traffic

        with obs.collecting() as reg:
            switch = KnockoutSwitch(8, 2, buffer_depth=2)
            for packets in uniform_packet_traffic(8, 0.9, 40, seed=5):
                switch.step(packets)
        counters = reg.snapshot()["counters"]
        assert counters["knockout.offered"] == switch.stats.offered
        assert counters["knockout.knocked_out"] == switch.stats.knocked_out
        assert counters["knockout.buffer_overflow"] == switch.stats.buffer_overflow
        assert counters["knockout.delivered"] == switch.stats.delivered

    def test_serial_transit_metrics(self):
        from repro.messages.message import Message
        from repro.messages.serial_sim import BitSerialSimulator

        switch = RevsortSwitch(16, 12)
        messages = [Message.from_int(i, 8) if i < 6 else None for i in range(16)]
        with obs.collecting() as reg:
            record = BitSerialSimulator(switch).transit(messages)
        snap = reg.snapshot()
        assert snap["counters"]["serial.transits"] == 1
        assert snap["counters"]["serial.cycles"] == record.cycles == 9
        assert snap["histograms"]["serial.transit_cycles"]["count"] == 1
        assert snap["histograms"]["serial.transit.seconds"]["count"] == 1


class TestSummaryConsistency:
    """The satellite fix: legacy summary and per-round records agree."""

    @pytest.mark.parametrize(
        "policy_cls,kwargs",
        [
            (DropPolicy, {}),
            (BufferPolicy, {"capacity": 3}),
            (ResendPolicy, {"ack_timeout": 1, "max_retries": 2}),
        ],
    )
    def test_per_round_totals_match(self, policy_cls, kwargs):
        policy = policy_cls(**kwargs)
        summary = _run_simulation(policy, rounds=25)
        assert summary.lost == sum(r.lost for r in summary.per_round)
        assert summary.retried == sum(r.retried for r in summary.per_round)
        assert summary.lost == policy.stats.dropped
        for r in summary.per_round:
            assert r.unrouted == r.lost + r.retried

    def test_drop_policy_loses_every_unrouted(self):
        summary = _run_simulation(DropPolicy(), rounds=10)
        assert summary.retried == 0
        assert summary.lost == sum(r.unrouted for r in summary.per_round)


class TestExport:
    def _collected(self):
        with obs.collecting() as reg:
            _run_simulation(rounds=4)
        return reg

    def test_json_round_trip(self, tmp_path):
        reg = self._collected()
        snapshot = reg.snapshot()
        path = obs.write_metrics_json(snapshot, tmp_path / "metrics.json")
        back = obs.read_metrics_json(path)
        assert back == json.loads(json.dumps(snapshot))

    def test_rejects_foreign_json(self, tmp_path):
        from repro.errors import ConfigurationError

        target = tmp_path / "x.json"
        target.write_text("{}")
        with pytest.raises(ConfigurationError):
            obs.read_metrics_json(target)

    def test_markdown_render(self):
        reg = self._collected()
        md = obs.metrics_markdown(reg.snapshot())
        assert "`sim.delivered`" in md
        assert "**Histograms**" in md
        assert "**Slowest spans**" in md

    def test_markdown_empty_snapshot(self):
        assert "no metrics" in obs.metrics_markdown(obs.NULL_REGISTRY.snapshot())

    def test_report_builder_integration(self):
        from repro.analysis.reporting import ReportBuilder

        reg = self._collected()
        builder = ReportBuilder(title="t")
        builder.add_metrics("Metrics", reg.snapshot(), note="collected by obs")
        text = builder.render()
        assert "## Metrics" in text
        assert "`sim.rounds`" in text
        assert "collected by obs" in text


class TestRunMetadata:
    def test_record_shape(self):
        with obs.collecting() as reg:
            _run_simulation(rounds=3)
        record = obs.run_metadata(
            run_id="tests::demo", seed=7, wall_s=0.5, registry=reg
        )
        assert record["run_id"] == "tests::demo"
        assert record["seed"] == 7
        assert record["wall_s"] == 0.5
        assert record["metrics"]["counters"]["sim.rounds"] == 3
        assert isinstance(record["metrics"]["span_events"], int)
        assert "spans" not in record["metrics"]
        json.dumps(record)  # must be JSON-serialisable

    def test_git_sha_in_repo(self):
        sha = obs.git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_git_dirty_flag(self):
        dirty = obs.git_dirty()
        assert dirty is None or isinstance(dirty, bool)
        # sha and dirty come from the same checkout: both known or both not
        assert (obs.git_sha() is None) == (dirty is None)

    def test_environment_block(self):
        import platform

        env = obs.environment()
        assert set(env) == {
            "git_sha", "git_dirty", "python", "numpy", "platform", "cpu_count",
        }
        assert env["python"] == platform.python_version()
        assert env["numpy"] == np.__version__
        assert env["cpu_count"] == os.cpu_count()
        json.dumps(env)

    def test_record_carries_environment(self):
        record = obs.run_metadata(run_id="tests::env", seed=None, wall_s=0.1)
        assert record["version"] == 3
        assert record["numpy"] == np.__version__
        assert "git_dirty" in record
        assert record["git_sha"] == obs.git_sha()


class TestCatalog:
    def test_emitted_metrics_are_cataloged(self):
        """Every metric the instrumented stack emits appears in the
        catalog (guards against namespace drift)."""
        from repro.network.knockout import knockout_loss_curve

        with obs.collecting() as reg:
            _run_simulation(BufferPolicy(capacity=2), rounds=6)
            knockout_loss_curve(8, loads=[0.9], l_values=[2], slots=10, seed=1)
        snapshot = reg.snapshot()
        known = set(obs.metric_names())
        emitted = list(snapshot["counters"]) + list(snapshot["histograms"])
        for key in emitted:
            base = key.split("{")[0]
            if base.endswith(".seconds"):
                base = base[: -len(".seconds")]
            assert base in known, f"{key} missing from repro.obs.catalog"

    def test_catalog_rows_renderable(self):
        rows = obs.catalog_rows()
        assert {"metric", "kind", "labels", "description"} == set(rows[0])
        assert len(rows) > 20
