"""Tests for the multi-level concentration funnel."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.funnel import FunnelNetwork
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.perfect import PerfectConcentrator
from repro.switches.revsort_switch import RevsortSwitch


def messages_at(n: int, positions: list[int]) -> list[Message | None]:
    out: list[Message | None] = [None] * n
    for pos in positions:
        out[pos] = Message.from_int(pos % 256, 8)
    return out


class TestConstruction:
    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            FunnelNetwork(
                [[PerfectConcentrator(8, 4)], [PerfectConcentrator(8, 4)]]
            )

    def test_empty_level_rejected(self):
        with pytest.raises(ConfigurationError):
            FunnelNetwork([[]])

    def test_regular_builder(self):
        funnel = FunnelNetwork.regular(
            leaf_factory=lambda: PerfectConcentrator(16, 8),
            merge_factory=lambda n: PerfectConcentrator(n, n // 2),
            leaf_count=4,
            fan_in=2,
            depth=3,
        )
        assert funnel.n == 64
        assert len(funnel.levels) == 3
        assert [len(level) for level in funnel.levels] == [4, 2, 1]
        assert funnel.m == funnel.levels[-1][0].m

    def test_regular_divisibility_check(self):
        with pytest.raises(ConfigurationError):
            FunnelNetwork.regular(
                leaf_factory=lambda: PerfectConcentrator(4, 2),
                merge_factory=lambda n: PerfectConcentrator(n, n // 2),
                leaf_count=3,
                fan_in=2,
                depth=2,
            )


class TestRouting:
    def _funnel(self) -> FunnelNetwork:
        return FunnelNetwork.regular(
            leaf_factory=lambda: PerfectConcentrator(16, 8),
            merge_factory=lambda n: PerfectConcentrator(n, n // 2),
            leaf_count=4,
            fan_in=2,
            depth=3,
        )

    def test_light_load_lossless(self):
        funnel = self._funnel()
        messages = messages_at(64, [0, 5, 17, 33, 49])
        outputs, stats = funnel.route(messages)
        assert sum(1 for m in outputs if m is not None) == 5
        assert all(s.lost == 0 for s in stats)

    def test_per_level_stats(self):
        funnel = self._funnel()
        messages = messages_at(64, list(range(20)))  # 16 on leaf 0, 4 on leaf 1
        outputs, stats = funnel.route(messages)
        assert [s.level for s in stats] == [0, 1, 2]
        assert stats[0].offered == 20
        # Leaf 0 caps its 16 at m=8; leaf 1 passes its 4.
        assert stats[0].delivered == 12

    def test_overload_saturates_at_root(self):
        funnel = self._funnel()
        messages = messages_at(64, list(range(64)))
        outputs, stats = funnel.route(messages)
        assert sum(1 for m in outputs if m is not None) == funnel.m

    def test_message_identity_preserved(self):
        funnel = self._funnel()
        messages = messages_at(64, [3, 20, 40, 60])
        outputs, _ = funnel.route(messages)
        got = sorted(m.to_int() for m in outputs if m is not None)
        assert got == [3, 20, 40, 60]

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigurationError):
            self._funnel().route([None] * 10)


class TestMixedSwitchFunnel:
    def test_multichip_switches_in_levels(self):
        """Paper switches as both leaves and merge stages."""
        funnel = FunnelNetwork.regular(
            leaf_factory=lambda: RevsortSwitch(64, 32),
            merge_factory=lambda n: ColumnsortSwitch(n // 4, 4, n // 2),
            leaf_count=2,
            fan_in=2,
            depth=2,
        )
        assert funnel.n == 128
        messages = messages_at(128, list(range(0, 128, 8)))  # 16 messages
        outputs, stats = funnel.route(messages)
        assert sum(1 for m in outputs if m is not None) == 16
        assert all(s.lost == 0 for s in stats)

    def test_gate_delays_sum_over_levels(self):
        funnel = FunnelNetwork.regular(
            leaf_factory=lambda: RevsortSwitch(64, 32),
            merge_factory=lambda n: ColumnsortSwitch(n // 4, 4, n // 2),
            leaf_count=2,
            fan_in=2,
            depth=2,
        )
        leaf = RevsortSwitch(64, 32).gate_delays
        merge = ColumnsortSwitch(16, 4, 32).gate_delays
        assert funnel.gate_delays == leaf + merge

    def test_capacity_is_tightest_level(self):
        funnel = FunnelNetwork.regular(
            leaf_factory=lambda: PerfectConcentrator(16, 8),
            merge_factory=lambda n: PerfectConcentrator(n, n // 2),
            leaf_count=4,
            fan_in=2,
            depth=3,
        )
        # Level capacities: 4*8, 2*8, 1*8 -> min is the root's 8.
        assert funnel.capacity() == 8
