"""The reusable Hypothesis strategies themselves (pillar 3 of PR 3)."""

from __future__ import annotations

import numpy as np
from hypothesis import given

from repro.switches.registry import build_switch, certify_configs
from repro.verify import strategies as vst


class TestValidBitStrategies:
    @given(bits=vst.valid_bits(24))
    def test_shape_and_dtype(self, bits):
        assert bits.shape == (24,)
        assert bits.dtype == np.bool_

    @given(pair=vst.valid_bits_with_k(24))
    def test_exact_load(self, pair):
        k, bits = pair
        assert 0 <= k <= 24
        assert int(bits.sum()) == k

    @given(batch=vst.bit_batches(6, max_batch=80))
    def test_batch_shape(self, batch):
        assert batch.ndim == 2
        assert batch.shape[1] == 6
        assert 1 <= batch.shape[0] <= 80


class TestSwitchConfigStrategy:
    @given(cfg=vst.switch_configs(designs=["hyper", "perfect"]))
    def test_configs_are_buildable(self, cfg):
        name, params = cfg
        switch = build_switch(name, **params)
        assert switch.n >= 1

    def test_registry_declares_configs_for_every_design(self):
        configs = certify_configs()
        assert {name for name, _ in configs} == {
            "revsort", "columnsort", "hyper", "perfect",
            "butterfly", "bitonic", "fullrevsort",
        }
        # The acceptance bar: small configs enumerate fully (n <= 16),
        # the large plan-based ones stay within the batch tier (n <= 64).
        for name, params in configs:
            switch = build_switch(name, **params)
            assert switch.n <= 64


class TestMeshOrderingStrategy:
    @given(order=vst.mesh_orderings(4))
    def test_orderings_are_permutations(self, order):
        assert sorted(order.tolist()) == list(range(16))
