"""Tests for ε-nearsortedness and Lemma 1 (both directions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.nearsort import (
    decompose_dirty_window,
    is_nearsorted,
    lemma1_epsilon_from_window,
    lemma1_window_from_epsilon,
    nearsortedness,
    nearsortedness_strict,
    random_epsilon_nearsorted,
)
from repro.errors import ConfigurationError

bit_sequences = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=64).map(
    lambda xs: np.array(xs, dtype=np.int8)
)


class TestNearsortedness:
    def test_sorted_is_zero(self):
        assert nearsortedness(np.array([1, 1, 1, 0, 0])) == 0
        assert nearsortedness(np.array([], dtype=np.int8)) == 0
        assert nearsortedness(np.ones(5, dtype=np.int8)) == 0
        assert nearsortedness(np.zeros(5, dtype=np.int8)) == 0

    def test_single_swap(self):
        # k=1; the 1 at position 1 is 1 past its block.
        assert nearsortedness(np.array([0, 1])) == 1

    def test_reverse_sorted_is_worst(self):
        n = 8
        seq = np.array([0] * 4 + [1] * 4)
        # k=4: last 1 at position 7, displacement 7-3=4; first 0 at 0,
        # displacement 4-0=4.
        assert nearsortedness(seq) == 4

    def test_paperlike_example(self):
        # 1,0,1 has k=2: last 1 at 2 -> 2-(2-1)=1; first 0 at 1 -> 2-1=1.
        assert nearsortedness(np.array([1, 0, 1])) == 1

    @given(bit_sequences)
    def test_weak_leq_strict(self, seq):
        assert nearsortedness(seq) <= nearsortedness_strict(seq)

    @given(bit_sequences)
    def test_zero_iff_sorted(self, seq):
        sorted_flag = bool((seq[:-1] >= seq[1:]).all()) if seq.size > 1 else True
        assert (nearsortedness(seq) == 0) == sorted_flag

    @given(bit_sequences)
    def test_bounded_by_n(self, seq):
        assert 0 <= nearsortedness(seq) <= max(seq.size - 1, 0)

    def test_rejects_non_bits(self):
        with pytest.raises(ConfigurationError):
            nearsortedness(np.array([0, 2]))
        with pytest.raises(ConfigurationError):
            nearsortedness(np.zeros((2, 2)))


class TestIsNearsorted:
    def test_threshold(self):
        seq = np.array([0, 1, 1, 0])
        eps = nearsortedness(seq)
        assert is_nearsorted(seq, eps)
        assert not is_nearsorted(seq, eps - 1)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ConfigurationError):
            is_nearsorted(np.array([1, 0]), -1)


class TestDirtyDecomposition:
    def test_sorted(self):
        d = decompose_dirty_window(np.array([1, 1, 0, 0]))
        assert d.is_sorted and d.dirty_length == 0
        assert d.clean_ones == 2 and d.clean_zeros == 2

    def test_window(self):
        #            0  1  2  3  4  5
        seq = np.array([1, 0, 1, 1, 0, 0])
        d = decompose_dirty_window(seq)
        assert d.clean_ones == 1
        assert d.dirty_start == 1
        assert d.dirty_length == 3  # positions 1..3
        assert d.clean_zeros == 2
        assert d.k == 3

    def test_all_ones(self):
        d = decompose_dirty_window(np.ones(4, dtype=np.int8))
        assert d.is_sorted and d.clean_ones == 4 and d.clean_zeros == 0

    @given(bit_sequences)
    def test_partition_sums_to_n(self, seq):
        d = decompose_dirty_window(seq)
        assert d.clean_ones + d.dirty_length + d.clean_zeros == seq.size


class TestLemma1Forward:
    """(⇒): an ε-nearsorted sequence has clean ≥ k−ε 1s, dirty ≤ 2ε,
    clean ≥ n−k−ε 0s."""

    @given(bit_sequences)
    def test_structure_holds_at_exact_epsilon(self, seq):
        eps = nearsortedness(seq)
        d = decompose_dirty_window(seq)
        min_ones, max_dirty, min_zeros = lemma1_window_from_epsilon(
            seq.size, d.k, eps
        )
        assert d.clean_ones >= min_ones
        assert d.dirty_length <= max_dirty
        assert d.clean_zeros >= min_zeros

    def test_window_formula(self):
        assert lemma1_window_from_epsilon(10, 4, 2) == (2, 4, 4)
        assert lemma1_window_from_epsilon(10, 1, 3) == (0, 6, 6)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            lemma1_window_from_epsilon(4, 5, 0)
        with pytest.raises(ConfigurationError):
            lemma1_window_from_epsilon(4, 2, -1)


class TestLemma1Backward:
    """(⇐): the dirty window bounds ε."""

    @given(bit_sequences)
    def test_window_epsilon_dominates_exact(self, seq):
        d = decompose_dirty_window(seq)
        assert nearsortedness(seq) <= max(lemma1_epsilon_from_window(d), 0)

    @given(bit_sequences)
    def test_window_epsilon_at_most_window_length(self, seq):
        d = decompose_dirty_window(seq)
        assert lemma1_epsilon_from_window(d) <= d.dirty_length

    def test_window_epsilon_is_exact(self):
        # For 0/1 sequences the window-derived ε equals the exact ε.
        seq = np.array([1, 0, 0, 1, 0])
        d = decompose_dirty_window(seq)
        assert lemma1_epsilon_from_window(d) == nearsortedness(seq)


class TestRandomEpsilonNearsorted:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=16),
    )
    def test_construction_respects_epsilon(self, n, k, eps):
        if k > n:
            return
        rng = np.random.default_rng(1)
        seq = random_epsilon_nearsorted(n, k, eps, rng)
        assert seq.size == n
        assert int(seq.sum()) == k
        assert nearsortedness(seq) <= eps

    def test_epsilon_zero_gives_sorted(self):
        rng = np.random.default_rng(2)
        seq = random_epsilon_nearsorted(10, 4, 0, rng)
        assert nearsortedness(seq) == 0

    def test_rejects_bad_k(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ConfigurationError):
            random_epsilon_nearsorted(4, 5, 1, rng)
