"""Tests for the traffic generators and network simulations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.messages.congestion import BufferPolicy, DropPolicy, ResendPolicy
from repro.network.simulate import (
    ConcentrationTree,
    SwitchSimulation,
    compare_partial_vs_perfect,
)
from repro.network.traffic import BernoulliTraffic, FixedKTraffic, HotSpotTraffic
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.perfect import PerfectConcentrator
from repro.switches.revsort_switch import RevsortSwitch


class TestTrafficGenerators:
    def test_bernoulli_rate(self):
        gen = BernoulliTraffic(1000, p=0.3, seed=1)
        active = sum(len(gen.active_inputs()) for _ in range(20)) / 20
        assert 250 < active < 350

    def test_bernoulli_extremes(self):
        assert len(BernoulliTraffic(64, p=0.0, seed=1).active_inputs()) == 0
        assert len(BernoulliTraffic(64, p=1.0, seed=1).active_inputs()) == 64

    def test_fixed_k(self):
        gen = FixedKTraffic(64, k=10, seed=2)
        for _ in range(10):
            active = gen.active_inputs()
            assert len(active) == 10
            assert len(set(active.tolist())) == 10

    def test_hotspot_clusters(self):
        gen = HotSpotTraffic(256, hot_fraction=0.25, p_hot=1.0, p_cold=0.0, seed=3)
        active = gen.active_inputs()
        assert len(active) == 64  # the whole hot band

    def test_messages_have_payloads(self):
        gen = FixedKTraffic(8, k=3, payload_bits=4, seed=4)
        round_msgs = gen.next_round()
        assert sum(1 for m in round_msgs if m is not None) == 3
        for m in round_msgs:
            if m is not None:
                assert m.length == 4

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BernoulliTraffic(8, p=1.5)
        with pytest.raises(ConfigurationError):
            FixedKTraffic(8, k=9)
        with pytest.raises(ConfigurationError):
            HotSpotTraffic(8, hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            BernoulliTraffic(0, p=0.5)


class TestSwitchSimulation:
    def test_light_load_no_loss(self):
        switch = RevsortSwitch(256, 224)
        cap = switch.spec.guaranteed_capacity
        traffic = FixedKTraffic(256, k=cap, seed=5)
        summary = SwitchSimulation(switch, traffic, DropPolicy()).run(rounds=20)
        assert summary.lost == 0
        assert summary.delivery_rate == 1.0

    def test_overload_with_drop_policy_loses(self):
        switch = PerfectConcentrator(64, 16)
        traffic = FixedKTraffic(64, k=32, seed=6)
        summary = SwitchSimulation(switch, traffic, DropPolicy()).run(rounds=10)
        assert summary.lost == 10 * 16
        assert summary.delivery_rate == pytest.approx(0.5)

    def test_buffer_policy_recovers_backlog(self):
        """With bursty overload and idle rounds, buffering delivers
        more than dropping."""
        switch = PerfectConcentrator(64, 16)

        class Bursty(FixedKTraffic):
            def __init__(self):
                super().__init__(64, k=0, seed=7)
                self._round = 0

            def active_inputs(self):
                self._round += 1
                k = 32 if self._round % 4 == 1 else 0
                return self.rng.choice(64, size=k, replace=False)

        drop = SwitchSimulation(switch, Bursty(), DropPolicy()).run(rounds=20)
        buffered = SwitchSimulation(switch, Bursty(), BufferPolicy()).run(rounds=20)
        assert buffered.delivered > drop.delivered
        assert buffered.lost < drop.lost

    def test_resend_policy_eventually_delivers(self):
        switch = PerfectConcentrator(32, 8)

        class OneBurst(FixedKTraffic):
            def __init__(self):
                super().__init__(32, k=0, seed=8)
                self._fired = False

            def active_inputs(self):
                if not self._fired:
                    self._fired = True
                    return np.arange(16)
                return np.array([], dtype=np.int64)

        policy = ResendPolicy(ack_timeout=1, max_retries=10)
        summary = SwitchSimulation(switch, OneBurst(), policy).run(rounds=6)
        assert summary.delivered == 16
        assert summary.lost == 0

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchSimulation(Hyperconcentrator(8), FixedKTraffic(16, 4))


class TestConcentrationTree:
    def test_two_level_funnel(self, rng):
        leaves = [PerfectConcentrator(16, 8) for _ in range(4)]
        root = PerfectConcentrator(32, 16)
        tree = ConcentrationTree(leaves, root)
        assert tree.n == 64 and tree.m == 16

        messages: list[object | None] = [None] * 64
        chosen = rng.choice(64, size=12, replace=False)
        for i in chosen:
            messages[int(i)] = object.__new__(object)
        # Use real Messages for typed route():
        from repro.messages.message import Message

        messages = [None] * 64
        for i in chosen:
            messages[int(i)] = Message.from_int(int(i) % 16, 4)
        outputs, lost = tree.route(messages)
        delivered = sum(1 for m in outputs if m is not None)
        assert delivered + lost == 12

    def test_light_load_no_tree_loss(self, rng):
        """k messages ≤ every stage's capacity: nothing lost."""
        leaves = [PerfectConcentrator(16, 8) for _ in range(4)]
        root = PerfectConcentrator(32, 16)
        tree = ConcentrationTree(leaves, root)
        from repro.messages.message import Message

        messages: list[Message | None] = [None] * 64
        # 2 messages per leaf: within every capacity.
        for leaf in range(4):
            for j in range(2):
                messages[leaf * 16 + j] = Message.from_int(j, 4)
        outputs, lost = tree.route(messages)
        assert lost == 0
        assert sum(1 for m in outputs if m is not None) == 8

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ConcentrationTree([PerfectConcentrator(8, 4)], PerfectConcentrator(8, 4))


class TestPartialVsPerfect:
    def test_section1_substitution(self):
        """An (n/α, m/α, α) partial concentrator routes ≥ min(k, m)
        messages wherever an n-by-m perfect concentrator is needed."""
        n, m = 128, 96
        perfect = PerfectConcentrator(n, m)
        partial = ColumnsortSwitch(64, 4, 105)  # n'=256 > n, m'=105, ε=9
        alpha_m = partial.spec.guaranteed_capacity
        assert alpha_m >= m  # substitution requirement: αm' ≥ m
        results = compare_partial_vs_perfect(
            perfect, partial, k_values=[8, 32, 64, 96], trials=10, seed=9
        )
        for k, row in results.items():
            assert row["perfect"] == pytest.approx(min(k, m))
            assert row["partial"] >= min(k, m) - 1e-9
