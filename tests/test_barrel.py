"""Tests for the hardwired barrel shifter (Section 4, Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.switches.barrel import BarrelShifter


class TestBarrelShifter:
    def test_rotation(self):
        b = BarrelShifter(4, 1)
        assert list(b.apply(np.array([1, 2, 3, 4]))) == [4, 1, 2, 3]

    def test_zero_shift(self):
        b = BarrelShifter(4, 0)
        data = np.array([1, 0, 1, 0])
        assert np.array_equal(b.apply(data), data)

    def test_shift_wraps(self):
        assert BarrelShifter(4, 5).shift == 1

    def test_permutation_matches_apply(self, rng):
        b = BarrelShifter(8, 3)
        data = rng.integers(0, 2, size=8)
        perm = b.permutation()
        out = np.empty(8, dtype=data.dtype)
        out[perm] = data
        assert np.array_equal(out, b.apply(data))

    def test_pins(self):
        # 2w data pins + ⌈lg w⌉ hardwired control bits.
        b = BarrelShifter(16, 5)
        assert b.data_pins == 32
        assert b.control_bits == 4
        assert b.pins == 36

    def test_width_one(self):
        b = BarrelShifter(1, 0)
        assert b.control_bits == 0
        assert list(b.apply(np.array([1]))) == [1]

    def test_constant_delay(self):
        assert BarrelShifter(4, 1).gate_delays == BarrelShifter(1024, 999).gate_delays

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            BarrelShifter(0, 0)

    def test_rejects_bad_input_shape(self):
        with pytest.raises(ConfigurationError):
            BarrelShifter(4, 1).apply(np.zeros(5))
