"""ε-nearsortedness of 0/1 sequences (Section 3 of the paper).

A sequence is *ε-nearsorted* when "each element in the sequence is
within ε positions of where it belongs in the fully sorted sequence"
(nonincreasing order).  For 0/1 sequences — the only ones the switches
care about, since only valid bits are nearsorted — a value 1 *belongs*
anywhere in the leading block of k positions and a 0 anywhere in the
trailing block.  This per-value reading is the one the paper's proofs
of Lemma 1 and Lemma 2 use ("each 1 appears within the first k + ε
positions, and each 0 appears within the last n − k + ε positions"), so
it is the operative definition here:

    ε(seq) = max( last_one_pos − (k−1),  k − first_zero_pos,  0 )

:func:`nearsortedness_strict` additionally implements the stricter
order-preserving-assignment notion (the t-th 1 belongs exactly at
position t); it upper-bounds the operative ε and is reported by the
benches for comparison.

**Lemma 1.**  A sequence of n bits with k 1s is ε-nearsorted iff it
consists of a clean run of ≥ k − ε 1s, then a dirty window of ≤ 2ε
bits, then a clean run of ≥ n − k − ε 0s.  Both directions are
implemented and property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def _as_bits(sequence: np.ndarray) -> np.ndarray:
    arr = np.asarray(sequence)
    if arr.ndim != 1:
        raise ConfigurationError(f"expected a 1-D bit sequence, got shape {arr.shape}")
    arr = arr.astype(np.int8)
    if arr.size and (arr.min() < 0 or arr.max() > 1):
        raise ConfigurationError("sequence must contain only 0/1 values")
    return arr


def nearsortedness(sequence: np.ndarray) -> int:
    """The exact (smallest) ε for which ``sequence`` is ε-nearsorted
    under the paper's per-value notion.

    Equal to ``max(last 1 position − (k−1), k − first 0 position, 0)``;
    a fully sorted sequence returns 0.
    """
    bits = _as_bits(sequence)
    k = int(bits.sum())
    ones = np.flatnonzero(bits == 1)
    zeros = np.flatnonzero(bits == 0)
    eps = 0
    if ones.size:
        eps = max(eps, int(ones[-1]) - (k - 1))
    if zeros.size:
        eps = max(eps, k - int(zeros[0]))
    return max(eps, 0)


def nearsortedness_strict(sequence: np.ndarray) -> int:
    """ε under the stricter order-preserving assignment: the t-th 1
    (left to right) belongs at position t, the t-th 0 at position k + t.

    Always ≥ :func:`nearsortedness`; useful as a conservative check.
    """
    bits = _as_bits(sequence)
    k = int(bits.sum())
    ones = np.flatnonzero(bits == 1)
    zeros = np.flatnonzero(bits == 0)
    eps = 0
    if ones.size:
        eps = max(eps, int(np.abs(ones - np.arange(ones.size)).max()))
    if zeros.size:
        eps = max(eps, int(np.abs(zeros - (k + np.arange(zeros.size))).max()))
    return eps


def is_nearsorted(sequence: np.ndarray, epsilon: int) -> bool:
    """True iff ``sequence`` is ε-nearsorted for the given ε."""
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
    return nearsortedness(sequence) <= epsilon


@dataclass(frozen=True)
class DirtyDecomposition:
    """The Figure 1 structure of a bit sequence.

    ``clean_ones`` leading 1s, then a ``dirty`` window (the minimal
    mixed region, empty when sorted), then ``clean_zeros`` trailing 0s.
    ``dirty_start`` is the index of the first dirty position.
    """

    n: int
    k: int
    clean_ones: int
    dirty_start: int
    dirty_length: int
    clean_zeros: int

    @property
    def is_sorted(self) -> bool:
        return self.dirty_length == 0


def decompose_dirty_window(sequence: np.ndarray) -> DirtyDecomposition:
    """Split a bit sequence into leading clean 1s, a dirty window, and
    trailing clean 0s (the Figure 1 picture).

    The dirty window is the minimal contiguous region outside of which
    the sequence looks fully sorted: from the first 0 to the last 1
    (when that last 1 lies after the first 0).
    """
    bits = _as_bits(sequence)
    n = bits.size
    k = int(bits.sum())
    zeros = np.flatnonzero(bits == 0)
    ones = np.flatnonzero(bits == 1)
    first_zero = int(zeros[0]) if zeros.size else n
    last_one = int(ones[-1]) if ones.size else -1
    if last_one < first_zero:  # fully sorted
        return DirtyDecomposition(
            n=n, k=k, clean_ones=k, dirty_start=k, dirty_length=0, clean_zeros=n - k
        )
    dirty_start = first_zero
    dirty_end = last_one  # inclusive
    return DirtyDecomposition(
        n=n,
        k=k,
        clean_ones=dirty_start,
        dirty_start=dirty_start,
        dirty_length=dirty_end - dirty_start + 1,
        clean_zeros=n - dirty_end - 1,
    )


def lemma1_window_from_epsilon(n: int, k: int, epsilon: int) -> tuple[int, int, int]:
    """Lemma 1, (⇒) direction: the structural guarantees on an
    ε-nearsorted sequence of ``k`` 1s among ``n`` bits.

    Returns ``(min_clean_ones, max_dirty, min_clean_zeros)`` =
    ``(k − ε, 2ε, n − k − ε)`` clamped to feasible ranges.
    """
    if not 0 <= k <= n:
        raise ConfigurationError(f"k={k} out of range for n={n}")
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
    return (max(0, k - epsilon), min(n, 2 * epsilon), max(0, n - k - epsilon))


def lemma1_epsilon_from_window(decomposition: DirtyDecomposition) -> int:
    """Lemma 1, (⇐) direction: an ε making the decomposed sequence
    ε-nearsorted, derived from the dirty window alone.

    The window spans positions ``[dirty_start, dirty_start + d)``; every
    1 lies before its end and every 0 after its start, so
    ``ε = max(dirty_end − k + 1, k − dirty_start, 0)`` ≤ d works.  This
    is the bound the Revsort switch analysis uses: a dirty window of
    ``O(n^{3/4})`` flat positions yields ε = O(n^{3/4}).
    """
    d = decomposition.dirty_length
    if d == 0:
        return 0
    k = decomposition.k
    dirty_end = decomposition.dirty_start + d - 1
    return max(dirty_end - k + 1, k - decomposition.dirty_start, 0)


def random_epsilon_nearsorted(
    n: int,
    k: int,
    epsilon: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample a sequence of ``k`` 1s among ``n`` bits that is
    ε-nearsorted (used by tests/benches to exercise Lemma 1 ⇒).

    Construction: all 1s before position ``k − ε``, all 0s after
    position ``k + ε``, the window in between filled randomly — exactly
    the Figure 1 structure, hence ε-nearsorted by Lemma 1 (⇐).
    """
    if not 0 <= k <= n:
        raise ConfigurationError(f"k={k} out of range for n={n}")
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
    lo = max(0, k - epsilon)
    hi = min(n, k + epsilon)
    bits = np.zeros(n, dtype=np.int8)
    bits[:lo] = 1
    window = hi - lo
    ones_in_window = k - lo
    if window > 0 and ones_in_window > 0:
        pos = rng.choice(window, size=ones_in_window, replace=False)
        bits[lo + np.sort(pos)] = 1
    return bits
