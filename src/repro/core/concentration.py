"""Concentrator switch specifications and behavioural validators.

Section 1 of the paper defines three switch families:

* an **n-by-m perfect concentrator switch** establishes m disjoint
  paths from any set of m of its n inputs to its m outputs; with k
  valid messages it routes all of them when k ≤ m and fills every
  output when k > m;
* an **n-by-n hyperconcentrator switch** routes any k valid inputs to
  its *first* k outputs;
* an **(n, m, α) partial concentrator switch** routes any k ≤ αm valid
  inputs fully, and at least αm of them when k > αm.  α is the *load
  ratio*.

This module carries the spec objects and validators used by every
switch implementation and test, plus the two theory constructions of
Section 3: **Lemma 2** (ε-nearsorter ⇒ partial concentrator) and the
**Figure 2** counterexample (partial concentrator ⇏ ε-nearsorter).

Routing representation: ``routing`` is an int array of length n where
``routing[i]`` is the output wire carrying input i's message, or −1
when input i has no path.  Disjointness = no output index repeated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConcentrationError, ConfigurationError


@dataclass(frozen=True)
class ConcentratorSpec:
    """An (n, m, α) partial concentrator specification.

    ``alpha = 1.0`` with ``m == n`` describes a hyperconcentrator;
    ``alpha = 1.0`` with ``m ≤ n`` a perfect concentrator.

    ``alpha = 0.0`` is permitted and marks a *vacuous* guarantee: the
    asymptotic load-ratio formulas of Theorems 3–4 can dip to (or below)
    zero at small n even though the switches behave well empirically
    (the paper's own Figure 3 instance, n=64 and m=28, is in this
    regime).  Negative formula values are clamped to 0 at construction
    time by the switches.
    """

    n: int
    m: int
    alpha: float

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if not 1 <= self.m <= self.n:
            raise ConfigurationError(f"m={self.m} must satisfy 1 <= m <= n={self.n}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigurationError(f"load ratio must be in [0, 1], got {self.alpha}")

    @property
    def is_vacuous(self) -> bool:
        """True when the guarantee admits no load at all (α·m < 1)."""
        return self.guaranteed_capacity == 0

    @property
    def guaranteed_capacity(self) -> int:
        """``⌊αm⌋``: the largest k for which full routing is guaranteed."""
        return math.floor(self.alpha * self.m + 1e-9)

    def scaled_for_perfect(self) -> "ConcentratorSpec":
        """The Section 1 substitution: an (n/α, m/α, α) partial
        concentrator can replace an n-by-m perfect concentrator.  Given
        *this* spec for the perfect switch's (n, m), return the partial
        spec that substitutes for it (sizes rounded up)."""
        if self.alpha <= 0.0:
            raise ConfigurationError("cannot scale a vacuous spec (alpha = 0)")
        return ConcentratorSpec(
            n=math.ceil(self.n / self.alpha),
            m=math.ceil(self.m / self.alpha),
            alpha=self.alpha,
        )


def validate_routing_disjoint(routing: np.ndarray, n_outputs: int) -> None:
    """Check that the electrical paths are disjoint and in range."""
    routing = np.asarray(routing)
    used = routing[routing >= 0]
    if used.size and used.max() >= n_outputs:
        raise ConcentrationError(
            f"routing targets output {used.max()} but the switch has {n_outputs} outputs"
        )
    if np.unique(used).size != used.size:
        raise ConcentrationError("routing paths are not disjoint (output reused)")


def validate_partial_concentration(
    spec: ConcentratorSpec, valid: np.ndarray, routing: np.ndarray
) -> None:
    """Assert the (n, m, α) contract of Section 1 for one setup.

    * paths disjoint, and only valid inputs may hold paths;
    * k ≤ αm ⇒ every valid input routed;
    * k > αm ⇒ at least ⌊αm⌋ valid inputs routed.
    """
    valid = np.asarray(valid, dtype=bool)
    routing = np.asarray(routing)
    if valid.size != spec.n or routing.size != spec.n:
        raise ConfigurationError(
            f"expected arrays of length n={spec.n}, got {valid.size}/{routing.size}"
        )
    validate_routing_disjoint(routing, spec.m)
    if (routing[~valid] >= 0).any():
        raise ConcentrationError("an invalid message was routed to an output")
    k = int(valid.sum())
    routed = int((routing[valid] >= 0).sum())
    cap = spec.guaranteed_capacity
    if k <= cap and routed < k:
        raise ConcentrationError(
            f"lightly loaded switch (k={k} <= alpha*m={cap}) dropped {k - routed} messages"
        )
    if k > cap and routed < cap:
        raise ConcentrationError(
            f"congested switch (k={k}) routed only {routed} < alpha*m={cap} messages"
        )


def validate_perfect_concentration(
    n: int, m: int, valid: np.ndarray, routing: np.ndarray
) -> None:
    """Assert the perfect concentrator contract: k ≤ m ⇒ all routed,
    k > m ⇒ every output busy."""
    spec = ConcentratorSpec(n=n, m=m, alpha=1.0)
    validate_partial_concentration(spec, valid, routing)
    k = int(np.asarray(valid, dtype=bool).sum())
    routed = int((np.asarray(routing) >= 0).sum())
    if k > m and routed < m:
        raise ConcentrationError(
            f"congested perfect concentrator left outputs idle ({routed} < m={m})"
        )


def validate_hyperconcentration(n: int, valid: np.ndarray, routing: np.ndarray) -> None:
    """Assert the hyperconcentrator contract: the k valid inputs occupy
    exactly outputs 0..k−1."""
    valid = np.asarray(valid, dtype=bool)
    routing = np.asarray(routing)
    if valid.size != n or routing.size != n:
        raise ConfigurationError(f"expected arrays of length n={n}")
    validate_routing_disjoint(routing, n)
    k = int(valid.sum())
    targets = np.sort(routing[valid])
    if (routing[valid] < 0).any():
        raise ConcentrationError("hyperconcentrator dropped a valid message")
    if not np.array_equal(targets, np.arange(k)):
        raise ConcentrationError(
            f"hyperconcentrator outputs for k={k} valid messages are {targets}, "
            f"expected 0..{k - 1}"
        )


# ---------------------------------------------------------------------------
# Lemma 2 and the Figure 2 converse counterexample
# ---------------------------------------------------------------------------


def lemma2_load_ratio(m: int, epsilon: int) -> float:
    """Lemma 2's load ratio ``α = 1 − ε/m`` for an ε-nearsorter
    restricted to its first m outputs, clamped to 0 when the bound is
    vacuous (ε ≥ m, possible at small n; see :class:`ConcentratorSpec`)."""
    if m < 1:
        raise ConfigurationError(f"m must be positive, got {m}")
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
    return max(0.0, 1.0 - epsilon / m)


def lemma2_spec(n: int, m: int, epsilon: int) -> ConcentratorSpec:
    """The (n, m, 1 − ε/m) partial concentrator spec Lemma 2 yields for
    an n-input ε-nearsorter with outputs restricted to the first m."""
    return ConcentratorSpec(n=n, m=m, alpha=lemma2_load_ratio(m, epsilon))


def figure2_counterexample(n: int, m: int, epsilon: int) -> tuple[int, np.ndarray]:
    """Construct the Figure 2 witness that the converse of Lemma 2
    fails: output valid bits of a legitimate (n, m, 1 − ε/m) partial
    concentrator that are *not* ε-nearsorted.

    The switch routes m − ε of k > m − ε messages to the first m
    outputs and parks the remaining k − m + ε at the *last* outputs.
    Whenever ``k + ε < (n + m)/2`` the straggler 1s sit more than ε
    positions past the sorted boundary.  Returns ``(k, output_bits)``.
    """
    if not 1 <= m <= n:
        raise ConfigurationError(f"need 1 <= m <= n, got m={m}, n={n}")
    if epsilon < 1 or epsilon >= m:
        raise ConfigurationError(f"need 1 <= epsilon < m, got epsilon={epsilon}")
    # Pick the smallest congesting k, then check Figure 2's condition.
    k = m - epsilon + 1
    if not k + epsilon < (n + m) / 2:
        raise ConfigurationError(
            f"Figure 2 requires k + eps < (n+m)/2; infeasible for n={n}, m={m}, "
            f"eps={epsilon} (try a larger n)"
        )
    bits = np.zeros(n, dtype=np.int8)
    bits[: m - epsilon] = 1          # the m − ε routed messages
    bits[n - (k - m + epsilon):] = 1  # the stragglers at the far end
    return k, bits
