"""The paper's theoretical core: ε-nearsorting and partial concentration.

* :mod:`repro.core.nearsort` — ε-nearsortedness of 0/1 sequences and the
  structural **Lemma 1** (clean 1s / ≤2ε dirty / clean 0s).
* :mod:`repro.core.concentration` — concentrator switch specifications,
  behavioural validators, the key **Lemma 2** (an ε-nearsorter restricted
  to its first m outputs is an (n, m, 1 − ε/m) partial concentrator),
  and the **Figure 2** construction showing the converse fails.
"""

from repro.core.concentration import (
    ConcentratorSpec,
    figure2_counterexample,
    lemma2_load_ratio,
    lemma2_spec,
    validate_hyperconcentration,
    validate_partial_concentration,
    validate_perfect_concentration,
    validate_routing_disjoint,
)
from repro.core.nearsort import (
    DirtyDecomposition,
    decompose_dirty_window,
    is_nearsorted,
    lemma1_epsilon_from_window,
    lemma1_window_from_epsilon,
    nearsortedness,
)

__all__ = [
    "ConcentratorSpec",
    "DirtyDecomposition",
    "decompose_dirty_window",
    "figure2_counterexample",
    "is_nearsorted",
    "lemma1_epsilon_from_window",
    "lemma1_window_from_epsilon",
    "lemma2_load_ratio",
    "lemma2_spec",
    "nearsortedness",
    "validate_hyperconcentration",
    "validate_partial_concentration",
    "validate_perfect_concentration",
    "validate_routing_disjoint",
]
