"""Statistical helpers for the network experiments.

Loss rates from Monte-Carlo runs need uncertainty estimates before
"partial ≤ perfect + noise"-style conclusions are sound; the benches
use Wilson score intervals for loss probabilities and bootstrap
intervals for means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._util.rng import default_rng
from repro.errors import ConfigurationError

#: two-sided z for common confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class Interval:
    """A point estimate with a confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> Interval:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0 or all successes), unlike the
    normal approximation — loss rates near zero are exactly the regime
    the experiments care about.
    """
    if trials < 1:
        raise ConfigurationError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes {successes} out of range for {trials} trials"
        )
    try:
        z = _Z[confidence]
    except KeyError:
        raise ConfigurationError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        ) from None
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return Interval(
        estimate=p,
        low=max(0.0, centre - half),
        high=min(1.0, centre + half),
        confidence=confidence,
    )


def bootstrap_mean(
    samples: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int | None = None,
) -> Interval:
    """Percentile-bootstrap confidence interval for a mean."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ConfigurationError("need at least two samples to bootstrap")
    if confidence not in _Z:
        raise ConfigurationError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        )
    rng = default_rng(seed)
    means = np.empty(resamples)
    for i in range(resamples):
        means[i] = arr[rng.integers(0, arr.size, size=arr.size)].mean()
    tail = (1.0 - confidence) / 2.0
    return Interval(
        estimate=float(arr.mean()),
        low=float(np.quantile(means, tail)),
        high=float(np.quantile(means, 1.0 - tail)),
        confidence=confidence,
    )


def proportions_differ(
    a_successes: int, a_trials: int, b_successes: int, b_trials: int,
    confidence: float = 0.95,
) -> bool:
    """Conservative check that two binomial proportions differ: their
    Wilson intervals are disjoint."""
    a = wilson_interval(a_successes, a_trials, confidence)
    b = wilson_interval(b_successes, b_trials, confidence)
    return a.high < b.low or b.high < a.low
