"""Parameter-sweep driver for the benches."""

from __future__ import annotations

from typing import Callable, Iterable, Mapping


def sweep(
    parameters: Iterable[object],
    measure: Callable[[object], Mapping[str, object]],
) -> list[dict[str, object]]:
    """Run ``measure`` across ``parameters`` and collect dict rows,
    tagging each with its parameter value under the key ``param``."""
    rows: list[dict[str, object]] = []
    for value in parameters:
        row = {"param": value}
        row.update(measure(value))
        rows.append(row)
    return rows
