"""Parameter-sweep driver for the benches.

:func:`sweep` runs a measurement across parameter values, optionally in
parallel threads.  **Worker determinism contract:** when ``seed`` is
given, each parameter value gets its own child of
``np.random.SeedSequence(seed).spawn(...)``, assigned by *position in
the parameter list* — never by worker or completion order — so the
results are identical for any ``workers`` count (including serial).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Mapping

import numpy as np


def sweep(
    parameters: Iterable[object],
    measure: Callable[..., Mapping[str, object]],
    *,
    workers: int = 0,
    seed: int | None = None,
) -> list[dict[str, object]]:
    """Run ``measure`` across ``parameters`` and collect dict rows,
    tagging each with its parameter value under the key ``param``.

    ``measure`` is called as ``measure(value)``; when ``seed`` is given
    it is called as ``measure(value, rng)`` with a per-parameter
    deterministic generator (see module docstring).  ``workers > 1``
    fans the calls out over a thread pool; rows always come back in
    parameter order.
    """
    params = list(parameters)
    if seed is not None:
        children = np.random.SeedSequence(seed).spawn(len(params))
        calls = [
            (value, (np.random.default_rng(child),))
            for value, child in zip(params, children)
        ]
    else:
        calls = [(value, ()) for value in params]

    def _one(call: tuple) -> dict[str, object]:
        value, extra = call
        row: dict[str, object] = {"param": value}
        row.update(measure(value, *extra))
        return row

    if workers > 1 and len(calls) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_one, calls))
    return [_one(call) for call in calls]
