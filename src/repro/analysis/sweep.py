"""Parameter-sweep driver for the benches.

:func:`sweep` runs a measurement across parameter values, optionally in
parallel threads.  **Worker determinism contract:** when ``seed`` is
given, each parameter value gets its own child of
``np.random.SeedSequence(seed).spawn(...)``, assigned by *position in
the parameter list* — never by worker or completion order — so the
results are identical for any ``workers`` count (including serial).

**Telemetry contract:** when observability is enabled and the sweep
fans out, each task runs against its own private
:class:`~repro.obs.registry.Registry` (installed thread-locally via
:func:`repro.obs.using`), and the per-task registries are serialized
through the portable ``repro.obs/worker@1`` snapshot protocol and
merged back into the parent registry *in parameter order* with
``worker=sweep-<index>`` provenance labels.  Counter and histogram
totals land in their original keys, so journal replay parity holds
across parallel runs; the JSON roundtrip is enforced even for thread
workers so the protocol is exactly what a future multiprocess engine
backend will ship over a pipe.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Mapping

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.live.merge import merge_portable, portable_snapshot, roundtrip


def _sweep_job(job: dict) -> dict[str, object]:
    """Worker-process body for one parameter measurement."""
    value, extra = job["call"]
    row: dict[str, object] = {"param": value}
    row.update(job["measure"](value, *extra))
    return row


def sweep(
    parameters: Iterable[object],
    measure: Callable[..., Mapping[str, object]],
    *,
    workers: int = 0,
    seed: int | None = None,
    executor: str = "thread",
) -> list[dict[str, object]]:
    """Run ``measure`` across ``parameters`` and collect dict rows,
    tagging each with its parameter value under the key ``param``.

    ``measure`` is called as ``measure(value)``; when ``seed`` is given
    it is called as ``measure(value, rng)`` with a per-parameter
    deterministic generator (see module docstring).  ``workers > 1``
    fans the calls out — over a thread pool by default, or over the
    persistent multiprocess engine pool with ``executor="process"``
    (``measure`` must then be picklable); rows always come back in
    parameter order, and any metrics the tasks emit merge back into
    the caller's registry in that same order (see module docstring).
    """
    if executor not in ("thread", "process"):
        raise ConfigurationError(
            f"unknown sweep executor {executor!r} (thread or process)"
        )
    params = list(parameters)
    if seed is not None:
        children = np.random.SeedSequence(seed).spawn(len(params))
        calls = [
            (value, (np.random.default_rng(child),))
            for value, child in zip(params, children)
        ]
    else:
        calls = [(value, ()) for value in params]

    def _one(call: tuple) -> dict[str, object]:
        value, extra = call
        row: dict[str, object] = {"param": value}
        row.update(measure(value, *extra))
        return row

    parallel = workers > 1 and len(calls) > 1
    if not parallel:
        return [_one(call) for call in calls]

    parent = obs.get_registry()
    if executor == "process":
        from repro.engine.backends.pool import shared_pool

        pool = shared_pool(workers)
        futures = [
            pool.submit(
                _sweep_job,
                {"call": call, "measure": measure, "shard": index},
            )
            for index, call in enumerate(calls)
        ]
        rows = []
        for index, future in enumerate(futures):
            row, snapshot = future.result()
            if parent.enabled:
                merge_portable(parent, snapshot, worker=f"sweep-{index}")
            rows.append(row)
        return rows

    if not parent.enabled:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_one, calls))

    def _one_collected(call: tuple) -> tuple[dict[str, object], dict]:
        # Private registry per task: worker threads never touch the
        # shared tracer's span stack, and their metrics come back as a
        # portable snapshot instead of racing the parent's dicts.
        local = obs.Registry()
        with obs.using(local):
            row = _one(call)
        return row, roundtrip(portable_snapshot(local))

    with ThreadPoolExecutor(max_workers=workers) as pool:
        outcomes = list(pool.map(_one_collected, calls))
    rows = []
    for index, (row, snapshot) in enumerate(outcomes):
        merge_portable(parent, snapshot, worker=f"sweep-{index}")
        rows.append(row)
    return rows
