"""Exponent fitting for the paper's Θ(n^x) resource claims.

The benches sweep n, measure a resource (pins, chips, volume, ε), and
fit the slope of ``log(resource)`` against ``log(n)``; the fitted slope
is compared with the paper's claimed exponent.  Delay claims of the
form ``c·lg n + O(1)`` are fitted as a line in ``lg n`` instead.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def fit_exponent(ns: list[int], values: list[float]) -> float:
    """Least-squares slope of log(values) vs log(ns): the measured x of
    a Θ(n^x) relationship."""
    ns_arr = np.asarray(ns, dtype=float)
    vals = np.asarray(values, dtype=float)
    if ns_arr.size != vals.size or ns_arr.size < 2:
        raise ConfigurationError("need at least two matching samples to fit")
    if (ns_arr <= 0).any() or (vals <= 0).any():
        raise ConfigurationError("exponent fits require positive samples")
    slope, _ = np.polyfit(np.log(ns_arr), np.log(vals), 1)
    return float(slope)


def fit_log_slope(ns: list[int], values: list[float]) -> tuple[float, float]:
    """Least-squares fit of ``values ≈ a·lg(n) + b``; returns (a, b).
    Used for the gate-delay claims ``3 lg n + O(1)`` etc."""
    ns_arr = np.asarray(ns, dtype=float)
    vals = np.asarray(values, dtype=float)
    if ns_arr.size != vals.size or ns_arr.size < 2:
        raise ConfigurationError("need at least two matching samples to fit")
    if (ns_arr <= 0).any():
        raise ConfigurationError("log fits require positive n")
    a, b = np.polyfit(np.log2(ns_arr), vals, 1)
    return float(a), float(b)
