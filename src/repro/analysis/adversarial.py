"""Adversarial input search: how close do worst-case inputs get to the
Theorem 3/4 bounds?

Random sampling under-estimates worst-case ε, so the benches also run a
randomized hill-climbing search over valid-bit patterns: flip/swap a
few bits, keep the mutation when the measured ε (or another objective)
does not decrease.  The search is deterministic given its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._util.rng import default_rng
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one hill-climbing run."""

    best_input: np.ndarray
    best_score: int
    evaluations: int
    improvements: int


def hill_climb(
    n: int,
    objective: Callable[[np.ndarray], int],
    *,
    iterations: int = 400,
    restarts: int = 4,
    seed: int | None = None,
) -> SearchResult:
    """Maximise ``objective(valid_bits)`` over boolean vectors.

    Mutations: flip one random bit, or swap a random (valid, invalid)
    pair — the swap preserves k, letting the search explore a fixed
    load level once a promising k is found.  Restart j starts from
    density ``j/(restarts−1)`` (a ladder from empty to full) so the
    search covers light and heavy loads even when the objective
    plateaus at zero over most of the space (e.g. drop counts, which
    are zero until the switch congests).
    """
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    if iterations < 1 or restarts < 1:
        raise ConfigurationError("iterations and restarts must be positive")
    rng = default_rng(seed)
    best: np.ndarray | None = None
    best_score = -1
    evaluations = 0
    improvements = 0

    for restart in range(restarts):
        density = restart / (restarts - 1) if restarts > 1 else 0.5
        current = rng.random(n) < density
        score = objective(current)
        evaluations += 1
        for _ in range(iterations):
            candidate = current.copy()
            if rng.random() < 0.5:
                candidate[int(rng.integers(n))] ^= True
            else:
                ones = np.flatnonzero(candidate)
                zeros = np.flatnonzero(~candidate)
                if ones.size and zeros.size:
                    candidate[int(rng.choice(ones))] = False
                    candidate[int(rng.choice(zeros))] = True
            cand_score = objective(candidate)
            evaluations += 1
            if cand_score >= score:
                if cand_score > score:
                    improvements += 1
                current, score = candidate, cand_score
        if score > best_score:
            best, best_score = current, score

    assert best is not None
    return SearchResult(
        best_input=best,
        best_score=best_score,
        evaluations=evaluations,
        improvements=improvements,
    )


def epsilon_objective(switch) -> Callable[[np.ndarray], int]:
    """Objective: the nearsortedness of the switch's output valid
    bits.  Works for any switch exposing ``final_positions``."""
    from repro.core.nearsort import nearsortedness

    def score(valid: np.ndarray) -> int:
        final = switch.final_positions(valid)
        out = np.zeros(switch.n, dtype=np.int8)
        out[final] = valid.astype(np.int8)
        return nearsortedness(out)

    return score


def drop_objective(switch) -> Callable[[np.ndarray], int]:
    """Objective: number of valid messages the switch fails to route
    (pressure on the Lemma 2 floor)."""

    def score(valid: np.ndarray) -> int:
        routing = switch.setup(valid)
        return int(valid.sum()) - routing.routed_count

    return score
