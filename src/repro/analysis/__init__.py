"""Analysis helpers used by the benches: exponent fitting for Θ(n^x)
claims, ASCII table rendering, and parameter-sweep drivers."""

from repro.analysis.adversarial import (
    SearchResult,
    drop_objective,
    epsilon_objective,
    hill_climb,
)
from repro.analysis.asymptotics import fit_exponent, fit_log_slope
from repro.analysis.stats import (
    Interval,
    bootstrap_mean,
    proportions_differ,
    wilson_interval,
)
from repro.analysis.sweep import sweep
from repro.analysis.tables import render_table

__all__ = [
    "Interval",
    "SearchResult",
    "bootstrap_mean",
    "drop_objective",
    "epsilon_objective",
    "fit_exponent",
    "fit_log_slope",
    "hill_climb",
    "proportions_differ",
    "render_table",
    "sweep",
    "wilson_interval",
]
