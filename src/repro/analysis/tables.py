"""Minimal ASCII table rendering for bench output.

The benches print paper-vs-measured tables to stdout (captured into
``bench_output.txt``); this renderer keeps them aligned and dependency
free.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def render_table(rows: Iterable[Mapping[str, object]], title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table (column order taken
    from the first row)."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    headers = list(rows[0].keys())
    table = [[str(r.get(h, "")) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in table)) for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
