"""Markdown report assembly.

The benches print ASCII tables to the terminal; this module collects
the same sections into a Markdown document (used by
``python -m repro reproduce --output report.md`` and available to
downstream pipelines that want machine-collected artifacts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ConfigurationError


@dataclass
class ReportBuilder:
    """Accumulates titled sections and renders one Markdown document."""

    title: str
    _sections: list[tuple[str, str]] = field(default_factory=list)

    def add_text(self, heading: str, body: str) -> None:
        """Add a prose section."""
        self._sections.append((heading, body.strip()))

    def add_table(
        self,
        heading: str,
        rows: Iterable[Mapping[str, object]],
        note: str | None = None,
    ) -> None:
        """Add a table section (GitHub-flavoured Markdown)."""
        rows = list(rows)
        if not rows:
            self._sections.append((heading, "_(no rows)_"))
            return
        headers = list(rows[0].keys())
        lines = [
            "| " + " | ".join(str(h) for h in headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        for row in rows:
            lines.append(
                "| " + " | ".join(str(row.get(h, "")) for h in headers) + " |"
            )
        body = "\n".join(lines)
        if note:
            body += f"\n\n{note.strip()}"
        self._sections.append((heading, body))

    def add_checks(self, heading: str, checks: list[tuple[str, bool]]) -> None:
        """Add a pass/fail checklist section."""
        lines = [
            f"- {'✅' if ok else '❌'} {label}" for label, ok in checks
        ]
        self._sections.append((heading, "\n".join(lines)))

    def add_metrics(
        self, heading: str, snapshot: Mapping[str, object], note: str | None = None
    ) -> None:
        """Add an observability section from a :mod:`repro.obs`
        registry snapshot (counters/gauges/histograms/spans)."""
        from repro.obs.export import metrics_markdown

        body = metrics_markdown(dict(snapshot))
        if note:
            body += f"\n\n{note.strip()}"
        self._sections.append((heading, body))

    @property
    def section_count(self) -> int:
        return len(self._sections)

    def render(self) -> str:
        parts = [f"# {self.title}", ""]
        for heading, body in self._sections:
            parts.append(f"## {heading}")
            parts.append("")
            parts.append(body)
            parts.append("")
        return "\n".join(parts)

    def write(self, path: str | Path) -> Path:
        target = Path(path)
        if target.exists() and target.is_dir():
            raise ConfigurationError(f"{target} is a directory")
        target.write_text(self.render(), encoding="utf-8")
        return target
