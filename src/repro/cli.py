"""Command-line interface.

Six subcommands mirroring the paper's artifacts::

    python -m repro table1  --n 4096 --m 3072
    python -m repro design  --n 1024 --m 768 --pin-budget 150
    python -m repro simulate --switch revsort --n 256 --m 192 --load 0.5
    python -m repro verify  --switch columnsort --r 64 --s 8 --m 384 --batch
    python -m repro certify revsort --out certificates/
    python -m repro faults inject --switch revsort --n 64 --m 48 --fault chip:0:1
    python -m repro faults sweep --smoke --out fault-certificates/
    python -m repro faults report fault-certificates/
    python -m repro compare --switch revsort --n 256 --m 192 --workers 4
    python -m repro knockout --ports 16 --load 0.9
    python -m repro reproduce
    python -m repro bench run --suite smoke
    python -m repro bench compare --baseline BENCH_TRAJECTORY.jsonl
    python -m repro obs trace --switch columnsort --n 4096 --out trace.json
    python -m repro obs export --journal out.jsonl --format prometheus
    python -m repro obs report

* ``table1`` prints the Table 1 resource measures for a concrete size;
* ``design`` sweeps the design space under a pin budget (the
  `examples/design_explorer.py` workflow);
* ``simulate`` runs a traffic simulation and reports delivery/loss;
* ``verify`` randomly checks a switch's partial-concentration contract
  and measured ε against its theorem bound, exiting nonzero on any
  violation (``--batch`` runs the trials through the vectorised engine);
* ``certify`` *enumerates* valid-bit patterns (exhaustively for small
  n, stratified per load level above) through the batch engine, the
  scalar oracle, and the gate netlists, and emits certificate JSONs
  (see ``docs/verification.md``);
* ``faults`` drives the robustness suite (``docs/robustness.md``):
  ``inject`` measures one scenario, ``sweep`` runs the full degradation
  campaign (monotone boundary chains, cross-path parity, flaky-pin
  resilience) and ``report`` renders the resulting certificates;
  ``certify --faults`` appends a quick campaign per certified config;
* ``compare`` runs the Section 1 partial-vs-perfect substitution
  experiment, optionally parallel/batched via ``--workers``;
* ``knockout`` compares analytic and simulated knockout concentrator
  loss across L;
* ``reproduce`` runs the full end-to-end reproduction report (same
  checks as ``examples/reproduce_paper.py``);
* ``bench run``/``bench compare`` drive the performance observatory:
  registry-driven suites appended to ``BENCH_TRAJECTORY.jsonl`` and a
  noise-aware regression gate over it (``docs/performance.md``);
* ``obs trace`` exports a Chrome-trace/Perfetto span timeline (plus an
  optional cProfile) of any switch geometry; ``obs export`` renders a
  metrics snapshot or a replayed event journal as OpenMetrics text;
  ``obs report`` renders the trajectory dashboard.

Long-running commands (``simulate``, ``certify``, ``faults sweep``,
``compare``, ``bench run``, ``bench compare``) also take ``--journal``
(stream a ``repro.obs/journal@1`` JSONL event journal), ``--live``
(terminal progress with rates and ETA), and ``--crash-dir`` (flight-
recorder crash reports on failure) — see the "Live telemetry" section
of ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import contextlib
import logging
import os
import sys

import numpy as np

from repro import obs
from repro._util.bits import ilg
from repro._util.rng import default_rng
from repro.analysis.tables import render_table
from repro.core.concentration import validate_partial_concentration
from repro.core.nearsort import nearsortedness
from repro.errors import ConcentrationError, ExecutionError, ReproError
from repro.hardware.costs import columnsort_measures, revsort_measures, table1


_LOG_LEVELS = ("debug", "info", "warning", "error")


def _setup_logging(level_name: str) -> None:
    """Attach one stream handler to the ``repro`` logger (the library
    itself only ever adds a NullHandler)."""
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level_name.upper()))
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)


class _NullTelemetry:
    """No-op stand-in when no telemetry flag was given: commands call
    ``tele.phase(...)`` etc. unconditionally."""

    registry = None
    journal = None
    recorder = None

    def phase(self, name: str, total=None) -> None:
        pass

    def advance(self, phase: str, done, total=None) -> None:
        pass

    def note(self, text: str) -> None:
        pass

    def flush(self) -> None:
        pass

    def crash(self, reason: str, *, exc=None, detail=None):
        return None


_NULL_TELEMETRY = _NullTelemetry()


class Telemetry:
    """The live-telemetry facade a command sees inside
    :func:`_telemetry_scope`: one registry, one journal, one flight
    recorder, an optional live view — plus the phase/progress helpers
    that emit journal events and flush metric deltas."""

    def __init__(
        self,
        *,
        registry,
        journal,
        sink,
        recorder,
        view=None,
        command: str | None = None,
        crash_path=None,
    ):
        self.registry = registry
        self.journal = journal
        self.sink = sink
        self.recorder = recorder
        self.view = view
        self.command = command
        self.crash_path = crash_path

    def phase(self, name: str, total=None) -> None:
        self.journal.emit("phase", name=name, total=total)
        self.flush()

    def advance(self, phase: str, done, total=None) -> None:
        self.journal.emit("progress", phase=phase, done=done, total=total)
        self.flush()

    def note(self, text: str) -> None:
        if self.view is not None:
            self.view.note(text)

    def flush(self) -> None:
        self.sink.flush()

    def crash(self, reason: str, *, exc=None, detail=None):
        """Dump the flight recorder; returns the report path or None."""
        if self.crash_path is None:
            return None
        self.flush()
        path = self.recorder.write(
            self.crash_path,
            reason=reason,
            command=self.command,
            exc=exc,
            registry=self.registry,
            detail=detail,
        )
        print(f"crash report written to {path}", file=sys.stderr)
        return path


def _command_name(args: argparse.Namespace) -> str:
    sub = (
        getattr(args, "faults_command", None)
        or getattr(args, "bench_command", None)
        or getattr(args, "obs_command", None)
        or getattr(args, "flows_command", None)
    )
    return f"{args.command} {sub}" if sub else str(args.command)


def _crash_path(args: argparse.Namespace, command: str):
    """Where a crash report would land: ``--crash-dir`` wins, else next
    to the ``--journal`` file, else nowhere (no dump target)."""
    from pathlib import Path

    crash_dir = getattr(args, "crash_dir", None)
    if crash_dir:
        return Path(crash_dir) / f"{command.replace(' ', '-')}-crash.json"
    journal_path = getattr(args, "journal", None)
    if journal_path:
        journal = Path(journal_path)
        return journal.with_name(f"{journal.stem}-crash.json")
    return None


def _install_sigusr1(tele: Telemetry):
    """SIGUSR1 → snapshot event in the journal + OpenMetrics text on
    stderr.  Returns the previous handler, or None when the platform
    has no SIGUSR1 or we are not on the main thread."""
    import signal
    import threading

    if not hasattr(signal, "SIGUSR1"):  # pragma: no cover - non-POSIX
        return None
    if threading.current_thread() is not threading.main_thread():
        return None

    from repro.obs.live import prometheus_text

    def handler(signum, frame):
        snapshot = tele.registry.snapshot()
        tele.journal.emit(
            "snapshot",
            signal="SIGUSR1",
            counters=snapshot["counters"],
            gauges=snapshot["gauges"],
        )
        sys.stderr.write(prometheus_text(snapshot))
        sys.stderr.flush()

    return signal.signal(signal.SIGUSR1, handler)


def _restore_sigusr1(previous) -> None:
    import signal

    if previous is not None and hasattr(signal, "SIGUSR1"):
        signal.signal(signal.SIGUSR1, previous)


@contextlib.contextmanager
def _telemetry_scope(args: argparse.Namespace):
    """Wire up collection around a command.

    ``--metrics-out`` alone behaves as before: collect, write one JSON
    snapshot on success.  Any of ``--journal`` / ``--live`` /
    ``--crash-dir`` additionally activates the live pipeline: an
    :class:`~repro.obs.live.EventJournal` fed by a delta-flush
    :class:`~repro.obs.live.JournalSink` and the tracer's span sink, a
    :class:`~repro.obs.live.FlightRecorder` ring buffer (dumped to a
    crash report on unhandled exceptions — including a mid-flight
    KeyboardInterrupt — and contract violations), a background
    :class:`~repro.obs.live.ResourceSampler`, an optional
    :class:`~repro.obs.live.LiveView`, and a SIGUSR1 snapshot handler.
    Without any flag the null registry stays installed and a no-op
    telemetry object is yielded.
    """
    from repro.errors import ConcentrationError as _Violation

    metrics_out = getattr(args, "metrics_out", None)
    live_on = bool(
        getattr(args, "journal", None)
        or getattr(args, "live", False)
        or getattr(args, "crash_dir", None)
    )
    if not live_on and not metrics_out:
        yield _NULL_TELEMETRY
        return

    from repro.obs.live import (
        EventJournal,
        FlightRecorder,
        JournalSink,
        LiveView,
        ResourceSampler,
    )

    command = _command_name(args)
    with contextlib.ExitStack() as stack:
        registry = stack.enter_context(obs.collecting())
        # Every collected command is one causal trace: the context
        # stamps span_id/parent_id on spans here and (shipped with each
        # shard job) in workers, so `repro obs analyze` can stitch one
        # tree back out of the journal.
        trace_id = getattr(args, "trace_id", None) or obs.new_trace_id(command)
        registry.tracer.context = obs.TraceContext(trace_id=trace_id)
        # --metrics-out alone: no journal, but the command still sees
        # the collecting registry (the reproduce report reads it).
        tele = _NullTelemetry()
        tele.registry = registry
        if live_on:
            journal = stack.enter_context(
                EventJournal(getattr(args, "journal", None), command=command)
            )
            journal.emit("env", pid=os.getpid(), trace_id=trace_id, **obs.environment())
            sink = JournalSink(registry, journal)
            stack.callback(sink.close)
            recorder = FlightRecorder()
            journal.subscribe(recorder.record)
            # Supervision events (worker_death / shard_timeout /
            # pool_respawn / degraded) become journal frames, with the
            # counter deltas they ticked flushed alongside, so retries
            # are visible live and in replay — and the flight recorder
            # (a journal subscriber) can name the fatal shard.
            from repro.engine.backends.supervisor import (
                add_event_sink,
                remove_event_sink,
            )

            def _supervision_frame(kind: str, **fields: object) -> None:
                journal.emit(kind, **fields)
                sink.flush()

            add_event_sink(_supervision_frame)
            stack.callback(remove_event_sink, _supervision_frame)
            view = None
            if getattr(args, "live", False):
                view = LiveView()
                journal.subscribe(view)
                stack.callback(view.close)
            tele = Telemetry(
                registry=registry,
                journal=journal,
                sink=sink,
                recorder=recorder,
                view=view,
                command=command,
                crash_path=_crash_path(args, command),
            )
            sampler = ResourceSampler(registry, journal)
            sampler.start()
            stack.callback(sampler.stop)
            previous_handler = _install_sigusr1(tele)
            stack.callback(_restore_sigusr1, previous_handler)
        try:
            yield tele
        except _Violation as exc:
            tele.crash("contract-violation", exc=exc)
            raise
        except ExecutionError as exc:
            # The execution stack failed (retry budget exhausted): dump
            # the ring buffer — its worker_death frames say which shard.
            tele.crash("execution-failure", exc=exc)
            raise
        except ReproError:
            raise
        except BrokenPipeError:
            raise
        except BaseException as exc:
            tele.crash("unhandled-exception", exc=exc)
            raise
    if metrics_out:
        try:
            path = obs.write_metrics_json(registry.snapshot(), metrics_out)
        except OSError as exc:
            raise ReproError(
                f"cannot write metrics to {metrics_out}: {exc}"
            ) from exc
        print(f"metrics written to {path}")


def _build_switch(args: argparse.Namespace):
    from repro.switches.registry import build_switch

    name = getattr(args, "switch_name", None) or args.switch
    return build_switch(
        name, n=args.n, m=args.m, r=args.r, s=args.s, beta=args.beta
    )


def cmd_table1(args: argparse.Namespace) -> int:
    rows = [r.as_row() for r in table1(args.n, args.m)]
    if args.format == "json":
        import json

        print(json.dumps(rows, indent=2))
    elif args.format == "csv":
        import csv
        import io

        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
        print(buf.getvalue(), end="")
    else:
        print(render_table(rows, title=f"Table 1 at n={args.n}, m={args.m}"))
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    t = ilg(args.n)
    rows = []
    feasible = []
    designs = [("Revsort", revsort_measures(args.n, args.m))]
    for a in range((t + 1) // 2, t + 1):
        beta = a / t
        designs.append(
            (f"Columnsort r=2^{a}", columnsort_measures(args.n, args.m, beta))
        )
    for name, meas in designs:
        fits = meas.pins_per_chip <= args.pin_budget
        rows.append(
            {
                "design": name,
                "pins/chip": meas.pins_per_chip,
                "chips": meas.chip_count,
                "alpha": f"{meas.load_ratio:.4f}",
                "delays": meas.gate_delays,
                "volume": meas.volume,
                "fits": "yes" if fits else "NO",
            }
        )
        if fits:
            feasible.append((name, meas))
    print(render_table(rows, title=f"designs for (n={args.n}, m={args.m}), budget {args.pin_budget} pins"))
    if not feasible:
        print("no design fits the pin budget")
        return 1
    feasible.sort(key=lambda d: (-d[1].load_ratio, d[1].gate_delays, d[1].volume))
    print(f"best feasible design: {feasible[0][0]}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.messages.congestion import (
        BufferPolicy,
        DropPolicy,
        ResendPolicy,
        RetryPolicy,
    )
    from repro.network.simulate import SwitchSimulation
    from repro.network.traffic import BernoulliTraffic

    with _telemetry_scope(args) as tele:
        switch = _build_switch(args)
        policy = {
            "drop": DropPolicy,
            "buffer": BufferPolicy,
            "resend": ResendPolicy,
            "retry": RetryPolicy,
        }[args.policy]()
        traffic = BernoulliTraffic(switch.n, p=args.load, seed=args.seed)
        tele.phase("simulate", total=args.rounds)
        summary = SwitchSimulation(switch, traffic, policy, seed=args.seed).run(
            rounds=args.rounds
        )
        tele.advance("simulate", summary.rounds, args.rounds)
        print(
            render_table(
                [
                    {
                        "switch": repr(switch),
                        "rounds": summary.rounds,
                        "offered": summary.offered,
                        "delivered": summary.delivered,
                        "lost": summary.lost,
                        "retried": summary.retried,
                        "loss rate": f"{summary.loss_rate:.4f}",
                    }
                ],
                title="simulation summary",
            )
        )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    switch = _build_switch(args)
    rng = default_rng(args.seed)
    spec = switch.spec
    mode = args.backend or ("batch" if args.batch else "scalar")
    tracks_eps = hasattr(switch, "final_positions")
    worst_eps: int | None = 0 if tracks_eps else None
    if mode == "process":
        # The sharded multiprocess backend: trials are generated per
        # SeedSequence-keyed shard, so the measured ε/α are identical
        # for any --workers count (but differ from the sequential
        # --batch draw order).
        from repro.engine import StreamSpec, get_backend, resolve_workers

        backend = get_backend("process", workers=resolve_workers(args.workers))
        summary = backend.run_stream(
            switch, StreamSpec(trials=args.trials, seed=args.seed)
        )
        worst_eps = summary.worst_epsilon
        if summary.violations:
            raise ConcentrationError(
                f"{summary.violations} trial(s) violated the contract: "
                + "; ".join(summary.messages)
            )
    elif mode == "batch":
        from repro.engine import (
            nearsortedness_batch,
            validate_batch_partial_concentration,
        )
        from repro.verify.differential import output_occupancy

        chunk = 256
        done = 0
        while done < args.trials:
            size = min(chunk, args.trials - done)
            thresholds = rng.random((size, 1))
            valid = rng.random((size, switch.n)) < thresholds
            batch = switch.setup_batch(valid)
            validate_batch_partial_concentration(spec, batch)
            if worst_eps is not None:
                occupancy = output_occupancy(
                    switch, valid, routing=batch.input_to_output
                )
                if occupancy is None:
                    worst_eps = None
                else:
                    worst_eps = max(
                        worst_eps, int(nearsortedness_batch(occupancy).max(initial=0))
                    )
            done += size
    else:
        for _ in range(args.trials):
            valid = rng.random(switch.n) < rng.random()
            routing = switch.setup(valid)
            validate_partial_concentration(spec, valid, routing.input_to_output)
            if tracks_eps:
                final = switch.final_positions(valid)
                out = np.zeros(switch.n, dtype=np.int8)
                out[final] = valid.astype(np.int8)
                worst_eps = max(worst_eps, nearsortedness(out))
    bound = getattr(switch, "epsilon_bound", None)
    ok = bound is None or worst_eps is None or worst_eps <= bound
    if args.format == "json":
        import json

        print(
            json.dumps(
                {
                    "schema": "repro.cli/verify@1",
                    "switch": repr(switch),
                    "trials": args.trials,
                    "mode": mode,
                    "alpha": round(float(spec.alpha), 6),
                    "worst_epsilon": worst_eps,
                    "epsilon_bound": bound,
                    "ok": ok,
                },
                indent=2,
            )
        )
    else:
        print(
            render_table(
                [
                    {
                        "switch": repr(switch),
                        "trials": args.trials,
                        "mode": mode,
                        "alpha": f"{spec.alpha:.4f}",
                        "worst eps": worst_eps if worst_eps is not None else "-",
                        "eps bound": bound if bound is not None else "-",
                        "verdict": "OK" if ok else "FAIL",
                    }
                ],
                title="contract verification",
            )
        )
    if not ok:
        print("ERROR: measured epsilon exceeds the theorem bound", file=sys.stderr)
        return 1
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.switches.registry import certify_configs
    from repro.verify import CertifyOptions, certify_design, write_certificate

    from repro.engine import resolve_workers

    workers = resolve_workers(args.workers)
    opt_kwargs: dict[str, object] = {
        "max_total": args.max_total,
        "max_per_k": args.max_per_k,
    }
    if getattr(args, "chunk", 0):
        opt_kwargs["chunk"] = args.chunk
    options = CertifyOptions(**opt_kwargs)
    explicit: dict[str, object] = {}
    if args.n:
        explicit["n"] = args.n
    if args.m:
        explicit["m"] = args.m
    if args.r and args.s:
        explicit["r"] = args.r
        explicit["s"] = args.s
    if explicit and not args.switch_name:
        raise ReproError("size overrides need an explicit SWITCH argument")
    if args.switch_name and explicit:
        configs = [(args.switch_name, explicit)]
    else:
        configs = certify_configs([args.switch_name] if args.switch_name else None)
    if not configs:
        raise ReproError(
            f"design {args.switch_name!r} declares no certification configs; "
            "pass an explicit size (e.g. --n 16)"
        )

    with _telemetry_scope(args) as tele:
        certs = []
        tele.phase("certify", total=len(configs))
        certify_kwargs = {"options": options, "workers": workers}
        if getattr(args, "checkpoint", None):
            certify_kwargs["checkpoint_dir"] = args.checkpoint
        for index, (design, params) in enumerate(configs):
            try:
                certs.append(certify_design(design, params, **certify_kwargs))
            except TypeError as exc:  # e.g. a missing required override
                raise ReproError(f"bad parameters for {design!r}: {exc}") from exc
            tele.advance("certify", index + 1, len(configs))

        # --faults: a quick degradation campaign per config on top of
        # the healthy certification.
        sweeps = []
        if getattr(args, "faults", False):
            from repro.faults import sweep_switch
            from repro.switches.registry import build_switch

            tele.phase("certify-faults", total=len(configs))
            for index, (design, params) in enumerate(configs):
                switch = build_switch(design, **params)
                sweeps.append(
                    sweep_switch(
                        switch,
                        design=f"{design}-n{switch.n}-m{switch.m}",
                        chains=1,
                        chain_length=2,
                        parity_scenarios=1,
                        parity_faults=2,
                        flaky_scenarios=1,
                        trials=8,
                        rounds=20,
                        seed=0,
                    )
                )
                tele.advance("certify-faults", index + 1, len(configs))

        ok = all(cert.ok for cert in certs) and all(s.ok for s in sweeps)
        if not ok:
            tele.crash(
                "contract-violation",
                detail={
                    "failed_designs": [c.design for c in certs if not c.ok],
                    "failed_sweeps": [s.design for s in sweeps if not s.ok],
                },
            )

    written: list[Path] = []
    if args.out:
        out = Path(args.out)
        if out.suffix == ".json" and len(certs) == 1:
            written.append(write_certificate(certs[0], out))
        else:
            for cert in certs:
                written.append(
                    write_certificate(cert, out / f"{cert.design}-n{cert.n}-m{cert.m}.json")
                )
        if sweeps and out.suffix != ".json":
            from repro.faults import write_degradation_certificate

            for sweep in sweeps:
                for index, dcert in enumerate(sweep.certificates):
                    written.append(
                        write_degradation_certificate(
                            dcert,
                            out / f"{sweep.design}-degradation{index}.json",
                        )
                    )

    if args.format == "json":
        print(json.dumps([cert.as_dict() for cert in certs], indent=2))
    else:
        rows = []
        for cert in certs:
            eps = (
                f"{cert.worst_epsilon}/{cert.epsilon_bound}"
                if cert.epsilon_bound is not None
                else "-"
            )
            rows.append(
                {
                    "design": cert.design,
                    "params": ", ".join(f"{k}={v}" for k, v in cert.params.items()),
                    "tier": cert.tier,
                    "patterns": cert.total_patterns,
                    "paths": "+".join(cert.paths),
                    "eps/bound": eps,
                    "violations": len(cert.violations),
                    "verdict": "CERTIFIED" if cert.ok else "FAIL",
                }
            )
        print(render_table(rows, title="certification"))
        for cert in certs:
            for v in cert.violations:
                print(
                    f"VIOLATION {cert.design}: [{v.check}] k={v.k} "
                    f"pattern={v.pattern}: {v.message}",
                    file=sys.stderr,
                )
    for path in written:
        print(f"certificate written to {path}", file=sys.stderr)
    for sweep in sweeps:
        if sweep.ok:
            print(
                f"fault sweep {sweep.design}: OK "
                f"({len(sweep.certificates)} degradation certificates)",
                file=sys.stderr,
            )
        else:
            print(
                f"FAULT SWEEP FAIL {sweep.design}: "
                f"{sweep.parity_violations} parity violations",
                file=sys.stderr,
            )
    return 0 if ok else 1


def _parse_fault(spec: str):
    """One ``--fault`` spec → a fault object.

    Formats: ``stuck0:PIN``, ``stuck1:PIN``, ``chip:STAGE:CHIP``,
    ``wire:STAGE:POS``, ``output:OUT``, ``flaky:PIN:PROB``.
    """
    from repro.errors import FaultInjectionError
    from repro.faults import (
        DeadChipFault,
        DeadOutputFault,
        FlakyPinFault,
        SeveredWireFault,
        StuckAtFault,
    )

    kind, _, rest = spec.partition(":")
    parts = rest.split(":") if rest else []
    try:
        if kind in ("stuck0", "stuck1"):
            (pos,) = parts
            return StuckAtFault(int(pos), 0 if kind == "stuck0" else 1)
        if kind == "chip":
            stage, chip = parts
            return DeadChipFault(int(stage), int(chip))
        if kind == "wire":
            stage, pos = parts
            return SeveredWireFault(int(stage), int(pos))
        if kind == "output":
            (out,) = parts
            return DeadOutputFault(int(out))
        if kind == "flaky":
            pos, p = parts
            return FlakyPinFault(int(pos), float(p))
    except ValueError as exc:
        raise FaultInjectionError(f"bad fault spec {spec!r}: {exc}") from None
    raise FaultInjectionError(
        f"unknown fault kind {kind!r} in {spec!r}; use stuck0:PIN, "
        "stuck1:PIN, chip:STAGE:CHIP, wire:STAGE:POS, output:OUT, "
        "or flaky:PIN:PROB"
    )


def cmd_faults_inject(args: argparse.Namespace) -> int:
    import json

    from repro.errors import FaultInjectionError
    from repro.faults import (
        FaultScenario,
        flaky_resilience,
        measure_scenario,
        sample_scenario,
    )

    switch = _build_switch(args)
    rng = default_rng(args.seed)
    if args.fault and args.sample:
        raise FaultInjectionError("give either --fault specs or --sample, not both")
    if args.fault:
        faults = tuple(_parse_fault(spec) for spec in args.fault)
        scenario = FaultScenario(name=args.name, faults=faults, seed=args.seed)
    elif args.sample:
        scenario = sample_scenario(
            switch,
            faults=args.sample,
            rng=rng,
            classes=args.classes,
            name=args.name,
            seed=args.seed,
        )
    else:
        raise FaultInjectionError(
            "nothing to inject: give --fault specs or --sample COUNT"
        )

    with _telemetry_scope(args):
        report = measure_scenario(
            switch,
            scenario,
            trials=args.trials,
            seed=args.seed,
            remap_outputs=args.remap_outputs,
        )
        resilience = None
        if scenario.flaky_pins():
            resilience = flaky_resilience(
                switch, scenario, rounds=args.rounds, seed=args.seed
            )

    doc = report.as_dict()
    if resilience is not None:
        doc["resilience"] = resilience
    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        print(render_table([
            {
                "scenario": report.name,
                "faults": report.fault_count,
                "alpha": f"{report.empirical_alpha:.4f}",
                "min/mean routed": f"{report.min_routed}/{report.mean_routed:.1f}",
                "eps": report.worst_epsilon if report.worst_epsilon is not None else "-",
                "live outputs": report.live_outputs,
                "parity": "ok" if report.parity_ok else "FAIL",
            }
        ], title=f"fault injection: {switch!r}"))
        for line in report.faults:
            print(f"  - {line}")
        for failure in report.parity_failures:
            print(f"PARITY {failure}", file=sys.stderr)
        if resilience is not None:
            print(
                f"  flaky resilience: drop={resilience['drop_delivery_rate']:.4f} "
                f"retry={resilience['retry_delivery_rate']:.4f} "
                f"recovered={resilience['recovered']}"
            )
    ok = report.parity_ok and (resilience is None or resilience["recovered"])
    return 0 if ok else 1


def _sweep_targets(args: argparse.Namespace) -> list[tuple[str, object, bool]]:
    """``(design-label, switch, use_gates)`` targets for a fault sweep."""
    from repro.switches.columnsort_switch import ColumnsortSwitch
    from repro.switches.registry import build_switch
    from repro.switches.revsort_switch import RevsortSwitch

    if args.switch:
        sw = build_switch(
            args.switch, n=args.n, m=args.m, r=args.r, s=args.s, beta=args.beta
        )
        return [(f"{args.switch}-n{sw.n}-m{sw.m}", sw, True)]
    if args.smoke:
        # Small geometries so CI finishes fast; the n=16 revsort keeps
        # the gate netlist path live in every smoke run.
        return [
            ("revsort-n64-m48", RevsortSwitch(64, 48), True),
            ("columnsort-r16-s4-m48", ColumnsortSwitch(16, 4, 48), True),
            ("revsort-n16-m12", RevsortSwitch(16, 12), True),
        ]
    # The paper's flagship sizes: Thm-3 revsort and Thm-4 β=2/3
    # columnsort at n=4096.
    return [
        ("revsort-n4096-m3072", RevsortSwitch(4096, 3072), True),
        (
            "columnsort-beta23-n4096-m3072",
            ColumnsortSwitch.from_beta(4096, 2 / 3, 3072),
            True,
        ),
    ]


def cmd_faults_sweep(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.faults import sweep_switch, write_degradation_certificate

    trials = args.trials if args.trials else (12 if args.smoke else 32)
    rounds = args.rounds if args.rounds else (20 if args.smoke else 40)
    targets = _sweep_targets(args)

    with _telemetry_scope(args) as tele:
        results = []
        tele.phase("faults-sweep", total=len(targets))
        for index, (design, switch, use_gates) in enumerate(targets):
            results.append(
                sweep_switch(
                    switch,
                    design=design,
                    chains=args.chains,
                    chain_length=args.chain_length,
                    parity_scenarios=args.parity_scenarios,
                    parity_faults=args.parity_faults,
                    flaky_scenarios=args.flaky_scenarios,
                    trials=trials,
                    rounds=rounds,
                    seed=args.seed,
                    use_gates=use_gates,
                )
            )
            tele.advance("faults-sweep", index + 1, len(targets))
        if not all(r.ok for r in results):
            tele.crash(
                "contract-violation",
                detail={"failed_sweeps": [r.design for r in results if not r.ok]},
            )

    written = []
    if args.out:
        out = Path(args.out)
        for result in results:
            for index, cert in enumerate(result.certificates):
                written.append(
                    write_degradation_certificate(
                        cert, out / f"{result.design}-{cert.kind}{index}.json"
                    )
                )

    if args.format == "json":
        print(json.dumps(
            [
                {
                    "design": r.design,
                    "ok": r.ok,
                    "certificates": [c.as_dict() for c in r.certificates],
                }
                for r in results
            ],
            indent=2,
        ))
    else:
        rows = []
        for result in results:
            for cert in result.certificates:
                alphas = [s.empirical_alpha for s in cert.steps]
                rows.append(
                    {
                        "design": result.design,
                        "kind": cert.kind,
                        "steps": len(cert.steps),
                        "alpha": f"{min(alphas):.3f}..{max(alphas):.3f}"
                        if alphas
                        else "-",
                        "monotone": "-"
                        if cert.monotone_alpha is None
                        else str(cert.monotone_alpha),
                        "parity": "ok"
                        if all(s.parity_ok for s in cert.steps)
                        else "FAIL",
                        "flaky recovered": f"{sum(1 for r in cert.resilience if r['recovered'])}"
                        f"/{len(cert.resilience)}"
                        if cert.resilience
                        else "-",
                        "verdict": "OK" if cert.ok else "FAIL",
                    }
                )
        print(render_table(rows, title="fault sweep"))
    for result in results:
        if not result.ok:
            print(
                f"SWEEP FAIL {result.design}: "
                f"{result.parity_violations} parity violations, "
                f"{result.non_monotone_chains} non-monotone chains, "
                f"{result.unrecovered_flaky} unrecovered flaky scenarios",
                file=sys.stderr,
            )
    for path in written:
        print(f"degradation certificate written to {path}", file=sys.stderr)
    return 0 if all(r.ok for r in results) else 1


def cmd_faults_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.faults import read_degradation_certificate

    paths: list[Path] = []
    for entry in args.paths:
        p = Path(entry)
        if p.is_dir():
            paths.extend(sorted(p.glob("*.json")))
        else:
            paths.append(p)
    if not paths:
        raise ReproError("no certificate files found")

    rows = []
    all_ok = True
    for path in paths:
        try:
            doc = read_degradation_certificate(path)
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
        alphas = [s["empirical_alpha"] for s in doc["steps"]]
        all_ok = all_ok and doc["ok"]
        rows.append(
            {
                "file": path.name,
                "design": doc["design"],
                "kind": doc["kind"],
                "steps": len(doc["steps"]),
                "alpha": f"{min(alphas):.3f}..{max(alphas):.3f}" if alphas else "-",
                "monotone": "-"
                if doc["monotone_alpha"] is None
                else str(doc["monotone_alpha"]),
                "verdict": "OK" if doc["ok"] else "FAIL",
            }
        )
    print(render_table(rows, title="degradation certificates"))
    return 0 if all_ok else 1


def cmd_faults(args: argparse.Namespace) -> int:
    return args.faults_func(args)


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.engine import resolve_workers
    from repro.network.simulate import compare_partial_vs_perfect
    from repro.switches.perfect import PerfectConcentrator
    from repro.switches.registry import build_switch

    workers = resolve_workers(args.workers)
    with _telemetry_scope(args) as tele:
        partial = build_switch(
            args.switch, n=args.n, m=args.m, r=args.r, s=args.s, beta=args.beta
        )
        alpha = partial.spec.alpha
        perfect = PerfectConcentrator(
            n=max(1, int(partial.n * alpha)), m=max(1, int(partial.m * alpha))
        )
        k_values = sorted({max(1, perfect.m // 2), perfect.m, min(perfect.n, 2 * perfect.m)})
        tele.phase("compare", total=len(k_values))
        results = compare_partial_vs_perfect(
            perfect,
            partial,
            k_values,
            trials=args.trials,
            seed=args.seed,
            workers=workers,
            executor=args.backend,
        )
        tele.advance("compare", len(k_values), len(k_values))
        if args.format == "json":
            import json

            print(
                json.dumps(
                    {
                        "schema": "repro.cli/compare@1",
                        "partial": repr(partial),
                        "perfect": repr(perfect),
                        "alpha": round(float(alpha), 6),
                        "trials": args.trials,
                        "results": [
                            {
                                "k": int(k),
                                "perfect_mean_routed": round(res["perfect"], 4),
                                "partial_mean_routed": round(res["partial"], 4),
                            }
                            for k, res in sorted(results.items())
                        ],
                    },
                    indent=2,
                )
            )
        else:
            rows = [
                {
                    "k": k,
                    "perfect mean routed": f"{res['perfect']:.2f}",
                    "partial mean routed": f"{res['partial']:.2f}",
                }
                for k, res in sorted(results.items())
            ]
            print(
                render_table(
                    rows,
                    title=(
                        f"partial ({partial.n}x{partial.m}, alpha={alpha:.3f}) vs "
                        f"perfect ({perfect.n}x{perfect.m}), "
                        f"trials={args.trials}, workers={args.workers}"
                    ),
                )
            )
    return 0


def cmd_knockout(args: argparse.Namespace) -> int:
    from repro.network.analytic import knockout_loss_analytic
    from repro.network.knockout import knockout_loss_curve

    l_values = [1, 2, 4, 8]
    with _telemetry_scope(args):
        sim = knockout_loss_curve(
            args.ports,
            loads=[args.load],
            l_values=l_values,
            slots=args.slots,
            seed=args.seed,
        )
        rows = []
        for L in l_values:
            rows.append(
                {
                    "L": L,
                    "analytic loss": f"{knockout_loss_analytic(args.ports, args.load, L):.5f}",
                    "simulated loss": f"{sim[(args.load, L)]:.5f}",
                }
            )
        print(
            render_table(
                rows,
                title=f"knockout concentrator loss (N={args.ports}, load={args.load})",
            )
        )
    return 0


def _flows_workload(args: argparse.Namespace):
    from repro.network.flows import WorkloadSpec

    return WorkloadSpec(
        n=args.n,
        load=args.load,
        duration=args.duration,
        sizes=args.sizes,
        fixed_size=args.fixed_size,
        seed=args.seed,
    )


def _flows_fabric_params(args: argparse.Namespace) -> dict:
    return {
        "design": args.design,
        "m": args.m if args.m > 0 else None,
        "lanes": args.lanes,
        "fifo_depth": args.fifo_depth,
        "slot_cycles": args.slot_cycles,
    }


def _json_safe(obj, digits: int = 6):
    """Round floats and map NaN to None so the JSON output is both
    valid and byte-stable for golden snapshots."""
    import math

    if isinstance(obj, float):
        return None if math.isnan(obj) else round(obj, digits)
    if isinstance(obj, dict):
        return {k: _json_safe(v, digits) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v, digits) for v in obj]
    return obj


def _flows_row(name: str, result) -> dict:
    pct = result.fct_percentiles()

    def fmt(v: float) -> str:
        import math

        return "-" if math.isnan(v) else f"{v:.1f}"

    return {
        "fabric": name,
        "flows": f"{result.completed}/{result.flows}",
        "loss": f"{result.loss_rate:.4f}",
        "fct p50": fmt(pct["p50"]),
        "fct p99": fmt(pct["p99"]),
        "cycles": result.cycles,
        "events": result.events,
    }


def cmd_flows(args: argparse.Namespace) -> int:
    return args.flows_func(args)


def cmd_flows_run(args: argparse.Namespace) -> int:
    import json

    from repro.network.flows import run_fabric

    spec = _flows_workload(args)
    with _telemetry_scope(args) as tele:
        tele.phase("flows", total=1)
        result = run_fabric(
            args.fabric,
            spec,
            backpressure=not args.no_backpressure,
            max_cycles=args.max_cycles or None,
            **_flows_fabric_params(args),
        )
        tele.advance("flows", 1, 1)
        if args.format == "json":
            print(
                json.dumps(
                    _json_safe(
                        {
                            "schema": "repro.cli/flows-run@1",
                            "workload": {
                                "n": spec.n,
                                "load": spec.load,
                                "duration": spec.duration,
                                "sizes": spec.sizes,
                                "seed": spec.seed,
                            },
                            "backpressure": not args.no_backpressure,
                            "result": result.as_dict(),
                        }
                    ),
                    indent=2,
                )
            )
        else:
            print(
                render_table(
                    [_flows_row(args.fabric, result)],
                    title=(
                        f"flows run: {args.fabric} fabric, n={spec.n}, "
                        f"load={spec.load}, sizes={spec.sizes}, seed={spec.seed}"
                    ),
                )
            )
    return 0


def cmd_flows_compare(args: argparse.Namespace) -> int:
    import json

    from repro.engine import resolve_workers
    from repro.network.flows import fabric_names, head_to_head

    spec = _flows_workload(args)
    names = (
        [f.strip() for f in args.fabrics.split(",") if f.strip()]
        if args.fabrics
        else fabric_names()
    )
    workers = resolve_workers(args.workers)
    with _telemetry_scope(args) as tele:
        tele.phase("flows-compare", total=len(names))
        report = head_to_head(
            spec,
            names,
            backpressure=not args.no_backpressure,
            workers=workers,
            max_cycles=args.max_cycles or None,
            **_flows_fabric_params(args),
        )
        tele.advance("flows-compare", len(names), len(names))
        if args.format == "json":
            payload = _json_safe(report.as_dict())
            payload = {"schema": "repro.cli/flows-compare@1", **payload}
            print(json.dumps(payload, indent=2))
        else:
            rows = [_flows_row(name, report.results[name]) for name in names]
            print(
                render_table(
                    rows,
                    title=(
                        f"flows head-to-head: n={spec.n}, load={spec.load}, "
                        f"sizes={spec.sizes}, seed={spec.seed}, "
                        f"{report.total_events:,} events"
                    ),
                )
            )
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    import importlib.util
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / "reproduce_paper.py"
    if not script.exists():
        print("error: examples/reproduce_paper.py not found", file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location("reproduce_paper", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    output = getattr(args, "output", None)
    if output:
        import io

        with _telemetry_scope(args) as tele:
            buffer = io.StringIO()
            try:
                with contextlib.redirect_stdout(buffer):
                    module.main()
                code = 0
            except SystemExit as exc:
                code = int(exc.code) if exc.code else 1
            text = buffer.getvalue()
            print(text, end="")

            from repro.analysis.reporting import ReportBuilder

            builder = ReportBuilder(
                title="Reproduction report — Cormen 1987, multichip partial "
                "concentrator switches"
            )
            builder.add_text("Full run transcript", f"```\n{text.strip()}\n```")
            builder.add_text(
                "Verdict",
                "All checks passed." if code == 0 else "SOME CHECKS FAILED.",
            )
            if tele.registry is not None:
                builder.add_metrics(
                    "Metrics",
                    tele.registry.snapshot(),
                    note="Collected by `repro.obs`; see docs/observability.md.",
                )
            path = builder.write(output)
            print(f"report written to {path}")
        return code

    with _telemetry_scope(args):
        try:
            module.main()
        except SystemExit as exc:
            return int(exc.code) if exc.code else 1
    return 0


def cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.engine import resolve_workers
    from repro.obs.perf.suite import run_bench, suite_specs
    from repro.obs.perf.trajectory import append_records

    workers_cap = resolve_workers(args.workers)
    specs = suite_specs(args.suite, contains=args.filter or None)
    if not specs:
        raise ReproError(
            f"no bench in suite {args.suite!r} matches {args.filter!r}"
        )
    records = []
    with _telemetry_scope(args) as tele:
        tele.phase("bench", total=len(specs))
        for index, spec in enumerate(specs):
            record = run_bench(
                spec,
                suite=args.suite,
                repeats=args.repeats,
                seed=args.seed,
                alloc=not args.no_alloc,
                merge_into=tele.registry,
                workers_cap=workers_cap,
            )
            records.append(record)
            tele.advance("bench", index + 1, len(specs))
            cache = record["plan_cache"]
            hit_rate = (
                f"{cache['hit_rate'] * 100:3.0f}%" if cache["hit_rate"] is not None
                else "  -"
            )
            print(
                f"{spec.id:>28}  median {record['median_wall_s'] * 1e3:9.3f}ms  "
                f"{record['throughput']:>12,.0f} {record['unit']}/s  "
                f"cache {hit_rate}  rss {record['rss_peak_kb'] or 0:>7}KiB"
            )
    path = append_records(args.out, records)
    sha = records[-1]["env"]["git_sha"] or "?"
    dirty = " (dirty)" if records[-1]["env"]["git_dirty"] else ""
    print(
        f"{len(records)} record(s) appended to {path} at {sha[:12]}{dirty}"
    )
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    import json

    from repro.obs.perf.regression import compare_records, has_regressions
    from repro.obs.perf.trajectory import (
        latest_per_bench,
        read_trajectory,
        split_latest,
    )

    baseline_records = read_trajectory(args.baseline)
    if not baseline_records:
        raise ReproError(f"{args.baseline} holds no trajectory records")
    if args.candidate:
        candidates = latest_per_bench(read_trajectory(args.candidate))
        history = baseline_records
    else:
        candidates, history = split_latest(baseline_records)
    with _telemetry_scope(args) as tele:
        tele.phase("bench-compare", total=len(candidates))
        verdicts = compare_records(
            candidates, history, tolerance=args.tolerance, window=args.window
        )
        tele.advance("bench-compare", len(verdicts), len(candidates))
        if args.format == "json":
            print(
                json.dumps(
                    {
                        "schema": "repro.cli/bench-compare@1",
                        "baseline": str(args.baseline),
                        "tolerance": args.tolerance,
                        "window": args.window,
                        "verdicts": [v.as_dict() for v in verdicts],
                    },
                    indent=2,
                )
            )
        else:
            rows = [
                {
                    "bench": v.bench,
                    "baseline": (
                        f"{v.baseline_wall_s * 1e3:.3f}ms (n={v.window})"
                        if v.baseline_wall_s is not None
                        else "-"
                    ),
                    "candidate": f"{v.candidate_wall_s * 1e3:.3f}ms",
                    "ratio": f"{v.ratio:.2f}" if v.ratio is not None else "-",
                    "delta": (
                        f"{v.delta_pct:+.1f}%" if v.delta_pct is not None else "-"
                    ),
                    "status": v.status.upper() if v.regressed else v.status,
                }
                for v in verdicts
            ]
            print(
                render_table(
                    rows,
                    title=(
                        f"bench compare vs {args.baseline} "
                        f"(tolerance {args.tolerance:.0%}, window {args.window})"
                    ),
                )
            )
        if has_regressions(verdicts):
            offenders = [v for v in verdicts if v.regressed]
            bad = ", ".join(v.bench for v in offenders)
            print(f"ERROR: performance regression in {bad}", file=sys.stderr)
            for v in offenders:
                baseline = (
                    f"{v.baseline_wall_s * 1e3:.3f}ms"
                    if v.baseline_wall_s is not None
                    else "no baseline"
                )
                delta = (
                    f"{v.delta_pct:+.1f}%" if v.delta_pct is not None else "n/a"
                )
                print(
                    f"  {v.bench}: baseline {baseline} -> candidate "
                    f"{v.candidate_wall_s * 1e3:.3f}ms (delta {delta})",
                    file=sys.stderr,
                )
            tele.crash(
                "regression-gate",
                detail={"verdicts": [v.as_dict() for v in offenders]},
            )
            if not args.warn_only:
                return 1
            print("(warn-only mode: exiting 0)", file=sys.stderr)
    return 0


def cmd_obs_trace(args: argparse.Namespace) -> int:
    from repro._util.rng import default_rng as _rng
    from repro.obs.perf.chrometrace import write_chrome_trace
    from repro.obs.perf.profiler import profiled, write_profile

    switch = _build_switch(args)
    valid = _rng(args.seed).random((args.trials, switch.n)) < 0.5
    profile = None
    with obs.collecting(max_trace_events=args.max_spans) as registry:
        with obs.span("trace.run", switch=repr(switch), trials=args.trials):
            if args.profile:
                with profiled() as profile:
                    switch.setup_batch(valid)
            else:
                switch.setup_batch(valid)
    spans = registry.snapshot()["spans"]
    path = write_chrome_trace(
        spans, args.out, metadata={"switch": repr(switch), "trials": args.trials}
    )
    print(
        f"chrome trace written to {path} ({len(spans['events'])} spans, "
        f"{spans['dropped']} dropped) — load at https://ui.perfetto.dev"
    )
    if args.profile and profile is not None:
        prof_path = write_profile(profile, args.profile, top=args.profile_top)
        print(f"profile written to {prof_path}")
    return 0


def cmd_obs_export(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.live import prometheus_text, replay_journal

    if bool(args.metrics) == bool(args.journal):
        raise ReproError("give exactly one of --metrics or --journal")
    if args.metrics:
        if not Path(args.metrics).exists():
            raise ReproError(f"no metrics file at {args.metrics}")
        snapshot = obs.read_metrics_json(args.metrics)
    else:
        snapshot = replay_journal(args.journal)
    if args.format == "prometheus":
        text = prometheus_text(snapshot)
    else:
        text = json.dumps(snapshot, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"exported to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.perf.report import trajectory_report
    from repro.obs.perf.trajectory import read_trajectory

    records = read_trajectory(args.trajectory)
    text = trajectory_report(records, fmt=args.format)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def cmd_obs_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.perf.analyze import analysis_report, analyze_journal
    from repro.obs.perf.chrometrace import write_chrome_trace

    analysis = analyze_journal(args.journal)
    if args.format == "json":
        import json

        serializable = {
            k: v for k, v in analysis.items() if k not in ("tree", "replayed")
        }
        serializable["tree"] = {
            "roots": analysis["tree"]["roots"],
            "nodes": analysis["tree"]["nodes"],
        }
        text = json.dumps(_json_safe(serializable), indent=2)
    else:
        text = analysis_report(analysis, fmt=args.format)
    if args.trace_out:
        path = write_chrome_trace(
            analysis["replayed"]["spans"],
            args.trace_out,
            metadata={
                "command": analysis.get("command"),
                "trace_id": analysis.get("trace_id"),
            },
        )
        print(f"perfetto trace written to {path}")
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"analysis written to {args.out}")
    else:
        print(text)
    return 0


def cmd_obs_slo(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ConcentrationError
    from repro.obs.live import replay_journal
    from repro.obs.slo import evaluate_slo, load_slo_spec, slo_rows, violations

    if bool(args.journal) == bool(args.input):
        raise ReproError("give exactly one of --journal or --input")
    rules = load_slo_spec(args.spec)
    if args.journal:
        source = replay_journal(args.journal)
        against = args.journal
    else:
        from pathlib import Path

        if not Path(args.input).exists():
            raise ReproError(f"no input file at {args.input}")
        try:
            source = json.loads(Path(args.input).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ReproError(f"{args.input} is not JSON: {exc}") from None
        if not isinstance(source, dict):
            raise ReproError(f"{args.input} is not a JSON object")
        against = args.input
    verdicts = evaluate_slo(rules, source)
    failed = violations(verdicts)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "schema": "repro.cli/slo-verdicts@1",
                    "spec": str(args.spec),
                    "against": str(against),
                    "ok": not failed,
                    "verdicts": [v.as_dict() for v in verdicts],
                },
                indent=2,
            )
        )
    else:
        print(
            render_table(
                slo_rows(verdicts),
                title=f"SLO gate: {args.spec} vs {against}",
            )
        )
    if failed:
        names = ", ".join(v.rule.name for v in failed)
        if args.warn_only:
            print(
                f"WARNING: {len(failed)} objective(s) violated: {names} "
                "(warn-only mode: exiting 0)",
                file=sys.stderr,
            )
            return 0
        raise ConcentrationError(
            f"{len(failed)} SLO objective(s) violated: {names}"
        )
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    rows = obs.catalog_rows()
    if args.demo:
        from repro.messages.congestion import DropPolicy
        from repro.network.simulate import SwitchSimulation
        from repro.network.traffic import BernoulliTraffic
        from repro.switches.registry import build_switch

        with obs.collecting() as registry:
            switch = build_switch("revsort", n=64, m=48, r=0, s=0, beta=0.75)
            traffic = BernoulliTraffic(switch.n, p=0.8, seed=0)
            SwitchSimulation(switch, traffic, DropPolicy(), seed=0).run(rounds=20)
        snapshot = registry.snapshot()
        if args.format == "json":
            import json

            print(json.dumps(snapshot, indent=2))
        else:
            print(obs.metrics_markdown(snapshot))
        return 0
    if args.format == "json":
        import json

        print(json.dumps(rows, indent=2))
    else:
        print(render_table(rows, title="repro.obs metric catalog"))
        print(
            "every span also fills a '<name>.seconds' histogram; "
            "collect with --metrics-out on simulate/knockout/reproduce"
        )
    return 0


def _add_telemetry_flags(p: argparse.ArgumentParser) -> None:
    """Live-telemetry flags shared by the long-running commands."""
    p.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="stream a repro.obs/journal@1 JSONL event journal here "
        "(replayable with 'repro obs export --journal')",
    )
    p.add_argument(
        "--live",
        action="store_true",
        help="render live progress (phase, items/s, ETA) on stderr",
    )
    p.add_argument(
        "--crash-dir",
        default=None,
        metavar="DIR",
        help="write flight-recorder crash reports here on failure "
        "(default: next to --journal)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multichip partial concentrator switches (Cormen 1987)",
    )
    env_level = os.environ.get("REPRO_LOG", "warning").lower()
    parser.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default=env_level if env_level in _LOG_LEVELS else "warning",
        help="logging threshold for the 'repro' logger "
        "(default: $REPRO_LOG or warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="print Table 1 for a concrete size")
    p.add_argument("--n", type=int, default=4096)
    p.add_argument("--m", type=int, default=3072)
    p.add_argument("--format", choices=["table", "json", "csv"], default="table")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("design", help="sweep designs under a pin budget")
    p.add_argument("--n", type=int, default=1024)
    p.add_argument("--m", type=int, default=768)
    p.add_argument("--pin-budget", type=int, default=150)
    p.set_defaults(func=cmd_design)

    for name, func in (("simulate", cmd_simulate), ("verify", cmd_verify)):
        p = sub.add_parser(name)
        from repro.switches.registry import available

        p.add_argument(
            "switch_name",
            nargs="?",
            choices=available(),
            default=None,
            metavar="SWITCH",
            help="switch to use (same as --switch)",
        )
        p.add_argument("--switch", choices=available(), default="revsort")
        p.add_argument("--n", type=int, default=256)
        p.add_argument("--m", type=int, default=192)
        p.add_argument("--r", type=int, default=0)
        p.add_argument("--s", type=int, default=0)
        p.add_argument("--beta", type=float, default=0.75)
        p.add_argument("--seed", type=int, default=0)
        if name == "simulate":
            p.add_argument("--load", type=float, default=0.5)
            p.add_argument("--rounds", type=int, default=50)
            p.add_argument(
                "--policy",
                choices=["drop", "buffer", "resend", "retry"],
                default="drop",
            )
            p.add_argument(
                "--metrics-out",
                default=None,
                help="collect repro.obs metrics and write a JSON snapshot here",
            )
            _add_telemetry_flags(p)
        else:
            p.add_argument("--trials", type=int, default=100)
            p.add_argument(
                "--batch",
                action="store_true",
                help="verify through the batched engine path "
                "(setup_batch + vectorised contract checks); "
                "alias for --backend batch",
            )
            p.add_argument(
                "--backend",
                choices=["scalar", "batch", "process"],
                default=None,
                help="engine backend (default scalar; process = sharded "
                "multiprocess engine, see --workers)",
            )
            p.add_argument(
                "--workers",
                type=int,
                default=1,
                help="worker processes for --backend process "
                "(0 = one per core); results are identical for any "
                "worker count",
            )
            p.add_argument(
                "--format", choices=["table", "json"], default="table"
            )
        p.set_defaults(func=func)

    p = sub.add_parser(
        "certify",
        help="exhaustively certify registered designs "
        "(all valid-bit patterns for small n, stratified per-load above)",
    )
    from repro.switches.registry import available as _cert_available

    p.add_argument(
        "switch_name",
        nargs="?",
        choices=_cert_available(),
        default=None,
        metavar="SWITCH",
        help="certify one design (default: every registered design)",
    )
    p.add_argument("--n", type=int, default=0, help="override: inputs")
    p.add_argument("--m", type=int, default=0, help="override: outputs")
    p.add_argument("--r", type=int, default=0, help="override: matrix rows")
    p.add_argument("--s", type=int, default=0, help="override: matrix columns")
    p.add_argument(
        "--max-total",
        type=int,
        default=1 << 16,
        help="enumerate all 2^n patterns when 2^n fits this budget",
    )
    p.add_argument(
        "--max-per-k",
        type=int,
        default=512,
        help="stratified tier: pattern budget per load level k",
    )
    p.add_argument(
        "--out",
        default=None,
        help="write certificate JSON artifacts (a directory, or a .json "
        "path when certifying a single config)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for chunk certification (0 = one per "
        "core); certificates are byte-identical for any worker count",
    )
    p.add_argument(
        "--chunk",
        type=int,
        default=0,
        help="patterns per chunk (default: the library's chunk size); "
        "smaller chunks mean finer checkpoint/retry granularity",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist completed chunk reports to per-config journals "
        "under DIR; a killed run resumed with the same arguments skips "
        "finished chunks and emits an identical certificate",
    )
    p.add_argument("--format", choices=["table", "json"], default="table")
    p.add_argument(
        "--faults",
        action="store_true",
        help="additionally run a fault campaign per config and emit "
        "degradation certificates (see docs/robustness.md)",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        help="collect repro.obs metrics and write a JSON snapshot here",
    )
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_certify)

    p = sub.add_parser(
        "faults",
        help="fault injection and degraded-mode certification "
        "(docs/robustness.md)",
    )
    faults_sub = p.add_subparsers(dest="faults_command", required=True)
    p.set_defaults(func=cmd_faults)
    from repro.switches.registry import available as _faults_available

    pi = faults_sub.add_parser(
        "inject",
        help="inject one scenario into a switch and measure degradation",
    )
    pi.add_argument("--switch", choices=_faults_available(), default="revsort")
    pi.add_argument("--n", type=int, default=64)
    pi.add_argument("--m", type=int, default=48)
    pi.add_argument("--r", type=int, default=0)
    pi.add_argument("--s", type=int, default=0)
    pi.add_argument("--beta", type=float, default=0.75)
    pi.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="a fault to inject (repeatable): stuck0:PIN, stuck1:PIN, "
        "chip:STAGE:CHIP, wire:STAGE:POS, output:OUT, flaky:PIN:PROB",
    )
    pi.add_argument(
        "--sample",
        type=int,
        default=0,
        metavar="COUNT",
        help="instead of --fault specs: sample COUNT reliability-weighted "
        "faults",
    )
    pi.add_argument(
        "--classes",
        choices=["boundary", "structural", "all"],
        default="structural",
        help="fault classes for --sample",
    )
    pi.add_argument("--name", default="injected")
    pi.add_argument("--trials", type=int, default=32)
    pi.add_argument("--rounds", type=int, default=40,
                    help="simulation rounds for flaky-pin resilience")
    pi.add_argument("--seed", type=int, default=0)
    pi.add_argument(
        "--remap-outputs",
        action="store_true",
        help="route around dead output pads using spare positions",
    )
    pi.add_argument("--format", choices=["table", "json"], default="table")
    pi.add_argument("--metrics-out", default=None)
    pi.set_defaults(faults_func=cmd_faults_inject)

    ps = faults_sub.add_parser(
        "sweep",
        help="full fault campaign: monotone boundary chains, cross-path "
        "parity scenarios, flaky-pin resilience",
    )
    ps.add_argument(
        "--switch",
        choices=_faults_available(),
        default=None,
        help="sweep one geometry (default: the paper's n=4096 revsort "
        "and beta=2/3 columnsort)",
    )
    ps.add_argument("--n", type=int, default=256)
    ps.add_argument("--m", type=int, default=192)
    ps.add_argument("--r", type=int, default=0)
    ps.add_argument("--s", type=int, default=0)
    ps.add_argument("--beta", type=float, default=0.75)
    ps.add_argument(
        "--smoke",
        action="store_true",
        help="small geometries + live gate parity — the CI chaos job",
    )
    ps.add_argument("--chains", type=int, default=2)
    ps.add_argument("--chain-length", type=int, default=4)
    ps.add_argument("--parity-scenarios", type=int, default=3)
    ps.add_argument("--parity-faults", type=int, default=2)
    ps.add_argument("--flaky-scenarios", type=int, default=2)
    ps.add_argument("--trials", type=int, default=0,
                    help="capacity probes per scenario (default 32; 12 "
                    "with --smoke)")
    ps.add_argument("--rounds", type=int, default=0,
                    help="resilience simulation rounds (default 40; 20 "
                    "with --smoke)")
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument(
        "--out",
        default=None,
        help="directory for degradation certificate JSONs",
    )
    ps.add_argument("--format", choices=["table", "json"], default="table")
    ps.add_argument("--metrics-out", default=None)
    _add_telemetry_flags(ps)
    ps.set_defaults(faults_func=cmd_faults_sweep)

    pr2 = faults_sub.add_parser(
        "report",
        help="render degradation certificates produced by sweep/certify",
    )
    pr2.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="certificate files or directories of them",
    )
    pr2.set_defaults(faults_func=cmd_faults_report)

    p = sub.add_parser(
        "compare",
        help="partial-vs-perfect substitution experiment (Section 1)",
    )
    from repro.switches.registry import available as _available

    p.add_argument("--switch", choices=_available(), default="revsort")
    p.add_argument("--n", type=int, default=256)
    p.add_argument("--m", type=int, default=192)
    p.add_argument("--r", type=int, default=0)
    p.add_argument("--s", type=int, default=0)
    p.add_argument("--beta", type=float, default=0.75)
    p.add_argument("--trials", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the batched path (0 = one per core); "
        "results are identical for any worker count",
    )
    p.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="how --workers fan out: thread pool (default) or the "
        "sharded multiprocess engine pool",
    )
    p.add_argument("--format", choices=["table", "json"], default="table")
    p.add_argument(
        "--metrics-out",
        default=None,
        help="collect repro.obs metrics and write a JSON snapshot here",
    )
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("knockout", help="analytic vs simulated knockout loss")
    p.add_argument("--ports", type=int, default=16)
    p.add_argument("--load", type=float, default=0.9)
    p.add_argument("--slots", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--metrics-out",
        default=None,
        help="collect repro.obs metrics and write a JSON snapshot here",
    )
    p.set_defaults(func=cmd_knockout)

    p = sub.add_parser(
        "flows",
        help="event-driven flow-level fabric simulation: run one fabric "
        "or a head-to-head FCT study (see docs/flows.md)",
    )
    flows_sub = p.add_subparsers(dest="flows_command", required=True)
    p.set_defaults(func=cmd_flows)

    from repro.network.flows import fabric_names as _fabric_names
    from repro.network.flows import (
        size_distribution_names as _size_names,
    )

    def _add_flows_workload_flags(fp: argparse.ArgumentParser) -> None:
        fp.add_argument(
            "--n", type=int, default=64,
            help="fabric ports (power of four fits every fabric)",
        )
        fp.add_argument(
            "--load", type=float, default=0.7,
            help="offered load per port in cells/cycle",
        )
        fp.add_argument(
            "--duration", type=float, default=200.0,
            help="arrival horizon in cycles (the run drains afterwards)",
        )
        fp.add_argument(
            "--sizes", choices=_size_names(), default="websearch",
            help="flow size mix",
        )
        fp.add_argument(
            "--fixed-size", type=int, default=4,
            help="cells per flow for --sizes fixed",
        )
        fp.add_argument("--seed", type=int, default=0)
        fp.add_argument(
            "--no-backpressure", action="store_true",
            help="drop rejected cells instead of retransmitting",
        )
        fp.add_argument(
            "--max-cycles", type=int, default=0,
            help="cap fabric cycles (0 = the default drain bound)",
        )
        fp.add_argument(
            "--design", default="revsort",
            help="registry design for the concentrator fabric",
        )
        fp.add_argument(
            "--m", type=int, default=0,
            help="concentrator outputs (0 = 3n/4)",
        )
        fp.add_argument(
            "--lanes", type=int, default=4,
            help="knockout concentration ratio L",
        )
        fp.add_argument(
            "--fifo-depth", type=int, default=16,
            help="knockout per-output FIFO depth",
        )
        fp.add_argument(
            "--slot-cycles", type=int, default=1,
            help="cycles the rotor holds each matching",
        )
        fp.add_argument("--format", choices=["table", "json"], default="table")
        fp.add_argument(
            "--metrics-out",
            default=None,
            help="collect repro.obs metrics and write a JSON snapshot here",
        )
        _add_telemetry_flags(fp)

    pf = flows_sub.add_parser(
        "run", help="simulate one fabric over a seeded workload"
    )
    pf.add_argument(
        "--fabric", choices=_fabric_names(), default="concentrator"
    )
    _add_flows_workload_flags(pf)
    pf.set_defaults(flows_func=cmd_flows_run)

    pfc = flows_sub.add_parser(
        "compare",
        help="head-to-head FCT study: every fabric over the same workload",
    )
    pfc.add_argument(
        "--fabrics", default=None,
        help="comma-separated fabric subset (default: all)",
    )
    pfc.add_argument(
        "--workers", type=int, default=1,
        help="fan fabrics out over threads (0 = one per core); results "
        "are identical for any worker count",
    )
    _add_flows_workload_flags(pfc)
    pfc.set_defaults(flows_func=cmd_flows_compare)
    # The acceptance-sized default study: >=10^6 events at seed 0.
    pfc.set_defaults(n=256, duration=1500.0)

    p = sub.add_parser("reproduce", help="run the full reproduction report")
    p.add_argument("--output", default=None, help="also write a Markdown report here")
    p.add_argument(
        "--metrics-out",
        default=None,
        help="collect repro.obs metrics and write a JSON snapshot here "
        "(with --output, also adds a Metrics section to the report)",
    )
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser(
        "obs",
        help="observability: metric catalog, span-timeline traces, "
        "trajectory reports",
    )
    p.add_argument("--format", choices=["table", "json"], default="table")
    p.add_argument(
        "--demo",
        action="store_true",
        help="run a small instrumented simulation and print its snapshot",
    )
    p.set_defaults(func=cmd_obs)
    obs_sub = p.add_subparsers(dest="obs_command")

    pt = obs_sub.add_parser(
        "trace",
        help="run a switch geometry through the batch engine and export "
        "the span timeline as Chrome-trace/Perfetto JSON",
    )
    from repro.switches.registry import available as _trace_available

    pt.add_argument(
        "switch_name",
        nargs="?",
        choices=_trace_available(),
        default=None,
        metavar="SWITCH",
        help="switch to trace (same as --switch)",
    )
    pt.add_argument("--switch", choices=_trace_available(), default="columnsort")
    pt.add_argument("--n", type=int, default=4096)
    pt.add_argument("--m", type=int, default=3072)
    pt.add_argument("--r", type=int, default=0)
    pt.add_argument("--s", type=int, default=0)
    pt.add_argument("--beta", type=float, default=0.75)
    pt.add_argument("--trials", type=int, default=128)
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument("--out", required=True, help="Chrome-trace JSON path")
    pt.add_argument(
        "--max-spans",
        type=int,
        default=50_000,
        help="span buffer size (further spans are counted, not stored)",
    )
    pt.add_argument(
        "--profile",
        default=None,
        help="also cProfile the traced run: binary stats for .prof/.pstats "
        "paths (flamegraph tools), a pstats table otherwise",
    )
    pt.add_argument(
        "--profile-top",
        type=int,
        default=30,
        help="rows in the pstats table (text profiles only)",
    )
    pt.set_defaults(func=cmd_obs_trace)

    pe = obs_sub.add_parser(
        "export",
        help="render a metrics snapshot or a replayed event journal as "
        "OpenMetrics/Prometheus text or JSON",
    )
    pe.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="a metrics.json written by --metrics-out",
    )
    pe.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="a repro.obs/journal@1 JSONL to replay into a snapshot",
    )
    pe.add_argument(
        "--format", choices=["prometheus", "json"], default="prometheus"
    )
    pe.add_argument("--out", default=None, help="write instead of printing")
    pe.set_defaults(func=cmd_obs_export)

    pr = obs_sub.add_parser(
        "report", help="render the bench trajectory dashboard"
    )
    pr.add_argument(
        "--trajectory",
        default="BENCH_TRAJECTORY.jsonl",
        help="trajectory file to render",
    )
    pr.add_argument("--format", choices=["table", "md"], default="table")
    pr.add_argument("--out", default=None, help="write instead of printing")
    pr.set_defaults(func=cmd_obs_report)

    pa = obs_sub.add_parser(
        "analyze",
        help="reconstruct the causal span tree from a journal: critical "
        "path, per-phase breakdown, worker utilization/stragglers",
    )
    pa.add_argument(
        "journal", metavar="JOURNAL",
        help="a repro.obs/journal@1 JSONL written with --journal",
    )
    pa.add_argument("--format", choices=["table", "md", "json"], default="table")
    pa.add_argument("--out", default=None, help="write instead of printing")
    pa.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also export the replayed spans as Chrome-trace/Perfetto "
        "JSON (one track per worker, flow arrows from the dispatch span)",
    )
    pa.set_defaults(func=cmd_obs_analyze)

    ps = obs_sub.add_parser(
        "slo",
        help="evaluate a declarative SLO spec against a journal or a "
        "flows run/compare JSON; exits 1 on violation",
    )
    ps.add_argument(
        "--spec", required=True, help="SLO spec (.toml on Python >=3.11, or .json)"
    )
    ps.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="evaluate against a replayed repro.obs/journal@1 journal",
    )
    ps.add_argument(
        "--input",
        default=None,
        metavar="PATH",
        help="evaluate against a flows run/compare JSON document",
    )
    ps.add_argument("--format", choices=["table", "json"], default="table")
    ps.add_argument(
        "--warn-only",
        action="store_true",
        help="report violations but exit 0 (CI soak mode)",
    )
    ps.set_defaults(func=cmd_obs_slo)

    p = sub.add_parser(
        "bench",
        help="performance observatory: run bench suites, gate on the "
        "trajectory (see docs/performance.md)",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    pb = bench_sub.add_parser(
        "run",
        help="run a registry-driven bench suite and append trajectory "
        "records",
    )
    from repro.obs.perf.suite import suite_names as _suite_names

    pb.add_argument(
        "--suite", choices=_suite_names(), default="smoke",
        help="which suite to run (smoke: CI-sized, full: paper-scale)",
    )
    pb.add_argument("--repeats", type=int, default=3)
    pb.add_argument("--seed", type=int, default=0x1987)
    pb.add_argument(
        "--filter", default=None, help="only benches whose id contains this"
    )
    pb.add_argument(
        "--out",
        default="BENCH_TRAJECTORY.jsonl",
        help="append records to this trajectory file",
    )
    pb.add_argument(
        "--no-alloc",
        action="store_true",
        help="skip the (untimed) tracemalloc allocation pass",
    )
    pb.add_argument(
        "--workers",
        type=int,
        default=0,
        help="cap the process fan-out of scaling benches "
        "(0 = one per core; other suites are unaffected)",
    )
    _add_telemetry_flags(pb)
    pb.set_defaults(func=cmd_bench_run)

    pc = bench_sub.add_parser(
        "compare",
        help="diff the newest record per bench against its baseline "
        "window; exits 1 on regression",
    )
    from repro.obs.perf.regression import DEFAULT_TOLERANCE, DEFAULT_WINDOW

    pc.add_argument(
        "--baseline",
        default="BENCH_TRAJECTORY.jsonl",
        help="trajectory holding the baseline (and, without "
        "--candidate, the candidates too)",
    )
    pc.add_argument(
        "--candidate",
        default=None,
        help="separate trajectory whose newest records are the "
        "candidates (default: newest per bench in --baseline)",
    )
    pc.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative wall-time band treated as noise",
    )
    pc.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help="trailing records per bench forming the baseline median",
    )
    pc.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI smoke mode)",
    )
    pc.add_argument("--format", choices=["table", "json"], default="table")
    _add_telemetry_flags(pc)
    pc.set_defaults(func=cmd_bench_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _setup_logging(args.log_level)
    try:
        return args.func(args)
    except ConcentrationError as exc:
        # A violated concentration contract is a *finding* (exit 1, like
        # a failed verification), not a usage error.
        print(f"contract violation: {exc}", file=sys.stderr)
        return 1
    except ExecutionError as exc:
        # The run infrastructure failed (exhausted shard retries), not
        # the switch under test: exit 3, so CI can tell "rerun me" from
        # both findings (1) and usage errors (2).
        print(f"execution failure: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        # Configuration and usage errors (FaultInjectionError included)
        # exit 2, matching argparse's bad-arguments convention.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout's reader (e.g. `| head`) went away — exit quietly
        # instead of spewing a traceback.  Redirect stdout to devnull
        # so the interpreter's shutdown flush doesn't raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
