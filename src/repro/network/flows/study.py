"""The head-to-head fabric study behind ``repro flows compare``.

Methodology: one workload is generated once from the seed, and every
fabric simulates *exactly the same flows* — identical offered load,
identical arrival times, identical sizes — so differences in the
flow-completion-time percentiles and loss are attributable to the
fabric alone.  Each fabric's simulation is independent and
deterministic, which is why the study may fan fabrics out over a
thread pool (``workers > 1``) without changing a single byte of any
result: per-fabric telemetry is collected in private registries and
merged back in fabric order, mirroring the worker-determinism contract
of :func:`repro.analysis.sweep.sweep`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ConfigurationError
from repro.network.flows.fabric import build_fabric, fabric_names
from repro.network.flows.sim import FlowSim, FlowSimResult
from repro.network.flows.workload import WorkloadSpec, generate_flows
from repro.obs.live.merge import merge_portable, portable_snapshot, roundtrip


@dataclass
class CompareReport:
    """Results of one head-to-head run: one :class:`FlowSimResult` per
    fabric, all over the same workload."""

    workload: WorkloadSpec
    fabrics: list[str]
    results: dict[str, FlowSimResult] = field(default_factory=dict)

    @property
    def total_events(self) -> int:
        return sum(r.events for r in self.results.values())

    def as_dict(self) -> dict:
        return {
            "workload": {
                "n": self.workload.n,
                "load": self.workload.load,
                "duration": self.workload.duration,
                "sizes": self.workload.sizes,
                "seed": self.workload.seed,
            },
            "flows": next(iter(self.results.values())).flows
            if self.results
            else 0,
            "total_events": self.total_events,
            "fabrics": {
                name: self.results[name].as_dict() for name in self.fabrics
            },
        }


def _default_max_cycles(spec: WorkloadSpec) -> int:
    # Generous drain bound: under persistent overload a fabric clears
    # at most one cell per port per cycle, so 50x the arrival horizon
    # (plus slack for tiny workloads) always suffices for the loads the
    # CLI exposes while still bounding a pathological no-progress run.
    return int(spec.duration) * 50 + 5000


def run_fabric(
    name: str,
    spec: WorkloadSpec,
    *,
    backpressure: bool = True,
    max_cycles: int | None = None,
    **fabric_params,
) -> FlowSimResult:
    """Simulate one fabric over the workload (``repro flows run``)."""
    flows = generate_flows(spec)
    stage = build_fabric(name, spec.n, **fabric_params)
    sim = FlowSim(
        stage,
        flows,
        backpressure=backpressure,
        max_cycles=max_cycles or _default_max_cycles(spec),
    )
    return sim.run()


def head_to_head(
    spec: WorkloadSpec,
    fabrics: list[str] | None = None,
    *,
    backpressure: bool = True,
    workers: int = 0,
    max_cycles: int | None = None,
    **fabric_params,
) -> CompareReport:
    """Run every fabric over the same workload.

    ``fabrics`` defaults to all of :func:`fabric_names` (the paper's
    concentrator fabric, the fat-tree and knockout models, and the
    rotor/optical baseline).  ``fabric_params`` configure the stages
    (see :func:`~repro.network.flows.fabric.build_fabric`).
    """
    names = list(fabrics) if fabrics is not None else fabric_names()
    unknown = set(names) - set(fabric_names())
    if unknown:
        raise ConfigurationError(
            f"unknown fabrics: {sorted(unknown)}; "
            f"available: {', '.join(fabric_names())}"
        )
    flows = generate_flows(spec)
    cap = max_cycles or _default_max_cycles(spec)

    def _one(name: str) -> FlowSimResult:
        stage = build_fabric(name, spec.n, **fabric_params)
        return FlowSim(
            stage, flows, backpressure=backpressure, max_cycles=cap
        ).run()

    report = CompareReport(workload=spec, fabrics=names)
    parent = obs.get_registry()
    with parent.span("flows.compare", fabrics=",".join(names), n=spec.n):
        if workers > 1 and parent.enabled:
            # Each fabric collects telemetry into a private registry;
            # the snapshots merge back in fabric order, so metrics are
            # independent of thread interleaving.
            def _collected(name: str) -> tuple[FlowSimResult, dict]:
                local = obs.Registry()
                with obs.using(local):
                    result = _one(name)
                return result, roundtrip(portable_snapshot(local))

            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(_collected, names))
            for name, (result, snapshot) in zip(names, outcomes):
                merge_portable(parent, snapshot, worker=f"flows-{name}")
                report.results[name] = result
        elif workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for name, result in zip(names, pool.map(_one, names)):
                    report.results[name] = result
        else:
            for name in names:
                report.results[name] = _one(name)
    return report
