"""The event-driven flow simulator.

:class:`FlowSim` ties the pieces together: flows (from
:mod:`repro.network.flows.workload`) arrive at ToR-like ingress ports,
each port offers at most one cell per fabric cycle, and a
:class:`~repro.network.flows.fabric.FabricStage` decides each cell's
fate.  Time is event-driven — the heap-based
:class:`~repro.network.flows.events.EventQueue` holds flow arrivals at
their (real-valued) arrival times and fabric cycles at integer times,
and cycles are only scheduled while there is work: an idle fabric
consumes no events, so a sparse workload is cheap to simulate however
long its horizon.

Congestion control is TCP-ish per flow:

* each flow keeps an additive-increase/multiplicative-decrease
  congestion window ``cwnd`` (starts at 1, +1 per delivered cell,
  halved on loss, clamped to [1, 64]);
* with **backpressure** on (the default), a rejected cell is *not*
  lost: the flow keeps it for retransmission but backs off —
  suspended for ``max(1, round(4 / cwnd))`` cycles, so repeat losers
  pace down to one attempt per 4 cycles while healthy flows retry
  immediately;
* with backpressure off, a rejected cell is dropped permanently and
  the flow moves on — the open-loop mode the differential tests use,
  where the event-driven model must reduce exactly to the
  round-synchronous :class:`~repro.network.simulate.SwitchSimulation`;
* a **blocked** cell (rotor slot wait) is always retried next cycle
  with no penalty: nothing was dropped.

Ports schedule their flows round-robin: after a flow gets the port for
a cycle, it rotates to the back of the port's queue, so elephants
cannot starve mice sharing an ingress.

A flow completes when every cell is resolved (delivered or dropped,
including cells that surfaced later from an in-fabric FIFO); its
flow-completion time is ``resolution_cycle − arrival + 1`` — a
one-cell flow arriving at 0 and delivered in cycle 0 has FCT 1.

Everything here is a pure function of (flows, stage): the simulator
itself draws no randomness, which is what makes same-seed runs
byte-identical regardless of how the study layer shards fabrics over
workers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from math import ceil
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.network.flows.events import EventQueue, SimClock
from repro.network.flows.fabric import Cell, FabricStage
from repro.network.flows.workload import FlowSpec

#: AIMD clamp for the per-flow congestion window.
CWND_MAX = 64.0
#: Base backoff numerator: a cwnd-1 flow waits this many cycles.
BACKOFF_BASE = 4.0


@dataclass
class _FlowState:
    """Mutable per-flow bookkeeping."""

    spec: FlowSpec
    next_index: int = 0      # next cell of the flow to emit
    delivered: int = 0
    dropped: int = 0
    cwnd: float = 1.0
    next_ok: float = 0.0     # earliest cycle the flow may transmit
    finish: float = float("nan")

    @property
    def resolved(self) -> int:
        return self.delivered + self.dropped

    @property
    def done(self) -> bool:
        return self.resolved >= self.spec.size_cells


@dataclass
class FlowSimResult:
    """Outcome of one simulation run.

    ``fct[i]`` is flow i's completion time in cycles (NaN if the run
    hit ``max_cycles`` before the flow resolved).  ``offered_cells``
    counts transmission *attempts*, so with backpressure on it exceeds
    ``delivered_cells + dropped_cells`` by the retransmissions; with
    backpressure off the three balance exactly once the run drains.
    ``events`` counts queue events plus per-cell outcomes — the unit
    the CLI and CI budgets are expressed in.
    """

    fabric: str
    flows: int
    completed: int
    offered_cells: int
    delivered_cells: int
    dropped_cells: int
    faulted_cells: int
    blocked_cells: int
    cycles: int
    events: int
    fct: np.ndarray

    @property
    def loss_rate(self) -> float:
        return (
            self.dropped_cells / self.offered_cells if self.offered_cells else 0.0
        )

    def fct_percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0, 99.9)
    ) -> dict[str, float]:
        """FCT percentiles over completed flows (NaN-safe)."""
        finished = self.fct[~np.isnan(self.fct)]
        if not finished.size:
            return {f"p{q:g}": float("nan") for q in qs}
        return {
            f"p{q:g}": float(np.percentile(finished, q)) for q in qs
        }

    def as_dict(self) -> dict:
        out = {
            "fabric": self.fabric,
            "flows": self.flows,
            "completed": self.completed,
            "offered_cells": self.offered_cells,
            "delivered_cells": self.delivered_cells,
            "dropped_cells": self.dropped_cells,
            "faulted_cells": self.faulted_cells,
            "blocked_cells": self.blocked_cells,
            "loss_rate": self.loss_rate,
            "cycles": self.cycles,
            "events": self.events,
        }
        out.update(self.fct_percentiles())
        return out


@dataclass
class FlowSim:
    """Drive ``flows`` through ``stage`` to completion.

    ``checkpoint`` (if given) is called as ``checkpoint(sim, cycle)``
    after every fabric cycle — the conservation property suite hooks in
    here via :meth:`accounting`.  ``max_cycles`` caps the number of
    fabric cycles (unresolved flows keep NaN FCTs); the default runs
    until the backlog drains.
    """

    stage: FabricStage
    flows: Sequence[FlowSpec]
    backpressure: bool = True
    clock: SimClock | None = None
    max_cycles: int | None = None
    checkpoint: Callable[["FlowSim", int], None] | None = None

    _queue: EventQueue = field(init=False, repr=False)
    _states: list[_FlowState] = field(init=False, repr=False)
    _ports: list[deque[int]] = field(init=False, repr=False)
    _in_fabric: int = field(init=False, default=0)
    _arrived_cells: int = field(init=False, default=0)
    _cycle_scheduled: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        self._queue = EventQueue(clock=self.clock or SimClock())
        self._states = []
        for i, spec in enumerate(self.flows):
            if spec.flow_id != i:
                raise ConfigurationError(
                    f"flow ids must be dense and ordered; slot {i} holds "
                    f"flow {spec.flow_id}"
                )
            if not 0 <= spec.src < self.stage.n:
                raise ConfigurationError(
                    f"flow {i}: src {spec.src} outside fabric of width "
                    f"{self.stage.n}"
                )
            self._states.append(_FlowState(spec=spec))
        self._ports = [deque() for _ in range(self.stage.n)]

    # -- conservation ---------------------------------------------------

    def accounting(self) -> dict[str, int]:
        """Cell conservation snapshot: at every instant,
        ``arrived == delivered + dropped + in_fabric + at_source``."""
        delivered = sum(s.delivered for s in self._states)
        dropped = sum(s.dropped for s in self._states)
        at_source = sum(
            s.spec.size_cells - s.next_index
            for port in self._ports
            for s in (self._states[fid] for fid in port)
        )
        return {
            "arrived": self._arrived_cells,
            "delivered": delivered,
            "dropped": dropped,
            "in_fabric": self._in_fabric,
            "at_source": at_source,
        }

    # -- event loop -----------------------------------------------------

    def _schedule_cycle(self) -> None:
        if not self._cycle_scheduled:
            when = ceil(self._queue.clock.now)
            self._queue.push(float(when), "cycle")
            self._cycle_scheduled = True

    def _work_pending(self) -> bool:
        return self._in_fabric > 0 or any(self._ports)

    def run(self) -> FlowSimResult:
        reg = obs.get_registry()
        counts = {
            "delivered": 0, "dropped": 0, "blocked": 0, "faulted": 0,
            "offered": 0,
        }
        cycles = 0
        with reg.span(
            "flows.run", fabric=self.stage.name, flows=len(self._states)
        ):
            for state in self._states:
                self._queue.push(state.spec.arrival, "arrival", state.spec.flow_id)
            while self._queue:
                event = self._queue.pop()
                if event.kind == "arrival":
                    state = self._states[event.payload]
                    self._ports[state.spec.src].append(state.spec.flow_id)
                    self._arrived_cells += state.spec.size_cells
                    self._schedule_cycle()
                elif event.kind == "cycle":
                    self._cycle_scheduled = False
                    self._run_cycle(event.time, counts, reg)
                    cycles += 1
                    if self.checkpoint is not None:
                        self.checkpoint(self, cycles - 1)
                    if self.max_cycles is not None and cycles >= self.max_cycles:
                        break
                    if self._work_pending():
                        self._queue.push(event.time + 1.0, "cycle")
                        self._cycle_scheduled = True
            if reg.enabled:
                reg.counter("flows.cycles", fabric=self.stage.name).inc(cycles)
                reg.counter("flows.events", fabric=self.stage.name).inc(
                    self._queue.popped
                )

        fct = np.array([s.finish for s in self._states], dtype=np.float64)
        completed = int(np.count_nonzero(~np.isnan(fct)))
        events = (
            self._queue.popped
            + counts["delivered"] + counts["dropped"] + counts["blocked"]
        )
        return FlowSimResult(
            fabric=self.stage.name,
            flows=len(self._states),
            completed=completed,
            offered_cells=counts["offered"],
            delivered_cells=counts["delivered"],
            dropped_cells=counts["dropped"],
            faulted_cells=counts["faulted"],
            blocked_cells=counts["blocked"],
            cycles=cycles,
            events=events,
            fct=fct,
        )

    def _pick(self, port: deque[int], now: float) -> Cell | None:
        """The port's cell for this cycle: first eligible flow in
        round-robin order; the chosen flow rotates to the back."""
        for _ in range(len(port)):
            state = self._states[port[0]]
            if (
                state.next_ok <= now
                and state.next_index < state.spec.size_cells
                and self.stage.admits(state.spec.src, state.spec.dst)
            ):
                port.rotate(-1)
                return Cell(
                    flow_id=state.spec.flow_id,
                    src=state.spec.src,
                    dst=state.spec.dst,
                    index=state.next_index,
                )
            port.rotate(-1)
        return None

    def _resolve(self, state: _FlowState, now: float) -> None:
        if state.done and np.isnan(state.finish):
            state.finish = now - state.spec.arrival + 1.0
            try:
                self._ports[state.spec.src].remove(state.spec.flow_id)
            except ValueError:
                pass  # already retired

    def _run_cycle(self, now: float, counts: dict[str, int], reg) -> None:
        offered: dict[tuple[int, int], Cell] = {}
        slots: list[Cell | None] = [None] * self.stage.n
        for i, port in enumerate(self._ports):
            cell = self._pick(port, now)
            if cell is not None:
                slots[i] = cell
                offered[(cell.flow_id, cell.index)] = cell
        counts["offered"] += len(offered)

        outcome = self.stage.step(slots)
        counts["faulted"] += outcome.faulted

        for cell in outcome.delivered:
            state = self._states[cell.flow_id]
            key = (cell.flow_id, cell.index)
            if key in offered:
                del offered[key]
                state.next_index += 1
            else:
                self._in_fabric -= 1  # surfaced from an in-fabric FIFO
            state.delivered += 1
            state.cwnd = min(CWND_MAX, state.cwnd + 1.0)
            counts["delivered"] += 1
            self._resolve(state, now)

        for cell in outcome.rejected:
            state = self._states[cell.flow_id]
            del offered[(cell.flow_id, cell.index)]
            if self.backpressure:
                # Keep the cell; back off harder the smaller the window.
                state.cwnd = max(1.0, state.cwnd / 2.0)
                state.next_ok = now + max(1.0, round(BACKOFF_BASE / state.cwnd))
            else:
                state.next_index += 1
                state.dropped += 1
                counts["dropped"] += 1
                self._resolve(state, now)

        for cell in outcome.blocked:
            del offered[(cell.flow_id, cell.index)]
            counts["blocked"] += 1

        # Cells the stage absorbed (knockout FIFOs): the fabric owns
        # them now; they resurface in a later cycle's delivered list.
        for cell in offered.values():
            self._states[cell.flow_id].next_index += 1
            self._in_fabric += 1

        if reg.enabled:
            reg.counter("flows.cells_offered", fabric=self.stage.name).inc(
                int(np.count_nonzero([s is not None for s in slots]))
            )
            reg.counter("flows.cells_delivered", fabric=self.stage.name).inc(
                len(outcome.delivered)
            )
            if outcome.rejected and not self.backpressure:
                reg.counter("flows.cells_dropped", fabric=self.stage.name).inc(
                    len(outcome.rejected)
                )
            if outcome.blocked:
                reg.counter("flows.cells_blocked", fabric=self.stage.name).inc(
                    len(outcome.blocked)
                )
            if outcome.faulted:
                reg.counter("flows.cells_faulted", fabric=self.stage.name).inc(
                    outcome.faulted
                )
            # Per-cycle timeseries: the shape of congestion over the
            # run, not just its end-of-run totals.  The fabric cycle
            # index is the time axis (deterministic; see
            # repro.obs.timeseries for the decimation contract).
            fabric = self.stage.name
            reg.series("flows.queue_depth", fabric=fabric).append(
                self.stage.in_flight(), t=now
            )
            reg.series("flows.inflight_cells", fabric=fabric).append(
                self._in_fabric, t=now
            )
            reg.series("flows.cwnd_mean", fabric=fabric).append(
                sum(s.cwnd for s in self._states) / len(self._states)
                if self._states
                else 0.0,
                t=now,
            )
            reg.series("flows.delivery_rate", fabric=fabric).append(
                len(outcome.delivered), t=now
            )
            reg.series("flows.drop_rate", fabric=fabric).append(
                len(outcome.rejected) if not self.backpressure else 0,
                t=now,
            )
