"""Event-driven flow-level fabric simulation.

Where :mod:`repro.network.simulate` drives a switch round by round with
synthetic per-round loads, this package models *traffic*: servers open
TCP-ish flows against a fabric of concentrator stages, cells move
through ToR-like ingress queues under backpressure, and the clock only
advances when something happens.  The pieces:

* :mod:`repro.network.flows.events` — the deterministic heap-based
  event queue (stable FIFO tie-breaking, injectable clock);
* :mod:`repro.network.flows.workload` — heavy-tailed flow generators
  (websearch/datamining-style size mixes) seeded via ``SeedSequence``;
* :mod:`repro.network.flows.fabric` — pluggable fabric stages: the
  paper's concentrator switches (routed through the engine's batch
  path, fault scenarios included), a knockout-style output-buffered
  stage, the fat-tree up-path, and a rotor/optical round-robin
  partition baseline;
* :mod:`repro.network.flows.sim` — :class:`FlowSim`, the event loop
  tying them together and measuring flow-completion times;
* :mod:`repro.network.flows.study` — the head-to-head comparison
  behind ``repro flows compare``.

See ``docs/flows.md`` for the event model and the methodology of the
head-to-head study.
"""

from repro.network.flows.events import Event, EventQueue, SimClock
from repro.network.flows.fabric import (
    Cell,
    ConcentratorFabric,
    FabricStage,
    FatTreeFabric,
    KnockoutFabric,
    RotorFabric,
    StageOutcome,
    build_fabric,
    fabric_names,
)
from repro.network.flows.sim import FlowSim, FlowSimResult
from repro.network.flows.study import CompareReport, head_to_head, run_fabric
from repro.network.flows.workload import (
    FlowSpec,
    SizeDistribution,
    WorkloadSpec,
    generate_flows,
    one_shot_flows,
    size_distribution,
    size_distribution_names,
)

__all__ = [
    "Cell",
    "CompareReport",
    "ConcentratorFabric",
    "Event",
    "EventQueue",
    "FabricStage",
    "FatTreeFabric",
    "FlowSim",
    "FlowSimResult",
    "FlowSpec",
    "KnockoutFabric",
    "RotorFabric",
    "SimClock",
    "SizeDistribution",
    "StageOutcome",
    "WorkloadSpec",
    "build_fabric",
    "fabric_names",
    "generate_flows",
    "head_to_head",
    "one_shot_flows",
    "run_fabric",
    "size_distribution",
    "size_distribution_names",
]
