"""Pluggable fabric stages for the event-driven flow simulator.

A fabric stage is the thing cells contend against once per cycle: the
simulator offers at most one :class:`Cell` per ingress port and the
stage classifies each offered cell into one of three fates —

* **delivered** — the cell won a path and leaves the fabric;
* **rejected** — the cell lost the contention (a real loss: the
  congestion model decides whether to retransmit it);
* **blocked** — the fabric could not even consider the cell this cycle
  (a rotor waiting for its slot); blocked cells re-queue for a later
  cycle with no congestion penalty, because nothing was dropped.

A stage may also hold cells *in flight* (the knockout model's output
FIFOs): those cells appear in a later cycle's ``delivered`` list, and
:meth:`FabricStage.in_flight` exposes the count so flow conservation
can be checked at any instant.

Four stages cover the head-to-head study:

* :class:`ConcentratorFabric` — the paper's subject: an n-to-m
  concentrator switch from the registry guards the uplinks.  Routing
  goes through the engine's batched setup path (one row per cycle, the
  compiled plan amortized across cycles), and a
  :class:`repro.faults.FaultScenario` applies exactly as in the
  round-synchronous simulator: structural faults wrap the switch in a
  :class:`~repro.faults.injector.FaultySwitch`, flaky pins flip per
  cycle with the scenario's own seed.
* :class:`KnockoutFabric` — a knockout-style output-buffered stage:
  cells bound for the same egress contend through an n-to-L
  concentrator (the knockout principle), winners enter a bounded FIFO
  drained one cell per cycle.
* :class:`FatTreeFabric` — the binary fat-tree up-path of
  :mod:`repro.network.fattree`, survivors per cycle via
  :meth:`~repro.network.fattree.FatTree.route_round_detailed`.
* :class:`RotorFabric` — a rotor/optical round-robin partition
  baseline: each cycle port i is wired to one destination; a cell
  whose destination is not currently wired waits (blocked), one whose
  slot is up always delivers.  No contention, no loss — the cost is
  latency.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro._util.rng import default_rng
from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.fattree import FatTree, Routed, universal_capacity
from repro.switches.base import ConcentratorSwitch
from repro.switches.perfect import PerfectConcentrator
from repro.switches.registry import build_switch


@dataclass(frozen=True)
class Cell:
    """One fixed-size unit of a flow in flight: cell ``index`` of flow
    ``flow_id``, from ingress ``src`` toward egress ``dst``."""

    flow_id: int
    src: int
    dst: int
    index: int


@dataclass
class StageOutcome:
    """What one fabric cycle did with the offered (and buffered) cells.

    ``faulted`` counts the subset of ``rejected`` killed by flaky input
    pins before reaching the switch — loss charged to hardware, not
    contention.
    """

    delivered: list[Cell] = field(default_factory=list)
    rejected: list[Cell] = field(default_factory=list)
    blocked: list[Cell] = field(default_factory=list)
    faulted: int = 0


class FabricStage(ABC):
    """Abstract fabric stage: ``n`` ingress ports, one cycle at a time."""

    #: Subclasses set these in ``__init__``.
    name: str
    n: int

    @abstractmethod
    def step(self, cells: list[Cell | None]) -> StageOutcome:
        """Advance one cycle with at most one cell per ingress port."""

    def in_flight(self) -> int:
        """Cells buffered inside the stage (0 for bufferless stages)."""
        return 0

    def admits(self, src: int, dst: int) -> bool:
        """Whether a cell src→dst could possibly advance *this* cycle.

        A VOQ-style scheduling hint: the ingress port skips flows the
        fabric would only block (a rotor whose slot is elsewhere) and
        gives the cycle to one it might serve.  Stages where every cell
        at least contends (everything but the rotor) always admit.
        """
        return True

    def describe(self) -> dict:
        return {"name": self.name, "n": self.n}

    def _check(self, cells: list[Cell | None]) -> None:
        if len(cells) != self.n:
            raise ConfigurationError(
                f"{self.name}: expected {self.n} ingress slots, got {len(cells)}"
            )
        for i, cell in enumerate(cells):
            if cell is None:
                continue
            if cell.src != i:
                raise ConfigurationError(
                    f"{self.name}: cell of flow {cell.flow_id} in slot {i} "
                    f"claims src {cell.src}"
                )
            if not 0 <= cell.dst < self.n:
                raise ConfigurationError(
                    f"{self.name}: bad destination {cell.dst}"
                )


class ConcentratorFabric(FabricStage):
    """An uplink stage guarded by one of the paper's concentrators.

    Cells contend for the switch's m output channels; winners exit the
    fabric (descent is modelled lossless, as in the fat-tree).  Routing
    uses :meth:`~repro.switches.base.ConcentratorSwitch.setup_batch`
    with one row per cycle so the compiled plan and the engine backend
    are exercised exactly as the benchmarks exercise them.
    """

    def __init__(self, switch: ConcentratorSwitch, *, scenario=None,
                 remap_outputs: bool = False):
        self.name = "concentrator"
        self.n = switch.n
        self.switch = switch
        self._flaky: tuple = ()
        self._fault_rng = None
        if scenario is not None:
            # Imported lazily: repro.faults imports network modules for
            # its resilience measurements.
            from repro.faults.injector import FaultySwitch

            structural = scenario.structural()
            if structural.fault_count:
                self.switch = FaultySwitch(
                    switch, structural, remap_outputs=remap_outputs
                )
            self._flaky = tuple(scenario.flaky_pins())
            if self._flaky:
                self._fault_rng = default_rng(scenario.seed)

    def describe(self) -> dict:
        out = super().describe()
        out["m"] = self.switch.m
        out["switch"] = type(self.switch).__name__
        return out

    def step(self, cells: list[Cell | None]) -> StageOutcome:
        self._check(cells)
        valid = np.array([cell is not None for cell in cells], dtype=bool)
        outcome = StageOutcome()
        effective = valid
        garbled = np.zeros(self.n, dtype=bool)
        if self._flaky:
            # Same semantics as SwitchSimulation._flip_flaky: a flip on
            # an occupied pin garbles the cell before the switch sees
            # it; a flip on an idle pin raises a ghost that occupies
            # capacity but delivers nothing.
            effective = valid.copy()
            for pin, p in self._flaky:
                if self._fault_rng.random() >= p:
                    continue
                if valid[pin]:
                    garbled[pin] = True
                effective[pin] = not valid[pin]
        routing = self.switch.setup_batch(effective[None, :])
        io = routing.input_to_output[0]
        for i, cell in enumerate(cells):
            if cell is None:
                continue
            if garbled[i]:
                outcome.rejected.append(cell)
                outcome.faulted += 1
            elif io[i] >= 0:
                outcome.delivered.append(cell)
            else:
                outcome.rejected.append(cell)
        return outcome


class KnockoutFabric(FabricStage):
    """A knockout-style output-buffered stage.

    Per cycle, the cells bound for egress ``o`` contend through an
    n-to-L concentrator (L = ``lanes``, the knockout ratio); winners
    enter egress ``o``'s FIFO of depth ``fifo_depth``, losers and FIFO
    overflow are rejected.  Every non-empty FIFO then transmits one
    cell — those are the cycle's deliveries, so a cell's fabric latency
    is its queueing delay.
    """

    def __init__(self, n: int, *, lanes: int = 4, fifo_depth: int = 16,
                 concentrator_factory=None):
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        if lanes < 1:
            raise ConfigurationError(f"lanes must be >= 1, got {lanes}")
        if fifo_depth < 1:
            raise ConfigurationError(f"fifo_depth must be >= 1, got {fifo_depth}")
        self.name = "knockout"
        self.n = n
        self.lanes = min(lanes, n)
        self.fifo_depth = fifo_depth
        factory = concentrator_factory or PerfectConcentrator
        self._picker = factory(n, self.lanes) if self.lanes < n else None
        self._fifos: list[deque[Cell]] = [deque() for _ in range(n)]

    def describe(self) -> dict:
        out = super().describe()
        out["lanes"] = self.lanes
        out["fifo_depth"] = self.fifo_depth
        return out

    def in_flight(self) -> int:
        return sum(len(f) for f in self._fifos)

    def step(self, cells: list[Cell | None]) -> StageOutcome:
        self._check(cells)
        outcome = StageOutcome()
        groups: dict[int, list[Cell]] = {}
        for cell in cells:
            if cell is not None:
                groups.setdefault(cell.dst, []).append(cell)
        for dst, contenders in sorted(groups.items()):
            if self._picker is not None and len(contenders) > self.lanes:
                valid = np.zeros(self.n, dtype=bool)
                by_src = {}
                for cell in contenders:
                    valid[cell.src] = True
                    by_src[cell.src] = cell
                io = self._picker.setup(valid).input_to_output
                winners = [by_src[s] for s in sorted(by_src) if io[s] >= 0]
                outcome.rejected.extend(
                    by_src[s] for s in sorted(by_src) if io[s] < 0
                )
            else:
                winners = contenders
            fifo = self._fifos[dst]
            for cell in winners:
                if len(fifo) < self.fifo_depth:
                    fifo.append(cell)
                else:
                    outcome.rejected.append(cell)
        for fifo in self._fifos:
            if fifo:
                outcome.delivered.append(fifo.popleft())
        # The occupancy curve is the knockout story (winners queue,
        # losers knock out) — one sample per fabric cycle.
        obs.series("flows.fifo_depth", fabric=self.name).append(self.in_flight())
        return outcome


class FatTreeFabric(FabricStage):
    """The binary fat-tree up-path as a fabric stage.

    Each cycle is one fat-tree round: ascent hops concentrate, losers
    are rejected, survivors are delivered (descent lossless).  Cell
    identity comes back through
    :meth:`~repro.network.fattree.FatTree.route_round_detailed` — one
    cell per leaf per cycle makes ``src`` a unique key.
    """

    def __init__(self, n: int, *, capacity_profile=None,
                 concentrator_factory=None):
        if n < 2 or n & (n - 1):
            raise ConfigurationError(
                f"fat-tree fabric needs a power-of-two port count, got {n}"
            )
        self.name = "fattree"
        self.n = n
        height = n.bit_length() - 1
        self.tree = FatTree(
            height,
            capacity_profile or universal_capacity(height),
            concentrator_factory,
        )

    def describe(self) -> dict:
        out = super().describe()
        out["height"] = self.tree.height
        out["capacity"] = dict(self.tree.capacity)
        return out

    def step(self, cells: list[Cell | None]) -> StageOutcome:
        self._check(cells)
        messages: list[Routed | None] = [None] * self.n
        by_src: dict[int, Cell] = {}
        for i, cell in enumerate(cells):
            if cell is None:
                continue
            messages[i] = Routed(
                message=Message.from_int(cell.flow_id % 256, 8),
                src=i,
                dst=cell.dst,
            )
            by_src[i] = cell
        _, survivors = self.tree.route_round_detailed(messages)
        outcome = StageOutcome()
        alive = {routed.src for routed in survivors}
        for src in sorted(by_src):
            (outcome.delivered if src in alive else outcome.rejected).append(
                by_src[src]
            )
        return outcome


class RotorFabric(FabricStage):
    """A rotor/optical round-robin partition baseline.

    At cycle t, port i is wired to destination ``(i + 1 + t) mod n``
    (the +1 skips the useless self-slot when the rotation passes it).
    A cell whose destination is wired delivers; every other cell is
    blocked — it waits, loss-free, for its slot.  This is the one-hop
    rotor model: full fairness, zero loss, worst-case n−1 cycles of
    slot latency.
    """

    def __init__(self, n: int, *, slot_cycles: int = 1):
        if n < 2:
            raise ConfigurationError(f"rotor fabric needs n >= 2, got {n}")
        if slot_cycles < 1:
            raise ConfigurationError(
                f"slot_cycles must be >= 1, got {slot_cycles}"
            )
        self.name = "rotor"
        self.n = n
        self.slot_cycles = slot_cycles
        self._cycle = 0

    def describe(self) -> dict:
        out = super().describe()
        out["slot_cycles"] = self.slot_cycles
        return out

    def _shift(self) -> int:
        return 1 + (self._cycle // self.slot_cycles) % (self.n - 1)

    def admits(self, src: int, dst: int) -> bool:
        # A cell's own port (dst == src) never needs the fabric.
        return dst == src or dst == (src + self._shift()) % self.n

    def step(self, cells: list[Cell | None]) -> StageOutcome:
        self._check(cells)
        outcome = StageOutcome()
        shift = self._shift()
        self._cycle += 1
        for i, cell in enumerate(cells):
            if cell is None:
                continue
            if cell.dst == (i + shift) % self.n or cell.dst == i:
                outcome.delivered.append(cell)
            else:
                outcome.blocked.append(cell)
        return outcome


def fabric_names() -> list[str]:
    return ["concentrator", "fattree", "knockout", "rotor"]


def build_fabric(
    name: str,
    n: int,
    *,
    design: str = "revsort",
    m: int | None = None,
    scenario=None,
    remap_outputs: bool = False,
    lanes: int = 4,
    fifo_depth: int = 16,
    slot_cycles: int = 1,
    **params,
) -> FabricStage:
    """Build a fabric stage by name.

    ``design``/``m``/``params`` configure the concentrator stage's
    registry switch (m defaults to 3n/4, the registry's usual shape);
    ``lanes``/``fifo_depth`` configure the knockout stage;
    ``slot_cycles`` the rotor's matching hold time; ``scenario``
    applies a fault scenario to the concentrator stage.
    """
    if name == "concentrator":
        m = m if m is not None else max(1, (3 * n) // 4)
        switch = build_switch(design, n=n, m=m, **params)
        return ConcentratorFabric(
            switch, scenario=scenario, remap_outputs=remap_outputs
        )
    if name == "knockout":
        return KnockoutFabric(n, lanes=lanes, fifo_depth=fifo_depth)
    if name == "fattree":
        return FatTreeFabric(n)
    if name == "rotor":
        return RotorFabric(n, slot_cycles=slot_cycles)
    raise ConfigurationError(
        f"unknown fabric {name!r}; available: {', '.join(fabric_names())}"
    )
