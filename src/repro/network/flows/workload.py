"""Flow workload generation for the event-driven simulator.

A workload is a list of :class:`FlowSpec` — who sends, to where, how
many cells, starting when.  Arrivals are Poisson per ingress port;
sizes come from discrete heavy-tailed mixes shaped like the published
datacenter traces:

* ``websearch`` — the DCTCP-style web-search mix: most flows are a
  handful of cells (queries and responses), a thin tail of multi-
  hundred-cell background transfers carries most of the bytes;
* ``datamining`` — the VL2-style data-mining mix: even more extreme —
  over half the flows are a single cell while kilocell elephants
  dominate the volume;
* ``uniform`` — a flat 1..32-cell control mix (no heavy tail);
* ``fixed`` — every flow exactly ``fixed_size`` cells (the degenerate
  mix the differential tests use).

Everything is seeded through ``numpy.random.SeedSequence``: the
workload seed spawns one child per ingress port, so the flow list is
byte-identical however the simulation is later sharded or threaded,
and two fabrics handed the same :class:`WorkloadSpec` see the *same*
flows — the precondition for a fair head-to-head at identical offered
load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FlowSpec:
    """One flow: ``size_cells`` cells from ingress ``src`` toward leaf
    ``dst``, arriving at time ``arrival`` (in cycles)."""

    flow_id: int
    src: int
    dst: int
    size_cells: int
    arrival: float


@dataclass(frozen=True)
class SizeDistribution:
    """A discrete flow-size distribution: ``sizes[i]`` cells with
    cumulative probability ``cdf[i]`` (``cdf[-1] == 1``).  Sampling is
    inverse-CDF over uniforms, so one draw consumes exactly one uniform
    whatever the mix."""

    name: str
    sizes: tuple[int, ...]
    cdf: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.cdf) or not self.sizes:
            raise ConfigurationError("sizes and cdf must be non-empty and equal length")
        if abs(self.cdf[-1] - 1.0) > 1e-12:
            raise ConfigurationError(f"cdf must end at 1.0, got {self.cdf[-1]}")
        if any(b <= a for a, b in zip(self.cdf, self.cdf[1:])):
            raise ConfigurationError("cdf must be strictly increasing")
        if any(s < 1 for s in self.sizes):
            raise ConfigurationError("flow sizes must be >= 1 cell")

    @property
    def mean_cells(self) -> float:
        pmf = np.diff(np.concatenate(([0.0], np.asarray(self.cdf))))
        return float(np.dot(pmf, np.asarray(self.sizes, dtype=float)))

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` iid sizes (int64 cells)."""
        draws = rng.random(count)
        idx = np.searchsorted(np.asarray(self.cdf), draws, side="right")
        idx = np.minimum(idx, len(self.sizes) - 1)
        return np.asarray(self.sizes, dtype=np.int64)[idx]


#: The published-trace-shaped mixes, quantized to cells.
_DISTRIBUTIONS: dict[str, SizeDistribution] = {
    "websearch": SizeDistribution(
        "websearch",
        sizes=(1, 2, 3, 5, 7, 10, 15, 30, 50, 100, 300, 1000),
        cdf=(0.15, 0.20, 0.30, 0.40, 0.53, 0.60, 0.70, 0.80, 0.90, 0.97,
             0.995, 1.0),
    ),
    "datamining": SizeDistribution(
        "datamining",
        sizes=(1, 2, 3, 7, 50, 200, 1000, 5000),
        cdf=(0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.98, 1.0),
    ),
    "uniform": SizeDistribution(
        "uniform",
        sizes=tuple(range(1, 33)),
        cdf=tuple((i + 1) / 32 for i in range(32)),
    ),
}


def size_distribution_names() -> list[str]:
    return sorted(_DISTRIBUTIONS) + ["fixed"]


def size_distribution(name: str, *, fixed_size: int = 4) -> SizeDistribution:
    """Look up a mix by name; ``fixed`` builds a point mass at
    ``fixed_size`` cells."""
    if name == "fixed":
        if fixed_size < 1:
            raise ConfigurationError("fixed_size must be >= 1 cell")
        return SizeDistribution("fixed", sizes=(fixed_size,), cdf=(1.0,))
    try:
        return _DISTRIBUTIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown size distribution {name!r}; available: "
            f"{', '.join(size_distribution_names())}"
        ) from None


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a generated workload.

    ``load`` is the offered load per ingress port in cells per cycle
    (1.0 saturates a port); the per-port Poisson flow arrival rate is
    ``load / mean_size``.  ``duration`` is the arrival horizon in
    cycles — flows stop *arriving* then, but the simulation runs on
    until the backlog drains.
    """

    n: int
    load: float = 0.7
    duration: float = 200.0
    sizes: str = "websearch"
    fixed_size: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.load <= 0.0:
            raise ConfigurationError(f"load must be > 0, got {self.load}")
        if self.duration <= 0.0:
            raise ConfigurationError(
                f"duration must be > 0, got {self.duration}"
            )

    @property
    def distribution(self) -> SizeDistribution:
        return size_distribution(self.sizes, fixed_size=self.fixed_size)


def generate_flows(spec: WorkloadSpec) -> list[FlowSpec]:
    """The full flow list of a workload, sorted by (arrival, flow_id).

    One ``SeedSequence`` child per ingress port drives that port's
    arrival process (exponential gaps) and its size/destination draws,
    so ports are independent streams and the list is reproducible from
    ``spec`` alone.  Flow ids are assigned *after* the global sort, so
    they are dense, deterministic, and ordered by arrival.
    """
    dist = spec.distribution
    rate = spec.load / dist.mean_cells  # flows per cycle per port
    children = np.random.SeedSequence(spec.seed).spawn(spec.n)
    raw: list[tuple[float, int, int, int]] = []
    for src, child in enumerate(children):
        rng = np.random.default_rng(child)
        # Draw a generous block of gaps at once; top up in the rare
        # case the block does not cover the horizon.
        expect = max(8, int(spec.duration * rate * 2) + 8)
        t = 0.0
        arrivals: list[float] = []
        while True:
            gaps = rng.exponential(1.0 / rate, size=expect)
            for gap in gaps:
                t += float(gap)
                if t >= spec.duration:
                    break
                arrivals.append(t)
            if t >= spec.duration:
                break
        if not arrivals:
            continue
        sizes = dist.sample(rng, len(arrivals))
        dsts = rng.integers(0, spec.n, size=len(arrivals))
        for when, size, dst in zip(arrivals, sizes, dsts):
            raw.append((when, src, int(size), int(dst)))
    raw.sort(key=lambda item: (item[0], item[1]))
    return [
        FlowSpec(flow_id=i, src=src, dst=dst, size_cells=size, arrival=when)
        for i, (when, src, size, dst) in enumerate(raw)
    ]


def one_shot_flows(
    sizes: Iterable[int], *, dsts: Iterable[int] | None = None
) -> list[FlowSpec]:
    """The degenerate workload of the differential tests: exactly one
    flow per ingress port, all arriving at t=0.  ``sizes[i]`` is the
    flow of ingress ``i``; ``dsts`` defaults to ``dst == src``."""
    sizes = [int(s) for s in sizes]
    if any(s < 1 for s in sizes):
        raise ConfigurationError("every one-shot flow needs >= 1 cell")
    if dsts is None:
        dst_list = list(range(len(sizes)))
    else:
        dst_list = [int(d) for d in dsts]
        if len(dst_list) != len(sizes):
            raise ConfigurationError("dsts must match sizes in length")
    return [
        FlowSpec(flow_id=i, src=i, dst=dst_list[i], size_cells=size, arrival=0.0)
        for i, size in enumerate(sizes)
    ]
