"""Deterministic event plumbing for the flow-level simulator.

The whole determinism story of :mod:`repro.network.flows` rests on two
invariants enforced here:

* **stable ordering** — events pop in non-decreasing time, and events
  scheduled for the *same* time pop in the order they were scheduled
  (a monotone sequence number breaks heap ties), so the event loop is
  a pure function of the schedule, never of hash order or float luck;
* **monotone clock** — the :class:`SimClock` only moves forward;
  scheduling into the past is a programming error and raises
  immediately instead of silently reordering history.

The clock is injectable: :class:`~repro.network.flows.sim.FlowSim`
creates one by default but accepts any object with the same interface,
which is how tests freeze time or start a simulation mid-epoch.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.errors import ConfigurationError


class Event(NamedTuple):
    """One scheduled occurrence.

    ``seq`` is the global schedule order — the FIFO tie-break for
    events sharing a timestamp.  ``kind`` is a small string tag
    (``"arrival"``, ``"cycle"``); ``payload`` is whatever the producer
    wants back when the event fires.
    """

    time: float
    seq: int
    kind: str
    payload: object


@dataclass
class SimClock:
    """A forward-only simulation clock.

    ``now`` is the current simulation time in cycles.  The event loop
    calls :meth:`advance_to` as it pops events; components read
    ``clock.now`` instead of carrying timestamps around.
    """

    now: float = 0.0

    def advance_to(self, time: float) -> None:
        if time < self.now:
            raise ConfigurationError(
                f"clock cannot run backwards: at {self.now}, asked for {time}"
            )
        self.now = time


@dataclass
class EventQueue:
    """A heap-based future event list with stable FIFO tie-breaking.

    ``push`` assigns each event the next sequence number, so two
    events at the same timestamp always pop in push order — Python's
    heapq compares the ``(time, seq)`` prefix of the tuples and never
    reaches the (possibly uncomparable) payloads.
    """

    clock: SimClock = field(default_factory=SimClock)
    _heap: list[Event] = field(default_factory=list)
    _seq: int = 0
    popped: int = 0

    def push(self, time: float, kind: str, payload: object = None) -> Event:
        """Schedule ``kind`` at ``time`` (≥ the clock, or it raises)."""
        if time < self.clock.now:
            raise ConfigurationError(
                f"cannot schedule {kind!r} at {time} behind the clock "
                f"({self.clock.now})"
            )
        event = Event(float(time), self._seq, kind, payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time)
        self.popped += 1
        return event

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or None when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
