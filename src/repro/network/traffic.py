"""Synthetic workload generators.

Each generator produces, per round, the set of input wires that carry a
valid message (and the message payloads).  These play the role of the
parallel computer's traffic that the paper's switches would see.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro._util.rng import default_rng
from repro.errors import ConfigurationError
from repro.messages.message import Message


class TrafficGenerator(ABC):
    """Produces one message set (length-n list of Message/None) per
    round."""

    def __init__(self, n: int, payload_bits: int = 8, seed: int | None = None):
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        if payload_bits < 0:
            raise ConfigurationError("payload_bits must be non-negative")
        self.n = n
        self.payload_bits = payload_bits
        self.rng = default_rng(seed)

    @abstractmethod
    def active_inputs(self) -> np.ndarray:
        """Indices of inputs carrying a valid message this round."""

    def next_round(self) -> list[Message | None]:
        messages: list[Message | None] = [None] * self.n
        for i in self.active_inputs():
            value = int(self.rng.integers(0, 1 << self.payload_bits)) if self.payload_bits else 0
            messages[int(i)] = Message.from_int(value, self.payload_bits)
        return messages


class BernoulliTraffic(TrafficGenerator):
    """Each input independently carries a message with probability
    ``p`` (the offered load per wire)."""

    def __init__(self, n: int, p: float, payload_bits: int = 8, seed: int | None = None):
        super().__init__(n, payload_bits, seed)
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        self.p = p

    def active_inputs(self) -> np.ndarray:
        return np.flatnonzero(self.rng.random(self.n) < self.p)


class FixedKTraffic(TrafficGenerator):
    """Exactly ``k`` uniformly chosen inputs carry messages — the load
    model of the paper's k-message analyses."""

    def __init__(self, n: int, k: int, payload_bits: int = 8, seed: int | None = None):
        super().__init__(n, payload_bits, seed)
        if not 0 <= k <= n:
            raise ConfigurationError(f"k={k} out of range for n={n}")
        self.k = k

    def active_inputs(self) -> np.ndarray:
        return self.rng.choice(self.n, size=self.k, replace=False)


class HotSpotTraffic(TrafficGenerator):
    """A contiguous band of inputs is hot (per-wire probability
    ``p_hot``) while the rest stay at ``p_cold`` — stresses the switch
    with spatially clustered valid bits, the adversarial pattern for
    mesh-based nearsorters."""

    def __init__(
        self,
        n: int,
        hot_fraction: float = 0.25,
        p_hot: float = 0.9,
        p_cold: float = 0.05,
        payload_bits: int = 8,
        seed: int | None = None,
    ):
        super().__init__(n, payload_bits, seed)
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in (0, 1]")
        for name, p in (("p_hot", p_hot), ("p_cold", p_cold)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        self.hot_count = max(1, int(round(hot_fraction * n)))
        self.p_hot = p_hot
        self.p_cold = p_cold

    def active_inputs(self) -> np.ndarray:
        start = int(self.rng.integers(0, self.n))
        hot = (np.arange(self.hot_count) + start) % self.n
        mask = np.zeros(self.n, dtype=bool)
        mask[hot] = self.rng.random(self.hot_count) < self.p_hot
        cold = np.setdiff1d(np.arange(self.n), hot, assume_unique=False)
        mask[cold] = self.rng.random(cold.size) < self.p_cold
        return np.flatnonzero(mask)
