"""Analytic loss models for concentrator-based switches.

The knockout concentrator admits a clean closed form under uniform
traffic: with N inputs each holding a packet with probability p and
destinations uniform, the number of packets contending for one output
in a slot is A ~ Binomial(N, p/N).  An N-to-L concentrator drops
``max(0, A − L)``, so

    loss(L) = E[max(0, A − L)] / E[A].

Comparing this curve with the event-level simulation
(:mod:`repro.network.knockout`) is a strong cross-check: two completely
independent routes to the same number.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def binomial_pmf(n: int, k: int, p: float) -> float:
    """P[Binomial(n, p) = k] (exact, via lgamma for stability)."""
    if not 0 <= k <= n:
        return 0.0
    if p <= 0.0:
        return 1.0 if k == 0 else 0.0
    if p >= 1.0:
        return 1.0 if k == n else 0.0
    log_choose = (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
    return math.exp(log_choose + k * math.log(p) + (n - k) * math.log(1 - p))


def knockout_loss_analytic(ports: int, load: float, concentrator_outputs: int) -> float:
    """Expected knockout loss rate for an N-port switch with N-to-L
    concentrators under uniform Bernoulli(p) traffic."""
    if ports < 1:
        raise ConfigurationError(f"ports must be positive, got {ports}")
    if not 0.0 <= load <= 1.0:
        raise ConfigurationError(f"load must be in [0, 1], got {load}")
    if not 1 <= concentrator_outputs <= ports:
        raise ConfigurationError("need 1 <= L <= N")
    p_hit = load / ports  # P[a given input sends to a given output]
    expected_arrivals = load  # N * p_hit
    if expected_arrivals == 0.0:
        return 0.0
    expected_overflow = 0.0
    for a in range(concentrator_outputs + 1, ports + 1):
        expected_overflow += (a - concentrator_outputs) * binomial_pmf(
            ports, a, p_hit
        )
    return expected_overflow / expected_arrivals


def knockout_l_for_target_loss(
    ports: int, load: float, target: float
) -> int:
    """Smallest L whose analytic loss is at or below ``target`` — the
    design question the knockout concentrator answers ('L = 8 suffices
    for negligible loss')."""
    if target <= 0.0:
        raise ConfigurationError("target loss must be positive")
    for L in range(1, ports + 1):
        if knockout_loss_analytic(ports, load, L) <= target:
            return L
    return ports
