"""A knockout-style packet switch built from concentrators.

The paper's introduction places concentrators inside "the switches
that route messages [in] many parallel computing systems".  The
canonical such design, contemporaneous with the paper, is the knockout
switch (Yeh–Hluchyj–Acampora, 1987): an N-port output-buffered packet
switch in which every output port listens to all N inputs through an
**N-to-L concentrator** — at most L packets per slot reach the output
buffers and the rest are "knocked out".  The concentrator is exactly
the component this library builds, so :class:`KnockoutSwitch` wires
any of our concentrator switches into that role and measures the loss
the design is famous for (loss falls off steeply in L and is nearly
independent of N).

Packets are (destination, payload) pairs; one slot routes at most one
packet per input.  Each output port has an N-input concentrator with
``L`` outputs feeding a FIFO of configurable depth, drained at one
packet per slot (the output line rate).
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.switches.base import ConcentratorSwitch
from repro.switches.perfect import PerfectConcentrator

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Packet:
    """One fixed-size packet."""

    source: int
    destination: int
    slot: int


@dataclass
class KnockoutStats:
    """Loss accounting for a run."""

    offered: int = 0
    knocked_out: int = 0      # lost in a concentrator (arrivals > L)
    buffer_overflow: int = 0  # lost to a full output FIFO
    delivered: int = 0
    per_output_delivered: list[int] = field(default_factory=list)

    @property
    def lost(self) -> int:
        return self.knocked_out + self.buffer_overflow

    @property
    def loss_rate(self) -> float:
        return self.lost / self.offered if self.offered else 0.0


class KnockoutSwitch:
    """An N-port output-buffered switch with per-output N-to-L
    concentrators.

    Parameters
    ----------
    ports:
        Number of input (and output) ports N.
    concentrator_outputs:
        L, the concentrator fan-in limit per output per slot.
    buffer_depth:
        Output FIFO capacity (packets); drained 1/slot.
    concentrator_factory:
        Builds the N-to-L concentrator for each output; defaults to
        the perfect concentrator.  Passing a partial-concentrator
        factory reproduces the paper's cheaper switches in the role.
    """

    def __init__(
        self,
        ports: int,
        concentrator_outputs: int,
        *,
        buffer_depth: int = 16,
        concentrator_factory: Callable[[int, int], ConcentratorSwitch] | None = None,
    ):
        if ports < 1:
            raise ConfigurationError(f"ports must be positive, got {ports}")
        if not 1 <= concentrator_outputs <= ports:
            raise ConfigurationError(
                f"need 1 <= L <= N, got L={concentrator_outputs}, N={ports}"
            )
        if buffer_depth < 1:
            raise ConfigurationError("buffer_depth must be positive")
        self.ports = ports
        self.L = concentrator_outputs
        self.buffer_depth = buffer_depth
        factory = concentrator_factory or PerfectConcentrator
        self.concentrators = [
            factory(ports, concentrator_outputs) for _ in range(ports)
        ]
        for conc in self.concentrators:
            if conc.n != ports or conc.m != concentrator_outputs:
                raise ConfigurationError(
                    "concentrator_factory must build an N-to-L switch "
                    f"(got {conc.n}-to-{conc.m})"
                )
        self._fifos: list[deque[Packet]] = [deque() for _ in range(ports)]
        self.stats = KnockoutStats(per_output_delivered=[0] * ports)

    def step(self, packets: list[Packet | None]) -> list[Packet | None]:
        """Advance one slot: admit ``packets`` (one per input, None =
        idle), run every output's concentrator, enqueue survivors, and
        drain one packet per output.  Returns the packets leaving on
        each output line this slot."""
        if len(packets) != self.ports:
            raise ConfigurationError(
                f"expected {self.ports} input slots, got {len(packets)}"
            )
        offered = sum(1 for p in packets if p is not None)
        self.stats.offered += offered
        reg = obs.get_registry()
        knocked_before = self.stats.knocked_out
        overflow_before = self.stats.buffer_overflow
        delivered_before = self.stats.delivered

        for out_port, conc in enumerate(self.concentrators):
            valid = np.array(
                [p is not None and p.destination == out_port for p in packets],
                dtype=bool,
            )
            k = int(valid.sum())
            if k == 0:
                continue
            routing = conc.setup(valid)
            winners = [
                packets[i]
                for i in np.flatnonzero(valid)
                if routing.input_to_output[i] >= 0
            ]
            self.stats.knocked_out += k - len(winners)
            fifo = self._fifos[out_port]
            for packet in winners:
                if len(fifo) >= self.buffer_depth:
                    self.stats.buffer_overflow += 1
                else:
                    fifo.append(packet)

        outputs: list[Packet | None] = [None] * self.ports
        for out_port, fifo in enumerate(self._fifos):
            if fifo:
                outputs[out_port] = fifo.popleft()
                self.stats.delivered += 1
                self.stats.per_output_delivered[out_port] += 1
        if reg.enabled:
            reg.counter("knockout.offered").inc(offered)
            reg.counter("knockout.knocked_out").inc(
                self.stats.knocked_out - knocked_before
            )
            reg.counter("knockout.buffer_overflow").inc(
                self.stats.buffer_overflow - overflow_before
            )
            reg.counter("knockout.delivered").inc(
                self.stats.delivered - delivered_before
            )
        return outputs

    def queue_lengths(self) -> list[int]:
        return [len(f) for f in self._fifos]

    def drain(self) -> list[Packet]:
        """Drain all FIFOs (end of a run); counts as delivered."""
        leftovers: list[Packet] = []
        for out_port, fifo in enumerate(self._fifos):
            while fifo:
                leftovers.append(fifo.popleft())
                self.stats.delivered += 1
                self.stats.per_output_delivered[out_port] += 1
        return leftovers


def uniform_packet_traffic(
    ports: int, p: float, slots: int, seed: int | None = None
):
    """Generator of per-slot packet lists: each input holds a packet
    with probability ``p``, destination uniform over outputs."""
    from repro._util.rng import default_rng

    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    rng = default_rng(seed)
    for slot in range(slots):
        packets: list[Packet | None] = [None] * ports
        active = np.flatnonzero(rng.random(ports) < p)
        destinations = rng.integers(0, ports, size=active.size)
        for src, dst in zip(active, destinations):
            packets[int(src)] = Packet(source=int(src), destination=int(dst), slot=slot)
        yield packets


def knockout_loss_curve(
    ports: int,
    loads: list[float],
    l_values: list[int],
    *,
    slots: int = 200,
    buffer_depth: int = 64,
    concentrator_factory=None,
    seed: int | None = None,
) -> dict[tuple[float, int], float]:
    """Measure concentrator (knockout) loss rate for each (load, L)."""
    results: dict[tuple[float, int], float] = {}
    for p in loads:
        for L in l_values:
            with obs.span("knockout.config", load=p, L=L):
                switch = KnockoutSwitch(
                    ports,
                    L,
                    buffer_depth=buffer_depth,
                    concentrator_factory=concentrator_factory,
                )
                for packets in uniform_packet_traffic(ports, p, slots, seed=seed):
                    switch.step(packets)
                switch.drain()
                offered = switch.stats.offered
                results[(p, L)] = (
                    switch.stats.knocked_out / offered if offered else 0.0
                )
            logger.debug(
                "knockout load=%.3f L=%d: offered=%d knocked_out=%d",
                p, L, offered, switch.stats.knocked_out,
            )
    return results
