"""A fat-tree routing network with concentrator up-links.

The paper's research context (the same MIT group and report) routes
messages on fat-trees built from constant-size switches; concentrators
are the natural up-link elements: at each internal node, the messages
ascending from a node's subtree contend for the node's limited up-link
*channel capacity*, and an n-to-m concentrator picks the winners.

This module implements a binary fat-tree of height h over
``2^h`` leaf processors:

* each level-d internal node (d = 1 at the leaves' parents) has an
  **up-link capacity** ``cap(d)`` given by a capacity profile;
* a message from leaf ``src`` to leaf ``dst`` ascends to the lowest
  common ancestor (concentrating at every hop) and then descends —
  descent is non-blocking in this model (the classic fat-tree
  bottleneck is the up path);
* at every ascent hop, the contending messages enter a concentrator
  switch built by a pluggable factory (perfect by default, or any of
  the paper's partial concentrators), and losers are dropped and
  counted.

The simulation routes one *round* (a batch of messages, at most one
per leaf) and reports per-level contention — enough to study how the
capacity profile and the concentrator quality shape delivery, which is
exactly the role Section 1 casts concentrators in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.switches.base import ConcentratorSwitch
from repro.switches.perfect import PerfectConcentrator


@dataclass(frozen=True)
class Routed:
    """A message with its fat-tree addressing."""

    message: Message
    src: int
    dst: int


@dataclass
class FatTreeStats:
    """Per-round accounting."""

    offered: int = 0
    delivered: int = 0
    dropped_per_level: dict[int, int] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        return sum(self.dropped_per_level.values())

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.offered if self.offered else 1.0


def lca_level(src: int, dst: int) -> int:
    """Height of the lowest common ancestor of two leaves (1 = their
    shared parent)."""
    if src == dst:
        return 0
    return (src ^ dst).bit_length()


class FatTree:
    """A binary fat-tree with concentrator up-links.

    Parameters
    ----------
    height:
        Tree height h; ``2^h`` leaves.
    capacity_profile:
        ``cap(d)`` = up-link channel capacity out of a level-d node
        (d = 1..h−1; the root has no up-link).  A *universal*-style
        profile grows toward the root; a thin tree keeps it constant.
    concentrator_factory:
        Builds the n-to-m concentrator used at each ascent hop.
    """

    def __init__(
        self,
        height: int,
        capacity_profile: Callable[[int], int],
        concentrator_factory: Callable[[int, int], ConcentratorSwitch] | None = None,
    ):
        if height < 1:
            raise ConfigurationError(f"height must be >= 1, got {height}")
        self.height = height
        self.leaves = 1 << height
        self.capacity = {
            d: int(capacity_profile(d)) for d in range(1, height)
        }
        for d, cap in self.capacity.items():
            if cap < 1:
                raise ConfigurationError(f"capacity at level {d} must be >= 1")
        self._factory = concentrator_factory or PerfectConcentrator
        self._switch_cache: dict[tuple[int, int], ConcentratorSwitch] = {}

    def _switch(self, n: int, m: int) -> ConcentratorSwitch:
        key = (n, m)
        if key not in self._switch_cache:
            if m >= n:
                self._switch_cache[key] = None  # no contention possible
            else:
                self._switch_cache[key] = self._factory(n, m)
        return self._switch_cache[key]

    def route_round(self, messages: list[Routed | None]) -> FatTreeStats:
        """Route one batch (``messages[i]`` leaves leaf i, or None).

        Ascent: at each level d, the messages that must rise *above*
        level d within each level-d subtree contend for that subtree's
        up-link capacity through a concentrator.  Descent: lossless.
        """
        stats, _ = self.route_round_detailed(messages)
        return stats

    def route_round_detailed(
        self, messages: list[Routed | None]
    ) -> tuple[FatTreeStats, list[Routed]]:
        """Like :meth:`route_round`, but also return the survivors —
        the messages actually delivered, identified by their ``src``
        slot.  The event-driven fabric layer needs the identities (one
        message per leaf per round, so ``src`` is a unique key); the
        round-synchronous callers keep the stats-only view."""
        if len(messages) != self.leaves:
            raise ConfigurationError(
                f"expected {self.leaves} slots, got {len(messages)}"
            )
        stats = FatTreeStats()
        live: list[Routed] = []
        for i, routed in enumerate(messages):
            if routed is None:
                continue
            if routed.src != i:
                raise ConfigurationError(f"message in slot {i} claims src {routed.src}")
            if not 0 <= routed.dst < self.leaves:
                raise ConfigurationError(f"bad destination {routed.dst}")
            stats.offered += 1
            live.append(routed)

        # Messages whose LCA is at level d leave the up path there.
        for d in range(1, self.height):
            cap = self.capacity[d]
            survivors: list[Routed] = []
            # Group the messages still ascending through level d by
            # their level-d subtree (top bits of src).
            groups: dict[int, list[Routed]] = {}
            for msg in live:
                if lca_level(msg.src, msg.dst) > d:
                    groups.setdefault(msg.src >> d, []).append(msg)
                else:
                    survivors.append(msg)  # already turned downward
            dropped_here = 0
            for subtree, contenders in groups.items():
                n = 1 << d  # wires up from this subtree's leaves
                if len(contenders) <= cap or cap >= n:
                    survivors.extend(contenders)
                    continue
                switch = self._switch(n, min(cap, n))
                valid = np.zeros(n, dtype=bool)
                slot_of = {}
                base = subtree << d
                for msg in contenders:
                    slot = msg.src - base
                    valid[slot] = True
                    slot_of[slot] = msg
                routing = switch.setup(valid)
                for slot, msg in slot_of.items():
                    if routing.input_to_output[slot] >= 0:
                        survivors.append(msg)
                    else:
                        dropped_here += 1
            if dropped_here:
                stats.dropped_per_level[d] = dropped_here
            live = survivors

        stats.delivered = len(live)
        return stats, live


def universal_capacity(height: int, base: int = 2) -> Callable[[int], int]:
    """A capacity profile growing geometrically toward the root
    (area-universal-style): ``cap(d) = base^d / 2`` clamped to ≥ 1.
    Half-bisection: cheap, loses some worst-case permutations."""
    def cap(d: int) -> int:
        return max(1, (base**d) // 2)

    return cap


def full_bisection_capacity() -> Callable[[int], int]:
    """``cap(d) = 2^d``: every subtree can raise all its leaves'
    messages at once — permutation routing is lossless."""
    def cap(d: int) -> int:
        return 1 << d

    return cap


def constant_capacity(value: int) -> Callable[[int], int]:
    """A thin tree: the same up-link capacity at every level."""
    def cap(_d: int) -> int:
        return value

    return cap


def random_permutation_round(
    tree: FatTree, load: float, rng: np.random.Generator
) -> list[Routed | None]:
    """One round of permutation traffic: each leaf sends with
    probability ``load`` to a distinct random destination."""
    if not 0.0 <= load <= 1.0:
        raise ConfigurationError(f"load must be in [0, 1], got {load}")
    n = tree.leaves
    perm = rng.permutation(n)
    out: list[Routed | None] = [None] * n
    for src in range(n):
        if rng.random() < load and perm[src] != src:
            out[src] = Routed(
                message=Message.from_int(src % 256, 8), src=src, dst=int(perm[src])
            )
    return out
