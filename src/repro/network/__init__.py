"""Routing-network application substrate.

The paper's introduction motivates concentrators as components of the
message-routing networks of parallel computers: many input lines carry
relatively few messages that must be funneled onto fewer output links.
This package provides the synthetic workloads and round-based network
simulations that exercise that use case:

* :mod:`repro.network.traffic` — Bernoulli, fixed-k, and hot-spot
  workload generators;
* :mod:`repro.network.simulate` — single-switch and two-level
  concentration-tree simulations under a congestion policy, with
  throughput/loss statistics (the light-load equivalence experiment of
  Section 1 lives here);
* :mod:`repro.network.flows` — the event-driven flow-level layer:
  TCP-ish flows with heavy-tailed sizes against pluggable fabric
  stages, measuring flow-completion times (``repro flows``).
"""

from repro.network.analytic import (
    knockout_l_for_target_loss,
    knockout_loss_analytic,
)
from repro.network.fattree import (
    FatTree,
    Routed,
    constant_capacity,
    full_bisection_capacity,
    random_permutation_round,
    universal_capacity,
)
from repro.network.flows import (
    FlowSim,
    FlowSimResult,
    FlowSpec,
    WorkloadSpec,
    build_fabric,
    fabric_names,
    generate_flows,
    head_to_head,
)
from repro.network.funnel import FunnelNetwork, LevelStats
from repro.network.knockout import (
    KnockoutSwitch,
    Packet,
    knockout_loss_curve,
    uniform_packet_traffic,
)
from repro.network.simulate import (
    ConcentrationTree,
    RoundResult,
    SwitchSimulation,
    compare_partial_vs_perfect,
)
from repro.network.traffic import (
    BernoulliTraffic,
    FixedKTraffic,
    HotSpotTraffic,
    TrafficGenerator,
)

__all__ = [
    "BernoulliTraffic",
    "FatTree",
    "FlowSim",
    "FlowSimResult",
    "FlowSpec",
    "WorkloadSpec",
    "build_fabric",
    "fabric_names",
    "generate_flows",
    "head_to_head",
    "Routed",
    "constant_capacity",
    "full_bisection_capacity",
    "knockout_l_for_target_loss",
    "knockout_loss_analytic",
    "random_permutation_round",
    "universal_capacity",
    "FunnelNetwork",
    "KnockoutSwitch",
    "LevelStats",
    "Packet",
    "knockout_loss_curve",
    "uniform_packet_traffic",
    "ConcentrationTree",
    "FixedKTraffic",
    "HotSpotTraffic",
    "RoundResult",
    "SwitchSimulation",
    "TrafficGenerator",
    "compare_partial_vs_perfect",
]
