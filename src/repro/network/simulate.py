"""Round-based network simulations built around concentrator switches.

Two scenarios:

* :class:`SwitchSimulation` — a single switch fed by a traffic
  generator under a congestion policy; measures delivered/lost/retried
  messages per round.  This is the intro's "concentrate few messages on
  many lines onto fewer output lines" setting.
* :class:`ConcentrationTree` — a two-level funnel of switches: a bank
  of first-level switches whose outputs feed one second-level switch,
  modelling a fan-in stage of a larger routing network.

:func:`compare_partial_vs_perfect` reproduces the Section 1 claim that
an ``(n/α, m/α, α)`` partial concentrator can stand in for an n-by-m
perfect concentrator: under any k ≤ m offered messages both route
everything; past m, both saturate at m.
"""

from __future__ import annotations

import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro._util.rng import default_rng
from repro.errors import ConfigurationError
from repro.messages.congestion import CongestionPolicy, DropPolicy
from repro.messages.message import Message
from repro.obs.live.merge import merge_portable, portable_snapshot, roundtrip
from repro.switches.base import ConcentratorSwitch

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RoundResult:
    """Outcome of one simulated round.

    ``unrouted`` counts the messages the switch failed to deliver this
    round (routing failures, fault kills, and flaky-pin drops at the
    inputs); the congestion policy then splits them into ``lost``
    (permanently dropped) and ``retried`` (queued for a later round),
    so ``unrouted == lost + retried`` always holds.  ``faulted`` is
    the subset of ``unrouted`` killed at a flaky input pin before
    reaching the switch; ``expired`` is the subset of ``lost`` the
    policy aged out via its TTL.
    """

    round_index: int
    offered: int
    injected: int
    delivered: int
    unrouted: int
    lost: int = 0
    retried: int = 0
    faulted: int = 0
    expired: int = 0


@dataclass
class SimulationSummary:
    """Aggregate statistics over a run.

    The totals are accumulated round by round from the same numbers
    recorded in ``per_round``, so the two views (and the metrics the
    :mod:`repro.obs` layer collects) cannot disagree:
    ``lost == sum(r.lost)`` and ``retried == sum(r.retried)``.
    ``faulted``/``expired`` carry the graceful-degradation accounting
    (see :class:`RoundResult`).
    """

    rounds: int = 0
    offered: int = 0
    delivered: int = 0
    lost: int = 0
    retried: int = 0
    faulted: int = 0
    expired: int = 0
    per_round: list[RoundResult] = field(default_factory=list)

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction of offered traffic; 0.0 when nothing was
        offered (rounds=0 or an empty workload — an empty run delivered
        nothing, it did not deliver everything)."""
        return self.delivered / self.offered if self.offered else 0.0

    @property
    def loss_rate(self) -> float:
        return self.lost / self.offered if self.offered else 0.0


class SwitchSimulation:
    """Drive one switch with a traffic generator and congestion policy.

    Passing ``scenario`` injects a :class:`repro.faults.FaultScenario`:
    structural faults (stuck pins, dead chips, severed wires, dead
    outputs) wrap the switch in a
    :class:`~repro.faults.injector.FaultySwitch`, while the scenario's
    flaky pins flip per round with their own Bernoulli draws.  The flip
    stream is seeded by the scenario — not the policy or simulator seed
    — so two simulations differing only in congestion policy see the
    *same* fault history and their delivery rates are comparable.
    ``remap_outputs=True`` additionally routes around dead output pads
    using the spare output positions (plan-based switches only).
    """

    def __init__(
        self,
        switch: ConcentratorSwitch,
        traffic,
        policy: CongestionPolicy | None = None,
        seed: int | None = None,
        scenario=None,
        remap_outputs: bool = False,
    ):
        if traffic.n != switch.n:
            raise ConfigurationError(
                f"traffic width {traffic.n} != switch inputs {switch.n}"
            )
        self.switch = switch
        self._flaky: tuple = ()
        self._fault_rng = None
        if scenario is not None:
            # Imported lazily: repro.faults imports the simulator for
            # its resilience measurements.
            from repro.faults.injector import FaultySwitch

            structural = scenario.structural()
            if structural.fault_count:
                self.switch = FaultySwitch(
                    switch, structural, remap_outputs=remap_outputs
                )
            self._flaky = scenario.flaky_pins()
            if self._flaky:
                self._fault_rng = default_rng(scenario.seed)
        self.traffic = traffic
        self.policy = policy if policy is not None else DropPolicy()
        self.rng = default_rng(seed)

    def run(self, rounds: int) -> SimulationSummary:
        summary = SimulationSummary()
        reg = obs.get_registry()
        with reg.span("sim.run", rounds=rounds, switch=repr(self.switch)):
            for round_index in range(rounds):
                with reg.span("sim.round", round=round_index):
                    self._run_round(round_index, summary, reg)
        logger.debug(
            "simulated %d rounds: offered=%d delivered=%d lost=%d retried=%d "
            "faulted=%d expired=%d",
            summary.rounds, summary.offered, summary.delivered,
            summary.lost, summary.retried, summary.faulted, summary.expired,
        )
        return summary

    def _flip_flaky(
        self, injected: list[Message | None], valid: np.ndarray
    ) -> tuple[np.ndarray, list[Message], int]:
        """Apply one round of Bernoulli pin flips.

        A flip on an occupied pin garbles the message (it never reaches
        the switch — returned as ``faulted`` for the policy to handle);
        a flip on an idle pin raises a ghost signal that occupies switch
        capacity but delivers nothing.
        """
        if not self._flaky:
            return valid, [], 0
        faulted: list[Message] = []
        effective = valid.copy()
        for pin, p in self._flaky:
            if self._fault_rng.random() >= p:
                continue
            if valid[pin]:
                faulted.append(injected[pin])
                injected[pin] = None
            effective[pin] = not valid[pin]
        return effective, faulted, int(effective.sum() - (valid.sum() - len(faulted)))

    def _run_round(
        self, round_index: int, summary: SimulationSummary, reg
    ) -> None:
        fresh = self.traffic.next_round()
        offered = sum(1 for msg in fresh if msg is not None)
        self.policy.on_offered(offered)

        # Merge the policy's backlog into idle input slots.  Policies
        # with timed release (ResendPolicy, RetryPolicy) expose
        # ``backlog_due``; the rest release everything.
        if hasattr(self.policy, "backlog_due"):
            backlog = self.policy.backlog_due(round_index)
        else:
            backlog = self.policy.backlog()
        injected = list(fresh)
        overflow: list[Message] = []
        if backlog:
            idle = [i for i, msg in enumerate(injected) if msg is None]
            self.rng.shuffle(idle)
            for msg, slot in zip(backlog, idle):
                injected[slot] = msg
            overflow = backlog[len(idle):]

        valid = np.array([msg is not None for msg in injected], dtype=bool)
        effective, faulted_msgs, ghosts = self._flip_flaky(injected, valid)
        real = np.array([msg is not None for msg in injected], dtype=bool)
        routing = self.switch.setup(effective)
        # Only real messages count: ghosts raised by flaky pins consume
        # switch capacity but deliver nothing.
        unrouted = [
            injected[i]
            for i in np.flatnonzero(real)
            if routing.input_to_output[i] < 0
        ] + faulted_msgs + overflow
        delivered = int((real & (routing.input_to_output >= 0)).sum())

        self.policy.on_delivered(delivered)
        # The policy decides each unrouted message's fate; the deltas in
        # its counters are this round's losses, retries, and expiries.
        dropped_before = self.policy.stats.dropped
        retried_before = self.policy.stats.retried
        expired_before = getattr(self.policy.stats, "expired", 0)
        self.policy.on_unrouted(unrouted, round_index)
        lost = self.policy.stats.dropped - dropped_before
        retried = self.policy.stats.retried - retried_before
        expired = getattr(self.policy.stats, "expired", 0) - expired_before

        faulted = len(faulted_msgs)
        summary.rounds += 1
        summary.offered += offered
        summary.delivered += delivered
        summary.lost += lost
        summary.retried += retried
        summary.faulted += faulted
        summary.expired += expired
        summary.per_round.append(
            RoundResult(
                round_index=round_index,
                offered=offered,
                injected=int(real.sum()) + ghosts,
                delivered=delivered,
                unrouted=len(unrouted),
                lost=lost,
                retried=retried,
                faulted=faulted,
                expired=expired,
            )
        )
        if reg.enabled:
            reg.counter("sim.rounds").inc()
            reg.counter("sim.offered").inc(offered)
            reg.counter("sim.injected").inc(int(real.sum()) + ghosts)
            reg.counter("sim.delivered").inc(delivered)
            reg.counter("sim.lost").inc(lost)
            reg.counter("sim.retried").inc(retried)
            if faulted:
                reg.counter("sim.faulted").inc(faulted)
            if expired:
                reg.counter("sim.expired").inc(expired)


class ConcentrationTree:
    """A two-level funnel: ``fan_in`` leaf switches feed one root.

    Each leaf concentrates its n inputs onto m outputs; the root
    concentrates the concatenated leaf outputs onto its own m outputs.
    Models a fan-in stage of a multistage routing network.
    """

    def __init__(self, leaves: list[ConcentratorSwitch], root: ConcentratorSwitch):
        total = sum(leaf.m for leaf in leaves)
        if total != root.n:
            raise ConfigurationError(
                f"root expects {root.n} inputs but leaves deliver {total}"
            )
        self.leaves = leaves
        self.root = root

    @property
    def n(self) -> int:
        return sum(leaf.n for leaf in self.leaves)

    @property
    def m(self) -> int:
        return self.root.m

    def route(self, messages: list[Message | None]) -> tuple[list[Message | None], int]:
        """Route one message set through both levels; returns the root
        outputs and the count of messages lost inside the tree."""
        if len(messages) != self.n:
            raise ConfigurationError(f"expected {self.n} messages, got {len(messages)}")
        lost = 0
        mid: list[Message | None] = []
        offset = 0
        for leaf in self.leaves:
            chunk = messages[offset : offset + leaf.n]
            offset += leaf.n
            outputs = leaf.route(chunk)
            lost += sum(1 for msg in chunk if msg is not None) - sum(
                1 for msg in outputs if msg is not None
            )
            mid.extend(outputs)
        root_out = self.root.route(mid)
        lost += sum(1 for msg in mid if msg is not None) - sum(
            1 for msg in root_out if msg is not None
        )
        return root_out, lost


def _random_k_subsets(
    n: int, k: int, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """``(trials, n)`` bool matrix, each row a uniform random k-subset
    (vectorised: argsort of a uniform matrix gives random permutations)."""
    k = min(k, n)
    order = np.argsort(rng.random((trials, n)), axis=1)
    valid = np.zeros((trials, n), dtype=bool)
    valid[np.arange(trials)[:, None], order[:, :k]] = True
    return valid


def _batched_k_trial(
    switch: ConcentratorSwitch, k: int, trials: int, seed: np.random.SeedSequence
) -> float:
    rng = np.random.default_rng(seed)
    batch = switch.setup_batch(_random_k_subsets(switch.n, k, trials, rng))
    return float(np.mean(batch.routed_counts))


def _compare_job(job: dict) -> float:
    """Worker-process body for one (switch, k) comparison item."""
    return _batched_k_trial(
        job["switch"], job["k"], job["trials"], job["entropy"]
    )


def compare_partial_vs_perfect(
    perfect: ConcentratorSwitch,
    partial: ConcentratorSwitch,
    k_values: list[int],
    trials: int = 20,
    seed: int | None = None,
    workers: int = 0,
    executor: str = "thread",
) -> dict[int, dict[str, float]]:
    """The Section 1 substitution experiment.

    For each offered k, draw ``trials`` random k-subsets and record the
    mean routed count for the n-by-m perfect concentrator and for the
    (n/α, m/α, α) partial concentrator standing in for it.  The paper's
    claim: for k ≤ m both route k; for k > m both route (at least) m.

    ``workers=0`` (the default) preserves the legacy serial draw order
    exactly.  ``workers >= 1`` switches to the batched engine path: each
    (switch, k) work item gets its own ``SeedSequence`` child keyed by
    its position, the trials run through :meth:`setup_batch`, and
    ``workers > 1`` fans the items out — over a thread pool by default,
    or over the persistent multiprocess engine pool with
    ``executor="process"`` — so the results are identical for any
    worker count and either executor, but differ from the serial draw
    order.
    """
    if executor not in ("thread", "process"):
        raise ConfigurationError(
            f"unknown compare executor {executor!r} (thread or process)"
        )
    if workers >= 1:
        items = [(sw, k) for k in k_values for sw in (perfect, partial)]
        children = np.random.SeedSequence(seed).spawn(len(items))
        labels = [
            f"{kind}-k{k}" for k in k_values for kind in ("perfect", "partial")
        ]
        jobs = [
            (sw, k, child) for (sw, k), child in zip(items, children)
        ]

        def _one(job: tuple) -> float:
            sw, k, child = job
            return _batched_k_trial(sw, k, trials, child)

        parent = obs.get_registry()
        if workers > 1 and executor == "process":
            # Persistent process pool: plans ship once per design key,
            # each item collects into a private worker registry, and
            # the snapshots merge back in work-list order below.
            from repro.engine.backends.pool import shared_pool

            pool = shared_pool(workers)
            payload = pool.plan_payload(
                [
                    getattr(getattr(sw, "_plan", None), "key", None)
                    for sw in (perfect, partial)
                ]
            )
            futures = []
            for index, (sw, k, child) in enumerate(jobs):
                job = {
                    "switch": sw,
                    "k": k,
                    "trials": trials,
                    "entropy": child,
                    "shard": index,
                }
                if payload:
                    job["plans"] = payload
                futures.append(pool.submit(_compare_job, job))
            means = []
            for label, future in zip(labels, futures):
                mean, snapshot = future.result()
                if parent.enabled:
                    merge_portable(parent, snapshot, worker=label)
                means.append(mean)
        elif workers > 1 and parent.enabled:
            # Each job routes through the batched engine, which emits
            # engine.* metrics and spans: give every job a private
            # thread-local registry and merge the portable snapshots
            # back in job order (see repro.obs.live.merge).
            def _one_collected(job: tuple) -> tuple[float, dict]:
                local = obs.Registry()
                with obs.using(local):
                    mean = _one(job)
                return mean, roundtrip(portable_snapshot(local))

            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(_one_collected, jobs))
            means = []
            for label, (mean, snapshot) in zip(labels, outcomes):
                merge_portable(parent, snapshot, worker=label)
                means.append(mean)
        elif workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                means = list(pool.map(_one, jobs))
        else:
            means = [_one(job) for job in jobs]
        return {
            k: {"perfect": means[2 * i], "partial": means[2 * i + 1]}
            for i, k in enumerate(k_values)
        }

    rng = default_rng(seed)
    results: dict[int, dict[str, float]] = {}
    for k in k_values:
        routed_perfect = []
        routed_partial = []
        for _ in range(trials):
            vp = np.zeros(perfect.n, dtype=bool)
            vp[rng.choice(perfect.n, size=min(k, perfect.n), replace=False)] = True
            routed_perfect.append(perfect.setup(vp).routed_count)

            vq = np.zeros(partial.n, dtype=bool)
            vq[rng.choice(partial.n, size=min(k, partial.n), replace=False)] = True
            routed_partial.append(partial.setup(vq).routed_count)
        results[k] = {
            "perfect": float(np.mean(routed_perfect)),
            "partial": float(np.mean(routed_partial)),
        }
    return results
