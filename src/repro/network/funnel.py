"""Arbitrary-depth concentration funnels.

Generalises :class:`~repro.network.simulate.ConcentrationTree` to any
number of levels: level l consists of identical switches whose outputs
are concatenated into level l+1's inputs.  Models the fan-in side of a
large routing network (e.g. many boards feeding a cabinet feeding a
spine link), with per-level loss and latency accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.switches.base import ConcentratorSwitch


@dataclass(frozen=True)
class LevelStats:
    """Per-level accounting for one routed batch."""

    level: int
    switches: int
    offered: int
    delivered: int

    @property
    def lost(self) -> int:
        return self.offered - self.delivered


class FunnelNetwork:
    """A multi-level funnel of concentrator switches.

    ``levels[l]`` is the list of switches at level l; the concatenated
    outputs of level l must equal the concatenated inputs of level
    l+1.  All messages enter at level 0 and exit at the last level's
    outputs.
    """

    def __init__(self, levels: list[list[ConcentratorSwitch]]):
        if not levels or any(not level for level in levels):
            raise ConfigurationError("funnel needs at least one non-empty level")
        for upper, lower in zip(levels, levels[1:]):
            out_width = sum(sw.m for sw in upper)
            in_width = sum(sw.n for sw in lower)
            if out_width != in_width:
                raise ConfigurationError(
                    f"level width mismatch: {out_width} outputs feed "
                    f"{in_width} inputs"
                )
        self.levels = levels

    @classmethod
    def regular(
        cls,
        leaf_factory,
        merge_factory,
        leaf_count: int,
        fan_in: int,
        depth: int,
    ) -> "FunnelNetwork":
        """Build a regular funnel.

        Level 0 holds ``leaf_count`` switches from ``leaf_factory()``;
        each deeper level has ``fan_in``× fewer switches, each built by
        ``merge_factory(n)`` where ``n`` is ``fan_in`` × the previous
        level's per-switch output width.
        """
        if depth < 1 or fan_in < 1 or leaf_count < 1:
            raise ConfigurationError("depth, fan_in, leaf_count must be positive")
        if leaf_count % (fan_in ** (depth - 1)) != 0:
            raise ConfigurationError(
                f"leaf_count {leaf_count} not divisible by fan_in^{depth - 1}"
            )
        levels: list[list[ConcentratorSwitch]] = [
            [leaf_factory() for _ in range(leaf_count)]
        ]
        count = leaf_count
        for _ in range(1, depth):
            count //= fan_in
            width = levels[-1][0].m * fan_in
            levels.append([merge_factory(width) for _ in range(count)])
        return cls(levels)

    @property
    def n(self) -> int:
        return sum(sw.n for sw in self.levels[0])

    @property
    def m(self) -> int:
        return sum(sw.m for sw in self.levels[-1])

    @property
    def gate_delays(self) -> int:
        """End-to-end combinational delay: the sum over levels of the
        (uniform) per-switch delay."""
        total = 0
        for level in self.levels:
            delays = getattr(level[0], "gate_delays", None)
            if delays is None:
                raise ConfigurationError(
                    f"{type(level[0]).__name__} exposes no gate-delay model"
                )
            total += delays
        return total

    def route(
        self, messages: list[Message | None]
    ) -> tuple[list[Message | None], list[LevelStats]]:
        """Route one batch through every level; returns the final
        outputs and per-level statistics."""
        if len(messages) != self.n:
            raise ConfigurationError(
                f"expected {self.n} messages, got {len(messages)}"
            )
        stats: list[LevelStats] = []
        current = messages
        for index, level in enumerate(self.levels):
            offered = sum(1 for msg in current if msg is not None)
            nxt: list[Message | None] = []
            offset = 0
            for sw in level:
                chunk = current[offset : offset + sw.n]
                offset += sw.n
                nxt.extend(sw.route(chunk))
            delivered = sum(1 for msg in nxt if msg is not None)
            stats.append(
                LevelStats(
                    level=index,
                    switches=len(level),
                    offered=offered,
                    delivered=delivered,
                )
            )
            current = nxt
        return current, stats

    def capacity(self) -> int:
        """The load the funnel guarantees end to end: the minimum over
        levels of the per-level guaranteed capacities (messages spread
        worst-case still route when the total stays below every
        switch's αm along one path — conservative aggregate: sum of
        switch capacities at the tightest level)."""
        totals = []
        for level in self.levels:
            totals.append(sum(sw.spec.guaranteed_capacity for sw in level))
        return min(totals)
