"""Shearsort iterations on 0/1 meshes.

Used by the Section 6 full-Revsort multichip hyperconcentrator: after
``⌈lg lg √n⌉`` Revsort repetitions leave at most eight dirty rows,
"three iterations of the Shearsort algorithm" (Scherson–Sen–Shamir)
complete the sort.  One iteration is a snake-wise row sort (alternating
directions) followed by a column sort; each iteration at least halves
the number of dirty rows of a 0/1 matrix.
"""

from __future__ import annotations

import numpy as np

from repro._util.bits import ceil_lg
from repro.errors import ConfigurationError
from repro.mesh.grid import sort_columns, sort_rows, sort_rows_snake


def shearsort_iteration(matrix: np.ndarray) -> np.ndarray:
    """One Shearsort iteration: snake row sort, then column sort."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ConfigurationError(f"expected a 2-D matrix, got shape {arr.shape}")
    return sort_columns(sort_rows_snake(arr))


def shearsort(matrix: np.ndarray) -> np.ndarray:
    """Full Shearsort of a 0/1 matrix into row-major nonincreasing order.

    Runs ``⌈lg r⌉ + 1`` iterations (sufficient for 0/1 inputs by the
    halving argument) followed by a final plain row sort that converts
    the at-most-one remaining snake-sorted dirty row into row-major
    order.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ConfigurationError(f"expected a 2-D matrix, got shape {arr.shape}")
    rows = arr.shape[0]
    iterations = ceil_lg(rows) + 1 if rows > 1 else 1
    for _ in range(iterations):
        arr = shearsort_iteration(arr)
    return sort_rows(arr)
