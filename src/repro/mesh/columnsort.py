"""Columnsort (Leighton) on 0/1 meshes.

Section 5 of the paper builds its 2-stage multichip partial concentrator
from **Algorithm 2**, the first three steps of Columnsort on an
``r × s`` matrix (``n = r·s``, ``s | r``):

1. Fully sort the columns.
2. Convert the matrix from column-major to row-major order: the element
   in row ``i``, column ``j`` moves to row ``⌊(r·j+i)/s⌋``, column
   ``(r·j+i) mod s``.
3. Fully sort the columns.

Theorem 4 (via Leighton): the result, read in row-major order, is
``(s−1)²``-nearsorted.

Section 6 mentions simulating *all eight* steps of Columnsort to obtain
a full multichip hyperconcentrator; :func:`columnsort_full` implements
the complete algorithm (steps 4–8: untranspose, sort, half-column shift
with sentinels, sort, unshift), valid when ``r ≥ 2(s−1)²``.  Following
Leighton's presentation the fully sorted result is read in
*column-major* order; :func:`columnsort_full_flat` returns that flat
sorted sequence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.mesh.grid import sort_columns


def validate_columnsort_shape(r: int, s: int, *, full: bool = False) -> None:
    """Check the shape constraints of the paper (``s | r``) and, when
    ``full`` is True, Leighton's full-sort condition ``r ≥ 2(s−1)²``."""
    if r < 1 or s < 1:
        raise ConfigurationError(f"matrix shape must be positive, got {r}x{s}")
    if r % s != 0:
        raise ConfigurationError(
            f"Columnsort requires s to evenly divide r (got r={r}, s={s})"
        )
    if full and r < 2 * (s - 1) ** 2:
        raise ConfigurationError(
            f"full Columnsort requires r >= 2(s-1)^2 (got r={r}, s={s}, "
            f"need r >= {2 * (s - 1) ** 2})"
        )


def cm_to_rm_reshape(matrix: np.ndarray) -> np.ndarray:
    """Step 2: pick entries up in column-major order, lay them down in
    row-major order (same ``r × s`` shape)."""
    arr = np.asarray(matrix)
    r, s = arr.shape
    validate_columnsort_shape(r, s)
    return arr.T.reshape(r, s)


def rm_to_cm_reshape(matrix: np.ndarray) -> np.ndarray:
    """Step 4 ("untranspose"): inverse of :func:`cm_to_rm_reshape`."""
    arr = np.asarray(matrix)
    r, s = arr.shape
    validate_columnsort_shape(r, s)
    return arr.reshape(s, r).T.copy()


def columnsort_nearsort(matrix: np.ndarray) -> np.ndarray:
    """Algorithm 2 (steps 1–3): the nearsorting pass the
    Columnsort-based switch realises in hardware."""
    arr = np.asarray(matrix)
    r, s = arr.shape
    validate_columnsort_shape(r, s)
    arr = sort_columns(arr)
    arr = cm_to_rm_reshape(arr)
    return sort_columns(arr)


def columnsort_epsilon_bound(s: int) -> int:
    """Theorem 4's exact nearsorting bound ``(s−1)²`` for an ``r × s``
    Columnsort pass."""
    if s < 1:
        raise ConfigurationError(f"s must be positive, got {s}")
    return (s - 1) ** 2


def columnsort_full(matrix: np.ndarray) -> np.ndarray:
    """All eight Columnsort steps on a 0/1 matrix.

    Steps 6–8 use the sentinel formulation: the matrix is shifted down
    ``⌊r/2⌋`` positions in column-major order into an ``r × (s+1)``
    matrix whose vacated top half-column is filled with 1s (maximal
    sentinels for our nonincreasing convention) and whose trailing half
    column is filled with 0s; the sentinels are stripped by the unshift.

    The fully sorted sequence is the result read in **column-major**
    order (use :func:`columnsort_full_flat`).
    """
    arr = np.asarray(matrix)
    r, s = arr.shape
    validate_columnsort_shape(r, s, full=True)
    half = r // 2

    arr = sort_columns(arr)                      # step 1
    arr = cm_to_rm_reshape(arr)                  # step 2
    arr = sort_columns(arr)                      # step 3
    arr = rm_to_cm_reshape(arr)                  # step 4
    arr = sort_columns(arr)                      # step 5

    # step 6: shift down half a column (in column-major order) into an
    # r x (s+1) matrix, sentinel-padded.
    flat = arr.T.reshape(-1)                     # column-major flattening
    padded = np.concatenate(
        [
            np.ones(half, dtype=flat.dtype),     # maximal sentinels on top
            flat,
            np.zeros(r - half, dtype=flat.dtype),  # minimal sentinels below
        ]
    )
    wide = padded.reshape(s + 1, r).T            # r x (s+1), column-major refill

    wide = sort_columns(wide)                    # step 7

    # step 8: unshift — drop the sentinels, restoring the r x s shape.
    flat = wide.T.reshape(-1)[half : half + r * s]
    return flat.reshape(s, r).T.copy()


def columnsort_full_flat(matrix: np.ndarray) -> np.ndarray:
    """Run the full Columnsort and return the flat column-major reading,
    which is the fully (nonincreasing) sorted sequence."""
    out = columnsort_full(matrix)
    return out.T.reshape(-1).copy()


def columnsort_shape_for_beta(n: int, beta: float) -> tuple[int, int]:
    """Choose an ``r × s`` shape realising the paper's β-parametrisation:
    ``r = Θ(n^β)`` rows, ``s = Θ(n^{1−β})`` columns, with ``n = r·s``,
    ``s | r``, for ``1/2 ≤ β ≤ 1``.

    ``n`` must be a power of two; ``r`` is taken as the power of two
    nearest ``n^β`` that keeps ``s ≤ r`` (ensuring divisibility since
    both are powers of two).
    """
    from repro._util.bits import ilg

    if not 0.5 <= beta <= 1.0:
        raise ConfigurationError(f"beta must lie in [1/2, 1], got {beta}")
    t = ilg(n)
    # r = 2^a with a = round(beta * t), clamped so that s <= r.
    a = round(beta * t)
    a = max(a, (t + 1) // 2)  # enforce r >= s, i.e. a >= t - a
    a = min(a, t)
    r = 1 << a
    s = n // r
    validate_columnsort_shape(r, s)
    return r, s
