"""A step-counted mesh machine — the substrate Revsort/Columnsort were
defined on, and the paper's implicit baseline.

Schnorr–Shamir and Leighton state their algorithms for a mesh of
processing elements where one *step* is a parallel compare-exchange
between neighbours.  The paper's insight is to replace each full
row/column sort (Θ(w) mesh steps) with ONE pass through a
hyperconcentrator chip (Θ(lg w) gate delays): the switch is the mesh
algorithm with the sorting collapsed into silicon.

:class:`MeshMachine` executes the algorithms the original way — only
neighbour compare-exchanges, odd-even transposition for every sort —
and counts parallel steps, so the bench can put the mesh baseline and
the multichip switch side by side on the same workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.bits import bit_reverse, ilg
from repro.errors import ConfigurationError


@dataclass
class MeshRun:
    """Result of executing a pipeline on the mesh machine."""

    matrix: np.ndarray
    steps: int


class MeshMachine:
    """A ``side × side`` mesh of PEs holding one bit each.

    Only neighbour operations are allowed; every primitive reports how
    many parallel steps it used.  Row rotations are implemented as
    neighbour shifts (a rotation by r costs min(r, side − r) steps on a
    ring; the paper's 3-D packaging hardwires them, but the mesh
    baseline must pay).
    """

    def __init__(self, side: int):
        ilg(side)
        self.side = side

    # -- primitives ------------------------------------------------------

    def sort_rows(self, matrix: np.ndarray, *, descending: bool = True) -> MeshRun:
        """Odd-even transposition along each row: ``side`` steps."""
        from repro.mesh.oddeven import oddeven_sort_rounds

        arr = np.asarray(matrix, dtype=np.int8)
        out = oddeven_sort_rounds(arr, self.side)
        if not descending:
            out = out[:, ::-1].copy()
        return MeshRun(matrix=out, steps=self.side)

    def sort_rows_snake(self, matrix: np.ndarray) -> MeshRun:
        """Odd-even along rows, odd rows ascending: ``side`` steps."""
        arr = np.asarray(matrix, dtype=np.int8).copy()
        arr[1::2] = arr[1::2, ::-1]
        from repro.mesh.oddeven import oddeven_sort_rounds

        out = oddeven_sort_rounds(arr, self.side)
        out[1::2] = out[1::2, ::-1]
        return MeshRun(matrix=out, steps=self.side)

    def sort_columns(self, matrix: np.ndarray) -> MeshRun:
        """Odd-even transposition along each column: ``side`` steps."""
        from repro.mesh.oddeven import weak_column_sort

        arr = np.asarray(matrix, dtype=np.int8)
        return MeshRun(matrix=weak_column_sort(arr, self.side), steps=self.side)

    def rev_rotate(self, matrix: np.ndarray) -> MeshRun:
        """Rotate row i by rev(i) via neighbour shifts.  All rows shift
        in parallel, so the step cost is the *maximum* ring distance
        over rows: ``max_i min(rev(i), side − rev(i)) = side/2``."""
        arr = np.asarray(matrix, dtype=np.int8)
        q = ilg(self.side)
        out = np.empty_like(arr)
        worst = 0
        for i in range(self.side):
            shift = bit_reverse(i, q)
            out[i] = np.roll(arr[i], shift)
            worst = max(worst, min(shift, self.side - shift))
        return MeshRun(matrix=out, steps=worst)

    # -- pipelines ---------------------------------------------------------

    def algorithm1(self, matrix: np.ndarray) -> MeshRun:
        """Algorithm 1 executed natively on the mesh; total steps =
        3·side (sorts) + side/2 (rotation) + side (final sort)."""
        arr = np.asarray(matrix, dtype=np.int8)
        if arr.shape != (self.side, self.side):
            raise ConfigurationError(
                f"expected a {self.side}x{self.side} matrix, got {arr.shape}"
            )
        steps = 0
        run = self.sort_columns(arr)
        steps += run.steps
        run = self.sort_rows(run.matrix)
        steps += run.steps
        run = self.rev_rotate(run.matrix)
        steps += run.steps
        run = self.sort_columns(run.matrix)
        steps += run.steps
        return MeshRun(matrix=run.matrix, steps=steps)

    def shearsort_iteration(self, matrix: np.ndarray) -> MeshRun:
        run1 = self.sort_rows_snake(np.asarray(matrix, dtype=np.int8))
        run2 = self.sort_columns(run1.matrix)
        return MeshRun(matrix=run2.matrix, steps=run1.steps + run2.steps)


def mesh_vs_switch_comparison(side: int) -> dict[str, object]:
    """The headline contrast for one size: Algorithm 1 on the mesh
    baseline vs the 3-stage multichip switch."""
    from repro.switches.revsort_switch import RevsortSwitch

    n = side * side
    machine = MeshMachine(side)
    switch = RevsortSwitch(n, n)
    # Algorithm 1 = three full sorts (side steps each) + the rotation
    # (side/2 ring steps): 3·side + side/2 total.
    mesh_steps = 3 * side + side // 2
    # Recompute exactly by running on an arbitrary input:
    probe = np.zeros((side, side), dtype=np.int8)
    probe[0, 0] = 1
    exact = machine.algorithm1(probe).steps
    return {
        "n": n,
        "mesh steps (compare-exchange)": exact,
        "mesh steps Θ": "Θ(√n)",
        "switch gate delays": switch.gate_delays,
        "switch Θ": "Θ(lg n)",
        "speedup": round(exact / switch.gate_delays, 2),
        "_formula_check": mesh_steps,
    }
