"""Mesh-sorting substrate.

The multichip switches of Sections 4 and 5 are wirings of
hyperconcentrator chips whose combined behaviour equals the first steps
of two mesh-sorting algorithms:

* :mod:`repro.mesh.revsort` — Schnorr–Shamir's Revsort (Algorithm 1 of
  the paper is its first 1½ iterations).
* :mod:`repro.mesh.columnsort` — Leighton's Columnsort (Algorithm 2 is
  its first 3 steps).
* :mod:`repro.mesh.shearsort` — Shearsort, used by the Section 6 full
  Revsort hyperconcentrator to finish a nearly sorted matrix.

All algorithms here operate on 0/1 matrices (valid bits), sorted into
*nonincreasing* order per the paper's Section 2 convention (1s first).
"""

from repro.mesh.analysis import count_dirty_rows, dirty_row_span, is_row_major_sorted
from repro.mesh.columnsort import (
    columnsort_full,
    columnsort_nearsort,
    columnsort_shape_for_beta,
    validate_columnsort_shape,
)
from repro.mesh.generic import (
    columnsort as generic_columnsort,
    revsort as generic_revsort,
    shearsort as generic_shearsort,
)
from repro.mesh.oddeven import (
    oddeven_sort_rounds,
    weak_columnsort_pass,
    weak_revsort_pass,
)
from repro.mesh.grid import (
    sort_columns,
    sort_rows,
    sort_rows_snake,
)
from repro.mesh.order import (
    cm_index,
    cm_to_rm_permutation,
    column_major_matrix,
    rev_rotate_permutation,
    rm_index,
    rm_inverse,
    row_major_matrix,
    snake_index,
    transpose_permutation,
)
from repro.mesh.revsort import (
    revsort_dirty_row_bound,
    revsort_full,
    revsort_nearsort,
)
from repro.mesh.shearsort import shearsort, shearsort_iteration

__all__ = [
    "cm_index",
    "generic_columnsort",
    "generic_revsort",
    "generic_shearsort",
    "oddeven_sort_rounds",
    "weak_columnsort_pass",
    "weak_revsort_pass",
    "cm_to_rm_permutation",
    "column_major_matrix",
    "columnsort_full",
    "columnsort_nearsort",
    "columnsort_shape_for_beta",
    "count_dirty_rows",
    "dirty_row_span",
    "is_row_major_sorted",
    "rev_rotate_permutation",
    "revsort_dirty_row_bound",
    "revsort_full",
    "revsort_nearsort",
    "rm_index",
    "rm_inverse",
    "row_major_matrix",
    "shearsort",
    "shearsort_iteration",
    "snake_index",
    "sort_columns",
    "sort_rows",
    "sort_rows_snake",
    "transpose_permutation",
    "validate_columnsort_shape",
]
