"""Cleanliness/dirtiness analysis of 0/1 meshes (Theorem 3/4 metrics).

A row is *clean* if all its entries are equal (all 0s or all 1s) and
*dirty* otherwise; Theorem 3 bounds the number of dirty rows left by
Algorithm 1, and Lemma 1 converts a bounded dirty window into an
ε-nearsortedness guarantee for the row-major reading.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _as_matrix(matrix: np.ndarray) -> np.ndarray:
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ConfigurationError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr


def dirty_rows_mask(matrix: np.ndarray) -> np.ndarray:
    """Boolean mask over rows; True where the row is dirty (mixed)."""
    arr = _as_matrix(matrix)
    if arr.shape[1] == 0:
        return np.zeros(arr.shape[0], dtype=bool)
    first = arr[:, :1]
    return ~(arr == first).all(axis=1)


def count_dirty_rows(matrix: np.ndarray) -> int:
    """Number of dirty (mixed 0/1) rows."""
    return int(dirty_rows_mask(matrix).sum())


def dirty_row_span(matrix: np.ndarray) -> int:
    """Length of the contiguous row window covering all dirty rows
    (0 if every row is clean).  The nearsorting arguments need the
    *span*, not just the count, since ε is driven by the window."""
    mask = dirty_rows_mask(matrix)
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return 0
    return int(idx[-1] - idx[0] + 1)


def is_block_sorted(matrix: np.ndarray) -> bool:
    """True iff the matrix is clean 1-rows on top, then (possibly) dirty
    rows, then clean 0-rows — the structure Theorem 3 guarantees."""
    arr = _as_matrix(matrix)
    mask = dirty_rows_mask(arr)
    ones_row = np.zeros(arr.shape[0], dtype=np.int8)
    for i in range(arr.shape[0]):
        if mask[i]:
            ones_row[i] = 1  # dirty
        elif arr.shape[1] and arr[i, 0]:
            ones_row[i] = 0  # clean 1s
        else:
            ones_row[i] = 2  # clean 0s
    # Row classes must be nondecreasing: 0s (clean ones), 1s (dirty), 2s.
    return bool((np.diff(ones_row) >= 0).all())


def is_row_major_sorted(matrix: np.ndarray) -> bool:
    """True iff the flat row-major reading is nonincreasing (fully
    sorted per the Section 2 convention)."""
    flat = _as_matrix(matrix).reshape(-1)
    if flat.size <= 1:
        return True
    return bool((flat[:-1] >= flat[1:]).all())


def is_column_major_sorted(matrix: np.ndarray) -> bool:
    """True iff the flat column-major reading is nonincreasing."""
    flat = _as_matrix(matrix).T.reshape(-1)
    if flat.size <= 1:
        return True
    return bool((flat[:-1] >= flat[1:]).all())
