"""Row/column sorting primitives on 0/1 meshes.

Per Section 2 of the paper, "a sequence of values is *sorted* if it is
in nonincreasing order" — so a sorted column of valid bits has its 1s at
the top and a sorted row has its 1s at the left.  Each full sort of a
row or column is exactly what one hyperconcentrator chip does to its
valid bits, which is why these primitives model the chips' aggregate
behaviour.

Matrices here are numpy arrays with dtype bool or small integers; all
operations return new arrays (the switch stages are distinct chips, not
in-place updates).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _as_matrix(matrix: np.ndarray) -> np.ndarray:
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ConfigurationError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr


def sort_columns(matrix: np.ndarray) -> np.ndarray:
    """Fully sort every column into nonincreasing order (1s at top)."""
    arr = _as_matrix(matrix)
    # np.sort is ascending; flip rows to get nonincreasing columns.
    return np.sort(arr, axis=0)[::-1].copy()


def sort_rows(matrix: np.ndarray) -> np.ndarray:
    """Fully sort every row into nonincreasing order (1s at left)."""
    arr = _as_matrix(matrix)
    return np.sort(arr, axis=1)[:, ::-1].copy()


def sort_rows_snake(matrix: np.ndarray) -> np.ndarray:
    """Sort rows in alternating directions (Shearsort's row phase):
    even-numbered rows nonincreasing, odd-numbered rows nondecreasing.
    """
    arr = _as_matrix(matrix)
    out = np.sort(arr, axis=1)
    out[::2] = out[::2, ::-1]
    return out.copy()


def column_counts(matrix: np.ndarray) -> np.ndarray:
    """Number of 1s in each column (used by analysis and tests)."""
    return np.count_nonzero(_as_matrix(matrix), axis=0)


def row_counts(matrix: np.ndarray) -> np.ndarray:
    """Number of 1s in each row."""
    return np.count_nonzero(_as_matrix(matrix), axis=1)


def is_sorted_columns(matrix: np.ndarray) -> bool:
    """True iff every column is nonincreasing."""
    arr = _as_matrix(matrix)
    if arr.shape[0] <= 1:
        return True
    return bool((arr[:-1] >= arr[1:]).all())


def is_sorted_rows(matrix: np.ndarray) -> bool:
    """True iff every row is nonincreasing."""
    arr = _as_matrix(matrix)
    if arr.shape[1] <= 1:
        return True
    return bool((arr[:, :-1] >= arr[:, 1:]).all())
