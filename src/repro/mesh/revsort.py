"""Revsort (Schnorr–Shamir) on 0/1 meshes.

Section 4 of the paper builds its multichip partial concentrator from
**Algorithm 1**, the first 1½ iterations of Revsort on a ``√n × √n``
matrix with ``√n = 2^q``:

1. Fully sort the columns.
2. Fully sort the rows.
3. For ``0 ≤ i < √n``, cyclically rotate row ``i`` by ``rev(i)`` places
   to the right.
4. Fully sort the columns.

Theorem 3 (via Schnorr–Shamir): afterwards the matrix consists of clean
rows of 1s on top, clean rows of 0s at the bottom, and at most
``2⌈n^{1/4}⌉ − 1`` dirty rows in the middle, i.e. the row-major reading
is ``O(n^{3/4})``-nearsorted.

Section 6 additionally uses the *full* Revsort: repeating steps 1–3
``⌈lg lg √n⌉`` times leaves at most eight dirty rows, after which three
Shearsort iterations complete the sort.  :func:`revsort_full` implements
that pipeline (with the standard final row-sort stage that converts the
snake-sorted single dirty row into row-major order).
"""

from __future__ import annotations

import numpy as np

from repro._util.bits import bit_reverse, ilg
from repro.errors import ConfigurationError
from repro.mesh.grid import sort_columns, sort_rows
from repro.mesh.shearsort import shearsort_iteration


def _check_square_pow2(matrix: np.ndarray) -> int:
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ConfigurationError(f"Revsort requires a square matrix, got shape {arr.shape}")
    side = arr.shape[0]
    ilg(side)  # raises if not a power of two (the paper requires √n = 2^q)
    return side


def rev_rotate_rows(matrix: np.ndarray) -> np.ndarray:
    """Step 3 of Algorithm 1: rotate row ``i`` right by ``rev(i)``."""
    side = _check_square_pow2(matrix)
    q = ilg(side)
    out = np.empty_like(np.asarray(matrix))
    for i in range(side):
        out[i] = np.roll(np.asarray(matrix)[i], bit_reverse(i, q))
    return out


def revsort_nearsort(matrix: np.ndarray) -> np.ndarray:
    """Algorithm 1 (steps 1–4): the nearsorting pass the Revsort-based
    switch realises in hardware.  Returns the transformed matrix."""
    arr = np.asarray(matrix)
    _check_square_pow2(arr)
    arr = sort_columns(arr)
    arr = sort_rows(arr)
    arr = rev_rotate_rows(arr)
    arr = sort_columns(arr)
    return arr


def revsort_reduce(matrix: np.ndarray, repetitions: int) -> np.ndarray:
    """Repeat steps 1–3 of Algorithm 1 ``repetitions`` times, then apply
    the final column sort (step 4).

    With ``repetitions = ⌈lg lg √n⌉`` Schnorr–Shamir show the result has
    at most eight dirty rows (Section 6 of the paper).
    """
    if repetitions < 1:
        raise ConfigurationError("revsort_reduce requires at least one repetition")
    arr = np.asarray(matrix)
    _check_square_pow2(arr)
    for _ in range(repetitions):
        arr = sort_columns(arr)
        arr = sort_rows(arr)
        arr = rev_rotate_rows(arr)
    return sort_columns(arr)


def revsort_repetitions(side: int) -> int:
    """The Section 6 repetition count ``⌈lg lg √n⌉`` for a ``side×side``
    matrix (``side = √n``), with a floor of 1 for tiny meshes."""
    q = ilg(side)  # lg √n
    if q <= 1:
        return 1
    # ⌈lg q⌉ computed exactly on the integer q.
    return max(1, (q - 1).bit_length())


def revsort_full(matrix: np.ndarray) -> np.ndarray:
    """Full Revsort pipeline of Section 6: ``⌈lg lg √n⌉`` repetitions of
    steps 1–3 (+ column sort), then three Shearsort iterations, then a
    final row sort to convert snake order into row-major order.

    For 0/1 inputs the result is fully sorted when read row-major.
    """
    arr = np.asarray(matrix)
    side = _check_square_pow2(arr)
    arr = revsort_reduce(arr, revsort_repetitions(side))
    for _ in range(3):
        arr = shearsort_iteration(arr)
    return sort_rows(arr)


def revsort_dirty_row_bound(n: int) -> int:
    """Theorem 3's dirty-row bound ``2⌈n^{1/4}⌉ − 1`` for an n-input
    Revsort-based switch (matrix is ``√n × √n``)."""
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    fourth_root = _ceil_fourth_root(n)
    return 2 * fourth_root - 1


def revsort_epsilon_bound(n: int) -> int:
    """A concrete ε such that Algorithm 1's row-major output is
    ε-nearsorted: the dirty window spans at most
    ``(2⌈n^{1/4}⌉ − 1)·√n`` flat positions, and a dirty window of length
    d makes the sequence d-nearsorted (Lemma 1, ⇐ direction)."""
    side = _isqrt_exact(n)
    return revsort_dirty_row_bound(n) * side


def _ceil_fourth_root(n: int) -> int:
    root = round(n ** 0.25)
    while root**4 < n:
        root += 1
    while root >= 1 and (root - 1) ** 4 >= n:
        root -= 1
    return root


def _isqrt_exact(n: int) -> int:
    import math

    side = math.isqrt(n)
    if side * side != n:
        raise ConfigurationError(f"n={n} is not a perfect square (Revsort needs √n integral)")
    return side
