"""Odd-even transposition sorting — the "cheap chip" alternative.

The paper's chips fully sort their valid bits (a w-by-w
hyperconcentrator per row/column).  A cheaper chip could run only T
rounds of odd-even transposition (T = w fully sorts; smaller T gives a
partial sorter with shallower logic).  This module provides the
truncated sorter and a variant of Algorithm 1/2's stages built from
it, so the ablation bench can measure how the switch's nearsorting
quality degrades when the per-chip sorter is weakened — a design-space
question the paper's framework makes answerable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def oddeven_sort_rounds(bits: np.ndarray, rounds: int) -> np.ndarray:
    """Run ``rounds`` odd-even transposition rounds on each row of a
    (batch, width) 0/1 array, sorting *nonincreasing* (1s leftward).

    ``rounds >= width`` fully sorts (the classical bound).
    """
    arr = np.asarray(bits, dtype=np.int8)
    if arr.ndim == 1:
        arr = arr[None, :]
        squeeze = True
    else:
        squeeze = False
    if rounds < 0:
        raise ConfigurationError(f"rounds must be non-negative, got {rounds}")
    arr = arr.copy()
    width = arr.shape[1]
    for t in range(rounds):
        start = t % 2
        left = arr[:, start : width - 1 : 2]
        right = arr[:, start + 1 : width : 2]
        # Nonincreasing: larger value to the left.
        swap = left < right
        left[swap], right[swap] = right[swap], left[swap]
    return arr[0] if squeeze else arr


def weak_column_sort(matrix: np.ndarray, rounds: int) -> np.ndarray:
    """Sort each column with ``rounds`` odd-even rounds (1s rise)."""
    arr = np.asarray(matrix, dtype=np.int8)
    return oddeven_sort_rounds(arr.T, rounds).T.copy()


def weak_row_sort(matrix: np.ndarray, rounds: int) -> np.ndarray:
    """Sort each row with ``rounds`` odd-even rounds (1s leftward)."""
    return oddeven_sort_rounds(np.asarray(matrix, dtype=np.int8), rounds)


def weak_revsort_pass(matrix: np.ndarray, rounds: int) -> np.ndarray:
    """Algorithm 1 with weakened chips: every full sort replaced by a
    ``rounds``-round odd-even sorter."""
    from repro.mesh.revsort import rev_rotate_rows

    arr = weak_column_sort(matrix, rounds)
    arr = weak_row_sort(arr, rounds)
    arr = rev_rotate_rows(arr)
    return weak_column_sort(arr, rounds)


def weak_columnsort_pass(matrix: np.ndarray, rounds: int) -> np.ndarray:
    """Algorithm 2 with weakened chips."""
    arr = np.asarray(matrix, dtype=np.int8)
    r, s = arr.shape
    arr = weak_column_sort(arr, rounds)
    arr = arr.T.reshape(r, s)
    return weak_column_sort(arr, rounds)
