"""Matrix position numberings and the wiring-level permutations.

Section 5 of the paper (Figure 5) defines the row-major and column-major
positions of an ``r × s`` matrix entry:

* ``RM(i, j) = s·i + j``
* ``CM(i, j) = r·j + i``
* ``RM⁻¹(x) = (⌊x/s⌋, x mod s)``

and the switch wirings are compositions of these maps plus the
``rev(i)``-rotation of Section 4.  This module exposes the numberings
and, crucially, each inter-stage wiring as an explicit permutation array
``perm`` with the convention::

    new_flat_position = perm[old_flat_position]

where flat positions are row-major indices of the underlying matrix.
The switch constructions consume these arrays directly as pin-to-pin
wire lists, so correctness here *is* correctness of the physical wiring.
"""

from __future__ import annotations

import numpy as np

from repro._util.bits import bit_reverse, ilg
from repro.errors import ConfigurationError


def rm_index(i: int, j: int, r: int, s: int) -> int:
    """Row-major position ``RM(i, j) = s·i + j`` of entry (i, j) in an
    ``r × s`` matrix."""
    _check_entry(i, j, r, s)
    return s * i + j


def cm_index(i: int, j: int, r: int, s: int) -> int:
    """Column-major position ``CM(i, j) = r·j + i``."""
    _check_entry(i, j, r, s)
    return r * j + i


def rm_inverse(x: int, r: int, s: int) -> tuple[int, int]:
    """``RM⁻¹(x) = (⌊x/s⌋, x mod s)``: the (row, column) of row-major
    position ``x``."""
    if not 0 <= x < r * s:
        raise ConfigurationError(f"row-major position {x} out of range for {r}x{s}")
    return x // s, x % s


def snake_index(i: int, j: int, r: int, s: int) -> int:
    """Snake-order (boustrophedon) position: row-major but with
    odd-numbered rows traversed right-to-left.  Used by Shearsort."""
    _check_entry(i, j, r, s)
    return s * i + (j if i % 2 == 0 else s - 1 - j)


def row_major_matrix(r: int, s: int) -> np.ndarray:
    """The ``r × s`` matrix whose entries are their row-major positions
    (left half of the paper's Figure 5)."""
    return np.arange(r * s, dtype=np.int64).reshape(r, s)


def column_major_matrix(r: int, s: int) -> np.ndarray:
    """The ``r × s`` matrix whose entries are their column-major
    positions (right half of Figure 5)."""
    return np.arange(r * s, dtype=np.int64).reshape(s, r).T


# ---------------------------------------------------------------------------
# Wiring permutations (flat row-major position -> flat row-major position)
# ---------------------------------------------------------------------------


def transpose_permutation(r: int, s: int) -> np.ndarray:
    """Permutation realised by the stage-1→2 wiring of the Revsort switch.

    Element at (i, j) of an ``r × s`` matrix moves to (j, i) of the
    transposed ``s × r`` matrix.  Returned as flat row-major positions:
    ``perm[RM_{r×s}(i,j)] = RM_{s×r}(j,i)``.
    """
    perm = np.empty(r * s, dtype=np.int64)
    for i in range(r):
        for j in range(s):
            perm[s * i + j] = r * j + i
    return perm


def rev_rotate_permutation(side: int) -> np.ndarray:
    """Permutation of the Section 4 rotation step (Algorithm 1, step 3).

    For a ``side × side`` matrix with ``side = 2^q``, row ``i`` is
    cyclically rotated ``rev(i)`` places to the *right*: the element in
    row ``i``, column ``j`` moves to row ``i``, column
    ``(rev(i) + j) mod side``.
    """
    q = ilg(side)
    perm = np.empty(side * side, dtype=np.int64)
    for i in range(side):
        shift = bit_reverse(i, q)
        for j in range(side):
            perm[side * i + j] = side * i + (shift + j) % side
    return perm


def cm_to_rm_permutation(r: int, s: int) -> np.ndarray:
    """Permutation of Columnsort step 2 (Algorithm 2, step 2).

    "Convert the matrix from column-major to row-major order": the
    element in row ``i`` and column ``j`` moves to row ``⌊(r·j+i)/s⌋``
    and column ``(r·j+i) mod s`` — i.e. its new row-major position is
    its old column-major position, ``perm = RM⁻¹ ∘ CM`` in the paper's
    notation.
    """
    if r % s != 0:
        raise ConfigurationError(
            f"cm_to_rm wiring requires s | r (got r={r}, s={s}); "
            "the paper's Columnsort switch assumes s evenly divides r"
        )
    perm = np.empty(r * s, dtype=np.int64)
    for i in range(r):
        for j in range(s):
            perm[s * i + j] = r * j + i
    return perm


def rm_to_cm_permutation(r: int, s: int) -> np.ndarray:
    """Inverse of :func:`cm_to_rm_permutation` (Columnsort step 4,
    "untranspose"): the element whose row-major position is ``x`` moves
    so that its *column-major* position becomes ``x``."""
    forward = cm_to_rm_permutation(r, s)
    inverse = np.empty_like(forward)
    inverse[forward] = np.arange(forward.size, dtype=np.int64)
    return inverse


def shift_down_permutation(r: int, s: int, amount: int) -> np.ndarray:
    """Columnsort steps 6/8 helper: shift the column-major order of an
    ``r × s`` matrix forward by ``amount`` positions, cyclically.

    Leighton's step 6 shifts each entry down ⌊r/2⌋ positions within the
    column-major ordering (entries wrap into the next column, and the
    last wraps to the first).  The classic presentation pads with ±∞
    half-columns; for 0/1 inputs the cyclic wrap with a final column
    re-sort is equivalent for our purposes and keeps the matrix shape.
    """
    n = r * s
    perm = np.empty(n, dtype=np.int64)
    for i in range(r):
        for j in range(s):
            cm_old = r * j + i
            cm_new = (cm_old + amount) % n
            i2, j2 = cm_new % r, cm_new // r
            perm[s * i + j] = s * i2 + j2
    return perm


def apply_position_permutation(matrix: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Move matrix elements: the element at flat position ``p`` of
    ``matrix`` lands at flat position ``perm[p]`` of the result.

    The result is reshaped back to ``matrix.shape`` unless the
    permutation length implies a transpose, in which case callers
    reshape explicitly.
    """
    flat = matrix.reshape(-1)
    if perm.size != flat.size:
        raise ConfigurationError(
            f"permutation of length {perm.size} applied to matrix of size {flat.size}"
        )
    out = np.empty_like(flat)
    out[perm] = flat
    return out.reshape(matrix.shape)


def is_permutation(perm: np.ndarray) -> bool:
    """True iff ``perm`` is a bijection of ``range(len(perm))``.  Wiring
    validity check: every output pin driven by exactly one input pin."""
    n = perm.size
    if n == 0:
        return True
    seen = np.zeros(n, dtype=bool)
    if perm.min() < 0 or perm.max() >= n:
        return False
    seen[perm] = True
    return bool(seen.all())


def _check_entry(i: int, j: int, r: int, s: int) -> None:
    if not (0 <= i < r and 0 <= j < s):
        raise ConfigurationError(f"entry ({i}, {j}) out of range for a {r}x{s} matrix")
