"""Generic-key mesh sorting.

The concentrator switches only ever sort valid *bits*, but the
algorithms they borrow — Revsort (Schnorr–Shamir), Columnsort
(Leighton), Shearsort — are general mesh sorts.  This module provides
the arbitrary-key versions, both as substrate completeness and as an
independent check: every pipeline here is an *oblivious* sequence of
row/column sorts and fixed permutations, so by the 0–1 principle the
exhaustive 0/1 verification in :mod:`repro.mesh` transfers to
arbitrary keys; the hypothesis tests confirm it directly.

All sorts follow the paper's nonincreasing convention (largest keys
first in row-major order).  Keys may be any real numeric dtype; ±∞
sentinels are used where the 0/1 versions used hardwired 0/1 wires.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.mesh.columnsort import validate_columnsort_shape
from repro.mesh.grid import sort_columns, sort_rows, sort_rows_snake
from repro.mesh.revsort import (
    _check_square_pow2,
    rev_rotate_rows,
    revsort_repetitions,
)


def _as_float(matrix: np.ndarray) -> np.ndarray:
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ConfigurationError(f"expected a 2-D matrix, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.number):
        raise ConfigurationError(f"keys must be numeric, got dtype {arr.dtype}")
    return arr.astype(np.float64)


def revsort(matrix: np.ndarray) -> np.ndarray:
    """Full Revsort of arbitrary keys on a ``2^q × 2^q`` mesh:
    ``⌈lg lg √n⌉`` repetitions of (sort columns, sort rows, rev-rotate),
    a completing column sort, three Shearsort iterations, and the final
    row sort — the same pipeline :func:`repro.mesh.revsort.revsort_full`
    runs on valid bits."""
    arr = _as_float(matrix)
    side = _check_square_pow2(arr)
    for _ in range(revsort_repetitions(side)):
        arr = sort_columns(arr)
        arr = sort_rows(arr)
        arr = rev_rotate_rows(arr)
    arr = sort_columns(arr)
    for _ in range(3):
        arr = sort_columns(sort_rows_snake(arr))
    return sort_rows(arr)


def columnsort(matrix: np.ndarray) -> np.ndarray:
    """Full 8-step Columnsort of arbitrary keys on an ``r × s`` mesh
    (``s | r``, ``r ≥ 2(s−1)²``); the sorted sequence is the
    column-major readout (Leighton's convention), available via
    :func:`columnsort_flat`."""
    arr = _as_float(matrix)
    r, s = arr.shape
    validate_columnsort_shape(r, s, full=True)
    half = r // 2

    arr = sort_columns(arr)                  # step 1
    arr = arr.T.reshape(r, s)                # step 2 (CM -> RM)
    arr = sort_columns(arr)                  # step 3
    arr = arr.reshape(s, r).T.copy()         # step 4 (RM -> CM)
    arr = sort_columns(arr)                  # step 5

    flat = arr.T.reshape(-1)                 # step 6: half-column shift
    padded = np.concatenate(
        [np.full(half, np.inf), flat, np.full(r - half, -np.inf)]
    )
    wide = padded.reshape(s + 1, r).T
    wide = sort_columns(wide)                # step 7
    flat = wide.T.reshape(-1)[half : half + r * s]  # step 8: unshift
    return flat.reshape(s, r).T.copy()


def columnsort_flat(matrix: np.ndarray) -> np.ndarray:
    """Run :func:`columnsort` and return the flat column-major
    (nonincreasing sorted) sequence."""
    return columnsort(matrix).T.reshape(-1).copy()


def shearsort(matrix: np.ndarray) -> np.ndarray:
    """Full Shearsort of arbitrary keys into row-major nonincreasing
    order: ``⌈lg r⌉ + 1`` snake iterations plus the final row sort."""
    from repro._util.bits import ceil_lg

    arr = _as_float(matrix)
    rows = arr.shape[0]
    iterations = ceil_lg(rows) + 1 if rows > 1 else 1
    for _ in range(iterations):
        arr = sort_columns(sort_rows_snake(arr))
    return sort_rows(arr)


def is_sorted_row_major(matrix: np.ndarray) -> bool:
    """Nonincreasing in row-major order?"""
    flat = np.asarray(matrix).reshape(-1)
    if flat.size <= 1:
        return True
    return bool((flat[:-1] >= flat[1:]).all())


def is_sorted_column_major(matrix: np.ndarray) -> bool:
    """Nonincreasing in column-major order?"""
    flat = np.asarray(matrix).T.reshape(-1)
    if flat.size <= 1:
        return True
    return bool((flat[:-1] >= flat[1:]).all())
