"""Causal trace context: one ``trace_id`` per command, one
``span_id``/``parent_id`` pair per span.

The span tracer (:mod:`repro.obs.tracing`) nests spans by *time
containment* within one process, but spans merged back from worker
processes land flat — the only provenance is a ``{worker=...}`` meta
label.  A :class:`TraceContext` adds the causal layer: while a context
is attached to a tracer, every span it records gets a deterministic
``span_id`` (``<prefix>:<counter>``) and a ``parent_id`` naming the
enclosing open span — or, at the top of a worker's stack, the
*dispatching* span in the parent process.

Shipping the context across a process boundary is one small dict
(:meth:`TraceContext.ship`): the parent attaches it to each shard job
next to the plan-cache payload, the worker rebuilds it with
:func:`child_context`, and the merged ``repro.obs/worker@1`` snapshot
then reconstructs a single causal span tree rooted at the command's
``trace_id`` — what ``repro obs analyze`` walks for critical paths and
straggler tables, and what the Chrome-trace exporter turns into flow
arrows between worker tracks.

Span ids are deterministic (a per-context counter, never a random
source), so journaled runs stay byte-reproducible under a fixed clock.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field


@dataclass
class TraceContext:
    """The identity a tracer stamps onto every span it records.

    ``prefix`` namespaces the per-context span counter so ids minted in
    different processes cannot collide (the parent uses ``main``, shard
    workers use their deterministic work-list label, e.g. ``shard-3``).
    ``parent_id`` is the causal parent of this context's *root* spans:
    ``None`` in the top-level process, the dispatching span's id in a
    worker.
    """

    trace_id: str
    parent_id: str | None = None
    prefix: str = "main"
    _seq: int = field(default=0, repr=False)

    def next_id(self) -> str:
        """Mint the next deterministic span id for this context."""
        self._seq += 1
        return f"{self.prefix}:{self._seq}"

    def ship(self, *, parent_id: str | None, prefix: str) -> dict:
        """The JSON-safe payload a dispatching parent attaches to a
        worker job (next to the plan-cache snapshot)."""
        return {
            "trace_id": self.trace_id,
            "parent_id": parent_id,
            "prefix": prefix,
        }


def child_context(payload: dict) -> TraceContext:
    """Rebuild a worker-side context from a shipped payload."""
    return TraceContext(
        trace_id=str(payload["trace_id"]),
        parent_id=payload.get("parent_id"),
        prefix=str(payload.get("prefix") or "worker"),
    )


def new_trace_id(command: str | None = None) -> str:
    """A fresh trace id for one top-level command.

    Unique across processes and restarts (pid + wall-clock nanoseconds)
    but never used in byte-stable goldens — deterministic tests build
    their :class:`TraceContext` with an explicit ``trace_id`` instead.
    """
    slug = (command or "run").replace(" ", "-")
    return f"{slug}-{os.getpid():x}-{time.time_ns():x}"
