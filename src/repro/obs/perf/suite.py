"""Registry-driven bench suites for ``repro bench run``.

A :class:`BenchSpec` names a deterministic workload; a *suite* is a
tag selecting specs sized for a purpose — ``smoke`` runs in seconds
for CI, ``full`` reproduces the paper-scale geometries of
``BENCH_engine.json``.  Every workload draws from
:func:`repro._util.rng.default_rng` with a fixed per-record seed and
re-seeds identically on every repeat, so repeats measure machine noise
only, never workload variance.

:func:`run_bench` executes one spec and returns a trajectory record
(see :mod:`repro.obs.perf.trajectory`) capturing:

* ``wall_s`` per repeat plus the median/best (median is what
  :mod:`repro.obs.perf.regression` gates on);
* per-stage span timings from the ``repro.obs`` registry collected
  around the run (``engine.stage.seconds`` et al.);
* plan-cache hit/miss deltas and the derived hit rate;
* peak RSS (``resource.getrusage``) and — in a separate *untimed*
  pass so timings stay clean — tracemalloc's peak allocation and live
  block count.
"""

from __future__ import annotations

import statistics
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

import numpy as np

from repro import obs
from repro._util.bits import ilg
from repro._util.rng import DEFAULT_SEED, default_rng
from repro.errors import ConfigurationError
from repro.obs.perf.trajectory import new_record


@dataclass(frozen=True)
class Workload:
    """A built bench: ``run(rng)`` does the work and returns how many
    ``unit`` s it processed; ``meta`` is static spec context that lands
    in the record (sizes, gate delays, theory lines)."""

    run: Callable[[np.random.Generator], int]
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BenchSpec:
    """One registered bench: id, the suites it belongs to, the unit of
    work, and a factory building its :class:`Workload` (construction —
    switch building, plan compilation — happens in ``make`` so it is
    excluded from the timed region)."""

    id: str
    suites: tuple[str, ...]
    unit: str
    make: Callable[[], Workload]
    description: str = ""


#: Worker cap for the scaling workloads, installed by :func:`run_bench`
#: from the CLI's ``--workers`` for the duration of ``spec.make()``.
#: ``None`` means uncapped (each spec uses its registered worker count).
_WORKERS_CAP: int | None = None


def _warm(switch) -> None:
    """Compile the switch's plan outside the timed region."""
    warm = np.zeros((2, switch.n), dtype=bool)
    warm[:, 0] = True
    switch.setup_batch(warm)


def _engine_factory(build: Callable[[], object], trials: int):
    """Engine throughput: route ``trials`` random half-load rows
    through one ``setup_batch`` call on the warmed plan cache."""

    def make() -> Workload:
        switch = build()
        _warm(switch)

        def run(rng: np.random.Generator) -> int:
            valid = rng.random((trials, switch.n)) < 0.5
            switch.setup_batch(valid)
            return trials

        return Workload(
            run=run,
            meta={"n": switch.n, "m": switch.m, "trials": trials},
        )

    return make


def _scaling_factory(
    build: Callable[[], object], trials: int, workers: int, shard_trials: int
):
    """Cores-vs-throughput point for the ``scaling`` suite: stream
    ``trials`` half-load trials through the sharded process backend at
    a fixed worker count.  The shard grid depends only on ``trials`` /
    ``shard_trials`` — never on ``workers`` — so every point of the
    curve folds the same per-shard summaries; only the wall time moves.
    ``workers`` is clamped by :func:`run_bench`'s ``workers_cap`` (the
    CLI's ``--workers``) so smoke boxes never oversubscribe."""

    def make() -> Workload:
        from repro.engine import StreamSpec, get_backend

        switch = build()
        _warm(switch)
        effective = workers
        if _WORKERS_CAP is not None and _WORKERS_CAP >= 1:
            effective = min(effective, _WORKERS_CAP)
        backend = get_backend(
            "process", workers=effective, shard_trials=shard_trials
        )
        stream = StreamSpec(
            trials=trials,
            seed=DEFAULT_SEED,
            load="half",
            shard_trials=shard_trials,
            check_contract=False,
            measure_epsilon=False,
        )
        # Spin the pool up (fork + numpy import) outside the timed region.
        backend.run_stream(
            switch, StreamSpec(trials=shard_trials, shard_trials=shard_trials)
        )

        def run(rng: np.random.Generator) -> int:
            summary = backend.run_stream(switch, stream)
            return summary.trials

        return Workload(
            run=run,
            meta={
                "n": switch.n,
                "m": switch.m,
                "trials": trials,
                "shard_trials": shard_trials,
                "backend": "process",
                "workers": workers,
                "workers_effective": effective,
            },
        )

    return make


def _quality_factory(
    build: Callable[[], object], trials: int, family: str, beta: float | None
):
    """Thm-3/4 quality bench: batch-verify the contract and measure the
    worst nearsortedness over random mixed-load trials — the workload
    behind ``repro verify --batch`` — with the delay-in-gates theory
    line recorded for the trajectory report."""

    def make() -> Workload:
        from repro.engine import (
            nearsortedness_batch,
            validate_batch_partial_concentration,
        )
        from repro.verify.differential import output_occupancy

        switch = build()
        _warm(switch)
        t = ilg(switch.n)
        theory = 3 * t if family == "revsort" else 4 * (beta or 0.0) * t

        def run(rng: np.random.Generator) -> int:
            valid = rng.random((trials, switch.n)) < rng.random((trials, 1))
            batch = switch.setup_batch(valid)
            validate_batch_partial_concentration(switch.spec, batch)
            occupancy = output_occupancy(
                switch, valid, routing=batch.input_to_output
            )
            if occupancy is not None:
                nearsortedness_batch(occupancy).max(initial=0)
            return trials

        return Workload(
            run=run,
            meta={
                "n": switch.n,
                "m": switch.m,
                "trials": trials,
                "family": family,
                "beta": beta,
                "gate_delays": int(switch.gate_delays),
                "theory_delays": float(theory),
                "epsilon_bound": getattr(switch, "epsilon_bound", None),
            },
        )

    return make


def _certify_factory(design: str, params: dict):
    """Certify wall time: one full ``certify_design`` run (exhaustive
    at these sizes); work is the number of patterns proved."""

    def make() -> Workload:
        from repro.verify import CertifyOptions, certify_design

        def run(rng: np.random.Generator) -> int:
            cert = certify_design(design, dict(params), options=CertifyOptions())
            if not cert.ok:
                raise ConfigurationError(
                    f"certify bench found violations in {design!r}"
                )
            return cert.total_patterns

        return Workload(run=run, meta={"design": design, **params})

    return make


def _flows_factory(
    fabric: str, n: int, load: float, duration: float, sizes: str, **params
):
    """Event-driven flow-sim throughput: one full drain of a seeded
    workload against ``fabric``; work is the event count (queue events
    plus per-cell outcomes).  The flow list is generated in ``make``
    (untimed); the stage is rebuilt per repeat because stages are
    stateful (FIFOs, rotor phase) — plan compilation is already cached
    after the warm-up build."""

    def make() -> Workload:
        from repro.network.flows import (
            FlowSim,
            WorkloadSpec,
            build_fabric,
            generate_flows,
        )

        spec = WorkloadSpec(
            n=n, load=load, duration=duration, sizes=sizes, seed=DEFAULT_SEED
        )
        flows = generate_flows(spec)
        build_fabric(fabric, n, **params)  # warm the plan cache
        cap = int(duration) * 50 + 5000

        meta = {
            "fabric": fabric,
            "n": n,
            "load": load,
            "duration": duration,
            "sizes": sizes,
            "flows": len(flows),
        }

        def run(rng: np.random.Generator) -> int:
            stage = build_fabric(fabric, n, **params)
            result = FlowSim(stage, flows, max_cycles=cap).run()
            # The run is deterministic, so stamping the FCT percentiles
            # per repeat is idempotent; they land in the trajectory
            # record's meta for `repro obs report`'s flows section.
            percentiles = result.fct_percentiles((50.0, 99.0))
            for q, key in ((50.0, "fct_p50"), (99.0, "fct_p99")):
                value = percentiles[f"p{q:g}"]
                meta[key] = None if value != value else value
            return result.events

        return Workload(run=run, meta=meta)

    return make


def _columnsort(n: int, m: int):
    from repro.switches.columnsort_switch import ColumnsortSwitch

    return lambda: ColumnsortSwitch.from_beta(n, 0.75, m)


def _revsort(n: int, m: int):
    from repro.switches.revsort_switch import RevsortSwitch

    return lambda: RevsortSwitch(n, m)


def _hyper(n: int):
    from repro.switches.hyperconcentrator import Hyperconcentrator

    return lambda: Hyperconcentrator(n)


def _fullrevsort(n: int):
    from repro.switches.multichip_hyper import FullRevsortHyperconcentrator

    return lambda: FullRevsortHyperconcentrator(n)


#: Every registered bench.  Ids are stable — they key the trajectory —
#: so renaming one orphans its history; add new ids instead.
SPECS: tuple[BenchSpec, ...] = (
    # -- engine throughput (mirrors bench_engine_throughput.py) --------
    BenchSpec(
        "engine.columnsort-n256", ("smoke",), "trials",
        _engine_factory(_columnsort(256, 192), trials=64),
        "batched routing, Columnsort beta=0.75 at n=256",
    ),
    BenchSpec(
        "engine.revsort-n256", ("smoke",), "trials",
        _engine_factory(_revsort(256, 192), trials=64),
        "batched routing, Revsort at n=256",
    ),
    BenchSpec(
        "engine.hyper-n256", ("smoke",), "trials",
        _engine_factory(_hyper(256), trials=64),
        "batched routing, functional hyperconcentrator at n=256",
    ),
    BenchSpec(
        "engine.columnsort-n4096", ("full",), "trials",
        _engine_factory(_columnsort(4096, 3072), trials=128),
        "batched routing, the Thm-4 headline geometry (r=512, s=8)",
    ),
    BenchSpec(
        "engine.revsort-n4096", ("full",), "trials",
        _engine_factory(_revsort(4096, 3072), trials=128),
        "batched routing, Revsort at n=4096",
    ),
    BenchSpec(
        "engine.hyper-n4096", ("full",), "trials",
        _engine_factory(_hyper(4096), trials=128),
        "batched routing, functional hyperconcentrator at n=4096",
    ),
    BenchSpec(
        "engine.fullrevsort-n4096", ("full",), "trials",
        _engine_factory(_fullrevsort(4096), trials=128),
        "batched routing, Section 6 full-Revsort hyperconcentrator",
    ),
    # -- Thm-3/4 quality geometries ------------------------------------
    BenchSpec(
        "quality.thm3-revsort-n256", ("smoke",), "trials",
        _quality_factory(_revsort(256, 192), 64, "revsort", None),
        "Thm-3 contract + worst-eps sweep, Revsort n=256",
    ),
    BenchSpec(
        "quality.thm4-columnsort-n256", ("smoke",), "trials",
        _quality_factory(_columnsort(256, 192), 64, "columnsort", 0.75),
        "Thm-4 contract + worst-eps sweep, Columnsort n=256",
    ),
    BenchSpec(
        "quality.thm3-revsort-n4096", ("full",), "trials",
        _quality_factory(_revsort(4096, 3072), 128, "revsort", None),
        "Thm-3 contract + worst-eps sweep, Revsort n=4096",
    ),
    BenchSpec(
        "quality.thm4-columnsort-n4096", ("full",), "trials",
        _quality_factory(_columnsort(4096, 3072), 128, "columnsort", 0.75),
        "Thm-4 contract + worst-eps sweep, the columnsort n=4096 geometry",
    ),
    # -- certification wall time ---------------------------------------
    BenchSpec(
        "certify.revsort-n16", ("smoke", "full"), "patterns",
        _certify_factory("revsort", {"n": 16, "m": 12}),
        "exhaustive certify_design('revsort', n=16) wall time",
    ),
    # -- event-driven flow simulator (see docs/flows.md) ---------------
    BenchSpec(
        "flows.concentrator-n64", ("flows",), "events",
        _flows_factory("concentrator", 64, 0.7, 120.0, "websearch"),
        "event-driven drain, revsort concentrator fabric at n=64",
    ),
    BenchSpec(
        "flows.fattree-n64", ("flows",), "events",
        _flows_factory("fattree", 64, 0.7, 120.0, "websearch"),
        "event-driven drain, fat-tree up-path fabric at n=64",
    ),
    BenchSpec(
        "flows.knockout-n64", ("flows",), "events",
        _flows_factory("knockout", 64, 0.7, 120.0, "websearch"),
        "event-driven drain, knockout output-buffered fabric at n=64",
    ),
    BenchSpec(
        "flows.rotor-n64", ("flows",), "events",
        _flows_factory("rotor", 64, 0.7, 120.0, "websearch"),
        "event-driven drain, rotor/optical baseline at n=64",
    ),
    BenchSpec(
        "flows.concentrator-n256", ("full",), "events",
        _flows_factory("concentrator", 256, 0.7, 400.0, "websearch"),
        "event-driven drain, revsort concentrator fabric at n=256",
    ),
    # -- engine scaling curve (sharded process backend) ----------------
    #    One spec per (geometry, worker-count) point; plot workers vs
    #    throughput from the trajectory to get the cores-vs-throughput
    #    curve in docs/performance.md.
    BenchSpec(
        "scaling.columnsort-n256-w1", ("scaling",), "trials",
        _scaling_factory(_columnsort(256, 192), trials=4096, workers=1,
                         shard_trials=512),
        "sharded stream, Columnsort n=256, 1 worker (serial baseline)",
    ),
    BenchSpec(
        "scaling.columnsort-n256-w2", ("scaling",), "trials",
        _scaling_factory(_columnsort(256, 192), trials=4096, workers=2,
                         shard_trials=512),
        "sharded stream, Columnsort n=256, 2 workers",
    ),
    BenchSpec(
        "scaling.columnsort-n4096-w1", ("scaling",), "trials",
        _scaling_factory(_columnsort(4096, 3072), trials=2048, workers=1,
                         shard_trials=256),
        "sharded stream, Thm-4 headline geometry, 1 worker (serial baseline)",
    ),
    BenchSpec(
        "scaling.columnsort-n4096-w2", ("scaling",), "trials",
        _scaling_factory(_columnsort(4096, 3072), trials=2048, workers=2,
                         shard_trials=256),
        "sharded stream, Thm-4 headline geometry, 2 workers",
    ),
    BenchSpec(
        "scaling.columnsort-n4096-w4", ("scaling",), "trials",
        _scaling_factory(_columnsort(4096, 3072), trials=2048, workers=4,
                         shard_trials=256),
        "sharded stream, Thm-4 headline geometry, 4 workers",
    ),
)


def suite_names() -> list[str]:
    names: set[str] = set()
    for spec in SPECS:
        names.update(spec.suites)
    return sorted(names)


def suite_specs(suite: str, *, contains: str | None = None) -> list[BenchSpec]:
    """The specs of ``suite``, optionally filtered to ids containing
    ``contains``."""
    if suite not in suite_names():
        raise ConfigurationError(
            f"unknown suite {suite!r}; available: {', '.join(suite_names())}"
        )
    picked = [spec for spec in SPECS if suite in spec.suites]
    if contains:
        picked = [spec for spec in picked if contains in spec.id]
    return picked


def _peak_rss_kb() -> int | None:
    """Peak RSS in KiB aggregated over this process *and its reaped
    children* (``RUSAGE_SELF + RUSAGE_CHILDREN``), or None where the
    resource module is unavailable.  ``ru_maxrss`` is KiB on Linux,
    bytes on macOS.  RUSAGE_CHILDREN only covers waited-for children,
    so live pool workers are invisible to it — :func:`_worker_rss_kb`
    covers those from the merged worker telemetry."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    )
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def _worker_rss_kb(snapshot: dict) -> int:
    """Resident memory of *live* pool workers, which RUSAGE_CHILDREN
    cannot see: the ``proc.rss_kb{pid=...,worker=...}`` gauges merged
    back from worker processes, deduped by pid (one worker serves many
    shards) and excluding this process itself (the inline
    ``workers == 1`` fallback samples the parent, already covered by
    RUSAGE_SELF)."""
    import os

    from repro.obs.registry import split_metric_key

    by_pid: dict[str, int] = {}
    own = str(os.getpid())
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = split_metric_key(key)
        pid = labels.get("pid")
        if name != "proc.rss_kb" or pid is None or pid == own:
            continue
        by_pid[pid] = max(by_pid.get(pid, 0), int(value))
    return sum(by_pid.values())


def _span_seconds(snapshot: dict) -> dict:
    """The ``*.seconds`` histograms of a snapshot, reduced to the
    count/sum pairs the trajectory keeps."""
    out = {}
    for key, hist in snapshot.get("histograms", {}).items():
        if key.endswith(".seconds"):
            out[key] = {"count": hist.get("count"), "sum": hist.get("sum")}
    return out


def run_bench(
    spec: BenchSpec,
    *,
    suite: str,
    repeats: int = 3,
    seed: int = DEFAULT_SEED,
    alloc: bool = True,
    merge_into: obs.Registry | None = None,
    workers_cap: int | None = None,
) -> dict:
    """Execute one spec and build its trajectory record.

    The timed repeats run with only the span registry collecting (a
    thread-local override, so an outer telemetry registry keeps
    working); the allocation pass (tracemalloc roughly halves
    throughput) runs once more *after* timing so it can never pollute
    ``wall_s``.  ``merge_into`` optionally receives the bench
    registry's portable snapshot afterwards, with ``worker=<bench id>``
    provenance — how ``repro bench run --journal`` gets per-bench
    metrics into the live event stream.  ``workers_cap`` clamps the
    worker counts of the scaling workloads (see
    :func:`_scaling_factory`); it is installed only around
    ``spec.make()``, where backends are chosen.
    """
    from repro.engine import plan_cache
    from repro.obs.live.merge import merge_portable, portable_snapshot, roundtrip

    global _WORKERS_CAP
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    _WORKERS_CAP = workers_cap
    try:
        workload = spec.make()
    finally:
        _WORKERS_CAP = None
    cache_before = plan_cache().stats()
    started_at = time.time()
    walls: list[float] = []
    registry = obs.Registry(max_trace_events=50_000)
    with obs.using(registry):
        for repeat in range(repeats):
            rng = default_rng(seed)
            with obs.span("bench.repeat", bench=spec.id, repeat=repeat):
                t0 = perf_counter()
                work = workload.run(rng)
                walls.append(perf_counter() - t0)
    if merge_into is not None:
        merge_portable(
            merge_into, roundtrip(portable_snapshot(registry)), worker=spec.id
        )

    alloc_peak_kb = alloc_blocks = None
    if alloc:
        tracemalloc.start()
        try:
            workload.run(default_rng(seed))
            _, peak = tracemalloc.get_traced_memory()
            alloc_peak_kb = int(peak // 1024)
            alloc_blocks = int(
                sum(
                    stat.count
                    for stat in tracemalloc.take_snapshot().statistics("filename")
                )
            )
        finally:
            tracemalloc.stop()

    cache_after = plan_cache().stats()
    hits = cache_after["hits"] - cache_before["hits"]
    misses = cache_after["misses"] - cache_before["misses"]
    lookups = hits + misses
    median_wall = statistics.median(walls)
    snapshot = registry.snapshot()
    rss_self = _peak_rss_kb()
    rss_workers = _worker_rss_kb(snapshot)
    return new_record(
        bench=spec.id,
        suite=suite,
        unit=spec.unit,
        repeats=repeats,
        wall_s=walls,
        median_wall_s=median_wall,
        best_wall_s=min(walls),
        work=int(work),
        throughput=(int(work) / median_wall) if median_wall > 0 else None,
        rss_peak_kb=(
            rss_self + rss_workers if rss_self is not None else None
        ),
        rss_workers_kb=rss_workers,
        alloc_peak_kb=alloc_peak_kb,
        alloc_blocks=alloc_blocks,
        plan_cache={
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else None,
        },
        span_seconds=_span_seconds(snapshot),
        meta=workload.meta,
        env=obs.environment(),
        seed=seed,
        started_at=time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime(started_at)
        ),
    )
