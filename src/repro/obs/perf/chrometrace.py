"""Span-timeline export to Chrome-trace / Perfetto JSON.

The Chrome Trace Event Format's *complete* events (``"ph": "X"``) are
exactly our :class:`~repro.obs.tracing.SpanRecord`: a name, a start
timestamp, a duration, and an args dict.  Nesting needs no explicit
parent links — Perfetto and ``chrome://tracing`` reconstruct the stack
from time containment on one track — so the export is a direct
per-span mapping with timestamps rebased to the earliest span and
converted to microseconds (the format's unit).

Load the output at https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.tracing import SpanRecord

#: The process/thread ids all spans land on (one timeline track).
_PID = 1
_TID = 1


def _as_event_dicts(spans) -> list[dict]:
    events = []
    for span in spans:
        events.append(span.as_dict() if isinstance(span, SpanRecord) else dict(span))
    return events


def chrome_trace_events(spans) -> list[dict]:
    """Map spans (:class:`SpanRecord` s or their ``as_dict`` forms) to
    Chrome-trace ``X`` events, rebased to the earliest start."""
    records = _as_event_dicts(spans)
    if not records:
        return []
    t0 = min(float(r["start"]) for r in records)
    events = []
    for r in records:
        meta = dict(r.get("meta", {}))
        meta["path"] = r.get("path", r["name"])
        events.append(
            {
                "name": r["name"],
                "cat": str(r["name"]).split(".", 1)[0],
                "ph": "X",
                "ts": round((float(r["start"]) - t0) * 1e6, 3),
                "dur": round(float(r["duration_s"]) * 1e6, 3),
                "pid": _PID,
                "tid": _TID,
                "args": meta,
            }
        )
    # The viewer nests by time containment; emitting in start order
    # keeps parents ahead of children for tools that care.
    events.sort(key=lambda e: (e["ts"], -e["dur"]))
    return events


def chrome_trace_document(
    spans, *, metadata: dict | None = None
) -> dict:
    """A full Chrome-trace JSON object for ``spans`` plus naming
    metadata (shown as the process/thread labels in Perfetto)."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "repro"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID,
            "args": {"name": "spans"},
        },
    ]
    events.extend(chrome_trace_events(spans))
    document: dict = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        document["otherData"] = dict(metadata)
    return document


def write_chrome_trace(
    spans, path: str | Path, *, metadata: dict | None = None
) -> Path:
    """Write the trace for ``spans`` to ``path``.  ``spans`` may be a
    span list or a registry snapshot's ``spans`` dict (its ``dropped``
    count, when nonzero, is recorded in the document metadata)."""
    if isinstance(spans, dict):
        dropped = spans.get("dropped", 0)
        spans = spans.get("events", [])
        if dropped:
            metadata = {**(metadata or {}), "dropped_spans": dropped}
    target = Path(path)
    if target.exists() and target.is_dir():
        raise ConfigurationError(f"{target} is a directory")
    document = chrome_trace_document(spans, metadata=metadata)
    target.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
    return target
