"""Span-timeline export to Chrome-trace / Perfetto JSON.

The Chrome Trace Event Format's *complete* events (``"ph": "X"``) are
exactly our :class:`~repro.obs.tracing.SpanRecord`: a name, a start
timestamp, a duration, and an args dict.  Nesting needs no explicit
parent links — Perfetto and ``chrome://tracing`` reconstruct the stack
from time containment on one track.

Spans merged back from worker processes carry a ``worker`` meta label
(the ``repro.obs/worker@1`` protocol); those land on their *own*
Perfetto track — one synthetic pid per worker label, named after it —
so a sharded run renders as parallel worker lanes under the parent's
lane instead of one interleaved mess.  When spans also carry causal
ids (:mod:`repro.obs.tracectx`), cross-track parent/child links are
drawn as flow arrows (``"s"``/``"f"`` event pairs) from the
dispatching span to each worker's root spans.

Load the output at https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.tracing import SpanRecord

#: The pid of the main-process track; worker tracks count up from it.
_PID = 1
_TID = 1


def _as_event_dicts(spans) -> list[dict]:
    events = []
    for span in spans:
        events.append(span.as_dict() if isinstance(span, SpanRecord) else dict(span))
    return events


def _track_pids(records: list[dict]) -> dict[str | None, int]:
    """Assign one synthetic pid per worker label: the main process
    (spans without a ``worker`` meta label) is pid 1, workers follow in
    sorted-label order — deterministic for any merge order."""
    workers = sorted(
        {
            str(r.get("meta", {}).get("worker"))
            for r in records
            if r.get("meta", {}).get("worker") is not None
        }
    )
    pids: dict[str | None, int] = {None: _PID}
    for offset, label in enumerate(workers):
        pids[label] = _PID + 1 + offset
    return pids


def chrome_trace_events(spans) -> list[dict]:
    """Map spans (:class:`SpanRecord` s or their ``as_dict`` forms) to
    Chrome-trace ``X`` events, rebased to the earliest start, plus flow
    arrows for causal links that cross track boundaries."""
    records = _as_event_dicts(spans)
    if not records:
        return []
    pids = _track_pids(records)
    t0 = min(float(r["start"]) for r in records)
    events = []
    for r in records:
        meta = dict(r.get("meta", {}))
        meta["path"] = r.get("path", r["name"])
        if r.get("span_id") is not None:
            meta["span_id"] = r["span_id"]
            if r.get("parent_id") is not None:
                meta["parent_id"] = r["parent_id"]
        events.append(
            {
                "name": r["name"],
                "cat": str(r["name"]).split(".", 1)[0],
                "ph": "X",
                "ts": round((float(r["start"]) - t0) * 1e6, 3),
                "dur": round(float(r["duration_s"]) * 1e6, 3),
                "pid": pids[_worker_of(r)],
                "tid": _TID,
                "args": meta,
            }
        )
    # The viewer nests by time containment; emitting in start order
    # keeps parents ahead of children for tools that care.
    events.sort(key=lambda e: (e["ts"], -e["dur"], e["pid"]))
    events.extend(_flow_events(records, pids, t0))
    return events


def _worker_of(record: dict) -> str | None:
    worker = record.get("meta", {}).get("worker")
    return None if worker is None else str(worker)


def _flow_events(records: list[dict], pids: dict, t0: float) -> list[dict]:
    """``s``/``f`` flow-arrow pairs for parent→child span links whose
    endpoints sit on different tracks (same-track nesting is already
    visible as time containment).  Arrow ids are sequential over the
    deterministic sorted child order, so the document is byte-stable
    under a fixed clock."""
    by_id = {
        r["span_id"]: r for r in records if r.get("span_id") is not None
    }
    links = []
    for r in records:
        parent = by_id.get(r.get("parent_id"))
        if parent is None:
            continue
        if _worker_of(parent) == _worker_of(r):
            continue
        links.append((parent, r))
    links.sort(key=lambda pair: (float(pair[1]["start"]), str(pair[1]["span_id"])))
    flows: list[dict] = []
    for flow_id, (parent, child) in enumerate(links, start=1):
        common = {"cat": "flow", "name": "dispatch", "id": flow_id, "tid": _TID}
        flows.append(
            {
                **common,
                "ph": "s",
                "ts": round((float(parent["start"]) - t0) * 1e6, 3),
                "pid": pids[_worker_of(parent)],
            }
        )
        flows.append(
            {
                **common,
                "ph": "f",
                "bp": "e",
                "ts": round((float(child["start"]) - t0) * 1e6, 3),
                "pid": pids[_worker_of(child)],
            }
        )
    return flows


def chrome_trace_document(
    spans, *, metadata: dict | None = None
) -> dict:
    """A full Chrome-trace JSON object for ``spans`` plus naming
    metadata (shown as the process/thread labels in Perfetto): pid 1 is
    the main ``repro`` process, each worker label gets its own named
    track."""
    records = _as_event_dicts(spans)
    pids = _track_pids(records) if records else {None: _PID}
    events: list[dict] = []
    for label, pid in sorted(pids.items(), key=lambda item: item[1]):
        name = "repro" if label is None else f"worker {label}"
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _TID,
                "args": {"name": "spans"},
            }
        )
    events.extend(chrome_trace_events(records))
    document: dict = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        document["otherData"] = dict(metadata)
    return document


def write_chrome_trace(
    spans, path: str | Path, *, metadata: dict | None = None
) -> Path:
    """Write the trace for ``spans`` to ``path``.  ``spans`` may be a
    span list or a registry snapshot's ``spans`` dict (its ``dropped``
    count, when nonzero, is recorded in the document metadata)."""
    if isinstance(spans, dict):
        dropped = spans.get("dropped", 0)
        spans = spans.get("events", [])
        if dropped:
            metadata = {**(metadata or {}), "dropped_spans": dropped}
    target = Path(path)
    if target.exists() and target.is_dir():
        raise ConfigurationError(f"{target} is a directory")
    document = chrome_trace_document(spans, metadata=metadata)
    target.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
    return target
