"""The ``repro obs analyze`` causal-trace analyzer.

Replays a ``repro.obs/journal@1`` journal and reconstructs the causal
span tree from the ``span_id``/``parent_id`` pairs a trace context
stamps onto spans (:mod:`repro.obs.tracectx`) — including spans merged
back from shard workers, whose root ``parent_id`` names the parent
process's dispatching ``engine.shards`` span.  From the tree it
derives:

* the **critical path** — from the longest root span, repeatedly
  descend into the longest child (durations only: worker clocks are
  not comparable to the parent's, so cross-process wall timestamps
  never enter the walk);
* the **per-phase breakdown** — wall time between consecutive
  ``phase`` frames in the journal;
* the **worker table** — per worker label: span count, busy time (the
  worker's root spans), share of the dispatch window, and a straggler
  marker on the slowest worker.

Per-worker span totals partition the flat replayed span list, so they
sum exactly to ``replay_journal``'s totals — the invariant the tier-1
suite pins.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.obs.live.journal import read_journal, replay_journal

#: Worker-label key for spans recorded in the parent process.
MAIN = "main"


def _worker_of(span: dict) -> str:
    worker = (span.get("meta") or {}).get("worker")
    return MAIN if worker is None else str(worker)


def causal_tree(spans: list[dict]) -> dict:
    """Index spans by ``span_id`` and link children to parents.

    Returns ``{"nodes": {id: node}, "roots": [ids], "untraced": n}``
    where each node is ``{"name", "worker", "duration_s", "depth",
    "children": [ids]}``.  Spans without ids (recorded with no trace
    context) are counted in ``untraced``, not placed in the tree; a
    span whose parent id is unknown becomes a root.
    """
    nodes: dict[str, dict] = {}
    untraced = 0
    for span in spans:
        span_id = span.get("span_id")
        if span_id is None:
            untraced += 1
            continue
        nodes[span_id] = {
            "name": span["name"],
            "worker": _worker_of(span),
            "duration_s": float(span["duration_s"]),
            "depth": int(span.get("depth", 0)),
            "parent_id": span.get("parent_id"),
            "children": [],
        }
    roots = []
    for span_id, node in nodes.items():
        parent = nodes.get(node["parent_id"])
        if parent is None:
            roots.append(span_id)
        else:
            parent["children"].append(span_id)
    # Deterministic child order: ids are <prefix>:<seq>, so sort by
    # (prefix, numeric seq) to keep shard-2 ahead of shard-10.
    for node in nodes.values():
        node["children"].sort(key=_id_sort_key)
    roots.sort(key=_id_sort_key)
    return {"nodes": nodes, "roots": roots, "untraced": untraced}


def _id_sort_key(span_id: str) -> tuple:
    prefix, _, seq = span_id.rpartition(":")
    return (prefix, int(seq) if seq.isdigit() else 0, seq)


def critical_path(tree: dict) -> list[dict]:
    """The longest root-to-leaf chain by span duration: at every level
    descend into the longest child.  Each step reports the span's name,
    worker, duration, and *self* time (duration minus its children)."""
    nodes = tree["nodes"]
    if not tree["roots"]:
        return []
    current = max(tree["roots"], key=lambda i: nodes[i]["duration_s"])
    path = []
    while current is not None:
        node = nodes[current]
        child_total = sum(nodes[c]["duration_s"] for c in node["children"])
        path.append(
            {
                "span_id": current,
                "name": node["name"],
                "worker": node["worker"],
                "duration_s": node["duration_s"],
                "self_s": max(0.0, node["duration_s"] - child_total),
            }
        )
        current = max(
            node["children"],
            key=lambda i: nodes[i]["duration_s"],
            default=None,
        )
    return path


def phase_breakdown(events: list[dict]) -> list[dict]:
    """Wall time spent in each journal ``phase``: a phase runs from its
    frame to the next phase frame (or the journal's last event)."""
    phases = [e for e in events if e.get("type") == "phase"]
    if not phases:
        return []
    end_t = float(events[-1].get("t", phases[-1]["t"]))
    rows = []
    for frame, following in zip(phases, phases[1:] + [None]):
        stop = float(following["t"]) if following is not None else end_t
        rows.append(
            {
                "phase": str(frame.get("name", "?")),
                "wall_s": max(0.0, stop - float(frame["t"])),
            }
        )
    return rows


def worker_rows(spans: list[dict]) -> list[dict]:
    """Per-worker utilization: busy time is the sum of the worker's
    root spans (depth 0 in its own process — ``engine.shard`` for pool
    workers), so nested spans are not double-counted.  The dispatch
    window is the parent's total ``engine.shards`` span time; the
    slowest worker gets the straggler marker."""
    busy: dict[str, float] = {}
    counts: dict[str, int] = {}
    for span in spans:
        worker = _worker_of(span)
        counts[worker] = counts.get(worker, 0) + 1
        if worker != MAIN and int(span.get("depth", 0)) == 0:
            busy[worker] = busy.get(worker, 0.0) + float(span["duration_s"])
    window = sum(
        float(s["duration_s"])
        for s in spans
        if _worker_of(s) == MAIN and s["name"] == "engine.shards"
    )
    slowest = max(busy, key=busy.get) if busy else None
    rows = []
    for worker in sorted(counts):
        if worker == MAIN:
            continue
        worker_busy = busy.get(worker, 0.0)
        rows.append(
            {
                "worker": worker,
                "spans": counts[worker],
                "busy_s": worker_busy,
                "of_window": (worker_busy / window) if window > 0 else None,
                "straggler": worker == slowest and len(busy) > 1,
            }
        )
    return rows


def span_totals_by_worker(spans: list[dict]) -> dict[str, float]:
    """Total span-duration per worker label.  The labels partition the
    flat span list, so the values sum exactly to the all-span total of
    the same replay — the parity ``repro obs analyze`` is pinned to."""
    totals: dict[str, float] = {}
    for span in spans:
        worker = _worker_of(span)
        totals[worker] = totals.get(worker, 0.0) + float(span["duration_s"])
    return dict(sorted(totals.items()))


def analyze_journal(source) -> dict:
    """The full analysis for one journal (path or event list)."""
    events = read_journal(source)
    replayed = replay_journal(events)
    spans = replayed["spans"]["events"]
    tree = causal_tree(spans)
    head = events[0]
    trace_id = head.get("trace_id")
    if trace_id is None:
        # The CLI stamps the trace id on the env frame, right after start.
        trace_id = next(
            (e.get("trace_id") for e in events if e.get("type") == "env"), None
        )
    counters = replayed["counters"]
    return {
        "command": head.get("command"),
        "trace_id": trace_id,
        "spans": len(spans),
        "untraced_spans": tree["untraced"],
        "tree": tree,
        "critical_path": critical_path(tree),
        "phases": phase_breakdown(events),
        "workers": worker_rows(spans),
        "totals_by_worker": span_totals_by_worker(spans),
        # Self-healing activity (zero everywhere on a clean run; the
        # journal sink only writes counters that moved, so .get).
        "supervision": {
            "shard_retries": int(counters.get("engine.shard_retries", 0)),
            "shard_timeouts": int(counters.get("engine.shard_timeouts", 0)),
            "pool_respawns": int(counters.get("engine.pool_respawns", 0)),
            "degraded_fallbacks": int(
                counters.get("engine.degraded_fallbacks", 0)
            ),
            "worker_deaths": sum(
                1 for e in events if e.get("type") == "worker_death"
            ),
        },
        "replayed": replayed,
    }


def _fmt_s(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _tree_lines(tree: dict, max_children: int = 8) -> list[str]:
    nodes = tree["nodes"]
    lines: list[str] = []

    def walk(span_id: str, indent: int) -> None:
        node = nodes[span_id]
        worker = "" if node["worker"] == MAIN else f"  [{node['worker']}]"
        lines.append(
            f"{'  ' * indent}{node['name']}  "
            f"{_fmt_s(node['duration_s'])}{worker}  ({span_id})"
        )
        shown = node["children"][:max_children]
        for child in shown:
            walk(child, indent + 1)
        hidden = len(node["children"]) - len(shown)
        if hidden > 0:
            lines.append(f"{'  ' * (indent + 1)}... {hidden} more")

    for root in tree["roots"]:
        walk(root, 0)
    return lines


def analysis_report(analysis: dict, *, fmt: str = "table") -> str:
    """Render one :func:`analyze_journal` result; ``fmt`` is ``table``
    (terminal) or ``md`` (Markdown)."""
    if fmt not in {"table", "md"}:
        raise ConfigurationError(f"unknown analyze format {fmt!r}")
    parts: list[str] = []
    header = (
        f"command={analysis.get('command') or '?'}"
        f"  trace={analysis.get('trace_id') or '-'}"
        f"  spans={analysis['spans']}"
        f" ({analysis['untraced_spans']} untraced)"
    )
    parts.append(f"## Causal trace\n\n{header}" if fmt == "md" else header)

    tree_lines = _tree_lines(analysis["tree"])
    if tree_lines:
        block = "\n".join(tree_lines)
        parts.append(f"```\n{block}\n```" if fmt == "md" else block)

    path = analysis["critical_path"]
    if path:
        path_rows = [
            {
                "step": i,
                "span": f"{step['name']} ({step['worker']})",
                "duration": _fmt_s(step["duration_s"]),
                "self": _fmt_s(step["self_s"]),
            }
            for i, step in enumerate(path)
        ]
        parts.append(_section("Critical path", path_rows, fmt))

    supervision = analysis.get("supervision") or {}
    if any(supervision.values()):
        # Only worth a section when something actually went wrong —
        # clean-run reports stay exactly as they were.
        supervision_rows = [
            {"event": key.replace("_", " "), "count": value}
            for key, value in supervision.items()
            if value
        ]
        parts.append(_section("Supervision", supervision_rows, fmt))

    phases = analysis["phases"]
    if phases:
        phase_rows = [
            {"phase": row["phase"], "wall": _fmt_s(row["wall_s"])}
            for row in phases
        ]
        parts.append(_section("Phases", phase_rows, fmt))

    workers = analysis["workers"]
    if workers:
        worker_rows_fmt = [
            {
                "worker": row["worker"],
                "spans": row["spans"],
                "busy": _fmt_s(row["busy_s"]),
                "of window": (
                    f"{row['of_window'] * 100:.0f}%"
                    if row["of_window"] is not None
                    else "-"
                ),
                "straggler": "<-- straggler" if row["straggler"] else "",
            }
            for row in workers
        ]
        parts.append(_section("Workers", worker_rows_fmt, fmt))

    totals = analysis["totals_by_worker"]
    if totals:
        total_rows = [
            {"worker": worker, "span total": _fmt_s(value)}
            for worker, value in totals.items()
        ]
        total_rows.append(
            {"worker": "(all)", "span total": _fmt_s(sum(totals.values()))}
        )
        parts.append(_section("Span totals", total_rows, fmt))

    return "\n\n".join(parts)


def _section(title: str, rows: list[dict], fmt: str) -> str:
    if fmt == "md":
        headers = list(rows[0].keys())
        lines = [
            f"## {title}",
            "",
            "| " + " | ".join(headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        lines.extend(
            "| " + " | ".join(str(row[h]) for h in headers) + " |" for row in rows
        )
        return "\n".join(lines)
    from repro.analysis.tables import render_table

    return render_table(rows, title=title.lower())
