"""repro.obs.perf — the performance observatory.

Built on top of :mod:`repro.obs`, this subpackage turns one-off bench
snapshots into a continuously measured *trajectory* with a regression
gate, so the paper's resource claims (Theorems 3-4, Table 1) stay
backed by numbers that are re-earned on every commit:

* :mod:`repro.obs.perf.suite` — the registry-driven bench harness
  behind ``repro bench run``: deterministic workloads (engine
  throughput, Thm-3/4 quality geometries, certify wall time) timed
  with median-of-repeats, capturing per-stage span timings, plan-cache
  hit rates, peak RSS, and allocation counts;
* :mod:`repro.obs.perf.trajectory` — the schema-tagged, append-only
  ``BENCH_TRAJECTORY.jsonl`` record store, keyed by git SHA;
* :mod:`repro.obs.perf.regression` — noise-aware baseline comparison
  (``repro bench compare``), exiting nonzero on regression for CI;
* :mod:`repro.obs.perf.chrometrace` — span-timeline export to
  Chrome-trace / Perfetto JSON (``repro obs trace``);
* :mod:`repro.obs.perf.profiler` — cProfile/pstats hooks so a profile
  of any switch geometry is one command;
* :mod:`repro.obs.perf.report` — the ``repro obs report`` trajectory
  dashboard (throughput trends, delay-in-gates vs the theoretical
  ``3 lg n`` / ``4 beta lg n`` lines).

See docs/performance.md ("The performance observatory") for the
record schema and CLI recipes.
"""

from repro.obs.perf.analyze import analysis_report, analyze_journal
from repro.obs.perf.chrometrace import chrome_trace_document, write_chrome_trace
from repro.obs.perf.profiler import profile_text, profiled, write_profile
from repro.obs.perf.regression import Verdict, compare_records, has_regressions
from repro.obs.perf.report import trajectory_report
from repro.obs.perf.suite import (
    SPECS,
    BenchSpec,
    Workload,
    run_bench,
    suite_names,
    suite_specs,
)
from repro.obs.perf.trajectory import (
    TRAJECTORY_SCHEMA,
    TRAJECTORY_VERSION,
    append_records,
    backfill_engine_report,
    latest_per_bench,
    read_trajectory,
    split_latest,
)

__all__ = [
    "SPECS",
    "TRAJECTORY_SCHEMA",
    "TRAJECTORY_VERSION",
    "BenchSpec",
    "Verdict",
    "Workload",
    "analysis_report",
    "analyze_journal",
    "append_records",
    "backfill_engine_report",
    "chrome_trace_document",
    "compare_records",
    "has_regressions",
    "latest_per_bench",
    "profile_text",
    "profiled",
    "read_trajectory",
    "run_bench",
    "split_latest",
    "suite_names",
    "suite_specs",
    "trajectory_report",
    "write_chrome_trace",
    "write_profile",
]
