"""The append-only bench trajectory: ``BENCH_TRAJECTORY.jsonl``.

One line per bench execution, schema-tagged so mixed-version files
stay readable.  A record is keyed by ``(bench, env.git_sha)`` — the
same bench re-run at a new commit appends a new line, never rewrites
an old one — which is what lets :mod:`repro.obs.perf.regression` diff
a candidate against the trailing window of history.

Record layout (``schema="repro.obs/bench"``, ``version=1``)::

    {
      "schema": "repro.obs/bench", "version": 1,
      "bench": "engine.columnsort-n256",   # suite-registry spec id
      "suite": "smoke", "unit": "trials",
      "repeats": 3, "wall_s": [...],       # every repeat, seconds
      "median_wall_s": ..., "best_wall_s": ...,
      "work": 64, "throughput": ...,       # work / median_wall_s
      "rss_peak_kb": ..., "alloc_peak_kb": ..., "alloc_blocks": ...,
      "plan_cache": {"hits": .., "misses": .., "hit_rate": ..},
      "span_seconds": {"engine.stage.seconds": {"count": .., "sum": ..}},
      "meta": {...},                       # spec-specific (n, m, delays)
      "env": {"git_sha": .., "git_dirty": .., "python": ..,
              "numpy": .., "platform": ..},
      "seed": 6535, "started_at": "2026-..."
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError

TRAJECTORY_SCHEMA = "repro.obs/bench"
TRAJECTORY_VERSION = 1


def new_record(**fields: object) -> dict:
    """A schema-tagged trajectory record with ``fields`` merged in."""
    return {"schema": TRAJECTORY_SCHEMA, "version": TRAJECTORY_VERSION, **fields}


def append_records(path: str | Path, records: list[dict]) -> Path:
    """Append ``records`` (one JSON line each) to ``path``; creates the
    file on first use.  Existing lines are never touched."""
    target = Path(path)
    if target.exists() and target.is_dir():
        raise ConfigurationError(f"{target} is a directory")
    with target.open("a", encoding="utf-8") as fh:
        for record in records:
            if record.get("schema") != TRAJECTORY_SCHEMA:
                raise ConfigurationError(
                    f"refusing to append a non-trajectory record "
                    f"(schema={record.get('schema')!r})"
                )
            fh.write(json.dumps(record, sort_keys=False) + "\n")
    return target


def read_trajectory(path: str | Path) -> list[dict]:
    """Read every record of a trajectory file, in file (= append)
    order.  Blank lines are skipped; a line that is not a
    ``repro.obs/bench`` record raises."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no trajectory at {source}")
    records: list[dict] = []
    for lineno, line in enumerate(
        source.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{source}:{lineno} is not valid JSON: {exc}"
            ) from exc
        if record.get("schema") != TRAJECTORY_SCHEMA:
            raise ConfigurationError(
                f"{source}:{lineno} is not a {TRAJECTORY_SCHEMA} record "
                f"(schema={record.get('schema')!r})"
            )
        records.append(record)
    return records


def latest_per_bench(records: list[dict]) -> dict[str, dict]:
    """The newest record of every bench id, in append order."""
    latest: dict[str, dict] = {}
    for record in records:
        latest[str(record.get("bench"))] = record
    return latest


def split_latest(records: list[dict]) -> tuple[dict[str, dict], list[dict]]:
    """Split a trajectory into ``(candidates, history)``: the newest
    record per bench (the run under test) and everything before it (the
    baseline pool).  This is what ``repro bench compare`` does when the
    candidate and the baseline live in the same file."""
    candidates = latest_per_bench(records)
    picked = {id(record) for record in candidates.values()}
    history = [record for record in records if id(record) not in picked]
    return candidates, history


def backfill_engine_report(
    report: dict, *, env: dict | None = None
) -> list[dict]:
    """Convert a legacy ``BENCH_engine.json`` document (see
    ``benchmarks/bench_engine_throughput.py``) into trajectory records
    — the seed baseline ("record 0") for ``repro bench compare``.

    Each engine row becomes one record with the batched path's best
    wall time as its single repeat; the scalar timing and speedup ride
    along in ``meta`` so the provenance survives the conversion.
    """
    rows = report.get("rows", [])
    if not rows:
        raise ConfigurationError("engine report has no rows to backfill")
    environment = {
        "git_sha": None,
        "git_dirty": None,
        "python": None,
        "numpy": None,
        "platform": None,
        **(env or {}),
    }
    records = []
    for row in rows:
        wall = float(row["batch_seconds"])
        trials = int(row["trials"])
        records.append(
            new_record(
                bench=f"engine.{row['switch']}",
                suite="full",
                unit="trials",
                repeats=1,
                wall_s=[wall],
                median_wall_s=wall,
                best_wall_s=wall,
                work=trials,
                throughput=trials / wall if wall > 0 else None,
                rss_peak_kb=None,
                alloc_peak_kb=None,
                alloc_blocks=None,
                plan_cache=report.get("plan_cache"),
                span_seconds={},
                meta={
                    "backfilled_from": "BENCH_engine.json",
                    "n": int(row["n"]),
                    "m": int(row["m"]),
                    "scalar_seconds": float(row["scalar_seconds"]),
                    "speedup": float(row["speedup"]),
                },
                env=environment,
                seed=report.get("seed"),
                started_at=None,
            )
        )
    return records
