"""The ``repro obs report`` trajectory dashboard.

Renders a bench trajectory (see :mod:`repro.obs.perf.trajectory`) as
a Markdown document or terminal tables:

* **Trajectory** — per bench: record count, a sparkline of median wall
  times over history (oldest -> newest), the latest throughput, and
  the latest-vs-previous delta;
* **Delay in gates vs theory** — for the Thm-3/4 quality benches,
  the measured combinational depth against the paper's ``3 lg n``
  (Revsort, Theorem 3) and ``4 beta lg n`` (Columnsort, Theorem 4)
  message-delay lines;
* **Flows** — for the ``flows.*`` benches: FCT p50/p99 from the latest
  record plus an events/s sparkline over history;
* **Provenance** — the environment block of the newest record,
  including the host ``cpu_count`` (see docs/performance.md on
  interpreting scaling numbers from 1-core CI runners).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.obs.perf.trajectory import latest_per_bench

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Unicode sparkline of ``values`` (empty string for no values;
    a flat series renders as a flat line)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * len(_SPARK)))]
        for v in values
    )


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _fmt_throughput(record: dict) -> str:
    throughput = record.get("throughput")
    if throughput is None:
        return "-"
    return f"{throughput:,.0f} {record.get('unit', '?')}/s"


def trajectory_rows(records: list[dict]) -> list[dict]:
    """One dashboard row per bench id, in sorted id order."""
    by_bench: dict[str, list[dict]] = {}
    for record in records:
        by_bench.setdefault(str(record.get("bench")), []).append(record)
    rows = []
    for bench in sorted(by_bench):
        history = by_bench[bench]
        latest = history[-1]
        walls = [float(r["median_wall_s"]) for r in history]
        if len(walls) >= 2 and walls[-2] > 0:
            delta = f"{(walls[-1] / walls[-2] - 1.0) * 100:+.1f}%"
        else:
            delta = "-"
        rows.append(
            {
                "bench": bench,
                "records": len(history),
                "trend": sparkline(walls),
                "median wall": _fmt_seconds(walls[-1]),
                "vs prev": delta,
                "throughput": _fmt_throughput(latest),
                "cache hit%": _fmt_hit_rate(latest),
            }
        )
    return rows


def _fmt_hit_rate(record: dict) -> str:
    cache = record.get("plan_cache") or {}
    rate = cache.get("hit_rate")
    return f"{rate * 100:.0f}%" if rate is not None else "-"


def delay_rows(records: list[dict]) -> list[dict]:
    """Delay-in-gates vs the theoretical lines, from the latest record
    of every bench that carries ``meta.gate_delays``."""
    rows = []
    for bench, record in sorted(latest_per_bench(records).items()):
        meta = record.get("meta") or {}
        if meta.get("gate_delays") is None:
            continue
        family = meta.get("family", "?")
        theory = meta.get("theory_delays")
        label = "3 lg n" if family == "revsort" else "4β lg n"
        measured = int(meta["gate_delays"])
        rows.append(
            {
                "bench": bench,
                "n": meta.get("n", "-"),
                "delay (gates)": measured,
                "theory": f"{label} = {theory:g}" if theory is not None else "-",
                "measured/theory": (
                    f"{measured / theory:.2f}" if theory else "-"
                ),
            }
        )
    return rows


def flows_rows(records: list[dict]) -> list[dict]:
    """One row per ``flows.*`` bench: latest FCT percentiles (cycles)
    and the events/s trend over history."""
    by_bench: dict[str, list[dict]] = {}
    for record in records:
        bench = str(record.get("bench"))
        if bench.startswith("flows."):
            by_bench.setdefault(bench, []).append(record)
    rows = []
    for bench in sorted(by_bench):
        history = by_bench[bench]
        latest = history[-1]
        meta = latest.get("meta") or {}
        rates = [
            float(r["throughput"])
            for r in history
            if r.get("throughput") is not None
        ]
        rows.append(
            {
                "bench": bench,
                "fabric": meta.get("fabric", "-"),
                "fct p50": _fmt_cycles(meta.get("fct_p50")),
                "fct p99": _fmt_cycles(meta.get("fct_p99")),
                "events/s": _fmt_throughput(latest),
                "trend": sparkline(rates),
            }
        )
    return rows


def _fmt_cycles(value) -> str:
    return f"{float(value):g}" if value is not None else "-"


def _render_md(rows: list[dict]) -> str:
    if not rows:
        return "_(empty)_"
    headers = list(rows[0].keys())
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend(
        "| " + " | ".join(str(row[h]) for h in headers) + " |" for row in rows
    )
    return "\n".join(lines)


def trajectory_report(records: list[dict], *, fmt: str = "table") -> str:
    """The full dashboard for ``records`` as one string; ``fmt`` is
    ``table`` (terminal) or ``md`` (Markdown)."""
    if not records:
        raise ConfigurationError("trajectory is empty — run 'repro bench run' first")
    if fmt not in {"table", "md"}:
        raise ConfigurationError(f"unknown report format {fmt!r}")
    bench_rows = trajectory_rows(records)
    gate_rows = delay_rows(records)
    fct_rows = flows_rows(records)
    env = records[-1].get("env") or {}
    cpus = env.get("cpu_count")
    provenance = (
        f"latest record: sha={env.get('git_sha') or '?'}"
        f"{' (dirty)' if env.get('git_dirty') else ''}"
        f"  python={env.get('python') or '?'}  numpy={env.get('numpy') or '?'}"
        f"  cpus={cpus if cpus is not None else '?'}"
        f"  started={records[-1].get('started_at') or '?'}"
    )
    if fmt == "md":
        parts = [
            "# Bench trajectory",
            "",
            f"{len(records)} records, {len(bench_rows)} benches.",
            "",
            "## Trajectory (median wall per record, oldest → newest)",
            "",
            _render_md(bench_rows),
        ]
        if gate_rows:
            parts += [
                "",
                "## Delay in gates vs theory (Thm 3: 3 lg n, Thm 4: 4β lg n)",
                "",
                _render_md(gate_rows),
            ]
        if fct_rows:
            parts += [
                "",
                "## Flows (FCT in fabric cycles, events/s over history)",
                "",
                _render_md(fct_rows),
            ]
        parts += ["", f"_{provenance}_", ""]
        return "\n".join(parts)

    from repro.analysis.tables import render_table

    parts = [
        render_table(
            bench_rows,
            title=f"bench trajectory ({len(records)} records)",
        )
    ]
    if gate_rows:
        parts.append(
            render_table(
                gate_rows,
                title="delay in gates vs theory (Thm 3: 3 lg n, Thm 4: 4b lg n)",
            )
        )
    if fct_rows:
        parts.append(
            render_table(
                fct_rows,
                title="flows (FCT in fabric cycles, events/s over history)",
            )
        )
    parts.append(provenance)
    return "\n\n".join(parts)
