"""Noise-aware regression detection over a bench trajectory.

``repro bench compare`` gates on **median-of-repeats**: each record
already carries the median wall time of its repeats, and the baseline
for a bench is the *median of the trailing window* of historical
medians — one noisy historical record cannot move the gate, and one
noisy candidate repeat cannot trip it.

A candidate regresses when its median exceeds the baseline by more
than the relative ``tolerance`` band::

    candidate > baseline * (1 + tolerance)   ->  regression
    candidate < baseline / (1 + tolerance)   ->  improvement
    otherwise                                ->  ok

Benches with no history produce ``no-baseline`` verdicts (they pass:
the first record of a new bench must be appendable), and an exact tie
is always ``ok`` — including the degenerate all-zero-wall case.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Relative band within which a wall-time change is considered noise.
#: 0.5 tolerates the +-50% jitter of shared CI hosts while still
#: catching a 2x slowdown with margin.
DEFAULT_TOLERANCE = 0.5

#: How many trailing historical records form the baseline.
DEFAULT_WINDOW = 5

_STATUS_ORDER = {"regression": 0, "no-baseline": 1, "improvement": 2, "ok": 3}


@dataclass(frozen=True)
class Verdict:
    """The comparison outcome for one bench."""

    bench: str
    status: str  # "ok" | "regression" | "improvement" | "no-baseline"
    candidate_wall_s: float
    baseline_wall_s: float | None
    window: int  # historical records the baseline summarises
    ratio: float | None  # candidate / baseline (None without baseline)

    @property
    def regressed(self) -> bool:
        return self.status == "regression"

    @property
    def delta_pct(self) -> float | None:
        """Relative change vs the baseline, percent (+30.0 = 30%
        slower); None without a meaningful ratio."""
        if self.ratio is None:
            return None
        return (self.ratio - 1.0) * 100.0

    def as_dict(self) -> dict:
        return {
            "bench": self.bench,
            "status": self.status,
            "candidate_wall_s": self.candidate_wall_s,
            "baseline_wall_s": self.baseline_wall_s,
            "window": self.window,
            "ratio": self.ratio,
            "delta_pct": self.delta_pct,
        }


def _judge(candidate: float, baseline: float, tolerance: float) -> tuple[str, float | None]:
    if candidate == baseline:  # exact tie, including 0 == 0
        return "ok", 1.0
    if baseline == 0.0:
        # A zero baseline with a nonzero candidate has no meaningful
        # ratio; any measurable time over an unmeasurable baseline is
        # flagged so clock-resolution bugs surface instead of hiding.
        return "regression", None
    ratio = candidate / baseline
    if ratio > 1.0 + tolerance:
        return "regression", ratio
    if ratio < 1.0 / (1.0 + tolerance):
        return "improvement", ratio
    return "ok", ratio


def compare_records(
    candidates: dict[str, dict],
    history: list[dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
) -> list[Verdict]:
    """Judge each candidate record against the trailing ``window`` of
    its bench's history.  ``candidates`` maps bench id to its newest
    record (see :func:`repro.obs.perf.trajectory.split_latest`);
    ``history`` is the baseline pool in append order."""
    if tolerance < 0:
        raise ConfigurationError("tolerance must be non-negative")
    if window < 1:
        raise ConfigurationError("window must be >= 1")
    verdicts: list[Verdict] = []
    for bench, record in sorted(candidates.items()):
        candidate_wall = float(record["median_wall_s"])
        prior = [r for r in history if r.get("bench") == bench]
        tail = prior[-window:]
        if not tail:
            verdicts.append(
                Verdict(bench, "no-baseline", candidate_wall, None, 0, None)
            )
            continue
        baseline_wall = statistics.median(
            float(r["median_wall_s"]) for r in tail
        )
        status, ratio = _judge(candidate_wall, baseline_wall, tolerance)
        verdicts.append(
            Verdict(bench, status, candidate_wall, baseline_wall, len(tail), ratio)
        )
    verdicts.sort(key=lambda v: (_STATUS_ORDER[v.status], v.bench))
    return verdicts


def has_regressions(verdicts: list[Verdict]) -> bool:
    return any(v.regressed for v in verdicts)
