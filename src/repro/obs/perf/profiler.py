"""cProfile/pstats hooks for the hot batch-executor paths.

Spans answer *where the stages spend time*; a profile answers *which
Python frames burn it*.  :func:`profiled` wraps any region in a
:class:`cProfile.Profile`, and :func:`write_profile` lands the result
either as a binary ``.prof`` (feed to ``snakeviz``/``flameprof``/
``python -m pstats`` for a flamegraph) or as a pstats text table —
``repro obs trace --profile`` makes profiling a switch geometry one
command.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.errors import ConfigurationError


@contextmanager
def profiled() -> Iterator[cProfile.Profile]:
    """Profile the enclosed region; the yielded profile is ready for
    :func:`profile_text` / :func:`write_profile` after exit."""
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()


def profile_text(
    profile: cProfile.Profile, *, top: int = 30, sort: str = "cumulative"
) -> str:
    """The pstats table of ``profile``, restricted to the ``top``
    entries by ``sort`` order."""
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    try:
        stats.sort_stats(sort)
    except KeyError as exc:
        raise ConfigurationError(f"unknown pstats sort key {sort!r}") from exc
    stats.print_stats(top)
    return buffer.getvalue()


def write_profile(
    profile: cProfile.Profile,
    path: str | Path,
    *,
    top: int = 30,
    sort: str = "cumulative",
) -> Path:
    """Write ``profile`` to ``path``: binary stats for ``.prof`` /
    ``.pstats`` suffixes (loadable by pstats-based flamegraph tools),
    a human-readable pstats table otherwise."""
    target = Path(path)
    if target.exists() and target.is_dir():
        raise ConfigurationError(f"{target} is a directory")
    if target.suffix in {".prof", ".pstats"}:
        profile.dump_stats(str(target))
    else:
        target.write_text(
            profile_text(profile, top=top, sort=sort), encoding="utf-8"
        )
    return target
