"""Snapshot exporters: JSON files and Markdown sections.

A *snapshot* is the plain dict produced by
:meth:`repro.obs.registry.Registry.snapshot` — five keys
(``counters``, ``gauges``, ``histograms``, ``series``, ``spans``)
holding only JSON-native values, so :func:`write_metrics_json` /
:func:`read_metrics_json` round-trip it losslessly.

:func:`metrics_markdown` renders the same snapshot as GitHub-flavoured
Markdown tables; :meth:`repro.analysis.reporting.ReportBuilder
.add_metrics` splices that into a report document.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.errors import ConfigurationError

#: Snapshot schema version recorded in every metrics.json.
SCHEMA_VERSION = 1


def _jsonable(snapshot: dict) -> dict:
    """Replace the infinities an empty histogram would carry (already
    mapped to None by Histogram.as_dict, but be safe for hand-built
    snapshots)."""

    def fix(value):
        if isinstance(value, float) and not math.isfinite(value):
            return None
        if isinstance(value, dict):
            return {k: fix(v) for k, v in value.items()}
        if isinstance(value, list):
            return [fix(v) for v in value]
        return value

    return fix(snapshot)


def write_metrics_json(snapshot: dict, path: str | Path) -> Path:
    """Write one snapshot (plus schema/version header) to ``path``."""
    target = Path(path)
    if target.exists() and target.is_dir():
        raise ConfigurationError(f"{target} is a directory")
    document = {"schema": "repro.obs/metrics", "version": SCHEMA_VERSION}
    document.update(_jsonable(snapshot))
    target.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return target


def read_metrics_json(path: str | Path) -> dict:
    """Read a metrics.json back into a snapshot dict (header checked
    and stripped, so ``read(write(s)) == s`` for registry snapshots)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("schema") != "repro.obs/metrics":
        raise ConfigurationError(f"{path} is not a repro.obs metrics file")
    return {
        key: document[key]
        for key in ("counters", "gauges", "histograms", "series", "spans")
        if key in document
    }


def _fmt(value: float) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def metrics_markdown(snapshot: dict, *, max_span_events: int = 20) -> str:
    """Render a snapshot as Markdown tables (counters, gauges,
    histograms, then the slowest span events)."""
    parts: list[str] = []

    counters = snapshot.get("counters", {})
    if counters:
        parts.append("**Counters**\n")
        parts.append("| counter | value |")
        parts.append("|---|---|")
        parts.extend(f"| `{k}` | {_fmt(v)} |" for k, v in sorted(counters.items()))
        parts.append("")

    gauges = snapshot.get("gauges", {})
    if gauges:
        parts.append("**Gauges**\n")
        parts.append("| gauge | value |")
        parts.append("|---|---|")
        parts.extend(f"| `{k}` | {_fmt(v)} |" for k, v in sorted(gauges.items()))
        parts.append("")

    histograms = snapshot.get("histograms", {})
    if histograms:
        parts.append("**Histograms**\n")
        parts.append("| histogram | count | mean | min | max |")
        parts.append("|---|---|---|---|---|")
        for name, h in sorted(histograms.items()):
            parts.append(
                f"| `{name}` | {_fmt(h.get('count', 0))} | "
                f"{_fmt(h.get('mean', 0.0))} | {_fmt(h.get('min'))} | "
                f"{_fmt(h.get('max'))} |"
            )
        parts.append("")

    spans = snapshot.get("spans", {})
    events = spans.get("events", [])
    if events:
        slowest = sorted(events, key=lambda e: -e["duration_s"])[:max_span_events]
        parts.append(f"**Slowest spans** ({len(events)} recorded, "
                     f"{spans.get('dropped', 0)} dropped)\n")
        parts.append("| span | depth | duration (s) |")
        parts.append("|---|---|---|")
        parts.extend(
            f"| `{e['path']}` | {e['depth']} | {e['duration_s']:.6g} |"
            for e in slowest
        )
        parts.append("")

    if not parts:
        return "_(no metrics collected)_"
    return "\n".join(parts).strip()
