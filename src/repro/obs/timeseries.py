"""Bounded per-cycle timeseries with deterministic decimation.

End-of-run totals say *what* a run delivered; a timeseries says *when*
it degraded — the per-cycle queue-depth, in-flight, cwnd, and rate
curves the flows study needs to explain knockout-style loss dynamics
between cycle 0 and the summary line.

A :class:`Series` holds at most ``budget`` points.  Appends are
sampled with a power-of-two ``stride``: every ``stride``-th raw sample
is kept, and whenever the buffer reaches the budget it drops every
other stored point and doubles the stride.  The retained point set is
therefore a *pure function of the append sequence* — no wall clock, no
randomness — so journaled series replay byte-identically and same-seed
runs produce the same curves at any run length.  A series that saw
``count`` raw samples with budget *B* keeps between *B/2* and *B*
points spread evenly across the whole run (the classic halving
reservoir, not a tail window).

Registries hand these out next to counters/gauges/histograms
(``obs.series("flows.queue_depth", fabric=...)``); the journal sink
flushes them as ``series`` frames (last write wins on replay) and the
merge protocol rekeys worker series with ``{worker=...}`` provenance,
like gauges — a worker's timeline is a per-worker fact, meaningless
summed.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Default point budget per series: enough for a readable sparkline and
#: a max/mean SLO check, small enough that a hundred series stay cheap
#: in the journal.
DEFAULT_BUDGET = 256


class Series:
    """One bounded, decimating timeseries."""

    __slots__ = ("key", "budget", "stride", "count", "points")

    def __init__(self, key: str, budget: int = DEFAULT_BUDGET):
        if budget < 2:
            raise ConfigurationError("series budget must be >= 2")
        self.key = key
        self.budget = int(budget)
        self.stride = 1
        self.count = 0  # raw samples offered, including decimated ones
        self.points: list[tuple[float, float]] = []

    def append(self, value: float, t: float | None = None) -> None:
        """Offer one sample; ``t`` defaults to the raw sample index so
        callers without a natural time axis still get a monotone one."""
        if t is None:
            t = float(self.count)
        if self.count % self.stride == 0:
            self.points.append((float(t), float(value)))
            if len(self.points) >= self.budget:
                # Halve deterministically: keep every other point from
                # the start, double the sampling stride going forward.
                del self.points[1::2]
                self.stride *= 2
        self.count += 1

    @property
    def last(self) -> float | None:
        return self.points[-1][1] if self.points else None

    @property
    def max(self) -> float | None:
        return max(v for _, v in self.points) if self.points else None

    @property
    def mean(self) -> float | None:
        if not self.points:
            return None
        return sum(v for _, v in self.points) / len(self.points)

    def values(self) -> list[float]:
        return [v for _, v in self.points]

    def as_dict(self) -> dict:
        """JSON-shaped form (what journal ``series`` frames and
        portable worker snapshots carry)."""
        return {
            "budget": self.budget,
            "stride": self.stride,
            "count": self.count,
            "points": [[t, v] for t, v in self.points],
        }

    @classmethod
    def from_dict(cls, key: str, document: dict) -> "Series":
        series = cls(key, budget=int(document.get("budget", DEFAULT_BUDGET)))
        series.stride = int(document.get("stride", 1))
        series.count = int(document.get("count", 0))
        series.points = [
            (float(t), float(v)) for t, v in document.get("points", [])
        ]
        return series


class NullSeries:
    """Do-nothing stand-in the :class:`~repro.obs.registry.NullRegistry`
    hands out — instrumented code appends unconditionally and pays one
    method call when collection is off."""

    __slots__ = ()

    def append(self, value: float, t: float | None = None) -> None:
        pass


NULL_SERIES = NullSeries()
