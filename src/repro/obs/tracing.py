"""Span-based structured tracing.

A *span* is a named, timed region of execution (``sim.run``,
``sim.round``, ``serial.transit``).  Spans nest: entering a span while
another is open records the parent/child relation in the span's slash-
separated ``path``.  Timing uses :func:`time.perf_counter`, the
highest-resolution monotonic clock Python exposes; tests inject a fake
``clock`` callable instead so timing assertions need no real sleeps.

The tracer keeps a bounded buffer of completed span events (so a
million-round simulation cannot exhaust memory); once the buffer is
full, further events are counted in ``dropped`` but not stored.
Aggregate statistics never saturate — the owning
:class:`~repro.obs.registry.Registry` also feeds every span duration
into a ``<name>.seconds`` histogram.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterator


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    path: str  # "parent/child/..." from the root of the active stack
    depth: int
    start: float  # perf_counter timestamp at entry
    duration_s: float
    meta: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start": self.start,
            "duration_s": self.duration_s,
            "meta": dict(self.meta),
        }


class Tracer:
    """Records nested spans into a bounded event buffer."""

    def __init__(
        self,
        max_events: int = 10_000,
        clock: Callable[[], float] = perf_counter,
    ):
        if max_events < 0:
            raise ValueError("max_events must be non-negative")
        self.max_events = max_events
        self.clock = clock
        self.events: list[SpanRecord] = []
        self.dropped = 0
        self._stack: list[str] = []

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str, /, **meta: object) -> Iterator[None]:
        self._stack.append(name)
        path = "/".join(self._stack)
        depth = len(self._stack) - 1
        start = self.clock()
        try:
            yield
        finally:
            duration = self.clock() - start
            self._stack.pop()
            record = SpanRecord(
                name=name,
                path=path,
                depth=depth,
                start=start,
                duration_s=duration,
                meta=meta,
            )
            if len(self.events) < self.max_events:
                self.events.append(record)
            else:
                self.dropped += 1

    def reset(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._stack.clear()

    def as_dict(self) -> dict:
        return {
            "events": [e.as_dict() for e in self.events],
            "dropped": self.dropped,
        }
