"""Span-based structured tracing.

A *span* is a named, timed region of execution (``sim.run``,
``sim.round``, ``serial.transit``).  Spans nest: entering a span while
another is open records the parent/child relation in the span's slash-
separated ``path``.  Timing uses :func:`time.perf_counter`, the
highest-resolution monotonic clock Python exposes; tests inject a fake
``clock`` callable instead so timing assertions need no real sleeps.

The tracer keeps a bounded buffer of completed span events (so a
million-round simulation cannot exhaust memory); once the buffer is
full, further events are counted in ``dropped`` but not stored.
Aggregate statistics never saturate — the owning
:class:`~repro.obs.registry.Registry` also feeds every span duration
into a ``<name>.seconds`` histogram.

A span whose body raises still closes (the stack always unwinds) and
its record carries ``meta["error"]`` naming the exception type, so a
skewed parent duration in a trace is attributable to the failing
child.  An optional ``sink`` callable observes *every* completed span
— including ones the bounded buffer drops — which is how the live
event journal (:mod:`repro.obs.live.journal`) streams spans to disk.

When a :class:`~repro.obs.tracectx.TraceContext` is attached
(``tracer.context``), every recorded span additionally carries a
deterministic ``span_id`` and the ``parent_id`` of its enclosing open
span (or the context's own ``parent_id`` at the top of the stack — the
cross-process causal link).  Without a context both stay ``None`` and
``as_dict`` omits them, so untraced runs serialise exactly as before.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.obs.tracectx import TraceContext


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    path: str  # "parent/child/..." from the root of the active stack
    depth: int
    start: float  # perf_counter timestamp at entry
    duration_s: float
    meta: dict = field(default_factory=dict)
    span_id: str | None = None
    parent_id: str | None = None

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start": self.start,
            "duration_s": self.duration_s,
            "meta": dict(self.meta),
        }
        if self.span_id is not None:
            out["span_id"] = self.span_id
            out["parent_id"] = self.parent_id
        return out


class Tracer:
    """Records nested spans into a bounded event buffer."""

    def __init__(
        self,
        max_events: int = 10_000,
        clock: Callable[[], float] = perf_counter,
        sink: Callable[[SpanRecord], None] | None = None,
        context: "TraceContext | None" = None,
    ):
        if max_events < 0:
            raise ValueError("max_events must be non-negative")
        self.max_events = max_events
        self.clock = clock
        self.sink = sink
        self.context = context
        self.events: list[SpanRecord] = []
        self.dropped = 0
        self._stack: list[str] = []
        self._id_stack: list[str] = []

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    @property
    def active_path(self) -> str:
        """The slash-joined stack of currently open spans ("" when
        idle) — what a crash report names as the failing region."""
        return "/".join(self._stack)

    @property
    def active_span_id(self) -> str | None:
        """The span id of the innermost open span (None when idle or
        when no trace context is attached) — what a dispatching parent
        ships to workers as their root spans' ``parent_id``."""
        return self._id_stack[-1] if self._id_stack else None

    @contextmanager
    def span(self, name: str, /, **meta: object) -> Iterator[None]:
        self._stack.append(name)
        path = "/".join(self._stack)
        depth = len(self._stack) - 1
        span_id = parent_id = None
        if self.context is not None:
            parent_id = (
                self._id_stack[-1] if self._id_stack else self.context.parent_id
            )
            span_id = self.context.next_id()
            self._id_stack.append(span_id)
        error: str | None = None
        start = self.clock()
        try:
            yield
        except BaseException as exc:
            # The stack still unwinds (finally below); tag the record so
            # a trace shows *which* span the exception escaped from.
            error = type(exc).__name__
            raise
        finally:
            duration = self.clock() - start
            self._stack.pop()
            if span_id is not None and self._id_stack:
                self._id_stack.pop()
            record = SpanRecord(
                name=name,
                path=path,
                depth=depth,
                start=start,
                duration_s=duration,
                meta=dict(meta) if error is None else {**meta, "error": error},
                span_id=span_id,
                parent_id=parent_id,
            )
            if len(self.events) < self.max_events:
                self.events.append(record)
            else:
                self.dropped += 1
            if self.sink is not None:
                try:
                    self.sink(record)
                except Exception:
                    # A broken sink must never corrupt the span stack or
                    # mask the body's own exception.
                    pass

    def absorb(self, events, dropped: int = 0, *, worker: str | None = None) -> None:
        """Merge completed spans from another tracer (or their
        ``as_dict`` forms) into this one, tagging each with its
        ``worker`` provenance label.  Respects ``max_events``; the
        child's own drop count carries over."""
        from dataclasses import replace

        self.dropped += int(dropped)
        for event in events:
            record = (
                event
                if isinstance(event, SpanRecord)
                else SpanRecord(
                    name=event["name"],
                    path=event["path"],
                    depth=int(event["depth"]),
                    start=float(event["start"]),
                    duration_s=float(event["duration_s"]),
                    meta=dict(event.get("meta", {})),
                    span_id=event.get("span_id"),
                    parent_id=event.get("parent_id"),
                )
            )
            if worker is not None:
                record = replace(record, meta={**record.meta, "worker": worker})
            if len(self.events) < self.max_events:
                self.events.append(record)
                if self.sink is not None:
                    try:
                        self.sink(record)
                    except Exception:
                        pass
            else:
                self.dropped += 1

    def reset(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._stack.clear()
        self._id_stack.clear()

    def as_dict(self) -> dict:
        return {
            "events": [e.as_dict() for e in self.events],
            "dropped": self.dropped,
        }
