"""Metric primitives: counters, gauges, and histograms.

These are deliberately tiny, allocation-light objects: the hot paths
(`ConcentratorSwitch.route`, `EventSimulator.transition`, the per-round
simulation loops) touch them on every call, so each operation is a
couple of attribute updates.  Aggregation and rendering live in
:mod:`repro.obs.export`; the process-wide lookup lives in
:mod:`repro.obs.registry`.

Histograms use magnitude (power-of-two) buckets so one implementation
covers both sub-microsecond timing samples and integer gate-delay
counts without per-metric bucket configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def bucket_key(value: float) -> str:
    """Magnitude bucket for ``value``: ``"0"``, ``"neg"``, or
    ``"2^k"`` with ``2^k <= value < 2^(k+1)``."""
    if value == 0:
        return "0"
    if value < 0:
        return "neg"
    return f"2^{math.floor(math.log2(value))}"


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (by {amount})")
        self.value += amount

    def as_dict(self) -> float:
        return self.value


@dataclass
class Gauge:
    """Last-written value (queue depths, configuration sizes)."""

    name: str
    value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def as_dict(self) -> float:
        return self.value


@dataclass
class Histogram:
    """Streaming distribution summary with magnitude buckets.

    Keeps count/sum/min/max exactly and a power-of-two bucket census —
    constant memory regardless of how many samples arrive, which is
    what lets the event simulator observe every transition.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[str, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        key = bucket_key(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": dict(sorted(self.buckets.items())),
        }

    def merge_dict(self, other: dict) -> None:
        """Fold another histogram's ``as_dict`` form into this one —
        the cross-worker aggregation primitive: counts/sums/buckets
        add, bounds widen."""
        count = int(other.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(other.get("sum", 0.0))
        lo, hi = other.get("min"), other.get("max")
        if lo is not None and lo < self.min:
            self.min = float(lo)
        if hi is not None and hi > self.max:
            self.max = float(hi)
        for key, n in (other.get("buckets") or {}).items():
            self.buckets[key] = self.buckets.get(key, 0) + int(n)


class NullCounter:
    """Shared do-nothing counter handed out when obs is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
