"""OpenMetrics-style text exposition of a metrics snapshot.

``repro obs export --format prometheus`` renders a registry snapshot
(from a ``--metrics-out`` JSON or a replayed journal) as the
Prometheus text format: ``# TYPE`` headers, sanitized
``repro_``-prefixed family names, label sets recovered from the
flattened ``name{k=v,...}`` keys, and ``_total`` suffixes on
counters.  Histograms keep the library's magnitude (power-of-two)
buckets as a ``bucket`` label — they are a census, not cumulative
``le`` buckets, and are exported as such alongside exact ``_count``
and ``_sum`` series.
"""

from __future__ import annotations

import re

from repro.obs.registry import split_metric_key

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _family(name: str, namespace: str) -> str:
    return _INVALID.sub("_", f"{namespace}_{name}")


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_INVALID.sub("_", k)}="{_escape(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    return str(int(number)) if number.is_integer() else repr(number)


def prometheus_text(snapshot: dict, *, namespace: str = "repro") -> str:
    """Render a snapshot dict as Prometheus/OpenMetrics text."""
    from repro.obs.catalog import CATALOG

    help_by_name = {m.name: m.description for m in CATALOG}
    lines: list[str] = []
    typed: set[str] = set()

    def header(family: str, kind: str, base: str) -> None:
        if family in typed:
            return
        typed.add(family)
        description = help_by_name.get(base)
        if description:
            lines.append(f"# HELP {family} {description}")
        lines.append(f"# TYPE {family} {kind}")

    for key, value in sorted(snapshot.get("counters", {}).items()):
        base, labels = split_metric_key(key)
        family = _family(base, namespace)
        header(family, "counter", base)
        lines.append(f"{family}_total{_labels(labels)} {_fmt(value)}")

    for key, value in sorted(snapshot.get("gauges", {}).items()):
        base, labels = split_metric_key(key)
        family = _family(base, namespace)
        header(family, "gauge", base)
        lines.append(f"{family}{_labels(labels)} {_fmt(value)}")

    for key, hist in sorted(snapshot.get("histograms", {}).items()):
        base, labels = split_metric_key(key)
        family = _family(base, namespace)
        header(family, "histogram", base)
        for bucket, count in sorted((hist.get("buckets") or {}).items()):
            lines.append(
                f"{family}_bucket{_labels({**labels, 'bucket': bucket})} "
                f"{_fmt(count)}"
            )
        lines.append(f"{family}_count{_labels(labels)} {_fmt(hist.get('count', 0))}")
        lines.append(f"{family}_sum{_labels(labels)} {_fmt(hist.get('sum', 0.0))}")

    return "\n".join(lines) + ("\n" if lines else "")
